"""EXP-COMPRESS — scenario-matrix compression pass on the seeded matrix.

Compression is the pay-once pass that lets CI run representatives
instead of the full 54-cell matrix: expand the scenario grid, probe
each cell's observable behaviour under its target's deviation model,
bucket cells whose signatures collide. This benchmark times that full
expand→probe→bucket pass plus the artifact round-trip (the bytes CI
pins with ``cmp``), and verifies the compression the gate relies on:
the seeded matrix prunes at least 40% of cells, every pruned cell
names its representative, and the canonical JSON re-loads losslessly.
"""

from conftest import emit

from repro.netdebug.compression import (
    CompressedMatrix,
    baseline_compression_matrix,
    compress_matrix,
)


def test_compression_pass(benchmark):
    """One full map build: expand the seeded matrix, signature every
    cell, bucket, serialize, re-load — the per-PR cost of keeping the
    equivalence map honest."""

    def build():
        compressed = compress_matrix(baseline_compression_matrix())
        return compressed, CompressedMatrix.from_json(compressed.to_json())

    compressed, clone = benchmark(build)

    assert compressed.expanded_cells == 54
    assert compressed.ratio <= 0.6
    assert clone.to_json() == compressed.to_json()
    pruned = compressed.pruned_keys
    rep_for = compressed.representative_for
    assert sorted(rep_for) == sorted(pruned)
    assert len(compressed.entries) + len(pruned) == compressed.expanded_cells

    emit(
        "EXP-COMPRESS — matrix compression pass",
        [
            f"{'cells':>6} {'reps':>6} {'pruned':>7} "
            f"{'pinned':>7} {'ratio':>6}",
            f"{compressed.expanded_cells:>6} "
            f"{len(compressed.entries):>6} {len(pruned):>7} "
            f"{len(compressed.pins):>7} {compressed.ratio:>6.3f}",
        ],
    )
    benchmark.extra_info["expanded_cells"] = compressed.expanded_cells
    benchmark.extra_info["representatives"] = len(compressed.entries)
    benchmark.extra_info["pruned"] = len(pruned)
    benchmark.extra_info["pinned"] = len(compressed.pins)
    benchmark.extra_info["ratio"] = compressed.ratio
