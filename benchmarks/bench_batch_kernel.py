"""EXP-BATCH — the batch kernel and the compiled-artifact cache.

Two properties behind the batch engine's line-rate claim:

* Per-block throughput must grow with block size — the kernel
  amortizes dispatch, parse codegen and deparse over a
  struct-of-arrays block, so bigger blocks mean more packets per
  second, and the largest block must beat per-packet injection.
* The persistent compiled-artifact cache must make warm provisioning
  cheaper than cold compilation — the property that lets cluster
  workers and replay runs skip recompiles.

Wall-clock assertions only fire on timed runs (the ones recorded in
BENCH_perf.json) so ``--benchmark-disable`` smoke jobs check semantics
without flaking on noisy shared runners.
"""

import time

from conftest import emit

from repro.exceptions import CompileError
from repro.p4.stdlib import PROGRAMS
from repro.sim.traffic import default_flow, udp_stream
from repro.target.artifact_cache import (
    ArtifactCache,
    stats_delta,
    stats_snapshot,
)
from repro.target.reference import ReferenceCompiler, make_reference_device
from repro.target.sdnet import SDNetCompiler
from repro.target.tofino import TofinoCompiler

BLOCK_SIZES = (16, 64, 256, 1024)
CACHE_PROGRAMS = ("strict_parser", "acl_firewall", "ipv4_router",
                  "mpls_tunnel")
CACHE_TARGETS = (ReferenceCompiler, SDNetCompiler, TofinoCompiler)


def test_batch_block_throughput(benchmark):
    """Per-block throughput scales with block size."""
    wires = [
        p.pack()
        for p in udp_stream(default_flow(), max(BLOCK_SIZES), size=128)
    ]

    def throughput(run, frames):
        run(frames[:1])  # warm caches / compile
        best = float("inf")
        for _ in range(5):
            start = time.perf_counter()
            run(frames)
            best = min(best, time.perf_counter() - start)
        return len(frames) / best

    def experiment():
        device = make_reference_device("bk-throughput", engine="batch")
        device.load(PROGRAMS["strict_parser"](forward_port=0))
        rows = [
            (size, throughput(device.inject_block, wires[:size]))
            for size in BLOCK_SIZES
        ]
        per_packet = make_reference_device("bk-single", engine="closure")
        per_packet.load(PROGRAMS["strict_parser"](forward_port=0))

        def inject_each(frames):
            for wire in frames:
                per_packet.inject(wire)

        baseline = throughput(inject_each, wires)
        return rows, baseline

    rows, baseline = benchmark.pedantic(experiment, rounds=1, iterations=1)

    lines = [f"{'block':>8} {'pkts/s':>14}"]
    for size, rate in rows:
        lines.append(f"{size:>8} {rate:>14,.0f}")
    lines.append(f"{'per-pkt':>8} {baseline:>14,.0f}")
    emit("EXP-BATCH — block throughput vs block size", lines)

    if not getattr(benchmark, "disabled", False):
        # The largest block must out-run per-packet injection; smaller
        # blocks may tie (fixed per-block overhead dominates at 16).
        best_rate = max(rate for _, rate in rows)
        assert best_rate > baseline, (
            f"batch peak {best_rate:,.0f} pkts/s does not beat "
            f"per-packet {baseline:,.0f} pkts/s"
        )
    benchmark.extra_info["throughput_pkts_per_s"] = {
        str(size): round(rate) for size, rate in rows
    }
    benchmark.extra_info["per_packet_pkts_per_s"] = round(baseline)


def _resolve_all(cache):
    """The campaign worker's disk-tier resolution, for every seeded
    program × target pair: hit the cache or compile and store."""
    for name in CACHE_PROGRAMS:
        for compiler_cls in CACHE_TARGETS:
            compiler = compiler_cls()
            program = PROGRAMS[name]()
            try:
                key = cache.key_for(program, compiler)
            except Exception:
                continue
            compiled = cache.load(key, compiler)
            if compiled is None:
                try:
                    compiled = compiler.compile(program)
                except CompileError:
                    continue
                cache.store(key, compiled)


def test_compile_cache_warm_vs_cold(benchmark, tmp_path):
    """Warm artifact resolution must be cheaper than cold compilation."""

    def timed_resolve(directory):
        before = stats_snapshot()
        start = time.perf_counter()
        _resolve_all(ArtifactCache(directory))
        return time.perf_counter() - start, stats_delta(before)

    def experiment():
        # Cold can only happen once per directory: best-of-3 over three
        # fresh directories, then best-of-3 warm over a populated one.
        cold_s = float("inf")
        for round_index in range(3):
            elapsed, cold_stats = timed_resolve(
                tmp_path / f"cold-{round_index}"
            )
            cold_s = min(cold_s, elapsed)
        warm_s = float("inf")
        for _ in range(3):
            elapsed, warm_stats = timed_resolve(tmp_path / "cold-0")
            warm_s = min(warm_s, elapsed)
        return cold_s, warm_s, cold_stats, warm_stats

    cold_s, warm_s, cold_stats, warm_stats = benchmark.pedantic(
        experiment, rounds=1, iterations=1
    )

    assert cold_stats["stores"] > 0 and cold_stats["misses"] > 0
    assert warm_stats["hits"] == cold_stats["stores"]
    assert warm_stats["misses"] == 0 and warm_stats["stores"] == 0
    if not getattr(benchmark, "disabled", False):
        assert warm_s < cold_s, (
            f"warm resolution ({warm_s * 1e3:.1f}ms) not cheaper than "
            f"cold compilation ({cold_s * 1e3:.1f}ms)"
        )

    emit(
        "EXP-BATCH — compiled-artifact cache, cold vs warm",
        [
            f"{'path':>6} {'time':>10} {'hits':>6} {'misses':>7} "
            f"{'stores':>7}",
            f"{'cold':>6} {cold_s * 1e3:>8.1f}ms {cold_stats['hits']:>6} "
            f"{cold_stats['misses']:>7} {cold_stats['stores']:>7}",
            f"{'warm':>6} {warm_s * 1e3:>8.1f}ms {warm_stats['hits']:>6} "
            f"{warm_stats['misses']:>7} {warm_stats['stores']:>7}",
            f"speedup: {cold_s / warm_s:.2f}x (bar: warm < cold)",
        ],
    )
    benchmark.extra_info.update(
        {
            "cold_s": round(cold_s, 6),
            "warm_s": round(warm_s, 6),
            "cold_cache": cold_stats,
            "warm_cache": warm_stats,
        }
    )
