"""EXP-DIFF — cross-version campaign diffing throughput and verdicts.

The regression gate runs on every PR, so the differ itself must be
cheap: parse two canonical campaign JSONs plus two differential-matrix
JSONs, align scenarios and cells, classify flips. This benchmark times
that full parse→diff→render path on the seeded golden matrices and
verifies the two verdict shapes the gate relies on: an identical pair
diffs clean, and an injected deviation surfaces as exactly one
unexplained pass→fail flip.
"""

from conftest import emit

from repro.netdebug.campaign import CampaignReport
from repro.netdebug.diffing import (
    diff_campaigns,
    inject_unexplained_flip,
    run_baseline_campaign,
    run_baseline_differential,
)


def test_diff_gate_kernel(benchmark):
    """One full gate evaluation: load both report pairs from JSON text,
    diff, render markdown — the per-PR cost of the CI gate."""
    campaign_json = run_baseline_campaign().to_json()
    matrix = run_baseline_differential()

    tampered = inject_unexplained_flip(
        CampaignReport.from_json(campaign_json).to_dict()
    )
    regressed = CampaignReport.from_dict(tampered)

    def gate():
        old = CampaignReport.from_json(campaign_json)
        new = CampaignReport.from_json(campaign_json)
        clean = diff_campaigns(old, new, matrix, matrix)
        broken = diff_campaigns(old, regressed, matrix, matrix)
        return clean, broken, clean.to_markdown(), broken.to_markdown()

    clean, broken, _, broken_md = benchmark(gate)

    assert not clean.is_regression and not clean.deltas
    assert broken.is_regression
    assert len(broken.unexplained_flips) == 1
    assert broken.unexplained_flips[0].direction == "pass->fail"
    assert "UNEXPLAINED" in broken_md

    emit(
        "EXP-DIFF — campaign-diff gate kernel",
        [
            f"{'scenarios':>10} {'cells':>6} {'flips':>6} "
            f"{'unexplained':>12}",
            f"{clean.old_scenarios:>10} {len(matrix.cells):>6} "
            f"{len(broken.flips):>6} "
            f"{len(broken.unexplained_flips):>12}",
        ],
    )
    benchmark.extra_info["scenarios"] = clean.old_scenarios
    benchmark.extra_info["matrix_cells"] = len(matrix.cells)
    benchmark.extra_info["clean_regression"] = clean.is_regression
    benchmark.extra_info["injected_flips"] = len(broken.flips)
