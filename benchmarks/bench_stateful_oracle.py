"""EXP-ORACLE — what session-scoped prediction costs.

The stateful oracle threads one long-lived interpreter through the
whole packet sequence instead of building a fresh one per packet, so
two things are worth pinning on a big bidirectional sweep:

* **throughput** — expectations per second for the stateful vs the
  stateless oracle over the same 10k-packet ``tcp_bidir``-style
  workload (both rows land in ``BENCH_perf.json``);
* **semantics** — the two predictions must actually diverge on the
  sweep: the stateful oracle forwards the return-path packets of
  opened flows that the stateless oracle keeps forbidding.
"""

import time

from conftest import emit

from repro.netdebug.oracle import ReferenceOracle, StatelessOracle
from repro.p4.stdlib_ext import stateful_firewall
from repro.sim.traffic import OUTSIDE_PORT, bidirectional_flows, default_flow

SWEEP_PACKETS = 10_000
SEED = 2018


def _sweep():
    pairs = bidirectional_flows(default_flow(), SWEEP_PACKETS, seed=SEED)
    frames = [packet.pack() for packet, _ in pairs]
    ports = [port for _, port in pairs]
    return frames, ports


def _throughput(factory, frames, ports):
    program = stateful_firewall()
    best = float("inf")
    expectations = None
    for _ in range(3):
        oracle = factory(program, num_ports=8)
        start = time.perf_counter()
        expectations = oracle.expect_all(
            frames, ingress_ports=ports, label="bench"
        )
        best = min(best, time.perf_counter() - start)
    return len(frames) / best, expectations


def test_stateful_vs_stateless_oracle_throughput(benchmark):
    """10k bidirectional packets through both oracle semantics."""
    frames, ports = _sweep()

    def experiment():
        stateful_rate, stateful_exp = _throughput(
            ReferenceOracle, frames, ports
        )
        stateless_rate, stateless_exp = _throughput(
            StatelessOracle, frames, ports
        )
        return stateful_rate, stateless_rate, stateful_exp, stateless_exp

    stateful_rate, stateless_rate, stateful_exp, stateless_exp = (
        benchmark.pedantic(experiment, rounds=1, iterations=1)
    )

    assert len(stateful_exp) == len(stateless_exp) == SWEEP_PACKETS
    # The semantics divergence: return-path packets of opened flows are
    # forwarded only under session-scoped state.
    opened_returns = sum(
        1
        for port, stateful_e, stateless_e in zip(
            ports, stateful_exp, stateless_exp
        )
        if port == OUTSIDE_PORT
        and not stateful_e.forbid
        and stateless_e.forbid
    )
    assert opened_returns > 0
    ratio = stateful_rate / stateless_rate

    emit(
        "EXP-ORACLE — stateful vs stateless oracle throughput",
        [
            f"{'oracle':>10} {'expectations/s':>16}",
            f"{'stateful':>10} {stateful_rate:>16,.0f}",
            f"{'stateless':>10} {stateless_rate:>16,.0f}",
            f"stateful/stateless ratio: {ratio:.2f}x",
            f"return-path flips (forwarded only when stateful): "
            f"{opened_returns}/{SWEEP_PACKETS}",
        ],
    )

    benchmark.extra_info["stateful_expectations_per_s"] = round(
        stateful_rate
    )
    benchmark.extra_info["stateless_expectations_per_s"] = round(
        stateless_rate
    )
    benchmark.extra_info["stateful_over_stateless"] = round(ratio, 3)
    benchmark.extra_info["return_path_flips"] = opened_returns
    benchmark.extra_info["sweep_packets"] = SWEEP_PACKETS
