"""FIG1 — the NetDebug architecture running in parallel with live traffic.

Figure 1 shows the generator and checker deployed *inside* the device,
beside the data plane under test, with live traffic flowing and a host
tool on a dedicated interface. This bench stands the whole figure up:
hosts exchange live traffic through the switch while a NetDebug session
injects and checks test packets inside it. Verified shape: live traffic
is fully delivered and untouched, and not one test packet escapes to the
external ports.
"""

from conftest import emit

from repro.netdebug.controller import NetDebugController
from repro.netdebug.generator import StreamSpec
from repro.netdebug.session import ValidationSession
from repro.p4.stdlib import l2_switch
from repro.packet.headers import mac
from repro.sim.network import Network
from repro.sim.traffic import (
    constant_rate_times,
    default_flow,
    udp_stream,
)
from repro.target.reference import make_reference_device

LIVE_PACKETS = 150
TEST_PACKETS = 60


def _build():
    network = Network()
    device = network.add_device(make_reference_device("sw0"))
    device.load(l2_switch())
    device.control_plane.table_add(
        "dmac", "forward", [mac("02:00:00:00:00:02")], [1]
    )
    network.add_host("h0")
    network.add_host("h1")
    network.connect("h0", "sw0", 0)
    network.connect("h1", "sw0", 1)
    return network, device


def _live_flow():
    flow = default_flow()
    return type(flow)(
        src_ip=flow.src_ip, dst_ip=flow.dst_ip,
        src_port=flow.src_port, dst_port=flow.dst_port,
        eth_dst=mac("02:00:00:00:00:02"),
    )


def test_fig1_validation_beside_live_traffic(benchmark):
    def experiment():
        network, device = _build()
        controller = NetDebugController(device)

        # Live traffic scheduled through the external ports.
        live = [
            p.pack()
            for p in udp_stream(_live_flow(), LIVE_PACKETS, size=128)
        ]
        for when, wire in zip(
            constant_rate_times(2e6, LIVE_PACKETS), live
        ):
            network.send("h0", wire, at=when)

        # NetDebug test session scheduled mid-run on the same device.
        test_packets = list(
            udp_stream(_live_flow(), TEST_PACKETS, size=256, seed=9)
        )
        session = ValidationSession(
            name="parallel-validation",
            streams=[
                StreamSpec(stream_id=1, packets=test_packets, wrap=True)
            ],
        )
        report_holder = {}
        network.sim.schedule_at(
            10_000.0,
            lambda: report_holder.update(
                report=controller.run(session)
            ),
        )
        network.run()
        return network, device, report_holder["report"]

    network, device, report = benchmark.pedantic(
        experiment, rounds=1, iterations=1
    )

    h1 = network.hosts["h1"]
    # 1. Live traffic fully delivered despite the concurrent validation.
    assert h1.rx_count() == LIVE_PACKETS
    # 2. Test traffic fully observed by the in-device checker...
    assert report.streams[1].received == TEST_PACKETS
    assert report.streams[1].lost == 0
    # 3. ...and none of it ever reached an external port.
    from repro.netdebug.testpacket import is_probe

    assert all(not is_probe(f.wire) for f in h1.received)
    # 4. The device saw both traffic classes.
    assert device.stats.processed == LIVE_PACKETS + TEST_PACKETS

    emit(
        "Figure 1 — NetDebug in parallel with live traffic",
        [
            f"live packets delivered  : {h1.rx_count()}/{LIVE_PACKETS}",
            f"test packets checked    : {report.streams[1].received}/"
            f"{TEST_PACKETS} (lost={report.streams[1].lost})",
            "test packets escaping   : 0 (injection bypasses ports)",
            f"in-device test latency  : mean "
            f"{report.latency.mean:.1f} cycles, p99 "
            f"{report.latency.p99:.0f}",
        ],
    )
    benchmark.extra_info.update(
        {
            "live_delivered": h1.rx_count(),
            "test_checked": report.streams[1].received,
            "test_lost": report.streams[1].lost,
            "latency_mean_cycles": round(report.latency.mean, 2),
        }
    )
