"""FIG2 — the use-case capability matrix (the paper's Figure 2).

Runs every tool (NetDebug, software formal verification, external network
tester) against every §3 use case and reproduces the qualitative matrix:
NetDebug full everywhere; formal verification limited to functional
(partial) and comparison (partial); external testers partial on the four
traffic-reachable use cases and blind to resources/status.
"""

from conftest import emit

from repro.analysis.capability import (
    EXPECTED_SHAPE,
    build_matrix,
    render_matrix,
)


def test_fig2_capability_matrix(benchmark):
    matrix = benchmark.pedantic(
        build_matrix, kwargs={"seed": 2018}, rounds=1, iterations=1
    )

    assert matrix.grades() == EXPECTED_SHAPE, render_matrix(matrix)

    emit("Figure 2 — use-case capability matrix", [render_matrix(matrix)])
    benchmark.extra_info["grades"] = {
        tool: {usecase: grade.value for usecase, grade in row.items()}
        for tool, row in matrix.grades().items()
    }
    benchmark.extra_info["scores"] = {
        tool: {
            usecase: round(matrix.score(tool, usecase), 3)
            for usecase in matrix.results[tool]
        }
        for tool in matrix.results
    }
    benchmark.extra_info["matches_paper"] = matrix.matches_expected()
