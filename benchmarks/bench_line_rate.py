"""EXP-RATE — checking "at line rate, at real time" (§2).

Scales the offered test load and verifies the in-device checker observes
*every* packet with zero misses at every load level, while per-packet
check latency stays flat — the property that lets NetDebug claim
line-rate operation. Also times the checker's per-packet observation
cost, the quantity that would bound line rate on real hardware.
"""

from conftest import emit

from repro.netdebug.checker import ExprCheck, OutputChecker
from repro.netdebug.generator import PacketGenerator, StreamSpec
from repro.p4.expr import fld
from repro.p4.stdlib import strict_parser
from repro.sim.traffic import default_flow, udp_stream
from repro.target.reference import make_reference_device

LOADS = (50, 200, 800)


def _device(name):
    device = make_reference_device(name)
    device.load(strict_parser(forward_port=0))
    return device


def test_checker_scaling_with_load(benchmark):
    def experiment():
        rows = []
        for load in LOADS:
            device = _device(f"rate-{load}")
            generator = PacketGenerator(device)
            generator.configure(
                StreamSpec(
                    stream_id=1,
                    packets=list(
                        udp_stream(default_flow(), load, size=128)
                    ),
                    wrap=False,
                )
            )
            checker = OutputChecker(device)
            checker.add_check(
                ExprCheck(
                    "ttl-intact",
                    fld("ipv4", "ttl").eq(64),
                    device.program.env,
                )
            )
            with checker:
                generator.run_stream(1)
            rows.append((load, checker))
        return rows

    rows = benchmark.pedantic(experiment, rounds=1, iterations=1)

    lines = [f"{'offered':>8} {'observed':>9} {'missed':>7} {'checked':>8}"]
    for load, checker in rows:
        outcome = checker.outcomes()[0]
        missed = load - checker.observed_alive
        assert missed == 0  # zero missed packets at every load
        assert outcome.checked == load
        assert outcome.ok
        lines.append(
            f"{load:>8} {checker.observed_alive:>9} {missed:>7} "
            f"{outcome.checked:>8}"
        )

    emit("EXP-RATE — checker coverage vs offered load", lines)
    benchmark.extra_info["loads"] = {
        str(load): checker.observed_alive for load, checker in rows
    }


def test_checker_observation_kernel(benchmark):
    """Microbenchmark: per-packet cost of one checked observation."""
    device = _device("rate-kernel")
    checker = OutputChecker(device)
    checker.add_check(
        ExprCheck(
            "ttl-intact", fld("ipv4", "ttl").eq(64), device.program.env
        )
    )
    wire = next(udp_stream(default_flow(), 1, size=128)).pack()
    checker.attach()

    benchmark(device.inject, wire)
    checker.detach()
    assert checker.observed_alive > 0


def test_compiled_fastpath_speedup(benchmark):
    """EXP-RATE ablation: closure compilation vs tree-walking.

    The engine claim behind the line-rate numbers: executing the
    compiled closures (null-trace fast path) must be at least 3x
    faster than forcing per-packet tree-walking interpretation on the
    800-packet load, with identical verdicts. Timing is measured
    internally with ``perf_counter``; the hard 3x assertion only fires
    on timed runs (the ones recorded in BENCH_perf.json) so that
    ``--benchmark-disable`` smoke jobs on noisy shared runners check
    semantics without flaking on wall-clock variance.
    """
    import time

    load = max(LOADS)
    wires = [
        p.pack() for p in udp_stream(default_flow(), load, size=128)
    ]

    def run_mode(use_compiled):
        device = make_reference_device(
            f"fastpath-{use_compiled}", use_compiled=use_compiled
        )
        device.load(strict_parser(forward_port=0))
        device.inject(wires[0])  # warm caches / compile
        best = float("inf")
        for _ in range(3):
            start = time.perf_counter()
            for wire in wires:
                device.inject(wire)
            best = min(best, time.perf_counter() - start)
        verdicts = [
            device.inject(wire).result.verdict for wire in wires[:32]
        ]
        return best, verdicts

    def experiment():
        fast_s, fast_verdicts = run_mode(True)
        slow_s, slow_verdicts = run_mode(False)
        return fast_s, slow_s, fast_verdicts, slow_verdicts

    fast_s, slow_s, fast_verdicts, slow_verdicts = benchmark.pedantic(
        experiment, rounds=1, iterations=1
    )

    assert fast_verdicts == slow_verdicts  # identical semantics
    speedup = slow_s / fast_s
    if not getattr(benchmark, "disabled", False):
        assert speedup >= 3.0, (
            f"compiled fast path only {speedup:.2f}x over tree-walking"
        )

    emit(
        "EXP-RATE — compiled fast path vs tree-walking interpretation",
        [
            f"{'engine':>14} {'800 pkts':>10} {'pkts/s':>12}",
            f"{'compiled':>14} {fast_s * 1e3:>8.1f}ms "
            f"{load / fast_s:>12,.0f}",
            f"{'tree-walking':>14} {slow_s * 1e3:>8.1f}ms "
            f"{load / slow_s:>12,.0f}",
            f"speedup: {speedup:.2f}x (bar: 3x)",
        ],
    )
    benchmark.extra_info.update(
        {
            "compiled_s": round(fast_s, 6),
            "tree_walking_s": round(slow_s, 6),
            "speedup": round(speedup, 2),
        }
    )


def test_batch_kernel_speedup(benchmark):
    """EXP-RATE ablation: batch kernel vs per-packet closures.

    The batch engine compiles each program into a block kernel that
    amortizes dispatch, parsing and deparsing across a struct-of-arrays
    packet block. On the 800-packet load it must clear 2x over the
    per-packet closure engine with byte-identical outputs. As above,
    the wall-clock bar only fires on timed runs so smoke jobs check
    semantics without flaking.
    """
    import time

    from repro.target.artifact_cache import stats_delta, stats_snapshot

    load = max(LOADS)
    wires = [
        p.pack() for p in udp_stream(default_flow(), load, size=128)
    ]

    def closure_run():
        device = make_reference_device("lr-closure", engine="closure")
        device.load(strict_parser(forward_port=0))
        device.inject(wires[0])  # warm caches / compile
        best = float("inf")
        for _ in range(5):
            start = time.perf_counter()
            for wire in wires:
                device.inject(wire)
            best = min(best, time.perf_counter() - start)
        outputs = [
            (run.result.verdict.value,
             run.result.packet.pack() if run.result.packet else None)
            for run in (device.inject(wire) for wire in wires[:32])
        ]
        return best, outputs

    def batch_run():
        device = make_reference_device("lr-batch", engine="batch")
        device.load(strict_parser(forward_port=0))
        device.inject_block(wires[:1])  # warm caches / compile
        best = float("inf")
        for _ in range(5):
            start = time.perf_counter()
            device.inject_block(wires)
            best = min(best, time.perf_counter() - start)
        outputs = [
            (run.result.verdict.value,
             run.result.packet.pack() if run.result.packet else None)
            for _, run in device.inject_block(wires[:32])
        ]
        return best, outputs

    def experiment():
        before = stats_snapshot()
        closure_s, closure_out = closure_run()
        batch_s, batch_out = batch_run()
        return closure_s, batch_s, closure_out, batch_out, stats_delta(
            before
        )

    closure_s, batch_s, closure_out, batch_out, cache = (
        benchmark.pedantic(experiment, rounds=1, iterations=1)
    )

    assert batch_out == closure_out  # identical semantics, exact bytes
    speedup = closure_s / batch_s
    if not getattr(benchmark, "disabled", False):
        assert speedup >= 2.0, (
            f"batch kernel only {speedup:.2f}x over per-packet closures"
        )

    emit(
        "EXP-RATE — batch kernel vs per-packet closure engine",
        [
            f"{'engine':>14} {'800 pkts':>10} {'pkts/s':>12}",
            f"{'batch':>14} {batch_s * 1e3:>8.1f}ms "
            f"{load / batch_s:>12,.0f}",
            f"{'closure':>14} {closure_s * 1e3:>8.1f}ms "
            f"{load / closure_s:>12,.0f}",
            f"speedup: {speedup:.2f}x (bar: 2x)",
        ],
    )
    benchmark.extra_info.update(
        {
            "batch_s": round(batch_s, 6),
            "closure_s": round(closure_s, 6),
            "speedup": round(speedup, 2),
            "compile_cache": cache,
        }
    )
