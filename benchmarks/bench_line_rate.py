"""EXP-RATE — checking "at line rate, at real time" (§2).

Scales the offered test load and verifies the in-device checker observes
*every* packet with zero misses at every load level, while per-packet
check latency stays flat — the property that lets NetDebug claim
line-rate operation. Also times the checker's per-packet observation
cost, the quantity that would bound line rate on real hardware.
"""

from conftest import emit

from repro.netdebug.checker import ExprCheck, OutputChecker
from repro.netdebug.generator import PacketGenerator, StreamSpec
from repro.p4.expr import fld
from repro.p4.stdlib import strict_parser
from repro.sim.traffic import default_flow, udp_stream
from repro.target.reference import make_reference_device

LOADS = (50, 200, 800)


def _device(name):
    device = make_reference_device(name)
    device.load(strict_parser(forward_port=0))
    return device


def test_checker_scaling_with_load(benchmark):
    def experiment():
        rows = []
        for load in LOADS:
            device = _device(f"rate-{load}")
            generator = PacketGenerator(device)
            generator.configure(
                StreamSpec(
                    stream_id=1,
                    packets=list(
                        udp_stream(default_flow(), load, size=128)
                    ),
                    wrap=False,
                )
            )
            checker = OutputChecker(device)
            checker.add_check(
                ExprCheck(
                    "ttl-intact",
                    fld("ipv4", "ttl").eq(64),
                    device.program.env,
                )
            )
            with checker:
                generator.run_stream(1)
            rows.append((load, checker))
        return rows

    rows = benchmark.pedantic(experiment, rounds=1, iterations=1)

    lines = [f"{'offered':>8} {'observed':>9} {'missed':>7} {'checked':>8}"]
    for load, checker in rows:
        outcome = checker.outcomes()[0]
        missed = load - checker.observed_alive
        assert missed == 0  # zero missed packets at every load
        assert outcome.checked == load
        assert outcome.ok
        lines.append(
            f"{load:>8} {checker.observed_alive:>9} {missed:>7} "
            f"{outcome.checked:>8}"
        )

    emit("EXP-RATE — checker coverage vs offered load", lines)
    benchmark.extra_info["loads"] = {
        str(load): checker.observed_alive for load, checker in rows
    }


def test_checker_observation_kernel(benchmark):
    """Microbenchmark: per-packet cost of one checked observation."""
    device = _device("rate-kernel")
    checker = OutputChecker(device)
    checker.add_check(
        ExprCheck(
            "ttl-intact", fld("ipv4", "ttl").eq(64), device.program.env
        )
    )
    wire = next(udp_stream(default_flow(), 1, size=128)).pack()
    checker.attach()

    benchmark(device.inject, wire)
    checker.detach()
    assert checker.observed_alive > 0
