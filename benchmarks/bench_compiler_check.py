"""EXP-COMPILER — §3 compiler check: finding toolchain limitations.

Runs the compiler-check challenge suite for all three tools and reports
which of the SDNet-like backend's three defects each one surfaces:
the unimplemented ``reject`` state, the ignored ``verify`` statements,
and the refused RANGE match kind. Reproduced shape: NetDebug 3/3, the
external tester sees externally-visible symptoms only (half credit on
two), the formal verifier sees nothing — it never touches the compiler.
"""

from conftest import emit

from repro.netdebug.report import Capability
from repro.netdebug.usecases import compiler_check


def test_compiler_check_suite(benchmark):
    def experiment():
        return {
            tool: compiler_check.run(tool, seed=2018)
            for tool in ("netdebug", "external", "formal")
        }

    results = benchmark.pedantic(experiment, rounds=1, iterations=1)

    assert results["netdebug"].capability is Capability.FULL
    assert results["external"].capability is Capability.PARTIAL
    assert results["formal"].capability is Capability.NONE

    challenge_names = [c.name for c in results["netdebug"].challenges]
    lines = [
        f"{'defect':<16} {'netdebug':>9} {'external':>9} {'formal':>7}"
    ]
    for index, name in enumerate(challenge_names):
        lines.append(
            f"{name:<16} "
            f"{results['netdebug'].challenges[index].score:>9.2f} "
            f"{results['external'].challenges[index].score:>9.2f} "
            f"{results['formal'].challenges[index].score:>7.2f}"
        )
    lines.append(
        f"{'-> capability':<16} "
        f"{results['netdebug'].capability.value:>9} "
        f"{results['external'].capability.value:>9} "
        f"{results['formal'].capability.value:>7}"
    )

    emit("EXP-COMPILER — compiler-defect detection per tool", lines)
    benchmark.extra_info["scores"] = {
        tool: round(result.score, 3) for tool, result in results.items()
    }


def test_sdnet_compile_kernel(benchmark):
    """Microbenchmark: compiling a mid-size program for the target."""
    from repro.p4.stdlib import acl_firewall
    from repro.target.sdnet import SDNetCompiler

    compiler = SDNetCompiler()
    program = acl_firewall()
    compiled = benchmark(compiler.compile, program)
    assert compiled.resources.luts > 0
