"""EXP-CAMPAIGN — parallel validation campaigns over a worker pool.

The scaling experiment behind the campaign engine: one declarative
(program × target × fault × workload) matrix is executed twice — all
shards serial, then on a 4-process pool — and the engine must (a)
produce **byte-identical** ``CampaignReport`` JSON either way, and (b)
approach linear wall-clock speedup, since shards share nothing and each
worker compiles each program once and reuses the artifact.

The ≥2x speedup assertion is enforced when the host actually offers ≥4
CPUs; on smaller machines (e.g. 1-core CI runners) the measured speedup
is still reported in ``extra_info`` but cannot be meaningfully asserted.
"""

import os
import time

from conftest import emit

from repro.netdebug.campaign import ScenarioMatrix, run_campaign
from repro.target.faults import Fault, FaultKind

WORKERS = 4

#: Large enough that shard work dominates pool startup (~15 ms) by >10x.
MATRIX = ScenarioMatrix(
    programs=["strict_parser", "l2_switch"],
    targets=["reference", "sdnet"],
    faults={
        "baseline": (),
        "blackhole": (Fault(FaultKind.BLACKHOLE, stage="ingress.0"),),
    },
    workloads=["udp", "malformed"],
    count=150,
    seed=42,
)


def test_campaign_parallel_speedup(benchmark):
    """Serial vs 4-worker wall clock on the same matrix, plus the
    byte-identical determinism contract."""

    def experiment():
        t0 = time.perf_counter()
        serial = run_campaign(MATRIX, workers=1, name="bench")
        t_serial = time.perf_counter() - t0
        t0 = time.perf_counter()
        parallel = run_campaign(MATRIX, workers=WORKERS, name="bench")
        t_parallel = time.perf_counter() - t0
        return serial, parallel, t_serial, t_parallel

    serial, parallel, t_serial, t_parallel = benchmark.pedantic(
        experiment, rounds=1, iterations=1
    )

    # Determinism: 1 worker vs N workers, byte-identical report.
    assert serial.to_json() == parallel.to_json()
    assert serial.scenarios == len(MATRIX.expand())

    speedup = t_serial / t_parallel if t_parallel > 0 else float("inf")
    cpus = os.cpu_count() or 1
    if cpus >= WORKERS:
        # Embarrassingly parallel shards: demand at least half-linear.
        assert speedup >= 2.0, (
            f"4-worker campaign only {speedup:.2f}x faster than serial "
            f"on a {cpus}-CPU host"
        )

    emit(
        "EXP-CAMPAIGN — serial vs parallel campaign execution",
        [
            f"{'scenarios':>10} {'packets':>8} {'serial_s':>9} "
            f"{'par_s':>8} {'speedup':>8} {'cpus':>5}",
            f"{serial.scenarios:>10} {serial.injected:>8} "
            f"{t_serial:>9.3f} {t_parallel:>8.3f} {speedup:>7.2f}x "
            f"{cpus:>5}",
        ],
    )
    benchmark.extra_info["scenarios"] = serial.scenarios
    benchmark.extra_info["packets"] = serial.injected
    benchmark.extra_info["serial_s"] = round(t_serial, 4)
    benchmark.extra_info["parallel_s"] = round(t_parallel, 4)
    benchmark.extra_info["speedup"] = round(speedup, 3)
    benchmark.extra_info["cpus"] = cpus
    benchmark.extra_info["byte_identical"] = True


def test_campaign_finds_the_reject_bug_at_scale(benchmark):
    """The campaign must keep catching the §4 deviation in a sweep: every
    sdnet/malformed cell fails with unexpected_output leaks, every
    reference baseline cell passes."""

    report = benchmark.pedantic(
        lambda: run_campaign(MATRIX, workers=1, name="verdicts"),
        rounds=1, iterations=1,
    )

    lines = [f"{'scenario':<50} {'verdict':>8} {'score':>7}"]
    for result in report.results:
        lines.append(
            f"{result.scenario.key:<50} {result.verdict.upper():>8} "
            f"{result.score:>7.2f}"
        )
        key = result.scenario
        if key.fault == "blackhole":
            assert not result.passed  # injected hardware fault caught
        elif (
            key.program == "strict_parser"
            and key.target == "sdnet"
            and key.workload == "malformed"
        ):
            assert not result.passed  # the §4 reject-state leak
            assert result.report.findings_of("unexpected_output")
        else:
            # l2_switch never reaches reject, so even sdnet matches the
            # spec on malformed input; all other cells must pass.
            assert result.passed
    emit("EXP-CAMPAIGN — per-scenario verdicts", lines)
    benchmark.extra_info["failed"] = len(report.failed())
    benchmark.extra_info["findings_by_kind"] = report.findings_by_kind()


#: The 3-way (program × target) matrix: every registered backend, both
#: Tofino deviation mechanisms armed via the acl_gate provisioner.
THREE_WAY_MATRIX = ScenarioMatrix(
    programs=["strict_parser", "acl_firewall"],
    targets=["reference", "sdnet", "tofino"],
    faults={"baseline": ()},
    workloads=["udp", "malformed"],
    count=100,
    seed=7,
    setup="acl_gate",
)


def test_campaign_three_target_matrix(benchmark):
    """Wall clock of the full 3-way matrix plus its verdict shape: the
    reference column is clean, sdnet fails only the reject-leak cells,
    tofino fails everywhere its deparse/TCAM deviations are exercised."""

    report = benchmark.pedantic(
        lambda: run_campaign(THREE_WAY_MATRIX, workers=1, name="3way"),
        rounds=1, iterations=1,
    )

    lines = [f"{'scenario':<50} {'verdict':>8} {'score':>7}"]
    for result in report.results:
        lines.append(
            f"{result.scenario.key:<50} {result.verdict.upper():>8} "
            f"{result.score:>7.2f}"
        )
        key = result.scenario
        if key.target == "reference":
            assert result.passed
        elif key.target == "sdnet":
            # Only the §4 reject leak: strict_parser × malformed.
            assert result.passed == (
                not (key.program == "strict_parser"
                     and key.workload == "malformed")
            )
        elif key.target == "tofino":
            # Deparse truncation (strict_parser) and quantized TCAM
            # deny-all (acl_firewall) fail every tofino cell here.
            assert not result.passed
    emit("EXP-CAMPAIGN — 3-way (program × target) matrix verdicts", lines)
    benchmark.extra_info["targets"] = 3
    benchmark.extra_info["scenarios"] = report.scenarios
    benchmark.extra_info["packets"] = report.injected
    benchmark.extra_info["failed"] = len(report.failed())
    benchmark.extra_info["findings_by_kind"] = report.findings_by_kind()


def test_campaign_serial_kernel(benchmark):
    """Microbenchmark: one small campaign, the per-shard hot path
    (oracle + injection + checking) with the per-worker compile cache."""
    matrix = ScenarioMatrix(
        programs=["strict_parser"],
        targets=["reference"],
        workloads=["udp"],
        count=64,
        seed=9,
    )
    report = benchmark(run_campaign, matrix, 1, "kernel")
    assert report.passed
    benchmark.extra_info["packets"] = report.injected
