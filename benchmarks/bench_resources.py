"""EXP-RSRC — §3 resources quantification.

Per-program hardware footprint (LUTs / FFs / BRAM / DSP) and device
utilization, read through NetDebug's management interface for every
stdlib program on the SDNet-like target. Reproduced shape: ternary-heavy
programs (ACL) dominate LUTs by an order over exact-match programs;
everything fits the SUME-class device; baselines report nothing at all
(their Figure 2 'none' cells).
"""

from conftest import emit

from repro.netdebug.usecases.resources import resource_sweep
from repro.target.resources import SUME_CAPACITY


def test_resource_quantification_sweep(benchmark):
    sweep = benchmark.pedantic(resource_sweep, rounds=1, iterations=1)

    lines = [
        f"{'program':<20} {'LUTs':>8} {'FFs':>8} {'BRAM':>6} "
        f"{'DSP':>5} {'LUT util':>9}"
    ]
    quantified = {}
    for name, info in sorted(sweep.items()):
        if "luts" not in info:
            lines.append(f"{name:<20} rejected: {info['reason']}")
            continue
        quantified[name] = info
        lines.append(
            f"{name:<20} {info['luts']:>8} {info['flipflops']:>8} "
            f"{info['bram_blocks']:>6} {info['dsp_slices']:>5} "
            f"{info['utilization']['luts']:>8.1%}"
        )

    # Shape assertions.
    assert len(quantified) >= 7
    assert all(info["fits"] for info in quantified.values())
    # Ternary ACL dominates exact-match switching on LUTs.
    assert (
        quantified["acl_firewall"]["luts"]
        > 2 * quantified["l2_switch"]["luts"]
    )
    # Every estimate respects the physical device.
    for info in quantified.values():
        assert info["luts"] < SUME_CAPACITY.luts

    emit("EXP-RSRC — per-program resource usage (SDNet-like target)", lines)
    benchmark.extra_info["programs"] = {
        name: {
            "luts": info["luts"],
            "bram": info["bram_blocks"],
            "lut_util": round(info["utilization"]["luts"], 4),
        }
        for name, info in quantified.items()
    }
