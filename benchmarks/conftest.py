"""Shared helpers for the benchmark harness.

Each bench module reproduces one paper artifact (figure, table, or the §4
case study). Benchmarks both *time* the experiment kernel via
pytest-benchmark and *verify* the reproduced result's shape, attaching the
reproduced rows to ``benchmark.extra_info`` and printing a paper-style
table (visible with ``pytest -s`` or in the saved benchmark JSON).
"""

from __future__ import annotations


def emit(title: str, lines: list[str]) -> None:
    """Print a reproduction table under a banner."""
    banner = "=" * max(len(title), 40)
    print(f"\n{banner}\n{title}\n{banner}")
    for line in lines:
        print(line)
