"""Shared helpers for the benchmark harness.

Each bench module reproduces one paper artifact (figure, table, or the §4
case study). Benchmarks both *time* the experiment kernel via
pytest-benchmark and *verify* the reproduced result's shape, attaching the
reproduced rows to ``benchmark.extra_info`` and printing a paper-style
table (visible with ``pytest -s`` or in the saved benchmark JSON).

Every timed run also appends one entry to ``BENCH_perf.json`` at the
repository root: per-benchmark median timings plus the ``extra_info``
rows. The file is the repo's performance trajectory — diff entries
across commits to see a hot path regress or improve.
"""

from __future__ import annotations

import json
import time
from pathlib import Path


def emit(title: str, lines: list[str]) -> None:
    """Print a reproduction table under a banner."""
    banner = "=" * max(len(title), 40)
    print(f"\n{banner}\n{title}\n{banner}")
    for line in lines:
        print(line)


def _stat(bench, name: str):
    """Best-effort read of one pytest-benchmark statistic."""
    try:
        return getattr(bench.stats.stats, name)
    except Exception:
        try:
            return getattr(bench.stats, name)
        except Exception:
            return None


def pytest_sessionfinish(session, exitstatus):
    """Append this run's per-benchmark medians to BENCH_perf.json."""
    benchmark_session = getattr(session.config, "_benchmarksession", None)
    if benchmark_session is None:
        return
    rows = []
    for bench in getattr(benchmark_session, "benchmarks", []):
        rows.append(
            {
                "name": bench.name,
                "group": getattr(bench, "group", None),
                "median_s": _stat(bench, "median"),
                "mean_s": _stat(bench, "mean"),
                "rounds": _stat(bench, "rounds"),
                "extra_info": dict(getattr(bench, "extra_info", {}) or {}),
            }
        )
    if not rows:
        return  # nothing timed (e.g. --benchmark-disable smoke runs)
    path = Path(str(session.config.rootpath)) / "BENCH_perf.json"
    history: list = []
    if path.exists():
        try:
            history = json.loads(path.read_text()).get("runs", [])
        except (ValueError, OSError):
            history = []
    history.append(
        {
            "timestamp": time.strftime("%Y-%m-%dT%H:%M:%S%z"),
            "exit_status": int(exitstatus),
            "benchmarks": rows,
        }
    )
    try:
        path.write_text(
            json.dumps({"runs": history}, indent=2, default=str) + "\n"
        )
    except OSError:
        pass  # a read-only checkout must not fail the bench run
