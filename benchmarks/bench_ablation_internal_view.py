"""ABLATION — what each NetDebug design choice actually buys.

Two ablations of the claims behind Figure 2:

1. **Internal taps vs ports-only observation.** With internal taps a
   blackhole fault is localized to its exact stage from one injection;
   restrict NetDebug to the input/output taps (an external tester's view)
   and the best possible answer degrades to "somewhere in the device".

2. **Reference oracle vs local checks only.** The reject-state leak is
   caught 100% by oracle-based expectations (spec says drop, device
   forwarded); with only local well-formedness checks at the output tap,
   detection drops to zero — leaked packets are individually well-formed,
   their presence is the bug.
"""

from conftest import emit

from repro.netdebug.checker import ExprCheck, OutputChecker
from repro.netdebug.controller import NetDebugController
from repro.netdebug.generator import StreamSpec
from repro.netdebug.localization import localize_fault
from repro.netdebug.session import ValidationSession
from repro.p4.expr import IsValid, fld
from repro.p4.stdlib import acl_firewall, strict_parser
from repro.packet.builder import udp_packet
from repro.packet.headers import ipv4, mac
from repro.sim.traffic import default_flow, malformed_mix
from repro.target.faults import Fault, FaultKind
from repro.target.reference import make_reference_device
from repro.target.sdnet import make_sdnet_device

FAULT_STAGE = "ingress.1"


def _faulty_device(name):
    device = make_reference_device(name)
    device.load(acl_firewall())
    device.control_plane.table_add(
        "fwd", "forward", [mac("02:00:00:00:00:02")], [2]
    )
    device.injector.inject(Fault(FaultKind.BLACKHOLE, stage=FAULT_STAGE))
    return device


WIRE = udp_packet(
    ipv4("192.168.0.9"), ipv4("172.16.0.1"), 443, 9999,
    eth_dst=mac("02:00:00:00:00:02"),
).pack()


def _ports_only_localization(device) -> tuple[bool, str]:
    """NetDebug crippled to the external view: output tap only."""
    observed = []
    device.attach_tap("output", observed.append)
    try:
        device.inject(WIRE, at="input")
    finally:
        device.detach_tap("output", observed.append)
    lost = not observed
    # Best possible conclusion without internal taps:
    return lost, "somewhere between input and output" if lost else "no fault"


def test_ablation_internal_taps(benchmark):
    def experiment():
        full = localize_fault(_faulty_device("abl-full"), WIRE)
        lost, ablated_verdict = _ports_only_localization(
            _faulty_device("abl-ports")
        )
        return full, lost, ablated_verdict

    full, lost, ablated_verdict = benchmark.pedantic(
        experiment, rounds=1, iterations=1
    )

    assert full.found and full.stage == FAULT_STAGE
    assert lost  # the crippled observer still notices loss...
    assert FAULT_STAGE not in ablated_verdict  # ...but cannot place it

    stages = len(_faulty_device("abl-count").stage_names())
    emit(
        "ABLATION 1 — internal taps vs ports-only observation",
        [
            f"with internal taps : fault at {full.stage!r} "
            f"({full.injections_used} injection)",
            f"ports-only ablation: '{ablated_verdict}' "
            f"(1 of {stages} stages — no localization)",
        ],
    )
    benchmark.extra_info.update(
        {
            "full_stage": full.stage,
            "ablated_verdict": ablated_verdict,
        }
    )


def test_ablation_reference_oracle(benchmark):
    workload = [
        p for p, _ in malformed_mix(default_flow(), 60, 0.5, seed=5)
    ]
    malformed = sum(
        1 for _, bad in malformed_mix(default_flow(), 60, 0.5, seed=5)
        if bad
    )

    def experiment():
        # Arm A: oracle-based session (the real NetDebug workflow).
        oracle_device = make_sdnet_device("abl-oracle")
        oracle_device.load(strict_parser())
        oracle_report = NetDebugController(oracle_device).run(
            ValidationSession(
                name="oracle",
                streams=[
                    StreamSpec(stream_id=1, packets=workload,
                               fix_checksums=False)
                ],
                use_reference_oracle=True,
            )
        )
        # Arm B: local well-formedness checks only, no oracle.
        local_device = make_sdnet_device("abl-local")
        local_device.load(strict_parser())
        checker = OutputChecker(local_device)
        env = local_device.program.env
        checker.add_check(
            ExprCheck("eth-present", IsValid("ethernet"), env)
        )
        checker.add_check(
            ExprCheck(
                "ipv4-ttl-positive",
                fld("ipv4", "ttl").gt(0),
                env,
                skip_missing=True,
            )
        )
        with checker:
            for packet in workload:
                local_device.inject(packet.pack())
        return oracle_report, checker

    oracle_report, checker = benchmark.pedantic(
        experiment, rounds=1, iterations=1
    )

    oracle_detected = len(oracle_report.findings_of("unexpected_output"))
    local_detected = len(checker.findings)
    assert oracle_detected == malformed  # 100%
    assert local_detected == 0           # leaks are well-formed packets

    emit(
        "ABLATION 2 — reference oracle vs local checks only",
        [
            f"workload: {len(workload)} packets, {malformed} must-drop",
            f"oracle-based session : {oracle_detected}/{malformed} "
            "leaks detected",
            f"local checks only    : {local_detected}/{malformed} — "
            "each leaked packet is individually well-formed;",
            "                       only the spec oracle knows it should "
            "not exist",
        ],
    )
    benchmark.extra_info.update(
        {
            "oracle_detected": oracle_detected,
            "local_detected": local_detected,
            "malformed": malformed,
        }
    )
