"""EXP-ARCH — §3 architecture check: probing the target's real limits.

NetDebug discovers the SDNet-like target's actual envelope by probing:
the deepest compilable parse chain, true table capacity (including the
overflow behaviour), and which match kinds the backend builds. The bench
verifies the probed values equal the published ArchLimits — any mismatch
would itself be an architecture finding, which is the use case's point.
"""

from conftest import emit

from repro.netdebug.usecases.architecture_check import (
    probe_match_kinds,
    probe_parse_depth,
    probe_table_capacity,
)
from repro.target.limits import SDNET_LIMITS


def test_architecture_probing(benchmark):
    def experiment():
        depth = probe_parse_depth()
        installed, overflow_rejected = probe_table_capacity(64)
        kinds = probe_match_kinds()
        return depth, installed, overflow_rejected, kinds

    depth, installed, overflow_rejected, kinds = benchmark.pedantic(
        experiment, rounds=1, iterations=1
    )

    assert depth == SDNET_LIMITS.max_parse_depth
    assert installed == 64 and overflow_rejected
    assert kinds == {
        "exact": True, "lpm": True, "ternary": True, "range": False
    }

    emit(
        "EXP-ARCH — probed vs published architecture limits",
        [
            f"parse depth   : probed {depth}, published "
            f"{SDNET_LIMITS.max_parse_depth}  [match]",
            f"table capacity: filled {installed}/64, overflow rejected: "
            f"{overflow_rejected}",
            f"match kinds   : "
            + ", ".join(f"{k}={'yes' if v else 'NO'}"
                        for k, v in sorted(kinds.items())),
        ],
    )
    benchmark.extra_info.update(
        {
            "probed_parse_depth": depth,
            "published_parse_depth": SDNET_LIMITS.max_parse_depth,
            "match_kinds": kinds,
        }
    )
