"""EXP-SERVICE — the multi-tenant campaign service under contention.

Two tenants share one persistent fleet at fair-share weights 3:1. The
experiment measures what a shared validation service exists to
provide:

* **Time-to-first-result per tenant**: both campaigns stream results
  while the other is still running; neither tenant waits for a
  dedicated fleet to spin up or for the other's campaign to finish.
* **Fairness**: contended dispatch shares must land within 2x of the
  configured weights — the deficit-round-robin contract from the
  service scheduler, measured on the scheduler's own contention
  counters.

Timings land in ``BENCH_perf.json`` via the shared conftest hook.
"""

import threading
import time

from conftest import emit

from repro.netdebug.campaign import _pool_context
from repro.netdebug.client import ServiceClient
from repro.netdebug.cluster import service_worker_main
from repro.netdebug.diffing import baseline_matrix
from repro.netdebug.service import CampaignService

SECRET = "bench-fleet-secret"

#: The committed-baseline matrix (12 scenarios, 3 targets) per tenant,
#: at a packet count that makes shard work dominate the wire.
HEAVY = baseline_matrix(count=40)
LIGHT = baseline_matrix(count=40, seed=2019)


def _fleet_up(service, n, timeout=60.0):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        alive = sum(
            1 for w in service.worker_listing() if w["alive"]
        )
        if alive >= n:
            return
        time.sleep(0.05)
    raise AssertionError(f"fleet never reached {n} live workers")


def test_service_two_tenant_contention(benchmark):
    """Both tenants stream results concurrently off one fleet, and the
    contended dispatch shares respect the 3:1 weights within 2x."""

    def experiment():
        service = CampaignService(secret=SECRET).start()
        workers = []
        try:
            for _ in range(2):
                process = _pool_context().Process(
                    target=service_worker_main,
                    args=(service.address,),
                    kwargs=dict(secret=SECRET, connect_retry_s=20.0),
                )
                process.start()
                workers.append(process)
            _fleet_up(service, 2)
            client = ServiceClient(
                service.address, secret=SECRET, timeout=600.0
            )
            t0 = time.perf_counter()
            heavy = client.submit(
                HEAVY, name="heavy", tenant="ci", weight=3.0
            )
            light = client.submit(
                LIGHT, name="light", tenant="nightly", weight=1.0
            )
            first: dict[str, float] = {}

            def mark(tenant):
                def hook(key, report, progress):
                    first.setdefault(
                        tenant, time.perf_counter() - t0
                    )
                return hook

            reports = {}
            streamer = threading.Thread(
                target=lambda: reports.__setitem__(
                    "light", light.stream(on_result=mark("light"))
                )
            )
            streamer.start()
            reports["heavy"] = heavy.stream(on_result=mark("heavy"))
            streamer.join()
            wall = time.perf_counter() - t0
            heavy.close()
            light.close()
            return reports, first, wall
        finally:
            service.close()
            for process in workers:
                process.join(timeout=10.0)
                if process.is_alive():
                    process.terminate()

    reports, first, wall = benchmark.pedantic(
        experiment, rounds=1, iterations=1
    )

    heavy_meta = reports["heavy"].meta["service"]
    light_meta = reports["light"].meta["service"]
    # Streaming: each tenant's first verdict lands before the shared
    # fleet has finished the combined workload.
    assert first["heavy"] < wall and first["light"] < wall
    # Fairness: contended shares within 2x of the 3:1 weights.
    assert heavy_meta["contended"] > 0 and light_meta["contended"] > 0
    ratio = heavy_meta["contended"] / light_meta["contended"]
    assert 3.0 / 2.0 <= ratio <= 3.0 * 2.0, (heavy_meta, light_meta)

    emit(
        "EXP-SERVICE — two tenants, one fleet (weights 3:1)",
        [
            f"{'tenant':>8} {'weight':>7} {'ttfr_s':>8} "
            f"{'contended':>10} {'dispatched':>11}",
            f"{'ci':>8} {3.0:>7.1f} {first['heavy']:>8.3f} "
            f"{heavy_meta['contended']:>10} "
            f"{heavy_meta['dispatched']:>11}",
            f"{'nightly':>8} {1.0:>7.1f} {first['light']:>8.3f} "
            f"{light_meta['contended']:>10} "
            f"{light_meta['dispatched']:>11}",
            f"contended share ratio {ratio:.2f} (weights 3.00), "
            f"combined wall {wall:.3f}s",
        ],
    )
    benchmark.extra_info["ttfr_heavy_s"] = round(first["heavy"], 4)
    benchmark.extra_info["ttfr_light_s"] = round(first["light"], 4)
    benchmark.extra_info["wall_s"] = round(wall, 4)
    benchmark.extra_info["contended_heavy"] = heavy_meta["contended"]
    benchmark.extra_info["contended_light"] = light_meta["contended"]
    benchmark.extra_info["fairness_ratio"] = round(ratio, 3)
