"""EXP-PERF — §3 performance testing: throughput, packet rate, latency.

Sweeps frame sizes 64–1518 B and reports, per size, NetDebug's in-device
measurements beside the external tester's port-level view of the same
device. Reproduced shape: throughput grows with frame size, packet rate
falls, and the external RTT always exceeds the in-device latency by the
measurement overhead — the reason Figure 2 grades external testers
*partial* on performance.
"""

from conftest import emit

from repro.baselines.external_tester import EXTERNAL_OVERHEAD_NS
from repro.netdebug.usecases.performance import (
    measure_external,
    measure_netdebug,
)

FRAME_SIZES = (64, 128, 256, 570, 1024, 1518)


def test_perf_frame_size_sweep(benchmark):
    def sweep():
        rows = []
        for size in FRAME_SIZES:
            internal = measure_netdebug(seed=1, frame_size=size)
            external = measure_external(seed=1, frame_size=size)
            rows.append((size, internal, external))
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)

    lines = [
        f"{'frame':>6} {'tput Gb/s':>10} {'rate Mpps':>10} "
        f"{'lat cyc':>8} {'ext RTT ns':>11}"
    ]
    previous_throughput = 0.0
    previous_rate = None
    for size, internal, external in rows:
        lines.append(
            f"{size:>6} {internal['throughput_gbps']:>10.2f} "
            f"{internal['packet_rate_mpps']:>10.3f} "
            f"{internal['latency_cycles_mean']:>8.1f} "
            f"{external['rtt_mean_ns']:>11.1f}"
        )
        # Shape: throughput increases with frame size...
        assert internal["throughput_gbps"] >= previous_throughput * 0.95
        previous_throughput = internal["throughput_gbps"]
        # ...packet rate decreases...
        if previous_rate is not None:
            assert internal["packet_rate_mpps"] <= previous_rate * 1.05
        previous_rate = internal["packet_rate_mpps"]
        # ...and the external RTT can never beat the internal figure.
        internal_ns = internal["latency_cycles_mean"] * 5.0  # 200 MHz ref
        assert external["rtt_mean_ns"] >= internal_ns
        assert external["rtt_min_ns"] >= EXTERNAL_OVERHEAD_NS
        # Measured throughput stays below the published line rate.
        assert internal["throughput_gbps"] <= internal["line_rate_gbps"]

    emit("EXP-PERF — throughput / packet rate / latency sweep", lines)
    benchmark.extra_info["rows"] = [
        {
            "frame": size,
            "throughput_gbps": round(i["throughput_gbps"], 3),
            "packet_rate_mpps": round(i["packet_rate_mpps"], 4),
            "latency_cycles": round(i["latency_cycles_mean"], 2),
            "external_rtt_ns": round(e["rtt_mean_ns"], 1),
        }
        for size, i, e in rows
    ]


def test_perf_single_packet_kernel(benchmark):
    """Microbenchmark: one packet through the full staged pipeline."""
    from repro.p4.stdlib import l2_switch
    from repro.packet.headers import mac
    from repro.sim.traffic import default_flow, udp_stream
    from repro.target.reference import make_reference_device

    device = make_reference_device("perf-kernel")
    device.load(l2_switch())
    device.control_plane.table_add(
        "dmac", "forward", [mac("02:00:00:00:00:02")], [1]
    )
    flow = default_flow()
    flow = type(flow)(
        src_ip=flow.src_ip, dst_ip=flow.dst_ip,
        src_port=flow.src_port, dst_port=flow.dst_port,
        eth_dst=mac("02:00:00:00:00:02"),
    )
    wire = next(udp_stream(flow, 1, size=256)).pack()

    result = benchmark(device.inject, wire)
    assert result.result.packet is not None
