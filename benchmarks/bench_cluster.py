"""EXP-CLUSTER — distributed campaign execution with streaming ingest.

The scaling experiment behind the cluster subsystem, on the same seeded
matrix the golden baselines pin:

* **Streaming vs barrier**: a barrier campaign is only useful when the
  last shard lands; streaming ingest hands the first verdict to the
  operator while the rest of the matrix is still running. The asserted
  contract is time-to-first-result strictly below the full-barrier
  wall time.
* **Worker scaling**: the same matrix across 1/2/4 socket-connected
  workers, byte-identical throughout (the determinism contract that
  lets cluster output feed the diff gate and golden baselines).

Timings land in ``BENCH_perf.json`` via the shared conftest hook.
"""

import io
import os
import time

from conftest import emit

from repro.netdebug.campaign import run_campaign
from repro.netdebug.cluster import ProgressPrinter, run_cluster_campaign
from repro.netdebug.diffing import baseline_matrix

#: The committed-baseline matrix (12 scenarios, 3 targets) — "the
#: seeded matrix" every other gate uses — at a packet count that makes
#: shard work dominate connection setup.
MATRIX = baseline_matrix(count=40)


def test_cluster_streaming_beats_the_barrier(benchmark):
    """Time-to-first-result under streaming ingest must come in
    strictly below the full-barrier campaign wall time."""

    def experiment():
        t0 = time.perf_counter()
        barrier = run_campaign(MATRIX, workers=2, name="baseline")
        t_barrier = time.perf_counter() - t0

        # The live renderer is itself the measurement instrument: its
        # first_result_s is the time-to-first-result definition.
        printer = ProgressPrinter(stream=io.StringIO())
        t0 = time.perf_counter()
        streamed = run_cluster_campaign(
            MATRIX, workers=2, name="baseline", on_result=printer,
            timeout=600,
        )
        t_cluster = time.perf_counter() - t0
        return barrier, streamed, t_barrier, printer.first_result_s, \
            t_cluster

    barrier, streamed, t_barrier, ttfr, t_cluster = benchmark.pedantic(
        experiment, rounds=1, iterations=1
    )

    # Determinism: pool barrier vs distributed cluster, byte-identical.
    assert barrier.to_json() == streamed.to_json()
    # The tentpole claim: streaming renders progressively, so the first
    # verdict lands well before a barrier run would have returned.
    assert ttfr is not None and ttfr < t_barrier, (
        f"first streamed result took {ttfr:.3f}s, not below the "
        f"{t_barrier:.3f}s barrier wall time"
    )

    emit(
        "EXP-CLUSTER — streaming ingest vs barrier execution",
        [
            f"{'scenarios':>10} {'barrier_s':>10} {'ttfr_s':>8} "
            f"{'cluster_s':>10} {'ttfr/barrier':>13}",
            f"{barrier.scenarios:>10} {t_barrier:>10.3f} {ttfr:>8.3f} "
            f"{t_cluster:>10.3f} {ttfr / t_barrier:>12.2%}",
        ],
    )
    benchmark.extra_info["scenarios"] = barrier.scenarios
    benchmark.extra_info["barrier_s"] = round(t_barrier, 4)
    benchmark.extra_info["time_to_first_result_s"] = round(ttfr, 4)
    benchmark.extra_info["cluster_s"] = round(t_cluster, 4)
    benchmark.extra_info["byte_identical"] = True


def test_cluster_scaling_across_worker_counts(benchmark):
    """Wall clock of the seeded matrix on 1, 2 and 4 socket-connected
    workers; every fleet size must produce identical bytes."""

    def experiment():
        timings = {}
        reports = {}
        for workers in (1, 2, 4):
            t0 = time.perf_counter()
            reports[workers] = run_cluster_campaign(
                MATRIX, workers=workers, name="baseline", timeout=600
            )
            timings[workers] = time.perf_counter() - t0
        return timings, reports

    timings, reports = benchmark.pedantic(
        experiment, rounds=1, iterations=1
    )

    texts = {w: r.to_json() for w, r in reports.items()}
    assert texts[1] == texts[2] == texts[4]

    # Scaling gate: adding workers must shorten the wall clock — but
    # only fleet sizes the host can actually back. On a box with fewer
    # CPUs than workers the fleet time-slices one core and the
    # assertion would measure the scheduler, not the cluster; those
    # sizes are annotated instead of gated.
    cpus = os.cpu_count() or 1
    backed = [w for w in (2, 4) if w <= cpus]
    gated = bool(backed) and not getattr(benchmark, "disabled", False)
    if gated:
        best_multi = min(timings[w] for w in backed)
        assert best_multi < timings[1], (
            f"{backed} workers on {cpus} CPUs never beat one worker "
            f"({best_multi:.3f}s vs {timings[1]:.3f}s)"
        )

    lines = [f"{'workers':>8} {'wall_s':>8} {'speedup':>8}"]
    for workers, wall in sorted(timings.items()):
        lines.append(
            f"{workers:>8} {wall:>8.3f} "
            f"{timings[1] / wall if wall else float('inf'):>7.2f}x"
            + ("" if workers <= max(cpus, 1) else "  (unbacked)")
        )
    lines.append(
        f"(host has {cpus} CPUs; scaling gate "
        + (f"covers {backed} workers)" if gated else "skipped)")
    )
    emit("EXP-CLUSTER — worker-count scaling (byte-identical)", lines)
    for workers, wall in timings.items():
        benchmark.extra_info[f"workers_{workers}_s"] = round(wall, 4)
    benchmark.extra_info["cpus"] = cpus
    benchmark.extra_info["scaling_gate_workers"] = backed if gated else []
    benchmark.extra_info["byte_identical"] = True
