"""EXP-REJECT — the §4 case study: SDNet's missing ``reject`` state.

Paper: "any packet coming into the data plane was sent out to the next
hop, even if it was supposed to be dropped. Our framework immediately
detected this severe bug, that would not be noticed by applying software
formal verification to the data plane program."

Reproduced shape: NetDebug flags 100% of the parser-rejectable packets on
the SDNet-like target; the formal verifier passes the program; the
spec-compliant reference target leaks nothing.
"""

from conftest import emit

from repro.baselines.formal import (
    SymbolicVerifier,
    prop_rejected_never_forwarded,
)
from repro.netdebug.controller import NetDebugController
from repro.netdebug.generator import StreamSpec
from repro.netdebug.session import ValidationSession
from repro.p4.stdlib import strict_parser
from repro.sim.traffic import default_flow, malformed_mix
from repro.target.reference import make_reference_device
from repro.target.sdnet import REJECT_NOT_IMPLEMENTED, make_sdnet_device

COUNT = 120
SEED = 2018


def _audit(device, workload):
    controller = NetDebugController(device)
    return controller.run(
        ValidationSession(
            name="reject-audit",
            streams=[
                StreamSpec(
                    stream_id=1,
                    packets=[p for p, _ in workload],
                    fix_checksums=False,
                )
            ],
            use_reference_oracle=True,
        )
    )


def test_reject_bug_netdebug_detection(benchmark):
    workload = list(malformed_mix(default_flow(), COUNT, 0.5, seed=SEED))
    malformed = sum(1 for _, bad in workload if bad)

    def experiment():
        device = make_sdnet_device("sume0")
        device.load(strict_parser())
        return device, _audit(device, workload)

    device, report = benchmark.pedantic(experiment, rounds=1, iterations=1)

    leaks = len(report.findings_of("unexpected_output"))
    assert leaks == malformed  # every rejectable packet detected
    assert REJECT_NOT_IMPLEMENTED in device.compiled.silent_deviations

    # The reference target must be clean under the identical audit.
    reference = make_reference_device("ref0")
    reference.load(strict_parser())
    reference_report = _audit(reference, workload)
    assert reference_report.passed

    # And the formal verifier must pass the spec (the blind spot).
    formal = SymbolicVerifier(strict_parser()).verify(
        [prop_rejected_never_forwarded()]
    )
    assert formal.passed

    emit(
        "EXP-REJECT — §4 case study (reject state not implemented)",
        [
            f"workload: {COUNT} packets, {malformed} parser-rejectable",
            f"NetDebug on SDNet-like target : {leaks}/{malformed} "
            "leaked packets detected  [paper: bug immediately detected]",
            "NetDebug on reference target  : 0 findings (clean)",
            "Formal verification (spec)    : PASS — bug invisible "
            "[paper: 'would not be noticed']",
        ],
    )
    benchmark.extra_info.update(
        {
            "malformed": malformed,
            "netdebug_detected": leaks,
            "formal_passed_spec": formal.passed,
            "reference_clean": reference_report.passed,
        }
    )
