"""EXP-LOC — fault localization inside the data plane.

Paper claim (§1/§2): "If a bug prevents packets from being correctly
forwarded to the output interfaces of the device, users can find where
the fault occurred, even inside the data plane."

Injects a blackhole fault at every pipeline stage in turn and localizes
it with NetDebug's passive-trace and active-bisection strategies.
Reproduced shape: 100% localization accuracy with one injection
(passive) or O(log stages) injections (bisection); the external tester
can only report end-to-end loss.
"""

from conftest import emit

from repro.baselines.external_tester import ExternalTester
from repro.netdebug.localization import bisect_fault, localize_fault
from repro.p4.stdlib import acl_firewall
from repro.packet.builder import udp_packet
from repro.packet.headers import ipv4, mac
from repro.target.faults import Fault, FaultKind
from repro.target.reference import make_reference_device


def _device(name):
    device = make_reference_device(name)
    device.load(acl_firewall())
    device.control_plane.table_add(
        "fwd", "forward", [mac("02:00:00:00:00:02")], [2]
    )
    return device


WIRE = udp_packet(
    ipv4("192.168.0.9"), ipv4("172.16.0.1"), 443, 9999,
    eth_dst=mac("02:00:00:00:00:02"),
).pack()


def test_localization_every_stage(benchmark):
    def experiment():
        rows = []
        probe_stages = [
            s for s in _device("probe").stage_names()
            if s not in ("input", "output")
        ]
        for stage in probe_stages:
            device = _device(f"loc-{stage}")
            device.injector.inject(
                Fault(FaultKind.BLACKHOLE, stage=stage)
            )
            passive = localize_fault(device, WIRE)
            active = bisect_fault(device, WIRE)
            external = ExternalTester(device).send(WIRE, 0)
            rows.append((stage, passive, active, len(external)))
        return rows

    rows = benchmark.pedantic(experiment, rounds=1, iterations=1)

    lines = [
        f"{'fault stage':<12} {'passive found':>14} {'bisect found':>13} "
        f"{'bisect injections':>18} {'external view':>14}"
    ]
    for stage, passive, active, external_captures in rows:
        assert passive.found and passive.stage == stage
        assert active.found and active.stage == stage
        assert passive.injections_used == 1
        assert external_captures == 0  # tester sees only "loss"
        lines.append(
            f"{stage:<12} {passive.stage:>14} {active.stage:>13} "
            f"{active.injections_used:>18} {'loss only':>14}"
        )

    emit("EXP-LOC — fault localization accuracy per stage", lines)
    benchmark.extra_info["stages"] = {
        stage: {
            "passive": passive.stage,
            "bisect_injections": active.injections_used,
        }
        for stage, passive, active, _ in rows
    }


def test_localization_kernel(benchmark):
    """Microbenchmark: one passive localization pass."""
    device = _device("loc-kernel")
    device.injector.inject(
        Fault(FaultKind.BLACKHOLE, stage="ingress.0")
    )
    result = benchmark(localize_fault, device, WIRE)
    assert result.found
