"""Tests for the P4 expression AST: widths, evaluation, operator sugar."""

import pytest
from hypothesis import given, strategies as st

from repro.exceptions import P4RuntimeError, P4TypeError
from repro.p4.expr import (
    BinOp,
    Concat,
    Const,
    EvalContext,
    FieldRef,
    IsValid,
    MetaRef,
    Mux,
    Slice,
    UnOp,
    const,
    fld,
    meta,
)
from repro.p4.types import TypeEnv
from repro.packet.headers import ETHERNET, IPV4
from repro.packet.packet import Header, Packet


@pytest.fixture
def env():
    type_env = TypeEnv()
    type_env.declare_header(ETHERNET)
    type_env.declare_header(IPV4)
    type_env.declare_metadata("scratch", 16)
    return type_env


@pytest.fixture
def ctx():
    packet = Packet(
        headers=[
            Header(ETHERNET, {"dst_addr": 0xA, "src_addr": 0xB,
                              "ether_type": 0x0800}),
            Header(IPV4, {"ttl": 64, "dst_addr": 0x0A000001}),
        ]
    )
    metadata = {"scratch": 7, "ingress_port": 2}
    return EvalContext(packet, metadata)


class TestConst:
    def test_width_hint(self, env):
        assert Const(5, 16).width(env) == 16

    def test_inferred_width(self, env):
        assert Const(255).width(env) == 8
        assert Const(0).width(env) == 1

    def test_negative_rejected(self):
        with pytest.raises(P4TypeError):
            Const(-1)

    def test_too_wide_for_hint(self):
        with pytest.raises(Exception):
            Const(256, 8)

    def test_eval(self, env, ctx):
        assert Const(42).eval(ctx, env) == 42


class TestRefs:
    def test_field_ref(self, env, ctx):
        assert fld("ipv4", "ttl").eval(ctx, env) == 64
        assert fld("ipv4", "ttl").width(env) == 8

    def test_field_ref_path(self):
        assert fld("ipv4", "ttl").path == "ipv4.ttl"

    def test_missing_header_raises(self, env, ctx):
        with pytest.raises(P4RuntimeError):
            fld("tcp", "src_port").eval(ctx, env)

    def test_invalid_header_raises(self, env, ctx):
        ctx.packet.get("ipv4").valid = False
        with pytest.raises(P4RuntimeError):
            fld("ipv4", "ttl").eval(ctx, env)

    def test_unknown_header_width(self, env):
        with pytest.raises(P4TypeError):
            fld("nope", "x").width(env)

    def test_meta_ref(self, env, ctx):
        assert meta("scratch").eval(ctx, env) == 7
        assert meta("scratch").width(env) == 16

    def test_unset_meta_raises(self, env, ctx):
        with pytest.raises(P4RuntimeError):
            meta("unset_thing").eval(ctx, env)

    def test_is_valid(self, env, ctx):
        assert IsValid("ipv4").eval(ctx, env) == 1
        assert IsValid("tcp").eval(ctx, env) == 0
        ctx.packet.get("ipv4").valid = False
        assert IsValid("ipv4").eval(ctx, env) == 0
        assert IsValid("ipv4").width(env) == 1


class TestBinOps:
    @pytest.mark.parametrize(
        "op,left,right,expected",
        [
            ("+", 200, 100, 44),       # 8-bit wrap: 300 & 0xFF
            ("-", 0, 1, 255),          # 8-bit underflow wrap
            ("*", 16, 16, 0),          # 256 & 0xFF
            ("&", 0xF0, 0x3C, 0x30),
            ("|", 0xF0, 0x0F, 0xFF),
            ("^", 0xFF, 0x0F, 0xF0),
            ("<<", 1, 7, 128),
            ("<<", 1, 8, 0),           # shifted out at 8 bits
            (">>", 128, 7, 1),
            ("==", 5, 5, 1),
            ("==", 5, 6, 0),
            ("!=", 5, 6, 1),
            ("<", 5, 6, 1),
            ("<=", 6, 6, 1),
            (">", 7, 6, 1),
            (">=", 6, 7, 0),
            ("and", 1, 0, 0),
            ("and", 2, 3, 1),
            ("or", 0, 0, 0),
            ("or", 0, 9, 1),
        ],
    )
    def test_semantics_8bit(self, env, ctx, op, left, right, expected):
        expr = BinOp(op, Const(left, 8), Const(right, 8))
        assert expr.eval(ctx, env) == expected

    def test_unknown_op_rejected(self):
        with pytest.raises(P4TypeError):
            BinOp("%", Const(1), Const(2))

    def test_compare_width_is_one(self, env):
        assert Const(5, 8).eq(Const(5, 8)).width(env) == 1

    def test_arith_width_is_max(self, env):
        expr = BinOp("+", Const(1, 8), Const(1, 16))
        assert expr.width(env) == 16

    def test_shift_keeps_left_width(self, env):
        expr = BinOp("<<", Const(1, 8), Const(12, 16))
        assert expr.width(env) == 8

    def test_operator_sugar(self, env, ctx):
        expr = (fld("ipv4", "ttl") - 1) & 0xFF
        assert expr.eval(ctx, env) == 63

    def test_sugar_comparisons(self, env, ctx):
        assert fld("ipv4", "ttl").ge(64).eval(ctx, env) == 1
        assert fld("ipv4", "ttl").gt(64).eval(ctx, env) == 0
        assert fld("ipv4", "ttl").le(64).eval(ctx, env) == 1
        assert fld("ipv4", "ttl").lt(64).eval(ctx, env) == 0
        assert fld("ipv4", "ttl").ne(63).eval(ctx, env) == 1

    def test_logical_sugar(self, env, ctx):
        expr = fld("ipv4", "ttl").eq(64).land(meta("scratch").eq(7))
        assert expr.eval(ctx, env) == 1
        expr2 = fld("ipv4", "ttl").eq(0).lor(meta("scratch").eq(7))
        assert expr2.eval(ctx, env) == 1


class TestUnOps:
    def test_bitwise_not(self, env, ctx):
        assert UnOp("~", Const(0x0F, 8)).eval(ctx, env) == 0xF0

    def test_logical_not(self, env, ctx):
        assert UnOp("!", Const(0)).eval(ctx, env) == 1
        assert UnOp("!", Const(7)).eval(ctx, env) == 0
        assert Const(7).lnot().eval(ctx, env) == 0

    def test_negate_wraps(self, env, ctx):
        assert UnOp("-", Const(1, 8)).eval(ctx, env) == 255

    def test_unknown_rejected(self):
        with pytest.raises(P4TypeError):
            UnOp("abs", Const(1))

    def test_not_width_one(self, env):
        assert UnOp("!", Const(7, 8)).width(env) == 1


class TestSliceConcatMux:
    def test_slice(self, env, ctx):
        expr = Slice(Const(0xABCD, 16), 15, 8)
        assert expr.eval(ctx, env) == 0xAB
        assert expr.width(env) == 8

    def test_slice_bad_bounds(self):
        with pytest.raises(P4TypeError):
            Slice(Const(1), 0, 1)

    def test_concat(self, env, ctx):
        expr = Concat(Const(0xA, 4), Const(0xB, 4))
        assert expr.eval(ctx, env) == 0xAB
        assert expr.width(env) == 8

    def test_mux(self, env, ctx):
        expr = Mux(fld("ipv4", "ttl").gt(0), Const(1, 8), Const(2, 8))
        assert expr.eval(ctx, env) == 1
        expr2 = Mux(fld("ipv4", "ttl").gt(100), Const(1, 8), Const(2, 8))
        assert expr2.eval(ctx, env) == 2
        assert expr.width(env) == 8

    def test_children_traversal(self):
        expr = Mux(Const(1), Const(2), Const(3))
        assert len(expr.children()) == 3
        binop = Const(1) + Const(2)
        assert len(binop.children()) == 2
        assert Const(5).children() == ()


def _bare_ctx():
    return EvalContext(Packet(), {}), TypeEnv()


class TestProperties:
    @given(st.integers(min_value=0, max_value=255),
           st.integers(min_value=0, max_value=255))
    def test_add_commutes(self, a, b):
        ctx, env = _bare_ctx()
        left = BinOp("+", Const(a, 8), Const(b, 8)).eval(ctx, env)
        right = BinOp("+", Const(b, 8), Const(a, 8)).eval(ctx, env)
        assert left == right

    @given(st.integers(min_value=0, max_value=255))
    def test_xor_self_is_zero(self, a):
        ctx, env = _bare_ctx()
        assert BinOp("^", Const(a, 8), Const(a, 8)).eval(ctx, env) == 0

    @given(st.integers(min_value=0, max_value=255))
    def test_double_not_identity(self, a):
        ctx, env = _bare_ctx()
        expr = UnOp("~", UnOp("~", Const(a, 8)))
        assert expr.eval(ctx, env) == a

    @given(st.integers(min_value=0, max_value=0xFFFF))
    def test_slice_halves_concat_back(self, value):
        ctx, env = _bare_ctx()
        high = Slice(Const(value, 16), 15, 8)
        low = Slice(Const(value, 16), 7, 0)
        assert Concat(high, low).eval(ctx, env) == value
