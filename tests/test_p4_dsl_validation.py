"""Tests for the program builder DSL and static validation."""

import pytest

from repro.exceptions import P4ValidationError
from repro.p4.actions import Drop, Forward, Param, SetField, SetMeta
from repro.p4.control import ApplyTable
from repro.p4.dsl import ProgramBuilder
from repro.p4.expr import Const, fld, meta
from repro.p4.parser import ACCEPT
from repro.p4.validation import collect_expr_refs, validate_program
from repro.packet.headers import ETHERNET, IPV4


def base_builder(name="prog"):
    b = ProgramBuilder(name)
    b.header(ETHERNET)
    b.parser_state("start", extracts=["ethernet"]).accept()
    b.emit("ethernet")
    return b


class TestBuilderMechanics:
    def test_minimal_program_builds(self):
        program = base_builder().build()
        assert program.name == "prog"
        assert program.parser.start == "start"

    def test_metadata_declaration(self):
        b = base_builder()
        b.metadata("custom", 12)
        program = b.build()
        assert program.env.metadata["custom"] == 12

    def test_counter_register_declaration(self):
        b = base_builder()
        b.counter("c", 8)
        b.register("r", 4, 32)
        program = b.build()
        assert program.counters["c"].size == 8
        assert program.registers["r"].width == 32

    def test_duplicate_counter_rejected(self):
        b = base_builder()
        b.counter("c", 8)
        with pytest.raises(P4ValidationError):
            b.counter("c", 8)

    def test_duplicate_emit_rejected(self):
        b = base_builder()
        with pytest.raises(P4ValidationError):
            b.emit("ethernet")

    def test_double_verify_rejected(self):
        b = ProgramBuilder("v")
        b.header(IPV4)
        state = b.parser_state("start", extracts=["ipv4"])
        state.verify(fld("ipv4", "version").eq(4))
        with pytest.raises(P4ValidationError):
            state.verify(fld("ipv4", "ihl").ge(5))

    def test_table_builder_chain(self):
        b = base_builder()
        table = (
            b.ingress.table("t")
            .key(fld("ethernet", "dst_addr"), "exact", "dst")
            .action("fwd", [("port", 9)], [Forward(Param("port", 9))])
            .default("NoAction")
            .size(32)
        )
        b.ingress.apply("t")
        program = b.build()
        assert program.table("t").size == 32
        assert "fwd" in program.table("t").actions
        assert table.table.keys[0].name == "dst"


class TestValidationFailures:
    def test_undefined_parser_state(self):
        b = ProgramBuilder("bad")
        b.header(ETHERNET)
        b.parser_state("start", extracts=["ethernet"]).goto("missing")
        b.emit("ethernet")
        with pytest.raises(P4ValidationError, match="missing"):
            b.build()

    def test_undeclared_header_in_extract(self):
        b = ProgramBuilder("bad")
        b.header(ETHERNET)
        b.parser_state("start", extracts=["ipv4"]).accept()
        with pytest.raises(P4ValidationError, match="ipv4"):
            b.build()

    def test_undeclared_field_in_expr(self):
        b = base_builder()
        b.ingress.when(fld("ethernet", "bogus").eq(1), ApplyTable("t"))
        b.ingress.table("t")
        with pytest.raises(P4ValidationError, match="bogus"):
            b.build()

    def test_unknown_table_applied(self):
        b = base_builder()
        b.ingress.apply("ghost")
        with pytest.raises(P4ValidationError, match="ghost"):
            b.build()

    def test_unknown_action_called(self):
        b = base_builder()
        b.ingress.call("ghost")
        with pytest.raises(P4ValidationError, match="ghost"):
            b.build()

    def test_call_arity_mismatch(self):
        b = base_builder()
        b.ingress.action("takes_one", [("x", 8)], [])
        b.ingress.call("takes_one", (1, 2))
        with pytest.raises(P4ValidationError):
            b.build()

    def test_default_action_undeclared(self):
        b = base_builder()
        b.ingress.table("t").default("ghost")
        b.ingress.apply("t")
        with pytest.raises(P4ValidationError, match="ghost"):
            b.build()

    def test_undeclared_metadata_write(self):
        b = base_builder()
        b.ingress.action("m", [], [SetMeta("ghost_meta", Const(1, 8))])
        b.ingress.call("m")
        with pytest.raises(P4ValidationError, match="ghost_meta"):
            b.build()

    def test_undeclared_counter(self):
        from repro.p4.actions import CountPacket

        b = base_builder()
        b.ingress.action("c", [], [CountPacket("ghost", Const(0, 8))])
        b.ingress.call("c")
        with pytest.raises(P4ValidationError, match="ghost"):
            b.build()

    def test_undeclared_register(self):
        from repro.p4.actions import RegisterWrite

        b = base_builder()
        b.ingress.action(
            "r", [], [RegisterWrite("ghost", Const(0, 8), Const(0, 8))]
        )
        b.ingress.call("r")
        with pytest.raises(P4ValidationError, match="ghost"):
            b.build()

    def test_unknown_param_in_action_body(self):
        b = base_builder()
        b.ingress.action(
            "a", [("x", 8)],
            [SetField("ethernet", "ether_type", Param("y", 16))],
        )
        b.ingress.call("a", (5,))
        with pytest.raises(P4ValidationError, match="y"):
            b.build()

    def test_deparser_undeclared_header(self):
        b = ProgramBuilder("bad")
        b.header(ETHERNET)
        b.parser_state("start", extracts=["ethernet"]).accept()
        b.emit("ethernet", )
        b._program.deparser.emit_order.append("ghost")
        with pytest.raises(P4ValidationError, match="ghost"):
            b.build()

    def test_all_errors_reported_together(self):
        b = ProgramBuilder("multi")
        b.header(ETHERNET)
        b.parser_state("start", extracts=["ipv4"]).goto("nowhere")
        b.ingress.apply("ghost_table")
        try:
            b.build()
            raise AssertionError("expected validation failure")
        except P4ValidationError as exc:
            message = str(exc)
            assert "ipv4" in message
            assert "nowhere" in message
            assert "ghost_table" in message

    def test_validate_can_be_skipped(self):
        b = ProgramBuilder("skip")
        b.header(ETHERNET)
        b.parser_state("start", extracts=["ethernet"]).goto("missing")
        b.emit("ethernet")
        program = b.build(validate=False)  # no raise
        with pytest.raises(P4ValidationError):
            validate_program(program)


class TestCollectRefs:
    def test_fields_and_meta(self):
        expr = fld("ipv4", "ttl").eq(1).land(meta("x").gt(0))
        fields, metas = collect_expr_refs(expr)
        assert ("ipv4", "ttl") in fields
        assert "x" in metas

    def test_is_valid_collected(self):
        from repro.p4.expr import IsValid

        fields, _ = collect_expr_refs(IsValid("tcp"))
        assert ("tcp", "") in fields
