"""Cross-module integration: text program → compile → validate → archive.

One scenario exercising every layer of the library together, the way a
downstream user would: author a program as text, compile it onto both
targets, configure the control plane, run oracle-based validation with
programmable checks, monitor status under live traffic, localize an
injected fault, and archive the reports.
"""

import json

import pytest

from repro.netdebug import (
    ExprCheck,
    NetDebugController,
    StreamSpec,
    ValidationSession,
)
from repro.p4 import parse_program
from repro.p4.expr import fld
from repro.packet import ipv4, mac
from repro.sim import Network
from repro.sim.traffic import default_flow, udp_stream
from repro.target import (
    Fault,
    FaultKind,
    make_reference_device,
    make_sdnet_device,
)

SOURCE = """
header ethernet;
header ipv4;
counter seen[8];

parser start {
    extract(ethernet);
    select (ethernet.ether_type) {
        0x0800: parse_ipv4;
        default: reject;
    }
}
parser parse_ipv4 {
    extract(ipv4);
    verify(ipv4.version == 4, 3);
    goto accept;
}

action route(next_hop: 48, port: 9) {
    count(seen, meta.ingress_port);
    set(ethernet.dst_addr, next_hop);
    set(ipv4.ttl, ipv4.ttl - 1);
    forward(port);
}
action drop_all() { drop(); }

table routes {
    key: ipv4.dst_addr lpm;
    actions: route, drop_all;
    default: drop_all;
    size: 64;
}

control ingress { apply(routes); }
deparser { emit(ethernet); emit(ipv4); }
"""


def build_device(factory, name):
    device = factory(name)
    device.load(parse_program(SOURCE, name="workflow_prog"))
    device.control_plane.table_add(
        "routes", "route", [(ipv4("10.0.0.0"), 8)],
        [mac("aa:bb:cc:dd:ee:01"), 1],
    )
    return device


def workload(count=15, seed=4):
    flow = default_flow()
    flow = type(flow)(
        src_ip=flow.src_ip, dst_ip=ipv4("10.8.0.1"),
        src_port=flow.src_port, dst_port=flow.dst_port,
    )
    return list(udp_stream(flow, count, size=110, seed=seed))


class TestFullWorkflow:
    def test_validation_with_checks_and_archive(self, tmp_path):
        device = build_device(make_reference_device, "wf0")
        controller = NetDebugController(device)
        session = ValidationSession(
            name="release-gate",
            streams=[StreamSpec(stream_id=1, packets=workload())],
            checks=[
                ExprCheck(
                    "ttl-decremented",
                    fld("ipv4", "ttl").eq(63),
                    device.program.env,
                )
            ],
            use_reference_oracle=True,
        )
        report = controller.run(session)
        assert report.passed
        assert report.checks[0].checked == 15

        # Counters moved, visible over the management interface.
        assert device.control_plane.counter_read("seen", 0) == 15
        status = controller.poll_status()
        assert status.status["counters"]["seen"][0] == 15

        # Archive and re-read.
        path = tmp_path / "gate.json"
        controller.save_reports(path)
        loaded = NetDebugController.load_reports(path)
        assert loaded[0]["passed"]
        json.dumps(loaded)

    def test_same_source_diverges_on_sdnet(self):
        reference = build_device(make_reference_device, "wf-ref")
        sdnet = build_device(make_sdnet_device, "wf-sd")
        bad = workload(4)[0]
        bad.get("ipv4")["version"] = 6
        wire = bad.pack()
        assert reference.process(wire, 0) == []
        assert sdnet.process(wire, 0) != []  # the reject-state leak

    def test_fault_localization_after_deployment(self):
        device = build_device(make_reference_device, "wf-fault")
        controller = NetDebugController(device)
        device.injector.inject(
            Fault(FaultKind.BLACKHOLE, stage="ingress.0")
        )
        result = controller.localize_fault(workload(1)[0].pack())
        assert result.found and result.stage == "ingress.0"

    def test_in_network_deployment(self):
        """The compiled text program forwards real simulated traffic."""
        network = Network()
        device = build_device(make_reference_device, "wf-net")
        network.add_device(device)
        network.add_host("src")
        network.add_host("dst")
        network.connect("src", "wf-net", 0)
        network.connect("dst", "wf-net", 1)
        for index, packet in enumerate(workload(10)):
            network.send("src", packet.pack(), at=index * 500.0)
        network.run()
        assert network.hosts["dst"].rx_count() == 10
        # TTL was decremented in flight.
        from repro.packet import parse_ethernet

        received = parse_ethernet(network.hosts["dst"].received[0].wire)
        assert received.get("ipv4")["ttl"] == 63
