"""Unit and property tests for repro.bitutils."""

import pytest
from hypothesis import given, strategies as st

from repro.bitutils import (
    bytes_needed,
    bytes_to_int,
    check_width,
    concat_bits,
    get_bits,
    hexdump,
    int_to_bytes,
    mask,
    ones_complement_sum,
    popcount,
    reverse_bits,
    rotate_left,
    rotate_right,
    set_bits,
    sign_extend,
    slice_bits,
    truncate,
)
from repro.exceptions import PacketError


class TestMask:
    def test_zero_width(self):
        assert mask(0) == 0

    def test_byte(self):
        assert mask(8) == 0xFF

    def test_single_bit(self):
        assert mask(1) == 1

    def test_wide(self):
        assert mask(128) == (1 << 128) - 1

    def test_negative_raises(self):
        with pytest.raises(ValueError):
            mask(-1)


class TestTruncate:
    def test_no_op_when_fits(self):
        assert truncate(0xAB, 8) == 0xAB

    def test_wraps(self):
        assert truncate(0x1FF, 8) == 0xFF

    def test_zero_width(self):
        assert truncate(123, 0) == 0


class TestCheckWidth:
    def test_accepts_fitting_value(self):
        assert check_width(255, 8) == 255

    def test_rejects_too_wide(self):
        with pytest.raises(PacketError):
            check_width(256, 8)

    def test_rejects_negative(self):
        with pytest.raises(PacketError):
            check_width(-1, 8)

    def test_error_mentions_what(self):
        with pytest.raises(PacketError, match="ttl"):
            check_width(300, 8, "ttl")


class TestBytesNeeded:
    @pytest.mark.parametrize(
        "bits,expected", [(0, 0), (1, 1), (8, 1), (9, 2), (16, 2), (48, 6)]
    )
    def test_rounding(self, bits, expected):
        assert bytes_needed(bits) == expected


class TestIntBytes:
    def test_serialize_16_bits(self):
        assert int_to_bytes(0x0800, 16) == b"\x08\x00"

    def test_serialize_non_byte_width_pads(self):
        # 12 bits still produce 2 bytes.
        assert int_to_bytes(0xFFF, 12) == b"\x0f\xff"

    def test_roundtrip(self):
        assert bytes_to_int(int_to_bytes(123456, 32)) == 123456

    def test_too_wide_raises(self):
        with pytest.raises(PacketError):
            int_to_bytes(0x10000, 16)


class TestGetSetBits:
    def test_get_aligned_byte(self):
        assert get_bits(b"\xab\xcd", 0, 8) == 0xAB

    def test_get_nibble(self):
        assert get_bits(b"\x45", 0, 4) == 4
        assert get_bits(b"\x45", 4, 4) == 5

    def test_get_crossing_bytes(self):
        assert get_bits(b"\x12\x34", 4, 8) == 0x23

    def test_get_out_of_range(self):
        with pytest.raises(PacketError):
            get_bits(b"\x00", 0, 9)

    def test_set_aligned(self):
        buf = bytearray(2)
        set_bits(buf, 8, 8, 0xEE)
        assert bytes(buf) == b"\x00\xee"

    def test_set_nibble_preserves_neighbors(self):
        buf = bytearray(b"\xff")
        set_bits(buf, 0, 4, 0)
        assert bytes(buf) == b"\x0f"

    def test_set_crossing_bytes(self):
        buf = bytearray(2)
        set_bits(buf, 4, 8, 0xAB)
        assert bytes(buf) == b"\x0a\xb0"

    def test_set_too_wide_value(self):
        with pytest.raises(PacketError):
            set_bits(bytearray(2), 0, 4, 16)

    @given(
        st.integers(min_value=0, max_value=63),
        st.integers(min_value=1, max_value=64),
        st.integers(min_value=0),
    )
    def test_roundtrip_property(self, offset, width, raw):
        value = raw & mask(width)
        buf = bytearray(16)
        set_bits(buf, offset, width, value)
        assert get_bits(bytes(buf), offset, width) == value

    @given(st.binary(min_size=4, max_size=16))
    def test_get_full_buffer_equals_int(self, data):
        assert get_bits(data, 0, len(data) * 8) == bytes_to_int(data)


class TestConcatSlice:
    def test_concat(self):
        value, width = concat_bits([(0xA, 4), (0xB, 4)])
        assert (value, width) == (0xAB, 8)

    def test_concat_empty(self):
        assert concat_bits([]) == (0, 0)

    def test_slice(self):
        assert slice_bits(0xABCD, 16, 15, 8) == 0xAB
        assert slice_bits(0xABCD, 16, 7, 0) == 0xCD

    def test_slice_single_bit(self):
        assert slice_bits(0b100, 3, 2, 2) == 1

    def test_slice_bad_bounds(self):
        with pytest.raises(PacketError):
            slice_bits(0xFF, 8, 8, 0)
        with pytest.raises(PacketError):
            slice_bits(0xFF, 8, 3, 4)

    @given(st.integers(min_value=0, max_value=2**32 - 1))
    def test_slice_concat_identity(self, value):
        high = slice_bits(value, 32, 31, 16)
        low = slice_bits(value, 32, 15, 0)
        rebuilt, width = concat_bits([(high, 16), (low, 16)])
        assert rebuilt == value and width == 32


class TestRotate:
    def test_rotate_left(self):
        assert rotate_left(0b0001, 4, 1) == 0b0010

    def test_rotate_left_wraps(self):
        assert rotate_left(0b1000, 4, 1) == 0b0001

    def test_rotate_right(self):
        assert rotate_right(0b0001, 4, 1) == 0b1000

    @given(
        st.integers(min_value=0, max_value=255),
        st.integers(min_value=0, max_value=64),
    )
    def test_rotate_inverse(self, value, amount):
        assert rotate_right(rotate_left(value, 8, amount), 8, amount) == value

    @given(st.integers(min_value=0, max_value=255))
    def test_full_rotation_identity(self, value):
        assert rotate_left(value, 8, 8) == value


class TestSignExtend:
    def test_positive_unchanged(self):
        assert sign_extend(0x05, 4, 8) == 0x05

    def test_negative_extends(self):
        assert sign_extend(0xF, 4, 8) == 0xFF

    def test_narrowing_raises(self):
        with pytest.raises(PacketError):
            sign_extend(0xFF, 8, 4)


class TestOnesComplement:
    def test_simple_sum(self):
        assert ones_complement_sum([0x0001, 0x0002]) == 0x0003

    def test_carry_folds(self):
        assert ones_complement_sum([0xFFFF, 0x0001]) == 0x0001

    def test_empty(self):
        assert ones_complement_sum([]) == 0


class TestMisc:
    def test_popcount(self):
        assert popcount(0b1011) == 3
        assert popcount(0) == 0

    def test_reverse_bits(self):
        assert reverse_bits(0b0001, 4) == 0b1000
        assert reverse_bits(0b1011, 4) == 0b1101

    @given(st.integers(min_value=0, max_value=0xFFFF))
    def test_reverse_involution(self, value):
        assert reverse_bits(reverse_bits(value, 16), 16) == value

    def test_hexdump_shape(self):
        dump = hexdump(bytes(range(32)))
        lines = dump.splitlines()
        assert len(lines) == 2
        assert lines[0].startswith("00000000")
        assert "|" in lines[0]

    def test_hexdump_ascii_rendering(self):
        dump = hexdump(b"AB\x00")
        assert "AB." in dump
