"""Tests for the standard protocol header catalogue and address parsing."""

import pytest

from repro.packet.headers import (
    ARP,
    ETHERNET,
    ICMP,
    IPV4,
    IPV6,
    MPLS,
    NETDEBUG,
    STANDARD_HEADERS,
    TCP,
    UDP,
    VLAN,
    ipv4,
    ipv6,
    mac,
)


class TestHeaderWidths:
    """Wire widths must match the RFC-defined sizes exactly."""

    @pytest.mark.parametrize(
        "spec,octets",
        [
            (ETHERNET, 14),
            (VLAN, 4),
            (ARP, 28),
            (IPV4, 20),
            (IPV6, 40),
            (TCP, 20),
            (UDP, 8),
            (ICMP, 8),
            (MPLS, 4),
        ],
    )
    def test_byte_widths(self, spec, octets):
        assert spec.byte_width == octets

    def test_all_registered(self):
        for name in (
            "ethernet", "vlan", "arp", "ipv4", "ipv6", "tcp", "udp",
            "icmp", "mpls", "netdebug",
        ):
            assert name in STANDARD_HEADERS
            assert STANDARD_HEADERS[name].name == name

    def test_ipv4_defaults(self):
        assert IPV4.field("version").default == 4
        assert IPV4.field("ihl").default == 5
        assert IPV4.field("ttl").default == 64

    def test_netdebug_magic_default(self):
        assert NETDEBUG.field("magic").default == 0x4E44


class TestMacParsing:
    def test_basic(self):
        assert mac("00:00:00:00:00:01") == 1

    def test_full(self):
        assert mac("ff:ff:ff:ff:ff:ff") == 0xFFFFFFFFFFFF

    def test_mixed_case(self):
        assert mac("Aa:Bb:Cc:00:00:00") == 0xAABBCC000000

    def test_wrong_group_count(self):
        with pytest.raises(ValueError):
            mac("00:11:22:33:44")

    def test_garbage(self):
        with pytest.raises(ValueError):
            mac("zz:00:00:00:00:00")


class TestIpv4Parsing:
    def test_basic(self):
        assert ipv4("10.0.0.1") == 0x0A000001

    def test_broadcast(self):
        assert ipv4("255.255.255.255") == 0xFFFFFFFF

    def test_zero(self):
        assert ipv4("0.0.0.0") == 0

    def test_octet_out_of_range(self):
        with pytest.raises(ValueError):
            ipv4("256.0.0.1")

    def test_wrong_group_count(self):
        with pytest.raises(ValueError):
            ipv4("10.0.0")


class TestIpv6Parsing:
    def test_full_form(self):
        value = ipv6("2001:0db8:0000:0000:0000:0000:0000:0001")
        assert value == 0x20010DB8000000000000000000000001

    def test_compressed(self):
        assert ipv6("2001:db8::1") == 0x20010DB8000000000000000000000001

    def test_loopback(self):
        assert ipv6("::1") == 1

    def test_all_zero(self):
        assert ipv6("::") == 0

    def test_leading_compress(self):
        assert ipv6("::ffff:0:1") == 0xFFFF00000001

    def test_too_many_groups(self):
        with pytest.raises(ValueError):
            ipv6("1:2:3:4:5:6:7:8:9")

    def test_group_too_large(self):
        with pytest.raises(ValueError):
            ipv6("12345::")
