"""Campaign engine tests: matrix expansion, parallel determinism,
fault/workload sweeps, record/replay, controller integration."""

import json

import pytest

from repro.exceptions import NetDebugError, TargetError, UnknownTargetError
from repro.netdebug.campaign import (
    CampaignReport,
    PROVISIONERS,
    Scenario,
    ScenarioMatrix,
    ScenarioResult,
    TARGETS,
    record_campaign,
    replay_campaign,
    require_known_target,
    run_campaign,
)
from repro.netdebug.controller import NetDebugController
from repro.netdebug.localization import explain_findings
from repro.netdebug.report import Capability
from repro.p4.stdlib import PROGRAMS, ipv4_router, strict_parser
from repro.target.faults import Fault, FaultKind
from repro.target.reference import ReferenceCompiler, make_reference_device
from repro.target.sdnet import make_sdnet_device


def tiny_matrix(**overrides) -> ScenarioMatrix:
    base = dict(
        programs=["strict_parser"],
        targets=["reference"],
        faults={"baseline": ()},
        workloads=["udp"],
        count=4,
        seed=3,
    )
    base.update(overrides)
    return ScenarioMatrix(**base)


class TestMatrix:
    def test_expand_is_full_cross_product_in_order(self):
        matrix = tiny_matrix(
            programs=["strict_parser", "l2_switch"],
            targets=["reference", "sdnet"],
            faults={"baseline": (), "bh": (Fault(FaultKind.BLACKHOLE),)},
            workloads=["udp", "imix"],
        )
        scenarios = matrix.expand()
        assert len(scenarios) == 2 * 2 * 2 * 2
        assert [s.index for s in scenarios] == list(range(16))
        # program varies slowest, workload fastest
        assert scenarios[0].key == "strict_parser/reference/baseline/udp"
        assert scenarios[1].key == "strict_parser/reference/baseline/imix"
        assert scenarios[-1].key == "l2_switch/sdnet/bh/imix"

    def test_scenario_seeds_differ_but_derive_from_matrix_seed(self):
        seeds_a = [s.seed for s in tiny_matrix(
            workloads=["udp", "imix"]).expand()]
        seeds_b = [s.seed for s in tiny_matrix(
            workloads=["udp", "imix"]).expand()]
        assert seeds_a == seeds_b
        assert len(set(seeds_a)) == len(seeds_a)

    def test_scenario_seeds_stable_under_matrix_growth(self):
        # Seeds key on the scenario identity, not its matrix position:
        # growing an axis must not shift the workloads of pre-existing
        # scenarios, or cross-version diffs would see every cell churn.
        small = {
            s.key: s.seed
            for s in tiny_matrix(workloads=["udp", "malformed"]).expand()
        }
        grown = {
            s.key: s.seed
            for s in tiny_matrix(
                programs=["strict_parser", "l2_switch"],
                workloads=["udp", "imix", "malformed"],
            ).expand()
        }
        for key, seed in small.items():
            assert grown[key] == seed

    @pytest.mark.parametrize(
        "overrides",
        [
            {"programs": ["no_such_program"]},
            {"targets": ["bmv2"]},
            {"workloads": ["voip"]},
            {"programs": []},
            {"count": 0},
            {"setup": "no_such_setup"},
            {"programs": ["strict_parser", "strict_parser"]},
            {"targets": ["reference", "reference"]},
            {"workloads": ["udp", "udp"]},
        ],
    )
    def test_invalid_matrix_rejected(self, overrides):
        with pytest.raises(NetDebugError):
            tiny_matrix(**overrides).expand()

    def test_registry_is_three_way(self):
        assert set(TARGETS) == {"reference", "sdnet", "tofino"}

    def test_unknown_target_error_carries_known_list(self):
        with pytest.raises(UnknownTargetError) as excinfo:
            tiny_matrix(targets=["bmv2"]).expand()
        message = str(excinfo.value)
        for target in sorted(TARGETS):
            assert target in message
        # The single choke point both error paths share.
        with pytest.raises(UnknownTargetError, match="reference"):
            require_known_target("bmv2", "somewhere")


class TestRunCampaign:
    def test_baseline_reference_campaign_passes(self):
        report = run_campaign(tiny_matrix(), name="ok")
        assert report.passed
        assert report.scenarios == 1
        assert report.injected == 4
        result = report.results[0]
        assert result.verdict == "pass"
        assert result.capability is Capability.FULL
        assert result.report.measurements["cycles_per_packet"] > 0

    def test_sdnet_malformed_scenario_exposes_reject_bug(self):
        matrix = tiny_matrix(
            targets=["reference", "sdnet"],
            workloads=["udp", "malformed"],
            count=12,
        )
        report = run_campaign(matrix, name="reject")
        by_key = {r.scenario.key: r for r in report.results}
        assert by_key["strict_parser/reference/baseline/malformed"].passed
        deviant = by_key["strict_parser/sdnet/baseline/malformed"]
        assert not deviant.passed
        assert deviant.report.findings_of("unexpected_output")

    def test_fault_scenarios_fail_and_baselines_pass(self):
        matrix = tiny_matrix(
            faults={
                "baseline": (),
                "blackhole": (
                    Fault(FaultKind.BLACKHOLE, stage="ingress.0"),
                ),
            },
        )
        report = run_campaign(matrix, name="faulted")
        by_fault = {r.scenario.fault: r for r in report.results}
        assert by_fault["baseline"].passed
        assert not by_fault["blackhole"].passed
        assert by_fault["blackhole"].report.findings_of("missing_output")

    def test_poisson_workload_runs(self):
        report = run_campaign(tiny_matrix(workloads=["poisson"]))
        assert report.passed

    def test_flood_program_campaign_passes(self):
        # l2_switch's default action floods; the expanded flood oracle
        # must validate it rather than fail on the sentinel port.
        report = run_campaign(tiny_matrix(programs=["l2_switch"]))
        assert report.passed

    def test_setup_provisioner_applied_once_and_used(self):
        def routes(device):
            from repro.packet.headers import ipv4, mac

            device.control_plane.table_add(
                "ipv4_lpm", "route", [(ipv4("10.0.0.0"), 8)],
                [mac("aa:bb:cc:dd:ee:01"), 2],
            )

        PROVISIONERS["test-routes"] = routes
        try:
            matrix = tiny_matrix(
                programs=["ipv4_router"], setup="test-routes", count=3
            )
            report = run_campaign(matrix, name="provisioned")
            assert report.passed
        finally:
            del PROVISIONERS["test-routes"]


class TestDeterminism:
    def test_one_vs_n_workers_byte_identical(self):
        matrix = tiny_matrix(
            programs=["strict_parser", "l2_switch"],
            targets=["reference", "sdnet"],
            faults={
                "baseline": (),
                "bh": (Fault(FaultKind.BLACKHOLE, stage="ingress.0"),),
            },
            workloads=["udp", "malformed"],
            count=5,
            seed=11,
        )
        serial = run_campaign(matrix, workers=1, name="det")
        parallel = run_campaign(matrix, workers=2, name="det")
        assert serial.to_json() == parallel.to_json()

    def test_repeated_runs_identical(self):
        matrix = tiny_matrix(workloads=["udp", "imix", "poisson"])
        assert (
            run_campaign(matrix, name="r").to_json()
            == run_campaign(matrix, name="r").to_json()
        )


class TestRecordReplay:
    def test_record_then_replay_reproduces_verdicts(self, tmp_path):
        matrix = tiny_matrix(
            targets=["reference", "sdnet"],
            workloads=["udp", "malformed"],
            count=8,
        )
        recorded = record_campaign(matrix, tmp_path, name="gold")
        assert (tmp_path / "gold.manifest.json").exists()
        assert (tmp_path / "scenario-0000.pcap").exists()
        assert (tmp_path / "scenario-0000.expect.json").exists()

        replayed = replay_campaign(tmp_path, name="gold", workers=2)
        assert replayed.scenarios == recorded.scenarios
        assert [r.verdict for r in replayed.results] == [
            r.verdict for r in recorded.results
        ]

    def test_replay_with_faults_reproduces_failures(self, tmp_path):
        matrix = tiny_matrix(
            faults={
                "baseline": (),
                "bh": (Fault(FaultKind.BLACKHOLE, stage="ingress.0"),),
            },
        )
        recorded = record_campaign(matrix, tmp_path, name="faulty")
        replayed = replay_campaign(tmp_path, name="faulty")
        assert [r.verdict for r in replayed.results] == [
            r.verdict for r in recorded.results
        ]
        assert not replayed.passed

    def test_timed_workload_record_replay_round_trip(self, tmp_path):
        # Replay regenerates the workload's arrival process from the
        # manifest and re-injects at the original timestamps, so even a
        # time-stamping program reproduces its own recording.
        matrix = tiny_matrix(
            programs=["int_telemetry"], workloads=["burst"], count=4
        )
        recorded = record_campaign(matrix, tmp_path, name="timed")
        assert recorded.passed
        replayed = replay_campaign(tmp_path, name="timed")
        assert replayed.passed

    def test_replay_reads_arrival_times_from_manifest(self, tmp_path):
        # The manifest persists the workload's arrival process, so a
        # recording stays replayable even if the live generators ever
        # change. Stripping the times (a pre-times manifest) makes the
        # time-stamping program replay at the device clock and diverge
        # from its own recording — proving replay consumes them.
        matrix = tiny_matrix(
            programs=["int_telemetry"], workloads=["burst"], count=4
        )
        record_campaign(matrix, tmp_path, name="timed2")
        manifest_path = tmp_path / "timed2.manifest.json"
        manifest = json.loads(manifest_path.read_text())
        assert manifest["scenarios"][0]["times_ns"]
        assert replay_campaign(tmp_path, name="timed2").passed
        for scenario in manifest["scenarios"]:
            scenario.pop("times_ns")
        manifest_path.write_text(json.dumps(manifest))
        assert not replay_campaign(tmp_path, name="timed2").passed

    def test_predicate_faults_cannot_be_recorded(self, tmp_path):
        matrix = tiny_matrix(
            faults={
                "picky": (
                    Fault(
                        FaultKind.BLACKHOLE,
                        stage="ingress.0",
                        predicate=lambda packet: True,
                    ),
                ),
            },
        )
        with pytest.raises(NetDebugError):
            record_campaign(matrix, tmp_path, name="nope")

    def test_truncated_artifact_refuses_replay(self, tmp_path):
        import struct

        record_campaign(tiny_matrix(), tmp_path, name="trunc")
        pcap = tmp_path / "scenario-0000.pcap"
        raw = bytearray(pcap.read_bytes())
        # Claim the first record was longer on the wire than captured.
        incl_len = struct.unpack_from("<I", raw, 24 + 8)[0]
        struct.pack_into("<I", raw, 24 + 12, incl_len + 100)
        pcap.write_bytes(bytes(raw))
        with pytest.raises(NetDebugError, match="truncated"):
            replay_campaign(tmp_path, name="trunc")

    def test_replay_without_manifest_rejected(self, tmp_path):
        with pytest.raises(NetDebugError):
            replay_campaign(tmp_path, name="missing")

    def test_replay_unknown_target_manifest_rejected(self, tmp_path):
        record_campaign(tiny_matrix(), tmp_path, name="skewed")
        manifest = tmp_path / "skewed.manifest.json"
        payload = json.loads(manifest.read_text())
        payload["scenarios"][0]["target"] = "bmv2"
        manifest.write_text(json.dumps(payload))
        with pytest.raises(UnknownTargetError) as excinfo:
            replay_campaign(tmp_path, name="skewed")
        assert "scenario 0" in str(excinfo.value)
        assert "tofino" in str(excinfo.value)  # lists known targets


class TestThreeWayMatrix:
    """The (program × target) axis with the Tofino-like third backend."""

    def three_way_matrix(self, count=8, **overrides) -> ScenarioMatrix:
        base = dict(
            programs=["strict_parser", "acl_firewall"],
            targets=["reference", "sdnet", "tofino"],
            faults={"baseline": ()},
            workloads=["udp", "malformed"],
            count=count,
            seed=7,
            setup="acl_gate",
        )
        base.update(overrides)
        return ScenarioMatrix(**base)

    def test_per_target_verdicts_split_on_two_programs(self):
        report = run_campaign(self.three_way_matrix(), name="3way")
        verdicts = {
            (r.scenario.program, r.scenario.target, r.scenario.workload):
                r.passed
            for r in report.results
        }
        # strict_parser: tofino truncates the deparse on valid traffic,
        # sdnet leaks rejects on malformed traffic, reference is clean.
        assert verdicts[("strict_parser", "reference", "udp")]
        assert verdicts[("strict_parser", "sdnet", "udp")]
        assert not verdicts[("strict_parser", "tofino", "udp")]
        assert verdicts[("strict_parser", "reference", "malformed")]
        assert not verdicts[("strict_parser", "sdnet", "malformed")]
        # acl_firewall: only tofino's quantized TCAM denies the traffic
        # the spec admits.
        assert verdicts[("acl_firewall", "reference", "udp")]
        assert verdicts[("acl_firewall", "sdnet", "udp")]
        assert not verdicts[("acl_firewall", "tofino", "udp")]

    def test_failures_fully_explained_by_declared_tags(self):
        report = run_campaign(self.three_way_matrix(), name="3way-explain")
        for result in report.results:
            if result.passed:
                continue
            device = TARGETS[result.scenario.target]("explain")
            compiled = device.load(PROGRAMS[result.scenario.program]())
            kinds = {f.kind for f in result.report.findings}
            explanations = explain_findings(compiled, kinds)
            for kind, diagnoses in explanations.items():
                assert diagnoses, (
                    f"{result.scenario.key}: finding kind {kind!r} not "
                    f"explained by {compiled.silent_deviations}"
                )

    def test_three_way_determinism_one_vs_four_workers(self):
        matrix = self.three_way_matrix(count=5)
        serial = run_campaign(matrix, workers=1, name="det3")
        parallel = run_campaign(matrix, workers=4, name="det3")
        assert serial.to_json() == parallel.to_json()
        assert serial.scenarios == 2 * 3 * 1 * 2

    def test_three_way_record_replay_round_trip(self, tmp_path):
        matrix = self.three_way_matrix(count=6)
        recorded = record_campaign(matrix, tmp_path, name="gold3")
        replayed = replay_campaign(tmp_path, name="gold3", workers=2)
        assert replayed.scenarios == recorded.scenarios
        assert [r.verdict for r in replayed.results] == [
            r.verdict for r in recorded.results
        ]
        # The deviant cells stay deviant through the artifact round trip.
        assert not replayed.passed


class TestCampaignReport:
    def test_json_round_trip(self, tmp_path):
        report = run_campaign(tiny_matrix(workloads=["udp", "malformed"]))
        path = report.save(tmp_path / "campaign.json")
        loaded = CampaignReport.load(path)
        assert loaded.to_json() == report.to_json()

    @pytest.mark.parametrize("seed", [0, 7, 2018])
    def test_from_json_reconstructs_byte_identical_json(self, seed):
        # The differ's contract: to_json(from_json(x)) == x, across
        # passing, failing and deviant-target campaigns.
        matrix = tiny_matrix(
            targets=["reference", "sdnet", "tofino"],
            workloads=["udp", "malformed"],
            seed=seed,
        )
        text = run_campaign(matrix, name=f"rt{seed}").to_json()
        assert CampaignReport.from_json(text).to_json() == text

    def test_summary_and_aggregates(self):
        matrix = tiny_matrix(
            targets=["reference", "sdnet"], workloads=["malformed"],
            count=10,
        )
        report = run_campaign(matrix, name="agg")
        text = report.summary()
        assert "agg" in text and "FAIL" in text
        assert report.findings_by_kind().get("unexpected_output")
        assert report.latency_summary()["cycles_per_packet_mean"] > 0
        assert len(report.failed()) == 1

    def test_controller_archives_campaign(self):
        device = make_reference_device("camp-ctl")
        device.load(strict_parser())
        controller = NetDebugController(device)
        report = run_campaign(tiny_matrix(workloads=["udp", "imix"]))
        archived = controller.archive_campaign(report)
        assert archived == 2
        assert len(controller.reports) == 2
        with pytest.raises(NetDebugError):
            controller.archive_campaign(object())


class TestExecutorSeam:
    """run_campaign's dispatch strategy is pluggable; every executor
    shares expansion, ingest and reassembly."""

    def test_explicit_serial_executor_matches_default(self):
        from repro.netdebug.campaign import SerialExecutor

        matrix = tiny_matrix(workloads=["udp", "malformed"])
        assert (
            run_campaign(matrix, name="seam").to_json()
            == run_campaign(
                matrix, name="seam", executor=SerialExecutor()
            ).to_json()
        )

    def test_pool_executor_streams_before_the_barrier(self):
        from repro.netdebug.campaign import PoolExecutor

        matrix = tiny_matrix(
            programs=["strict_parser", "l2_switch"],
            workloads=["udp", "malformed"],
        )
        events = []
        report = run_campaign(
            matrix,
            name="stream",
            executor=PoolExecutor(2),
            on_result=lambda key, rep, progress: events.append(
                (key, progress.completed, progress.total,
                 progress.fraction)
            ),
        )
        assert len(events) == report.scenarios
        assert [e[1] for e in events] == list(range(1, len(events) + 1))
        assert events[-1][3] == 1.0

    def test_on_result_failed_counter_tracks_verdicts(self):
        matrix = tiny_matrix(
            targets=["reference", "sdnet"], workloads=["malformed"],
            count=6,
        )
        progresses = []
        run_campaign(
            matrix, name="counts",
            on_result=lambda key, rep, progress: progresses.append(
                progress
            ),
        )
        assert progresses[-1].failed == 1  # the sdnet reject-leak cell

    def test_pool_executor_rejects_zero_workers(self):
        from repro.netdebug.campaign import PoolExecutor

        with pytest.raises(NetDebugError):
            PoolExecutor(0)

    def test_replay_rides_the_same_seam(self, tmp_path):
        from repro.netdebug.campaign import SerialExecutor

        record_campaign(tiny_matrix(), tmp_path, name="seamr")
        events = []
        replayed = replay_campaign(
            tmp_path, name="seamr", executor=SerialExecutor(),
            on_result=lambda key, rep, progress: events.append(key),
        )
        assert replayed.scenarios == 1
        assert events == [replayed.results[0].scenario.key]


class TestLatencySla:
    """Scenario cells can carry a p99 tail-latency SLA graded via
    LatencyCheck over the shard's latency samples."""

    def test_generous_sla_passes_and_carries_samples(self):
        report = run_campaign(
            tiny_matrix(sla_p99_cycles=100000.0), name="sla-ok"
        )
        result = report.results[0]
        assert result.passed
        assert result.report.latency.count == result.report.injected
        outcome = {c.rule: c for c in result.report.checks}["sla-p99"]
        assert outcome.ok

    def test_tight_sla_breaches_and_fails_the_cell(self):
        report = run_campaign(
            tiny_matrix(sla_p99_cycles=1.0), name="sla-breach"
        )
        result = report.results[0]
        assert not result.passed
        breaches = result.report.findings_of("sla_breach")
        assert breaches and "exceeds SLA" in breaches[0].message

    def test_sla_report_round_trips_byte_identically(self):
        text = run_campaign(
            tiny_matrix(sla_p99_cycles=1.0), name="sla-rt"
        ).to_json()
        assert CampaignReport.from_json(text).to_json() == text
        assert '"sla_p99_cycles"' in text

    def test_unslad_report_omits_the_field(self):
        assert '"sla_p99_cycles"' not in run_campaign(
            tiny_matrix(), name="sla-none"
        ).to_json()

    @pytest.mark.parametrize("bad", [0.0, -5.0, float("inf")])
    def test_invalid_sla_rejected(self, bad):
        with pytest.raises(NetDebugError):
            tiny_matrix(sla_p99_cycles=bad).expand()

    def test_sla_recorded_in_manifest(self, tmp_path):
        record_campaign(
            tiny_matrix(sla_p99_cycles=500.0), tmp_path, name="slam"
        )
        payload = json.loads(
            (tmp_path / "slam.manifest.json").read_text()
        )
        assert payload["scenarios"][0]["sla_p99_cycles"] == 500.0


class TestStdlibExtSweep:
    """stateful_firewall and int_telemetry ride the campaign sweep."""

    def test_ext_programs_registered_everywhere(self):
        assert "stateful_firewall" in PROGRAMS
        assert "int_telemetry" in PROGRAMS
        assert "stateful_firewall" in PROVISIONERS
        assert "int_telemetry" in PROVISIONERS

    def test_ext_matrix_smoke_passes_on_timed_workloads(self):
        # Timed workloads (burst/onoff) let the oracle see the exact
        # injection timestamps int_telemetry stamps into packets; the
        # firewall's outbound-only campaign traffic opens its own flow
        # slots in-band.
        matrix = ScenarioMatrix(
            programs=["stateful_firewall", "int_telemetry"],
            targets=["reference", "sdnet"],
            workloads=["burst", "onoff"],
            count=6,
            seed=5,
            setup="stateful_firewall",
        )
        report = run_campaign(matrix, name="ext", workers=1)
        assert report.scenarios == 2 * 2 * 1 * 2
        assert report.passed
        assert report.injected == 8 * 6

    def test_ext_matrix_parallel_determinism(self):
        matrix = ScenarioMatrix(
            programs=["stateful_firewall", "int_telemetry"],
            targets=["reference"],
            workloads=["burst"],
            count=4,
            seed=9,
        )
        assert (
            run_campaign(matrix, workers=1, name="extd").to_json()
            == run_campaign(matrix, workers=2, name="extd").to_json()
        )

    def test_int_telemetry_untimed_workload_flags_timestamp_drift(self):
        # Without a workload-defined arrival process the oracle cannot
        # know the device clock at injection, so the stamped ingress_ts
        # diverges from packet 2 on — deterministically.
        report_a = run_campaign(
            tiny_matrix(programs=["int_telemetry"], count=4), name="drift"
        )
        report_b = run_campaign(
            tiny_matrix(programs=["int_telemetry"], count=4), name="drift"
        )
        assert not report_a.passed
        assert report_a.to_json() == report_b.to_json()


class TestInstall:
    def test_install_reuses_artifact_on_fresh_device(self):
        first = make_reference_device("inst-a")
        compiled = first.load(strict_parser())
        second = make_reference_device("inst-b")
        second.install(compiled)
        wire = b"\x00" * 64
        assert second.stats.processed == 0
        second.inject(wire)
        assert second.stats.processed == 1
        assert first.stats.processed == 0  # state is per device

    def test_install_rejects_cross_target_artifact(self):
        reference = make_reference_device("inst-ref")
        compiled = reference.load(strict_parser())
        sdnet = make_sdnet_device("inst-sd")
        with pytest.raises(TargetError):
            sdnet.install(compiled)
