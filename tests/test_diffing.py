"""Cross-version campaign diffing: flips, explanations, baselines, CLI.

The regression-gate contract under test:

* committed golden baselines regenerate byte-identically on this
  checkout (the CI gate's precondition);
* identical runs diff to nothing and exit 0; an injected deviation
  diffs to an unexplained verdict flip and exits 1;
* a flip is excused only by a declared deviation-tag change on the same
  (program × target) differential cell;
* disjoint scenario/cell sets are reported, never a crash;
* the diff JSON itself is seed-deterministic (byte-identical).
"""

import json
from pathlib import Path

import pytest

from repro.exceptions import NetDebugError
from repro.netdebug.campaign import CampaignReport, Scenario, ScenarioResult
from repro.netdebug.differential import (
    DifferentialCell,
    DifferentialReport,
    Observation,
    PacketDiff,
)
from repro.netdebug.diffing import (
    baseline_matrix,
    diff_campaigns,
    diff_differentials,
    inject_unexplained_flip,
    load_report,
    main,
    run_baseline_campaign,
    run_baseline_differential,
    write_baselines,
)
from repro.netdebug.report import Finding, SessionReport
from repro.target.tofino import TCAM_QUANTIZED

BASELINE_DIR = Path(__file__).resolve().parent.parent / "baselines"


# ---------------------------------------------------------------------------
# Synthetic report builders (no devices needed)
# ---------------------------------------------------------------------------

def make_result(
    index: int,
    program: str = "strict_parser",
    target: str = "reference",
    fault: str = "baseline",
    workload: str = "udp",
    findings: tuple[str, ...] = (),
) -> ScenarioResult:
    report = SessionReport(
        session=f"s{index}", device=target, program=program,
        injected=4, observed=4,
    )
    for kind in findings:
        report.findings.append(Finding(kind=kind, message=f"{kind} hit"))
    return ScenarioResult(
        scenario=Scenario(
            index=index, program=program, target=target, fault=fault,
            workload=workload, count=4, seed=index,
        ),
        report=report,
    )


def make_campaign(name: str, *results: ScenarioResult) -> CampaignReport:
    return CampaignReport(name=name, results=list(results))


def make_cell(
    program: str = "acl_firewall",
    target: str = "tofino",
    tags: tuple[str, ...] = (),
    explained: int = 0,
    unexplained: int = 0,
    compile_rejected: str = "",
    program_name: str = "",
) -> DifferentialCell:
    diffs = [
        PacketDiff(
            index=i,
            kinds=("verdict",),
            spec=Observation(verdict="forwarded", egress=2),
            observed=Observation(verdict="dropped"),
            explained_by=tags[:1] if i < explained else (),
        )
        for i in range(explained + unexplained)
    ]
    return DifferentialCell(
        program=program, target=target, packets=16,
        compile_rejected=compile_rejected,
        program_name=program_name,
        deviation_tags=tags, diffs=diffs,
    )


def make_matrix(*cells: DifferentialCell) -> DifferentialReport:
    return DifferentialReport(seed=2018, count=16, cells=list(cells))


# ---------------------------------------------------------------------------
# Golden baselines
# ---------------------------------------------------------------------------

class TestGoldenBaselines:
    def test_committed_baselines_regenerate_byte_identically(self, tmp_path):
        # The CI gate's precondition on this very checkout: re-running
        # the seeded sweeps reproduces the committed files exactly.
        paths = write_baselines(tmp_path, workers=2)
        for name in ("campaign", "stateful", "differential",
                     "compression"):
            fresh = paths[name].read_text()
            committed = (BASELINE_DIR / f"{name}.json").read_text()
            assert fresh == committed, (
                f"baselines/{name}.json is stale — regenerate with "
                "python -m repro.netdebug.diffing --write-baseline "
                "(and explain the behaviour change in the PR)"
            )

    def test_baseline_matrix_is_the_full_three_way(self):
        scenarios = baseline_matrix().expand()
        assert len(scenarios) == 2 * 3 * 1 * 2
        assert {s.target for s in scenarios} == {
            "reference", "sdnet", "tofino"
        }

    def test_unchanged_build_diffs_clean(self):
        old = run_baseline_campaign(count=4)
        new = run_baseline_campaign(count=4)
        matrix = run_baseline_differential(count=6)
        diff = diff_campaigns(old, new, matrix, matrix)
        assert not diff.deltas and not diff.added and not diff.removed
        assert not diff.is_regression
        assert diff.matrix is not None and not diff.matrix.cells


# ---------------------------------------------------------------------------
# Campaign diffing edge cases
# ---------------------------------------------------------------------------

class TestCampaignDiff:
    def test_empty_campaigns_diff_to_nothing(self):
        diff = diff_campaigns(make_campaign("a"), make_campaign("b"))
        assert diff.old_scenarios == diff.new_scenarios == 0
        assert not diff.deltas and not diff.is_regression
        assert diff.latency["delta"]["cycles_per_packet_mean"] == 0.0

    def test_disjoint_scenario_sets_reported_not_crashed(self):
        old = make_campaign("a", make_result(0, workload="udp"))
        new = make_campaign("b", make_result(0, workload="imix"))
        diff = diff_campaigns(old, new)
        assert diff.added == ["strict_parser/reference/baseline/imix"]
        assert diff.removed == ["strict_parser/reference/baseline/udp"]
        assert not diff.flips and not diff.is_regression

    def test_added_scenario_findings_do_not_read_as_churn(self):
        # A failing scenario that only exists on the new side belongs
        # to the added listing; campaign-level kind churn covers shared
        # scenarios only, so pure matrix growth diffs churn-free.
        old = make_campaign("a", make_result(0))
        new = make_campaign(
            "b",
            make_result(0),
            make_result(
                1, workload="imix", findings=("unexpected_output",)
            ),
        )
        diff = diff_campaigns(old, new)
        assert diff.added == ["strict_parser/reference/baseline/imix"]
        assert diff.kind_churn == {}
        assert not diff.deltas and not diff.is_regression

    def test_matrix_growth_diffs_as_added_scenarios(self):
        # Growing a real matrix axis must surface as added scenarios
        # only: no seed-mismatch comparability errors AND no verdict or
        # score churn on shared keys — seeds and traffic flows both key
        # on scenario identity, never matrix position. acl_firewall on
        # tofino is flow-sensitive (the quantized-TCAM denial depends
        # on the workload's ports), so positional flows would churn it.
        from repro.netdebug.campaign import ScenarioMatrix, run_campaign

        def run(workloads):
            return run_campaign(
                ScenarioMatrix(
                    programs=["strict_parser", "acl_firewall"],
                    targets=["reference", "tofino"],
                    workloads=workloads, count=4, seed=2018,
                    setup="acl_gate",
                ),
                name="grow",
            )

        old = run(["udp", "malformed"])
        new = run(["udp", "imix", "malformed"])
        diff = diff_campaigns(old, new)
        assert diff.added == [
            "acl_firewall/reference/baseline/imix",
            "acl_firewall/tofino/baseline/imix",
            "strict_parser/reference/baseline/imix",
            "strict_parser/tofino/baseline/imix",
        ]
        assert not diff.removed and not diff.deltas
        assert not diff.is_regression

    def test_pass_to_fail_flip_is_unexplained_without_matrix(self):
        old = make_campaign("a", make_result(0))
        new = make_campaign(
            "b", make_result(0, findings=("unexpected_output",))
        )
        diff = diff_campaigns(old, new)
        (flip,) = diff.flips
        assert flip.direction == "pass->fail"
        assert flip.kind_churn == {"unexpected_output": 1}
        assert not flip.explained
        assert diff.is_regression
        assert diff.kind_churn == {"unexpected_output": 1}

    def test_fail_to_pass_flip_also_needs_an_explanation(self):
        # A silently "fixed" cell is as suspicious as a broken one: the
        # behaviour changed and nothing declared explains it.
        old = make_campaign(
            "a", make_result(0, findings=("missing_output",))
        )
        new = make_campaign("b", make_result(0))
        diff = diff_campaigns(old, new)
        (flip,) = diff.flips
        assert flip.direction == "fail->pass"
        assert diff.is_regression

    def test_tag_change_on_matching_cell_explains_the_flip(self):
        old = make_campaign(
            "a", make_result(0, program="acl_firewall", target="tofino")
        )
        new = make_campaign(
            "b",
            make_result(
                0, program="acl_firewall", target="tofino",
                findings=("missing_output",),
            ),
        )
        old_matrix = make_matrix(make_cell(tags=()))
        new_matrix = make_matrix(
            make_cell(tags=(TCAM_QUANTIZED,), explained=4)
        )
        diff = diff_campaigns(old, new, old_matrix, new_matrix)
        (flip,) = diff.flips
        assert flip.explained_by == (TCAM_QUANTIZED,)
        assert not diff.is_regression

    def test_labeled_cell_excuses_via_underlying_program_name(self):
        # A differential case labeled 'acl_gate' still runs
        # acl_firewall; its declared tag change must excuse flips on
        # the acl_firewall campaign cells.
        old = make_campaign(
            "a", make_result(0, program="acl_firewall", target="tofino")
        )
        new = make_campaign(
            "b",
            make_result(
                0, program="acl_firewall", target="tofino",
                findings=("missing_output",),
            ),
        )
        old_matrix = make_matrix(
            make_cell(program="acl_gate", program_name="acl_firewall")
        )
        new_matrix = make_matrix(
            make_cell(
                program="acl_gate", program_name="acl_firewall",
                tags=(TCAM_QUANTIZED,), explained=4,
            )
        )
        diff = diff_campaigns(old, new, old_matrix, new_matrix)
        (flip,) = diff.flips
        assert flip.explained_by == (TCAM_QUANTIZED,)
        assert not diff.is_regression

    def test_tag_change_on_other_cell_does_not_excuse(self):
        old = make_campaign(
            "a", make_result(0, program="strict_parser", target="sdnet")
        )
        new = make_campaign(
            "b",
            make_result(
                0, program="strict_parser", target="sdnet",
                findings=("unexpected_output",),
            ),
        )
        # The declared change is on acl_firewall/tofino, not this cell.
        old_matrix = make_matrix(make_cell(tags=()))
        new_matrix = make_matrix(
            make_cell(tags=(TCAM_QUANTIZED,), explained=4)
        )
        diff = diff_campaigns(old, new, old_matrix, new_matrix)
        (flip,) = diff.flips
        assert not flip.explained
        assert diff.is_regression

    def test_finding_churn_without_flip_is_reported_not_fatal(self):
        old = make_campaign(
            "a", make_result(0, findings=("unexpected_output",))
        )
        new = make_campaign(
            "b",
            make_result(
                0, findings=("unexpected_output", "unexpected_output")
            ),
        )
        diff = diff_campaigns(old, new)
        (delta,) = diff.deltas
        assert not delta.flipped
        assert delta.kind_churn == {"unexpected_output": 1}
        assert not diff.is_regression

    def test_score_only_delta_shows_its_cause(self):
        # Same verdict, same finding kinds, different score (one leak
        # in 4 packets vs one in 8): the rendered row must say why the
        # scenario is listed.
        old = make_campaign(
            "a", make_result(0, findings=("unexpected_output",))
        )
        new = make_campaign(
            "b", make_result(0, findings=("unexpected_output",))
        )
        new.results[0].report.injected = 8
        new.results[0].report.observed = 8
        diff = diff_campaigns(old, new)
        (delta,) = diff.deltas
        assert not delta.flipped and not delta.kind_churn
        assert "score +0.125" in diff.summary()
        assert "score +0.125" in diff.to_markdown()

    def test_latency_only_shift_suppresses_no_change_claim(self):
        old = make_campaign("a", make_result(0))
        new = make_campaign("b", make_result(0))
        new.results[0].report.measurements["cycles_per_packet"] = 99.0
        diff = diff_campaigns(old, new)
        assert not diff.deltas and not diff.is_regression
        assert "no behavioural changes" not in diff.summary()
        assert "No behavioural changes" not in diff.to_markdown()

    def test_clean_diff_omits_latency_noise(self):
        old = make_campaign("a", make_result(0))
        new = make_campaign("b", make_result(0))
        diff = diff_campaigns(old, new)
        assert "latency" not in diff.summary()
        assert "## Latency" not in diff.to_markdown()
        # ...but the JSON rendering always carries the full summaries.
        assert "latency" in json.loads(diff.to_json())

    @pytest.mark.parametrize(
        "overrides",
        [{"count": 8}, {"seed": 99}, {"setup": "acl_gate"}],
    )
    def test_mismatched_scenario_config_rejected(self, overrides):
        # A 4-packet run vs an 8-packet run of the "same" scenario — or
        # one provisioned differently — is not a regression signal;
        # refuse to compare.
        old = make_campaign("a", make_result(0))
        bumped = make_result(0)
        base = dict(
            index=0, program="strict_parser", target="reference",
            fault="baseline", workload="udp", count=4, seed=0,
        )
        base.update(overrides)
        bumped.scenario = Scenario(**base)
        new = make_campaign("b", bumped)
        with pytest.raises(NetDebugError, match="not comparable"):
            diff_campaigns(old, new)

    def test_gate_drill_needs_a_passing_scenario(self):
        all_failing = make_campaign(
            "a", make_result(0, findings=("missing_output",))
        )
        with pytest.raises(NetDebugError, match="passing scenario"):
            inject_unexplained_flip(all_failing.to_dict())

    def test_duplicate_scenario_keys_rejected(self):
        twice = make_campaign("a", make_result(0), make_result(1))
        with pytest.raises(NetDebugError, match="duplicate"):
            diff_campaigns(twice, make_campaign("b"))

    def test_diff_json_is_deterministic(self):
        def build():
            old = make_campaign(
                "a", make_result(0), make_result(1, workload="imix")
            )
            new = make_campaign(
                "b", make_result(0, findings=("sequence_loss",)),
                make_result(2, workload="poisson"),
            )
            return diff_campaigns(old, new)

        assert build().to_json() == build().to_json()

    def test_renderings_cover_every_section(self):
        old = make_campaign("v1", make_result(0), make_result(1, workload="imix"))
        new = make_campaign(
            "v2", make_result(0, findings=("unexpected_output",)),
            make_result(2, workload="poisson"),
        )
        diff = diff_campaigns(
            old, new, make_matrix(make_cell(tags=())),
            make_matrix(make_cell(tags=(TCAM_QUANTIZED,), explained=2)),
        )
        text = diff.summary()
        assert "flip [pass->fail]" in text and "added" in text
        md = diff.to_markdown()
        assert "## Scenario changes" in md
        assert "## Differential matrix" in md
        assert "UNEXPLAINED" in md
        payload = json.loads(diff.to_json())
        assert payload["is_regression"] is True
        assert payload["flips"] == 1


# ---------------------------------------------------------------------------
# Differential-matrix diffing
# ---------------------------------------------------------------------------

class TestMatrixDiff:
    def test_identical_matrices_diff_to_nothing(self):
        a = make_matrix(make_cell(tags=(TCAM_QUANTIZED,), explained=3))
        b = make_matrix(make_cell(tags=(TCAM_QUANTIZED,), explained=3))
        diff = diff_differentials(a, b)
        assert not diff.cells and not diff.is_regression

    def test_tag_count_churn_reported_but_not_fatal(self):
        a = make_matrix(make_cell(tags=(TCAM_QUANTIZED,), explained=3))
        b = make_matrix(make_cell(tags=(TCAM_QUANTIZED,), explained=5))
        diff = diff_differentials(a, b)
        (cell,) = diff.cells
        assert cell.tag_churn == {TCAM_QUANTIZED: [3, 5]}
        assert not diff.is_regression

    def test_equal_count_unexplained_identity_swap_is_a_regression(self):
        # One unexplained diff fixed, a DIFFERENT one introduced: the
        # count delta is zero but the new bug must still fail the gate.
        def cell_with_unexplained_at(index):
            cell = make_cell(tags=())
            cell.diffs = [
                PacketDiff(
                    index=index, kinds=("verdict",),
                    spec=Observation(verdict="forwarded", egress=2),
                    observed=Observation(verdict="dropped"),
                    explained_by=(),
                )
            ]
            return cell

        a = make_matrix(cell_with_unexplained_at(3))
        b = make_matrix(cell_with_unexplained_at(7))
        diff = diff_differentials(a, b)
        (cell,) = diff.cells
        assert cell.unexplained_delta == 0
        assert cell.new_unexplained == 1
        assert diff.is_regression

    def test_same_index_different_observation_is_a_regression(self):
        # Same packet, same diff kind, different observed behaviour:
        # still a new bug, not a no-op.
        def cell_observing(egress):
            cell = make_cell(tags=())
            cell.diffs = [
                PacketDiff(
                    index=3, kinds=("egress",),
                    spec=Observation(
                        verdict="forwarded", egress=1, wire="aa"
                    ),
                    observed=Observation(
                        verdict="forwarded", egress=egress, wire="aa"
                    ),
                    explained_by=(),
                )
            ]
            return cell

        diff = diff_differentials(
            make_matrix(cell_observing(2)), make_matrix(cell_observing(7))
        )
        (cell,) = diff.cells
        assert cell.unexplained_delta == 0
        assert cell.new_unexplained == 1
        assert diff.is_regression

    def test_unexplained_shrink_is_not_a_regression(self):
        old = make_matrix(make_cell(tags=(), unexplained=2))
        new = make_matrix(make_cell(tags=(), unexplained=1))
        diff = diff_differentials(old, new)
        (cell,) = diff.cells
        assert cell.unexplained_delta == -1
        assert cell.new_unexplained == 0
        assert not diff.is_regression

    def test_unexplained_growth_is_a_regression(self):
        a = make_matrix(make_cell(tags=(TCAM_QUANTIZED,), explained=3))
        b = make_matrix(
            make_cell(tags=(TCAM_QUANTIZED,), explained=3, unexplained=1)
        )
        diff = diff_differentials(a, b)
        (cell,) = diff.cells
        assert cell.unexplained_delta == 1
        assert diff.is_regression

    def test_new_compile_rejection_is_a_regression(self):
        a = make_matrix(make_cell())
        b = make_matrix(make_cell(compile_rejected="RANGE unsupported"))
        diff = diff_differentials(a, b)
        assert diff.is_regression

    def test_markdown_escapes_pipes_in_compiler_text(self):
        from repro.netdebug.diffing import matrix_only_diff

        a = make_matrix(make_cell())
        b = make_matrix(
            make_cell(compile_rejected="key a|b: RANGE unsupported")
        )
        md = matrix_only_diff(a, b).to_markdown()
        assert "a\\|b" in md  # the raw pipe would split the table row

    def test_markdown_names_every_regression_cause(self):
        # A cell regressed only via model mismatches or a lost build
        # must still show its cause in the markdown table (the CI job
        # summary), not just a bare REGRESSED flag.
        broken = make_cell()
        broken.model_mismatches = [3, 7]
        a = make_matrix(make_cell(), make_cell(program="l2_switch"))
        b = make_matrix(
            broken,
            make_cell(program="l2_switch",
                      compile_rejected="RANGE unsupported"),
        )
        from repro.netdebug.diffing import matrix_only_diff

        md = matrix_only_diff(a, b).to_markdown()
        assert "model-mismatch +2" in md
        assert "compile: ok -> RANGE unsupported" in md

    def test_duplicate_matrix_cells_rejected(self):
        # Mirrors the campaign side: a shadowed duplicate cell could
        # hide a regression behind its twin.
        twice = make_matrix(make_cell(), make_cell())
        with pytest.raises(NetDebugError, match="duplicate"):
            diff_differentials(twice, make_matrix(make_cell()))

    def test_mismatched_matrix_config_rejected(self):
        a = make_matrix(make_cell())
        b = make_matrix(make_cell())
        b.count = 64
        with pytest.raises(NetDebugError, match="not comparable"):
            diff_differentials(a, b)

    def test_disjoint_cells_reported_not_crashed(self):
        a = make_matrix(make_cell(program="l2_switch", target="sdnet"))
        b = make_matrix(make_cell(program="ipv4_router", target="sdnet"))
        diff = diff_differentials(a, b)
        assert diff.added == ["ipv4_router/sdnet"]
        assert diff.removed == ["l2_switch/sdnet"]
        assert not diff.is_regression

    def test_cell_set_change_suppresses_no_change_claim(self):
        # A report listing added/removed cells must not simultaneously
        # claim "no behavioural changes".
        from repro.netdebug.diffing import matrix_only_diff

        a = make_matrix(make_cell(program="l2_switch", target="sdnet"))
        b = make_matrix(make_cell(program="ipv4_router", target="sdnet"))
        diff = matrix_only_diff(a, b)
        assert "no behavioural changes" not in diff.summary()
        assert "No behavioural changes" not in diff.to_markdown()
        assert "Added cells" in diff.to_markdown()


# ---------------------------------------------------------------------------
# CLI (the CI gate's exact entry point)
# ---------------------------------------------------------------------------

class TestCli:
    @pytest.fixture()
    def reports(self, tmp_path):
        old = run_baseline_campaign(count=4)
        old_path = old.save(tmp_path / "old.json")
        new_path = old.save(tmp_path / "new.json")
        return tmp_path, old, old_path, new_path

    def test_unchanged_build_exits_zero(self, reports, capsys):
        tmp_path, _, old_path, new_path = reports
        assert main([str(old_path), str(new_path)]) == 0
        assert "no regression" in capsys.readouterr().out

    def test_injected_deviation_exits_nonzero_with_flip_listing(
        self, reports, capsys
    ):
        tmp_path, old, old_path, _ = reports
        payload = inject_unexplained_flip(old.to_dict())
        tampered = tmp_path / "tampered.json"
        tampered.write_text(json.dumps(payload))
        assert main([str(old_path), str(tampered)]) == 1
        out = capsys.readouterr().out
        assert "flip [pass->fail]" in out and "UNEXPLAINED" in out

    def test_markdown_out_written_even_on_regression(
        self, reports, capsys
    ):
        tmp_path, old, old_path, _ = reports
        payload = inject_unexplained_flip(old.to_dict(),
                                          kind="missing_output")
        tampered = tmp_path / "tampered.json"
        tampered.write_text(json.dumps(payload))
        out_path = tmp_path / "diff.md"
        assert main(
            [str(old_path), str(tampered),
             "--format", "markdown", "--out", str(out_path)]
        ) == 1
        assert "❌ REGRESSION" in out_path.read_text()

    def test_differential_pair_diffs_standalone(self, tmp_path, capsys):
        matrix = run_baseline_differential(count=6)
        a = matrix.save(tmp_path / "a.json")
        b = matrix.save(tmp_path / "b.json")
        assert main([str(a), str(b)]) == 0

    def test_mixed_flavours_exit_two(self, reports, tmp_path, capsys):
        _, _, old_path, _ = reports
        matrix = run_baseline_differential(count=4)
        m = matrix.save(tmp_path / "m.json")
        assert main([str(old_path), str(m)]) == 2
        assert "error" in capsys.readouterr().err

    def test_unreadable_and_shapeless_inputs_exit_two(
        self, tmp_path, capsys
    ):
        shapeless = tmp_path / "x.json"
        shapeless.write_text('{"neither": true}')
        assert main([str(shapeless), str(shapeless)]) == 2
        assert main([str(tmp_path / "missing.json"),
                     str(shapeless)]) == 2

    @pytest.mark.parametrize(
        "payload",
        ['{"results": []}',            # missing "name"
         '{"name": "x", "results": 5}',  # wrong-typed results
         '{"cells": [{"program": "p"}]}'],  # cell missing "target"
    )
    def test_malformed_reports_exit_two_not_one(
        self, tmp_path, capsys, payload
    ):
        # A truncated baseline must read as a load error (exit 2), not
        # masquerade as a regression verdict (exit 1) in the CI gate.
        broken = tmp_path / "broken.json"
        broken.write_text(payload)
        assert main([str(broken), str(broken)]) == 2
        assert "malformed report" in capsys.readouterr().err

    def test_truncated_json_exit_two_names_the_file(
        self, tmp_path, capsys
    ):
        truncated = tmp_path / "truncated.json"
        truncated.write_text('{"name": "x", "results": [')
        assert main([str(truncated), str(truncated)]) == 2
        err = capsys.readouterr().err
        assert "truncated.json" in err and "invalid JSON" in err

    def test_unwritable_out_path_exits_two(self, reports, capsys):
        _, _, old_path, new_path = reports
        assert main(
            [str(old_path), str(new_path),
             "--out", "/nonexistent-dir/diff.md"]
        ) == 2
        captured = capsys.readouterr()
        assert "cannot write --out" in captured.err
        assert "no regression" in captured.out  # diff still printed

    def test_missing_positionals_exit_two(self, capsys):
        assert main([]) == 2
        assert "required" in capsys.readouterr().err

    def test_write_baseline_flag(self, tmp_path, capsys):
        assert main(
            ["--write-baseline", "--dir", str(tmp_path / "fresh")]
        ) == 0
        assert (tmp_path / "fresh" / "campaign.json").exists()
        assert (tmp_path / "fresh" / "differential.json").exists()

    def test_diff_mode_refuses_baseline_only_arguments(
        self, reports, capsys
    ):
        # The symmetric guard: --dir/--workers silently ignored in diff
        # mode would mask a forgotten --write-baseline.
        _, _, old_path, new_path = reports
        assert main(
            [str(old_path), str(new_path), "--workers", "4"]
        ) == 2
        assert "--write-baseline" in capsys.readouterr().err

    def test_write_baseline_empty_dir_or_bad_workers_exit_two(
        self, capsys
    ):
        # `--dir "$UNSET_VAR"` must not silently fall back to the
        # committed baselines/ directory.
        assert main(["--write-baseline", "--dir", ""]) == 2
        assert main(["--write-baseline", "--workers", "0"]) == 2
        err = capsys.readouterr().err
        assert "must not be empty" in err and ">= 1" in err

    def test_write_baseline_unwritable_dir_exits_two(self, capsys):
        assert main(
            ["--write-baseline", "--dir", "/proc/nonexistent/dir"]
        ) == 2
        assert "error" in capsys.readouterr().err

    def test_write_baseline_refuses_diff_arguments(
        self, reports, tmp_path, capsys
    ):
        # Appending --write-baseline to a diff command must not
        # silently skip the check (or clobber the golden files).
        _, _, old_path, new_path = reports
        assert main(
            [str(old_path), str(new_path), "--write-baseline",
             "--dir", str(tmp_path / "fresh")]
        ) == 2
        assert "cannot be combined" in capsys.readouterr().err
        assert not (tmp_path / "fresh").exists()

    def test_load_report_sniffs_flavours(self, reports, tmp_path):
        _, _, old_path, _ = reports
        assert isinstance(load_report(old_path), CampaignReport)
        matrix = run_baseline_differential(count=4)
        m = matrix.save(tmp_path / "m.json")
        assert isinstance(load_report(m), DifferentialReport)


# ---------------------------------------------------------------------------
# Compressed reports through the differ and CLI
# ---------------------------------------------------------------------------

class TestCompressedReports:
    """The diff gate on re-expanded compressed runs: a verdict flip
    hiding in a pruned (synthesized) cell must fail the gate exactly
    like a genuine flip, and every rendering must name the
    representative whose result the cell carries."""

    REP_KEY = "strict_parser/reference/baseline/udp"
    PRUNED_KEY = "strict_parser/reference/ghost/udp"

    def compressed_pair(self, flipped: bool):
        old = make_campaign(
            "old",
            make_result(0, fault="baseline"),
            make_result(1, fault="ghost"),
        )
        pruned = make_result(
            1, fault="ghost",
            findings=("unexpected_output",) if flipped else (),
        )
        pruned.represented_by = self.REP_KEY
        new = make_campaign(
            "new", make_result(0, fault="baseline"), pruned
        )
        return old, new

    def test_flip_in_pruned_cell_is_an_unexplained_regression(self):
        old, new = self.compressed_pair(flipped=True)
        diff = diff_campaigns(old, new)
        assert diff.is_regression
        (delta,) = diff.unexplained_flips
        assert delta.key == self.PRUNED_KEY
        assert delta.represented_by == self.REP_KEY
        assert delta.to_dict()["represented_by"] == self.REP_KEY

    def test_clean_pruned_cells_add_no_delta_or_marker_bytes(self):
        old, new = self.compressed_pair(flipped=False)
        diff = diff_campaigns(old, new)
        assert not diff.deltas and not diff.is_regression
        # Unflipped compressed runs serialize without the marker, so
        # pre-compression diff consumers see unchanged bytes.
        assert "represented_by" not in diff.to_json()

    def test_cli_exits_one_on_flip_hidden_in_pruned_cell(
        self, tmp_path, capsys
    ):
        old, new = self.compressed_pair(flipped=True)
        old_path = old.save(tmp_path / "old.json")
        new_path = new.save(tmp_path / "new.json")
        assert main([str(old_path), str(new_path)]) == 1
        out = capsys.readouterr().out
        assert "flip [pass->fail]" in out
        assert f"pruned cell represented by {self.REP_KEY}" in out

    def test_cli_markdown_names_the_representative(
        self, tmp_path, capsys
    ):
        old, new = self.compressed_pair(flipped=True)
        old_path = old.save(tmp_path / "old.json")
        new_path = new.save(tmp_path / "new.json")
        out_path = tmp_path / "diff.md"
        assert main(
            [str(old_path), str(new_path),
             "--format", "markdown", "--out", str(out_path)]
        ) == 1
        rendered = out_path.read_text()
        assert f"| `{self.PRUNED_KEY}` |" in rendered
        assert (
            f"pruned cell represented by `{self.REP_KEY}`" in rendered
        )


class TestWriteBaselineOnly:
    def test_only_restricts_generation(self, tmp_path, capsys):
        assert main(
            ["--write-baseline", "--dir", str(tmp_path / "fresh"),
             "--only", "compression"]
        ) == 0
        fresh = tmp_path / "fresh"
        assert (fresh / "compression.json").exists()
        assert not (fresh / "campaign.json").exists()
        assert not (fresh / "differential.json").exists()

    def test_only_is_repeatable(self, tmp_path):
        assert main(
            ["--write-baseline", "--dir", str(tmp_path / "fresh"),
             "--only", "differential", "--only", "compression"]
        ) == 0
        fresh = tmp_path / "fresh"
        assert (fresh / "differential.json").exists()
        assert (fresh / "compression.json").exists()
        assert not (fresh / "campaign.json").exists()

    def test_only_requires_write_baseline(self, tmp_path, capsys):
        old = make_campaign("old", make_result(0))
        path = old.save(tmp_path / "r.json")
        assert main([str(path), str(path), "--only", "campaign"]) == 2
        assert "--write-baseline" in capsys.readouterr().err

    def test_unknown_kind_is_rejected_in_api(self, tmp_path):
        with pytest.raises(NetDebugError, match="unknown baseline kind"):
            write_baselines(tmp_path, only=["campagne"])

    def test_fresh_compression_matches_committed_golden(self, tmp_path):
        paths = write_baselines(tmp_path, only=["compression"])
        assert paths["compression"].read_bytes() == (
            BASELINE_DIR / "compression.json"
        ).read_bytes()
