"""Tests for packet builders and the host-side convenience parser."""

import pytest
from hypothesis import given, strategies as st

from repro.exceptions import PacketError
from repro.packet.builder import (
    ethernet_frame,
    ipv4_packet,
    netdebug_probe,
    parse_ethernet,
    raw_packet,
    tcp_packet,
    udp_packet,
    vlan_tagged,
)
from repro.packet.headers import (
    ETHERTYPE_IPV4,
    ETHERTYPE_NETDEBUG,
    ETHERTYPE_VLAN,
    IPPROTO_TCP,
    IPPROTO_UDP,
    ipv4,
    mac,
)


class TestBuilders:
    def test_ethernet_frame(self):
        packet = ethernet_frame(0xAA, 0xBB, 0x1234, payload=b"pp")
        assert packet.get("ethernet")["ether_type"] == 0x1234
        assert packet.payload == b"pp"
        assert packet.wire_length == 16

    def test_ipv4_lengths(self):
        packet = ipv4_packet(
            ipv4("10.0.0.2"), ipv4("10.0.0.1"), payload=b"12345"
        )
        assert packet.get("ipv4")["total_len"] == 25
        assert packet.wire_length == 14 + 20 + 5

    def test_udp_lengths(self):
        packet = udp_packet(
            ipv4("10.0.0.2"), ipv4("10.0.0.1"), 53, 999, payload=b"abc"
        )
        assert packet.get("udp")["length"] == 8 + 3
        assert packet.get("ipv4")["total_len"] == 20 + 8 + 3
        assert packet.get("ipv4")["protocol"] == IPPROTO_UDP

    def test_tcp_fields(self):
        packet = tcp_packet(
            ipv4("10.0.0.2"), ipv4("10.0.0.1"), 80, 1000,
            seq_no=7, flags=0x12,
        )
        tcp = packet.get("tcp")
        assert tcp["seq_no"] == 7
        assert tcp["flags"] == 0x12
        assert packet.get("ipv4")["protocol"] == IPPROTO_TCP

    def test_vlan_tagging(self):
        base = udp_packet(ipv4("10.0.0.2"), ipv4("10.0.0.1"), 53, 1)
        tagged = vlan_tagged(base, vid=42, pcp=3)
        assert tagged.get("ethernet")["ether_type"] == ETHERTYPE_VLAN
        assert tagged.get("vlan")["vid"] == 42
        assert tagged.get("vlan")["pcp"] == 3
        assert tagged.get("vlan")["ether_type"] == ETHERTYPE_IPV4
        # original untouched
        assert base.get("ethernet")["ether_type"] == ETHERTYPE_IPV4

    def test_vlan_requires_ethernet(self):
        with pytest.raises(PacketError):
            vlan_tagged(raw_packet(b"zz"), vid=1)

    def test_netdebug_probe_wraps_inner(self):
        inner = udp_packet(ipv4("10.0.0.2"), ipv4("10.0.0.1"), 53, 1)
        probe = netdebug_probe(5, 77, timestamp=123, inner=inner)
        assert probe.get("ethernet")["ether_type"] == ETHERTYPE_NETDEBUG
        nd = probe.get("netdebug")
        assert nd["stream_id"] == 5
        assert nd["seq_no"] == 77
        assert nd["timestamp"] == 123
        assert probe.payload == inner.pack()

    def test_raw_packet(self):
        packet = raw_packet(b"\x01\x02")
        assert packet.headers == []
        assert packet.pack() == b"\x01\x02"


class TestParseEthernet:
    def test_udp_roundtrip(self):
        packet = udp_packet(
            ipv4("10.0.0.2"), ipv4("10.0.0.1"), 53, 999, payload=b"abc"
        )
        parsed = parse_ethernet(packet.pack())
        assert parsed.header_names() == ["ethernet", "ipv4", "udp"]
        assert parsed == packet

    def test_tcp_roundtrip(self):
        packet = tcp_packet(ipv4("1.1.1.1"), ipv4("2.2.2.2"), 80, 1024)
        parsed = parse_ethernet(packet.pack())
        assert parsed.header_names() == ["ethernet", "ipv4", "tcp"]
        assert parsed.pack() == packet.pack()

    def test_vlan_roundtrip(self):
        packet = vlan_tagged(
            udp_packet(ipv4("1.1.1.1"), ipv4("2.2.2.2"), 53, 1), vid=7
        )
        parsed = parse_ethernet(packet.pack())
        assert parsed.header_names() == ["ethernet", "vlan", "ipv4", "udp"]
        assert parsed.pack() == packet.pack()

    def test_unknown_ethertype_becomes_payload(self):
        packet = ethernet_frame(1, 2, 0xBEEF, payload=b"opaque")
        parsed = parse_ethernet(packet.pack())
        assert parsed.header_names() == ["ethernet"]
        assert parsed.payload == b"opaque"

    def test_short_frame_raw(self):
        parsed = parse_ethernet(b"\x00\x01")
        assert parsed.headers == []
        assert parsed.payload == b"\x00\x01"

    def test_truncated_l3_stops_gracefully(self):
        packet = ethernet_frame(1, 2, ETHERTYPE_IPV4, payload=b"\x45")
        parsed = parse_ethernet(packet.pack())
        assert parsed.header_names() == ["ethernet"]

    def test_probe_parse(self):
        probe = netdebug_probe(1, 2, payload=b"zz")
        parsed = parse_ethernet(probe.pack())
        assert parsed.header_names() == ["ethernet", "netdebug"]

    @given(
        st.integers(min_value=0, max_value=0xFFFFFFFF),
        st.integers(min_value=0, max_value=0xFFFFFFFF),
        st.integers(min_value=0, max_value=0xFFFF),
        st.integers(min_value=0, max_value=0xFFFF),
        st.binary(max_size=64),
    )
    def test_udp_roundtrip_property(self, dst, src, dport, sport, payload):
        packet = udp_packet(dst, src, dport, sport, payload=payload)
        wire = packet.pack()
        parsed = parse_ethernet(wire)
        assert parsed.pack() == wire
        assert parsed.get("udp")["dst_port"] == dport
        assert parsed.get("udp")["src_port"] == sport
        assert parsed.get("ipv4")["dst_addr"] == dst
        assert parsed.payload == payload
