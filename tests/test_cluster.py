"""Cluster subsystem tests: transport framing, coordinator/worker
dispatch, streaming ingest, fault-tolerant requeue, and the
byte-identical determinism contract across serial / pool / cluster."""

import random
import socket
import threading

import pytest

from repro.exceptions import ClusterError
from repro.netdebug.campaign import (
    ScenarioMatrix,
    SerialExecutor,
    ShardExecutor,
    assemble_report,
    run_campaign,
)
from repro.netdebug.cluster import (
    ClusterExecutor,
    ProgressPrinter,
    SHARD_FUNCTIONS,
    main,
    run_cluster_campaign,
)
from repro.netdebug.controller import NetDebugController
from repro.netdebug.transport import (
    Channel,
    MAX_FRAME_BYTES,
    recv_message,
    send_message,
)
from repro.p4.stdlib import strict_parser
from repro.target.reference import make_reference_device


def small_matrix(**overrides) -> ScenarioMatrix:
    base = dict(
        programs=["strict_parser", "l2_switch"],
        targets=["reference", "sdnet"],
        faults={"baseline": ()},
        workloads=["udp", "malformed"],
        count=4,
        seed=11,
    )
    base.update(overrides)
    return ScenarioMatrix(**base)


# ---------------------------------------------------------------------------
# Transport framing
# ---------------------------------------------------------------------------

class TestTransport:
    def socket_pair(self):
        return socket.socketpair()

    def test_json_round_trip(self):
        a, b = self.socket_pair()
        send_message(a, {"type": "hello", "slots": 3})
        assert recv_message(b) == {"type": "hello", "slots": 3}

    def test_pickle_round_trip_carries_objects(self):
        a, b = self.socket_pair()
        scenario_matrix = small_matrix()
        send_message(a, {"type": "job", "job": scenario_matrix},
                     binary=True)
        message = recv_message(b)
        assert message["job"].programs == scenario_matrix.programs

    def test_clean_eof_returns_none(self):
        a, b = self.socket_pair()
        a.close()
        assert recv_message(b) is None

    def test_mid_frame_eof_raises(self):
        a, b = self.socket_pair()
        # A header promising 100 bytes, then death.
        a.sendall(b"\x00\x00\x00\x64\x4a" + b"{")
        a.close()
        with pytest.raises(ClusterError, match="mid-frame"):
            recv_message(b)

    def test_oversized_length_prefix_rejected(self):
        a, b = self.socket_pair()
        length = MAX_FRAME_BYTES + 1
        a.sendall(length.to_bytes(4, "big") + b"\x4a")
        with pytest.raises(ClusterError, match="exceeds limit"):
            recv_message(b)

    def test_json_only_rejects_pickle_frames_unparsed(self):
        # The coordinator's pre-hello guard: a pickle frame from an
        # untrusted peer is refused by kind byte, never unpickled.
        a, b = self.socket_pair()
        send_message(a, {"type": "hello"}, binary=True)
        with pytest.raises(ClusterError, match="only JSON"):
            recv_message(b, json_only=True)

    def test_unknown_kind_byte_rejected(self):
        a, b = self.socket_pair()
        a.sendall(b"\x00\x00\x00\x02\x5a{}")
        with pytest.raises(ClusterError, match="kind byte"):
            recv_message(b)

    def test_channel_send_is_locked_and_closable(self):
        a, b = self.socket_pair()
        channel = Channel(a)
        threads = [
            threading.Thread(
                target=channel.send, args=({"type": "t", "i": i},)
            )
            for i in range(8)
        ]
        for thread in threads:
            thread.start()
        seen = {recv_message(b)["i"] for _ in range(8)}
        for thread in threads:
            thread.join()
        assert seen == set(range(8))
        channel.close()
        assert recv_message(b) is None


# ---------------------------------------------------------------------------
# Determinism: serial vs pool vs distributed cluster
# ---------------------------------------------------------------------------

class TestClusterDeterminism:
    def test_serial_pool_and_cluster_byte_identical(self):
        matrix = small_matrix()
        serial = run_campaign(matrix, workers=1, name="det")
        pooled = run_campaign(matrix, workers=2, name="det")
        clustered = run_cluster_campaign(matrix, workers=2, name="det",
                                         timeout=300)
        assert serial.to_json() == pooled.to_json()
        assert serial.to_json() == clustered.to_json()

    def test_seeded_baseline_matrix_identical_on_all_three_paths(self):
        # The acceptance contract: the golden-baseline seeded matrix
        # produces the same bytes serially, on a pool, and distributed.
        from repro.netdebug.diffing import baseline_matrix

        matrix = baseline_matrix()
        serial = run_campaign(matrix, workers=1, name="baseline")
        pooled = run_campaign(matrix, workers=2, name="baseline")
        clustered = run_cluster_campaign(matrix, workers=2,
                                         name="baseline", timeout=300)
        assert serial.to_json() == pooled.to_json()
        assert serial.to_json() == clustered.to_json()

    def test_pool_mode_worker_byte_identical(self):
        # One worker backed by a 2-slot local pool (the many-core shape).
        matrix = small_matrix(programs=["strict_parser"])
        serial = run_campaign(matrix, workers=1, name="slots")
        clustered = run_cluster_campaign(
            matrix, workers=1, slots=2, name="slots", timeout=300
        )
        assert serial.to_json() == clustered.to_json()

    def test_cluster_streams_results_with_progress(self):
        matrix = small_matrix(programs=["strict_parser"])
        events = []
        run_cluster_campaign(
            matrix, workers=2, name="stream", timeout=300,
            on_result=lambda key, report, progress: events.append(
                (key, progress.completed, progress.total)
            ),
        )
        total = len(matrix.expand())
        assert len(events) == total
        # Progress counts arrivals 1..N regardless of arrival order.
        assert [completed for _, completed, _ in events] == list(
            range(1, total + 1)
        )
        assert {key for key, _, _ in events} == {
            s.key for s in matrix.expand()
        }

    def test_record_dir_works_through_the_cluster(self, tmp_path):
        matrix = small_matrix(programs=["strict_parser"])
        recorded = run_cluster_campaign(
            matrix, workers=2, name="gold", record_dir=tmp_path,
            timeout=300,
        )
        assert (tmp_path / "gold.manifest.json").exists()
        assert (tmp_path / "scenario-0000.pcap").exists()
        from repro.netdebug.campaign import replay_campaign

        replayed = replay_campaign(tmp_path, name="gold")
        assert [r.verdict for r in replayed.results] == [
            r.verdict for r in recorded.results
        ]


# ---------------------------------------------------------------------------
# Fault tolerance
# ---------------------------------------------------------------------------

class TestFaultTolerance:
    def test_worker_crash_mid_shard_requeues_and_stays_deterministic(self):
        matrix = small_matrix()
        serial = run_campaign(matrix, workers=1, name="crash")
        executor = ClusterExecutor(
            local_workers=2, crash_after=1, timeout=300
        )
        survived = run_campaign(matrix, name="crash", executor=executor)
        assert executor.requeues >= 1  # the dead worker's shard moved
        assert executor.workers_seen == 2
        assert serial.to_json() == survived.to_json()

    def test_retry_budget_exhaustion_raises_cluster_error(self):
        matrix = small_matrix(programs=["strict_parser"],
                              targets=["reference"], workloads=["udp"])
        executor = ClusterExecutor(
            local_workers=1, crash_after=0, retry_budget=0, timeout=60
        )
        with pytest.raises(
            ClusterError, match="retry budget|every worker exited"
        ):
            run_campaign(matrix, name="doomed", executor=executor)

    def test_all_workers_lost_raises_instead_of_hanging(self):
        matrix = small_matrix(programs=["strict_parser"],
                              targets=["reference"], workloads=["udp"])
        executor = ClusterExecutor(
            local_workers=1, crash_after=0, retry_budget=10, timeout=60
        )
        with pytest.raises(
            ClusterError, match="every worker exited|retry budget"
        ):
            run_campaign(matrix, name="lost", executor=executor)

    def test_external_fleet_death_raises_without_liveness_hook(self):
        # External-worker mode has no local processes to poll: the
        # coordinator itself must notice the last connected worker
        # vanishing mid-shard and abort instead of hanging forever.
        from repro.netdebug.campaign import _EPOCH_COUNTER
        from repro.netdebug.cluster import Coordinator
        from repro.netdebug.transport import recv_message, send_message

        matrix = small_matrix(programs=["strict_parser"],
                              targets=["reference"], workloads=["udp"])
        jobs = [
            (next(_EPOCH_COUNTER), scenario, (), False)
            for scenario in matrix.expand()
        ]
        coordinator = Coordinator(timeout=30, retry_budget=10)

        def vanishing_worker():
            sock = socket.create_connection(coordinator.address)
            send_message(sock, {"type": "hello", "slots": 1})
            recv_message(sock)  # accept a shard, then drop dead
            sock.close()

        threading.Thread(target=vanishing_worker, daemon=True).start()
        with pytest.raises(ClusterError, match="every worker exited"):
            coordinator.run(jobs, "run")

    def test_worker_socket_has_no_lingering_connect_timeout(self):
        # The connect timeout must not apply to later recv()s: an idle
        # worker waits far longer than 10s on real campaigns.
        from repro.netdebug.cluster import _connect_with_retry

        listener = socket.create_server(("127.0.0.1", 0))
        sock = _connect_with_retry(listener.getsockname()[:2], 5.0)
        assert sock.gettimeout() is None
        sock.close()
        listener.close()

    def test_malformed_result_message_fails_loudly(self):
        # A foreign worker replying without a 'result' key (and with a
        # bogus id) must abort the campaign with ClusterError, not
        # strand the shard or corrupt the result map.
        from repro.netdebug.campaign import _EPOCH_COUNTER
        from repro.netdebug.cluster import Coordinator
        from repro.netdebug.transport import recv_message, send_message

        matrix = small_matrix(programs=["strict_parser"],
                              targets=["reference"], workloads=["udp"])
        jobs = [
            (next(_EPOCH_COUNTER), scenario, (), False)
            for scenario in matrix.expand()
        ]
        coordinator = Coordinator(timeout=30)

        def rogue_worker():
            sock = socket.create_connection(coordinator.address)
            send_message(sock, {"type": "hello", "slots": 1})
            recv_message(sock)  # take the job...
            send_message(sock, {"type": "result", "id": 999})  # ...bungle it

        threading.Thread(target=rogue_worker, daemon=True).start()
        with pytest.raises(ClusterError, match="malformed result"):
            coordinator.run(jobs, "run")

    def test_unregistered_shard_fn_rejected(self):
        executor = ClusterExecutor(local_workers=1)
        with pytest.raises(ClusterError, match="registered shard"):
            executor.execute([], lambda job: job)

    def test_shard_function_registry_names_run_and_replay(self):
        assert set(SHARD_FUNCTIONS) == {"run", "replay"}


# ---------------------------------------------------------------------------
# Out-of-order reassembly (the streaming-ingest determinism property)
# ---------------------------------------------------------------------------

class ShuffledExecutor(ShardExecutor):
    """Executes serially, then delivers results in a seeded random
    order — a worst-case model of out-of-order cluster arrival."""

    def __init__(self, seed: int):
        self.seed = seed

    def execute(self, jobs, shard_fn, on_result=None):
        results = [shard_fn(job) for job in jobs]
        random.Random(self.seed).shuffle(results)
        if on_result is not None:
            for result in results:
                on_result(result)
        return results


class TestOutOfOrderReassembly:
    @pytest.mark.parametrize("seed", range(6))
    def test_any_arrival_order_reassembles_byte_identically(self, seed):
        matrix = small_matrix(programs=["strict_parser"], count=3)
        serial = run_campaign(matrix, name="order")
        shuffled = run_campaign(
            matrix, name="order", executor=ShuffledExecutor(seed)
        )
        assert serial.to_json() == shuffled.to_json()

    def test_assemble_report_rejects_duplicates(self):
        matrix = small_matrix(programs=["strict_parser"],
                              targets=["reference"], workloads=["udp"])
        results = run_campaign(matrix, name="dup").results
        with pytest.raises(Exception, match="duplicate"):
            assemble_report("dup", results + results)

    def test_assemble_report_rejects_gaps(self):
        matrix = small_matrix(programs=["strict_parser"],
                              targets=["reference"],
                              workloads=["udp", "malformed"])
        results = run_campaign(matrix, name="gap").results
        with pytest.raises(Exception, match="1 of 2"):
            assemble_report("gap", results[:1], expected=2)


# ---------------------------------------------------------------------------
# Controller + renderer integration
# ---------------------------------------------------------------------------

class TestIntegration:
    def test_controller_archives_cluster_campaign(self):
        device = make_reference_device("cluster-ctl")
        device.load(strict_parser())
        controller = NetDebugController(device)
        matrix = small_matrix(programs=["strict_parser"],
                              targets=["reference"])
        report = run_cluster_campaign(matrix, workers=2, name="arch",
                                      timeout=300)
        assert controller.archive_campaign(report) == len(report.results)

    def test_controller_stream_archiver_collects_live(self):
        device = make_reference_device("cluster-live")
        device.load(strict_parser())
        controller = NetDebugController(device)
        matrix = small_matrix(programs=["strict_parser"],
                              targets=["reference"])
        run_campaign(matrix, name="live",
                     on_result=controller.stream_archiver())
        assert len(controller.reports) == len(matrix.expand())

    def test_progress_printer_renders_each_result(self, capsys):
        matrix = small_matrix(programs=["strict_parser"],
                              targets=["reference", "sdnet"])
        printer = ProgressPrinter()
        run_campaign(matrix, name="render", on_result=printer)
        out = capsys.readouterr().out
        lines = [line for line in out.splitlines() if line.startswith("[")]
        assert len(lines) == len(matrix.expand())
        assert printer.first_result_s is not None
        assert "strict_parser/sdnet/baseline/malformed" in out
        assert "FAIL" in out  # the reject-leak cell renders as failing

    def test_cli_local_subcommand_end_to_end(self, tmp_path, capsys):
        out_file = tmp_path / "cli.json"
        status = main(
            [
                "local",
                "--workers", "2",
                "--programs", "strict_parser",
                "--targets", "reference,sdnet",
                "--workloads", "udp,malformed",
                "--count", "4",
                "--setup", "",
                "--name", "clismoke",
                "--out", str(out_file),
            ]
        )
        assert status == 0
        assert out_file.exists()
        # The CLI's file is byte-equivalent (canonically) to an
        # in-process serial run of the same matrix.
        from repro.netdebug.campaign import CampaignReport

        serial = run_campaign(
            small_matrix(programs=["strict_parser"], count=4,
                         seed=2018),
            name="clismoke",
        )
        assert CampaignReport.load(out_file).to_json() == serial.to_json()

    def test_cli_bad_address_exits_2(self, capsys):
        assert main(["worker", "--connect", "nonsense"]) == 2
        assert "HOST:PORT" in capsys.readouterr().err
