"""Tests for the textual P4-like frontend."""

import pytest

from repro.controlplane import RuntimeAPI
from repro.p4.interpreter import Interpreter, RuntimeState, Verdict
from repro.p4.textparse import ParseError, parse_program, parse_program_file
from repro.packet.builder import ethernet_frame, udp_packet
from repro.packet.headers import ipv4, mac

ROUTER_SRC = """
header ethernet;
header ipv4;

parser start {
    extract(ethernet);
    select (ethernet.ether_type) {
        0x0800: parse_ipv4;
        default: reject;
    }
}
parser parse_ipv4 {
    extract(ipv4);
    verify(ipv4.version == 4 and ipv4.ihl >= 5, 3);
    goto accept;
}

action route(next_hop: 48, port: 9) {
    set(ethernet.dst_addr, next_hop);
    set(ipv4.ttl, ipv4.ttl - 1);
    forward(port);
}
action drop_all() {
    drop();
}

table ipv4_lpm {
    key: ipv4.dst_addr lpm;
    actions: route, drop_all;
    default: drop_all;
    size: 256;
}

control ingress {
    if (ipv4.ttl <= 1) {
        call(drop_all);
    } else {
        apply(ipv4_lpm);
    }
}

deparser { emit(ethernet); emit(ipv4); }
"""


@pytest.fixture
def router():
    program = parse_program(ROUTER_SRC, name="text_router")
    RuntimeAPI(program, RuntimeState.for_program(program)).table_add(
        "ipv4_lpm", "route", [(ipv4("10.0.0.0"), 8)],
        [mac("aa:bb:cc:dd:ee:01"), 3],
    )
    return program


class TestRouterProgram:
    def test_structure(self, router):
        summary = router.summary()
        assert summary["headers"] == 2
        assert summary["parser_states"] == 2
        assert summary["tables"] == 1
        assert router.table("ipv4_lpm").size == 256

    def test_routing_semantics(self, router):
        wire = udp_packet(ipv4("10.1.1.1"), ipv4("9.9.9.9"), 53, 9).pack()
        result = Interpreter(router).process(wire)
        assert result.egress_port == 3
        assert result.packet.get("ipv4")["ttl"] == 63
        assert result.packet.get("ethernet")["dst_addr"] == mac(
            "aa:bb:cc:dd:ee:01"
        )

    def test_reject_semantics(self, router):
        bad = ethernet_frame(1, 2, 0xBEEF, payload=b"x" * 30).pack()
        result = Interpreter(router).process(bad)
        assert result.verdict is Verdict.PARSER_REJECTED

    def test_verify_semantics(self, router):
        packet = udp_packet(ipv4("10.1.1.1"), ipv4("9.9.9.9"), 53, 9)
        packet.get("ipv4")["version"] = 6
        result = Interpreter(router).process(packet.pack())
        assert result.verdict is Verdict.PARSER_REJECTED

    def test_ttl_guard(self, router):
        packet = udp_packet(
            ipv4("10.1.1.1"), ipv4("9.9.9.9"), 53, 9, ttl=1
        )
        result = Interpreter(router).process(packet.pack())
        assert result.verdict is Verdict.DROPPED

    def test_equivalent_to_dsl_program(self, router):
        """Text and DSL routers implement the same function."""
        from repro.p4.stdlib import ipv4_router

        dsl = ipv4_router()
        RuntimeAPI(dsl, RuntimeState.for_program(dsl)).table_add(
            "ipv4_lpm", "route", [(ipv4("10.0.0.0"), 8)],
            [mac("aa:bb:cc:dd:ee:01"), 3],
        )
        wire = udp_packet(ipv4("10.2.2.2"), ipv4("8.8.8.8"), 53, 9).pack()
        a = Interpreter(router).process(wire)
        b = Interpreter(dsl).process(wire)
        assert a.verdict == b.verdict
        assert a.packet.pack() == b.packet.pack()


class TestDeclarations:
    def test_custom_header(self):
        program = parse_program(
            """
            header link { next: 8; value: 8; }
            parser start { extract(link); goto accept; }
            deparser { emit(link); }
            """,
            name="custom",
        )
        assert program.env.header("link").byte_width == 2

    def test_unknown_standard_header(self):
        with pytest.raises(ParseError, match="standard header"):
            parse_program("header nonsense;")

    def test_metadata_counter_register(self):
        program = parse_program(
            """
            header ethernet;
            metadata scratch: 12;
            counter hits[8];
            register last[4]: 32;
            parser start { extract(ethernet); goto accept; }
            action account() {
                count(hits, meta.ingress_port);
                reg_write(last, 0, meta.packet_length);
                reg_read(last, 0, scratch);
                set(meta.scratch, scratch + 1);
                forward(0);
            }
            control ingress { call(account); }
            deparser { emit(ethernet); }
            """,
            name="stateful",
        )
        interp = Interpreter(program)
        result = interp.process(
            ethernet_frame(1, 2, 3, payload=b"xy").pack(), ingress_port=2
        )
        assert interp.state.counter_value("hits", 2) == 1
        assert result.metadata["scratch"] == result.metadata[
            "packet_length"
        ] + 1

    def test_hash_and_exit_and_noop(self):
        program = parse_program(
            """
            header ethernet;
            metadata bucket: 16;
            parser start { extract(ethernet); goto accept; }
            action spread() {
                no_op();
                hash(bucket, 8, ethernet.dst_addr, ethernet.src_addr);
                forward(0);
                exit();
            }
            control ingress { call(spread); }
            deparser { emit(ethernet); }
            """,
            name="hashy",
        )
        result = Interpreter(program).process(
            ethernet_frame(5, 6, 7).pack()
        )
        assert 0 <= result.metadata["bucket"] < 8

    def test_add_remove_header(self):
        program = parse_program(
            """
            header ethernet;
            header vlan;
            parser start { extract(ethernet); goto accept; }
            action tag() {
                add_header(vlan, ethernet);
                set(vlan.vid, 42);
                forward(0);
            }
            control ingress { call(tag); }
            deparser { emit(ethernet); emit(vlan); }
            """,
            name="tagger",
        )
        result = Interpreter(program).process(
            ethernet_frame(1, 2, 3).pack()
        )
        assert result.packet.get("vlan")["vid"] == 42

    def test_on_hit_statement(self):
        program = parse_program(
            """
            header ethernet;
            parser start { extract(ethernet); goto accept; }
            action seen() { no_op(); }
            action left() { forward(1); }
            action right() { forward(2); }
            table known {
                key: ethernet.dst_addr exact;
                actions: seen;
                default: NoAction;
            }
            control ingress {
                on_hit(known) { call(left); } else { call(right); }
            }
            deparser { emit(ethernet); }
            """,
            name="hitter",
        )
        RuntimeAPI(program, RuntimeState.for_program(program)).table_add(
            "known", "seen", [0xAA], []
        )
        hit = Interpreter(program).process(
            ethernet_frame(0xAA, 1, 3).pack()
        )
        miss = Interpreter(program).process(
            ethernet_frame(0xBB, 1, 3).pack()
        )
        assert hit.egress_port == 1
        assert miss.egress_port == 2


class TestErrors:
    @pytest.mark.parametrize(
        "source,fragment",
        [
            ("header ethernet", "expected"),
            ("wibble x;", "unknown declaration"),
            ("parser start { jump(x); }", "unknown parser statement"),
            (
                "header ethernet;\nparser start { extract(ethernet); "
                "verify(1); verify(1); }",
                "two verify",
            ),
            (
                "header ethernet;\nparser start { extract(ethernet); "
                "goto accept; }\naction a() { explode(); }\n"
                "control ingress { call(a); }\ndeparser { emit(ethernet); }",
                "unknown primitive",
            ),
            ("control sideways { }", "ingress"),
            (
                "header ethernet;\nparser start { extract(ethernet); "
                "goto accept; }\ntable t { key: ethernet.dst_addr exact; "
                "actions: ghost; }\ncontrol ingress { apply(t); }\n"
                "deparser { emit(ethernet); }",
                "undeclared",
            ),
        ],
    )
    def test_syntax_errors(self, source, fragment):
        with pytest.raises(ParseError, match=fragment):
            parse_program(source)

    def test_bad_character(self):
        with pytest.raises(ParseError, match="unexpected character"):
            parse_program("header $bad;")

    def test_validation_still_runs(self):
        # Syntactically fine, semantically bogus (unknown state target).
        source = """
        header ethernet;
        parser start { extract(ethernet); goto nowhere; }
        deparser { emit(ethernet); }
        """
        with pytest.raises(Exception, match="nowhere"):
            parse_program(source)

    def test_line_numbers_in_errors(self):
        source = "header ethernet;\n\n\nwibble x;"
        with pytest.raises(ParseError):
            parse_program(source)


class TestFileLoading:
    def test_parse_program_file(self, tmp_path):
        path = tmp_path / "router.p4t"
        path.write_text(ROUTER_SRC)
        program = parse_program_file(path)
        assert program.name == "router"
        assert "ipv4_lpm" in program.all_tables()
