"""External tester tests: port-level vocabulary, measurement overhead."""

import pytest

from repro.baselines.external_tester import (
    EXTERNAL_OVERHEAD_NS,
    ExternalTester,
)
from repro.p4.stdlib import l2_switch, strict_parser
from repro.packet.builder import ethernet_frame, udp_packet
from repro.packet.headers import ipv4, mac
from repro.sim.traffic import default_flow, udp_stream
from repro.target.reference import make_reference_device
from repro.target.sdnet import make_sdnet_device


def switch_tester(name="ext0"):
    device = make_reference_device(name)
    device.load(l2_switch())
    device.control_plane.table_add(
        "dmac", "forward", [mac("02:00:00:00:00:02")], [1]
    )
    return ExternalTester(device)


FRAME = ethernet_frame(
    mac("02:00:00:00:00:02"), mac("02:00:00:00:00:01"), 0x0800,
    payload=b"data",
).pack()


class TestSendCapture:
    def test_basic_capture(self):
        tester = switch_tester()
        captured = tester.send(FRAME, 0)
        assert len(captured) == 1
        assert captured[0].port == 1
        assert captured[0].wire == FRAME
        assert tester.captures == captured

    def test_rtt_includes_overhead(self):
        tester = switch_tester()
        captured = tester.send(FRAME, 0)
        assert captured[0].rtt_ns >= EXTERNAL_OVERHEAD_NS

    def test_dropped_packet_yields_nothing(self):
        device = make_reference_device("ext-drop")
        device.load(strict_parser())
        tester = ExternalTester(device)
        bad = ethernet_frame(1, 2, 0xBEEF, payload=b"x" * 30).pack()
        assert tester.send(bad, 0) == []


class TestVectors:
    def test_all_pass(self):
        tester = switch_tester()
        report = tester.run_vectors([(FRAME, 0, FRAME, 1)])
        assert report.passed
        assert report.sent == 1 and report.captured == 1

    def test_wrong_port_detected(self):
        tester = switch_tester()
        report = tester.run_vectors([(FRAME, 0, FRAME, 3)])
        assert not report.passed
        assert report.wrong_port == 1

    def test_mismatch_detected(self):
        tester = switch_tester()
        report = tester.run_vectors([(FRAME, 0, b"different", 1)])
        assert report.mismatched == 1

    def test_missing_detected(self):
        device = make_reference_device("ext-miss")
        device.load(strict_parser())
        tester = ExternalTester(device)
        bad = ethernet_frame(1, 2, 0xBEEF, payload=b"x" * 30).pack()
        report = tester.run_vectors([(bad, 0, bad, 1)])
        assert report.missing == 1

    def test_unexpected_detected_on_sdnet_leak(self):
        device = make_sdnet_device("ext-leak")
        device.load(strict_parser())
        tester = ExternalTester(device)
        bad = ethernet_frame(1, 2, 0xBEEF, payload=b"x" * 30).pack()
        report = tester.run_vectors([(bad, 0, None, None)])
        assert report.unexpected == 1
        assert not report.passed

    def test_drop_expectation_passes_on_reference(self):
        device = make_reference_device("ext-ok")
        device.load(strict_parser())
        tester = ExternalTester(device)
        bad = ethernet_frame(1, 2, 0xBEEF, payload=b"x" * 30).pack()
        report = tester.run_vectors([(bad, 0, None, None)])
        assert report.passed

    def test_port_wildcard(self):
        tester = switch_tester()
        report = tester.run_vectors([(FRAME, 0, FRAME, None)])
        assert report.passed


class TestMeasurement:
    def packets(self):
        flow = default_flow()
        flow = type(flow)(
            src_ip=flow.src_ip, dst_ip=flow.dst_ip,
            src_port=flow.src_port, dst_port=flow.dst_port,
            eth_dst=mac("02:00:00:00:00:02"),
        )
        return list(udp_stream(flow, 50, size=128))

    def test_measure_shape(self):
        tester = switch_tester("ext-perf")
        measured = tester.measure(self.packets(), port=0)
        assert measured["offered"] == 50
        assert measured["delivered"] == 50
        assert measured["throughput_gbps"] > 0
        assert measured["packet_rate_mpps"] > 0
        assert measured["rtt_min_ns"] >= EXTERNAL_OVERHEAD_NS
        assert measured["rtt_max_ns"] >= measured["rtt_mean_ns"] >= (
            measured["rtt_min_ns"]
        )

    def test_external_latency_exceeds_internal(self):
        """The tester's RTT can never beat the in-device figure."""
        device = make_reference_device("ext-cmp")
        device.load(l2_switch())
        device.control_plane.table_add(
            "dmac", "forward", [mac("02:00:00:00:00:02")], [1]
        )
        tester = ExternalTester(device)
        packet = self.packets()[0]
        run = device.inject(packet.pack())
        internal_ns = run.latency_cycles * 1e3 / device.limits.clock_mhz
        captured = tester.send(packet.pack(), 0)
        assert captured[0].rtt_ns > internal_ns
