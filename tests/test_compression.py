"""Scenario-matrix compression: bucketing, re-expansion, the machine check.

The contract under test:

* compression is deterministic and the committed
  ``baselines/compression.json`` golden regenerates byte-identically;
* on the seeded baseline matrix the ratio is ≤ 0.6 and the re-expanded
  compressed report diffs clean against ``baselines/campaign.json``;
* the equivalence claim is machine-checked for EVERY pruned cell
  (``verify_equivalence`` full audit) and tampering a representative's
  stored result makes the audit fail;
* ``compress=False`` stays byte-identical to the pre-compression
  engine, and the artifact round-trips losslessly;
* unsound inputs are refused: predicate-carrying fault sets, stale
  equivalence maps, compress+record.
"""

import json

import pytest

from repro.exceptions import NetDebugError
from repro.netdebug.campaign import (
    CampaignReport,
    ScenarioMatrix,
    ScenarioResult,
    run_campaign,
)
from repro.netdebug.compression import (
    CompressedMatrix,
    baseline_compression_matrix,
    compress_matrix,
    equivalence_view,
    run_pruned_cell,
    synthesize_result,
)
from repro.netdebug.diffing import diff_campaigns, verify_equivalence
from repro.target.faults import Fault, FaultKind

from pathlib import Path

BASELINE_DIR = Path(__file__).resolve().parent.parent / "baselines"


# One compress + compressed run for the whole module: the seeded
# matrix takes seconds and every claim below reads the same artifacts.
@pytest.fixture(scope="module")
def compressed():
    return compress_matrix(baseline_compression_matrix())


@pytest.fixture(scope="module")
def expanded_report(compressed):
    return run_campaign(
        baseline_compression_matrix(), compress=compressed
    )


def small_matrix(**overrides) -> ScenarioMatrix:
    axes = dict(
        programs=["strict_parser"],
        targets=["reference", "sdnet"],
        faults={"baseline": ()},
        workloads=["udp"],
        count=4,
        seed=7,
    )
    axes.update(overrides)
    return ScenarioMatrix(**axes)


# ---------------------------------------------------------------------------
# Bucketing
# ---------------------------------------------------------------------------

def test_compression_is_deterministic(compressed):
    again = compress_matrix(baseline_compression_matrix())
    assert again.to_json() == compressed.to_json()


def test_golden_compression_baseline_regenerates(compressed, tmp_path):
    fresh = tmp_path / "compression.json"
    compressed.save(fresh)
    assert fresh.read_bytes() == (
        BASELINE_DIR / "compression.json"
    ).read_bytes()
    # ... and the committed artifact loads back to the same bucketing.
    assert CompressedMatrix.load(
        BASELINE_DIR / "compression.json"
    ).to_json() == compressed.to_json()


def test_seeded_matrix_compresses_to_at_most_60_percent(compressed):
    assert compressed.expanded_cells == 54
    assert compressed.ratio <= 0.6
    # Every cell is accounted for exactly once.
    keys = set(compressed.representative_keys)
    pruned = set(compressed.pruned_keys)
    assert not keys & pruned
    assert len(keys) + len(pruned) == compressed.expanded_cells
    assert set(compressed.signatures) == keys | pruned


def test_ghost_faults_merge_into_baseline(compressed):
    """Inert faults normalize away, so ghost-fault cells are pruned."""
    rep_for = compressed.representative_for
    assert (
        rep_for["strict_parser/reference/ghost_stage/udp"]
        == "strict_parser/reference/baseline/udp"
    )
    assert (
        rep_for["strict_parser/reference/ghost_table/udp"]
        == "strict_parser/reference/baseline/udp"
    )


def test_deviating_target_stays_separate(compressed):
    """The tofino deparse-budget/TCAM deviations change observable
    behaviour, so tofino cells never share a bucket with the
    spec-faithful targets."""
    rep_for = compressed.representative_for
    for key, rep in rep_for.items():
        if "/tofino/" in key:
            assert "/tofino/" in rep
        else:
            assert "/tofino/" not in rep


def test_merges_never_cross_workloads(compressed):
    """Identical path classes are not enough: different workloads
    produce different wire bytes, so cross-workload merging is
    unsound and must never happen."""
    for key, rep in compressed.representative_for.items():
        assert key.rsplit("/", 1)[1] == rep.rsplit("/", 1)[1]


def test_stateful_cells_are_pinned():
    matrix = small_matrix(oracle="stateful")
    compressed = compress_matrix(matrix)
    assert len(compressed.pins) == 2
    assert all(
        "stateful oracle" in reason
        for reason in compressed.pins.values()
    )
    # Pinned cells are singleton buckets: nothing is pruned.
    assert compressed.pruned_keys == []


def test_sla_cells_are_pinned():
    compressed = compress_matrix(small_matrix(sla_p99_cycles=500.0))
    assert set(compressed.pins.values()) == {"sla-graded cell"}
    assert compressed.pruned_keys == []


def test_predicate_faults_are_refused():
    matrix = small_matrix(
        faults={"pred": (Fault(FaultKind.BLACKHOLE, stage="ingress.0",
                               predicate=lambda p: True),)},
    )
    with pytest.raises(NetDebugError, match="predicate"):
        compress_matrix(matrix)


def test_artifact_round_trips_losslessly(compressed):
    clone = CompressedMatrix.from_dict(
        json.loads(json.dumps(compressed.to_dict()))
    )
    assert clone.to_json() == compressed.to_json()
    assert clone.representative_for == compressed.representative_for


# ---------------------------------------------------------------------------
# Compressed execution + re-expansion
# ---------------------------------------------------------------------------

def test_compressed_report_diffs_clean_against_campaign_golden(
    expanded_report,
):
    golden = CampaignReport.load(BASELINE_DIR / "campaign.json")
    diff = diff_campaigns(golden, expanded_report)
    assert not diff.is_regression
    assert not diff.unexplained_flips
    # The shared seeded cells must compare equal — only the extra
    # ghost-fault/imix cells may appear, as informational additions.
    assert not diff.removed
    assert not [d for d in diff.deltas]


def test_expanded_report_has_full_matrix_shape(
    compressed, expanded_report
):
    assert expanded_report.scenarios == compressed.expanded_cells
    meta = expanded_report.meta["compression"]
    assert meta["representatives"] == len(compressed.entries)
    assert meta["expanded"] == compressed.expanded_cells


def test_pruned_results_carry_represented_by(compressed, expanded_report):
    rep_for = compressed.representative_for
    for result in expanded_report.results:
        key = result.scenario.key
        if key in rep_for:
            assert result.represented_by == rep_for[key]
        else:
            assert result.represented_by is None
    # ... and the marker survives the canonical JSON round trip.
    clone = CampaignReport.from_json(expanded_report.to_json())
    assert clone.to_json() == expanded_report.to_json()
    marked = [r for r in clone.results if r.represented_by is not None]
    assert len(marked) == len(compressed.pruned_keys)


def test_synthesized_identity_is_rewritten(compressed, expanded_report):
    """A pruned cell's report must read as ITS cell — session, device,
    and the scenario key embedded in finding messages."""
    by_key = {r.scenario.key: r for r in expanded_report.results}
    # Pick a pruned cell that carries findings, so the message rewrite
    # is actually exercised.
    rep_for = compressed.representative_for
    pruned_key = next(
        key for key, rep in rep_for.items()
        if by_key[rep].report.findings
    )
    result = by_key[pruned_key]
    assert result.represented_by == rep_for[pruned_key]
    assert result.report.session == (
        f"campaign/{result.scenario.index:04d}/{pruned_key}"
    )
    assert result.report.device == (
        f"{result.scenario.target}-{result.scenario.program}"
    )
    assert result.report.findings
    for finding in result.report.findings:
        assert pruned_key in finding.message
        assert result.represented_by not in finding.message


def test_compress_false_stays_byte_identical():
    matrix = small_matrix()
    plain = run_campaign(matrix)
    defaulted = run_campaign(matrix, compress=False)
    assert plain.to_json() == defaulted.to_json()
    assert "compression" not in defaulted.meta


def test_compressed_run_executes_only_representatives(compressed):
    matrix = baseline_compression_matrix()
    seen = []
    run_campaign(
        matrix,
        compress=compressed,
        on_result=lambda key, report, progress: seen.append(
            (key, progress.total)
        ),
    )
    assert sorted(k for k, _ in seen) == sorted(
        compressed.representative_keys
    )
    assert {total for _, total in seen} == {len(compressed.entries)}


def test_stale_equivalence_map_is_refused(compressed):
    with pytest.raises(NetDebugError, match="different scenario matrix"):
        run_campaign(small_matrix(), compress=compressed)


def test_stale_map_error_names_digests_and_axis(compressed):
    """The staleness error is diagnosable from the message alone: both
    content digests plus the first axis that drifted, with its two
    values."""
    from repro.netdebug.campaign import matrix_to_dict
    from repro.netdebug.compression import _matrix_digest

    built_from = baseline_compression_matrix()
    offered = baseline_compression_matrix()
    offered.seed = built_from.seed + 1
    with pytest.raises(NetDebugError) as excinfo:
        compressed.ensure_matches(offered)
    message = str(excinfo.value)
    assert (
        f"map digest {_matrix_digest(matrix_to_dict(built_from))}"
        in message
    )
    assert (
        f"offered matrix digest {_matrix_digest(matrix_to_dict(offered))}"
        in message
    )
    assert (
        f"first differing axis 'seed' "
        f"({built_from.seed!r} vs {offered.seed!r})" in message
    )
    assert "recompress" in message


def test_compress_and_record_are_mutually_exclusive(tmp_path):
    with pytest.raises(NetDebugError, match="mutually exclusive"):
        run_campaign(
            small_matrix(), compress=True, record_dir=tmp_path / "rec"
        )


# ---------------------------------------------------------------------------
# The machine check
# ---------------------------------------------------------------------------

def test_verify_equivalence_full_audit_passes(
    compressed, expanded_report
):
    """The acceptance-criterion audit: EVERY pruned cell genuinely
    re-run reproduces its representative's stored result byte-for-byte
    modulo cell identity."""
    failures = verify_equivalence(compressed, expanded_report)
    assert failures == []


def test_verify_equivalence_catches_tampering(
    compressed, expanded_report
):
    payload = json.loads(expanded_report.to_json())
    # Corrupt one representative-with-dependents' stored verdict the
    # way a wrong bucketing would surface: its result no longer matches
    # what the pruned cell's re-run produces.
    rep_key = compressed.entries[0].representative
    assert compressed.entries[0].represented
    victim = next(
        r for r in payload["results"]
        if "/".join(
            str(r["scenario"][axis])
            for axis in ("program", "target", "fault", "workload")
        ) == rep_key
    )
    victim["report"]["findings"].append(
        {"kind": "unexpected_output", "message": "tampered",
         "stage": "", "stream_id": None}
    )
    tampered = CampaignReport.from_dict(payload)
    failures = verify_equivalence(
        compressed, tampered, keys=[compressed.entries[0].represented[0]]
    )
    assert len(failures) == 1
    assert rep_key in failures[0]


def test_run_pruned_cell_rejects_non_pruned_keys(compressed):
    with pytest.raises(NetDebugError, match="not a pruned cell"):
        run_pruned_cell(
            compressed, "strict_parser/reference/baseline/udp"
        )


def test_equivalence_view_masks_identity_only():
    result = run_campaign(small_matrix()).results[0]
    view = equivalence_view(result.to_dict())
    assert "scenario" not in view
    assert view["report"]["device"] == ""
    assert "clock_cycles" in view["report"]["measurements"]
    timeless = equivalence_view(result.to_dict(), include_timing=False)
    assert "clock_cycles" not in timeless["report"]["measurements"]
    assert timeless["report"]["latency"] == {}


def test_synthesize_result_round_trip():
    matrix = small_matrix()
    report = run_campaign(matrix)
    rep = report.results[0]
    pruned = report.results[1].scenario
    synthetic = synthesize_result(rep, pruned)
    assert synthetic.scenario == pruned
    assert synthetic.represented_by == rep.scenario.key
    # Modulo identity the synthesized result IS the representative's.
    assert equivalence_view(
        synthetic.to_dict(), include_timing=False
    ) == equivalence_view(rep.to_dict(), include_timing=False)
    clone = ScenarioResult.from_dict(
        json.loads(json.dumps(synthetic.to_dict()))
    )
    assert clone.represented_by == rep.scenario.key
