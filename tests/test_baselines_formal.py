"""Formal verifier tests: paths, candidates, properties, the blind spot."""

import pytest

from repro.baselines.formal import (
    Property,
    SymbolicVerifier,
    equivalence_check,
    prop_forwarded,
    prop_no_invalid_header_access,
    prop_rejected_never_forwarded,
)
from repro.controlplane import RuntimeAPI
from repro.p4.interpreter import Interpreter, RuntimeState, Verdict
from repro.p4.parser import ACCEPT, REJECT
from repro.p4.stdlib import (
    acl_firewall,
    ipv4_router,
    l2_switch,
    strict_parser,
)
from repro.packet.headers import ipv4, mac


def routed_router(port=2):
    program = ipv4_router()
    RuntimeAPI(program, RuntimeState.for_program(program)).table_add(
        "ipv4_lpm", "route", [(ipv4("10.0.0.0"), 8)],
        [mac("aa:bb:cc:dd:ee:01"), port],
    )
    return program


class TestParserPaths:
    def test_strict_parser_paths(self):
        paths = SymbolicVerifier(strict_parser()).parser_paths()
        outcomes = sorted(p.outcome for p in paths)
        assert outcomes.count(REJECT) == 2  # bad ethertype + bad verify
        assert outcomes.count(ACCEPT) == 1

    def test_l2_single_path(self):
        paths = SymbolicVerifier(l2_switch()).parser_paths()
        assert len(paths) == 1
        assert paths[0].outcome == ACCEPT
        assert paths[0].extracted == ["ethernet"]

    def test_acl_covers_tcp_and_udp(self):
        paths = SymbolicVerifier(acl_firewall()).parser_paths()
        extracted = [tuple(p.extracted) for p in paths]
        assert ("ethernet", "ipv4", "tcp") in extracted
        assert ("ethernet", "ipv4", "udp") in extracted

    def test_select_constraints_recorded(self):
        paths = SymbolicVerifier(strict_parser()).parser_paths()
        accepting = [p for p in paths if p.outcome == ACCEPT][0]
        ether_type = accepting.sym.fields["ethernet.ether_type"]
        assert ether_type.must_equal(0x0800)


class TestCandidates:
    def test_candidates_parse_correctly(self):
        program = routed_router()
        for wire in SymbolicVerifier(program).candidates():
            # Every candidate must at least run without crashing.
            Interpreter(program).process(wire)

    def test_candidates_cover_hit_and_miss(self):
        program = routed_router()
        verdicts = set()
        for wire in SymbolicVerifier(program).candidates():
            result = Interpreter(program).process(wire)
            verdicts.add(result.verdict)
        assert Verdict.FORWARDED in verdicts  # route hit
        assert Verdict.DROPPED in verdicts    # route miss -> default drop
        assert Verdict.PARSER_REJECTED in verdicts

    def test_candidates_deduplicated(self):
        candidates = SymbolicVerifier(routed_router()).candidates()
        assert len(candidates) == len(set(candidates))


class TestProperties:
    def test_spec_passes_reject_property(self):
        """THE BLIND SPOT: the spec provably drops rejected packets."""
        report = SymbolicVerifier(strict_parser()).verify(
            [prop_rejected_never_forwarded()]
        )
        assert report.passed
        assert report.analysis_level == "spec"

    def test_finds_violation_with_witness(self):
        program = routed_router(port=3)

        def must_go_to_2(result):
            packet = result.packet
            if packet is None or not packet.has("ipv4"):
                return True
            if (packet.get("ipv4")["dst_addr"] >> 24) != 10:
                return True
            return result.metadata.get("egress_spec") == 2

        report = SymbolicVerifier(program).verify(
            [prop_forwarded("intent", must_go_to_2)]
        )
        assert not report.passed
        violation = report.violations_of("intent")[0]
        # Witness must concretely reproduce the violation.
        result = Interpreter(program).process(violation.witness)
        assert result.verdict is Verdict.FORWARDED
        assert result.metadata["egress_spec"] == 3

    def test_invalid_header_access_detected(self):
        """A program reading a header it may not have extracted."""
        from repro.p4.actions import Forward, SetField
        from repro.p4.dsl import ProgramBuilder
        from repro.p4.expr import Const, fld
        from repro.p4.parser import ACCEPT as ACC
        from repro.packet.headers import ETHERNET, ETHERTYPE_IPV4, IPV4

        b = ProgramBuilder("bad_access")
        b.header(ETHERNET)
        b.header(IPV4)
        b.parser_state("start", extracts=["ethernet"]).select(
            fld("ethernet", "ether_type"),
            [(ETHERTYPE_IPV4, "parse_ipv4")],
            default=ACC,  # non-IPv4 accepted WITHOUT ipv4 header
        )
        b.parser_state("parse_ipv4", extracts=["ipv4"]).accept()
        # Unconditionally touches ipv4 -> crashes on non-IPv4 paths.
        b.ingress.action(
            "touch",
            [],
            [SetField("ipv4", "ttl", Const(1, 8)), Forward(Const(0, 9))],
        )
        b.ingress.call("touch")
        b.emit("ethernet", "ipv4")
        program = b.build()

        report = SymbolicVerifier(program).verify(
            [prop_no_invalid_header_access()]
        )
        assert report.violations_of("no-invalid-header-access")

    def test_report_summary(self):
        report = SymbolicVerifier(strict_parser()).verify(
            [prop_rejected_never_forwarded()]
        )
        text = report.summary()
        assert "strict_parser" in text
        assert "PASS" in text
        assert "spec-level" in text

    def test_multiple_properties(self):
        report = SymbolicVerifier(routed_router()).verify(
            [
                prop_no_invalid_header_access(),
                prop_rejected_never_forwarded(),
                prop_forwarded("always-true", lambda r: True),
            ]
        )
        assert report.passed
        assert len(report.properties) == 3


class TestEquivalence:
    def test_identical_programs_equivalent(self):
        differences = equivalence_check(routed_router(), routed_router())
        assert differences == []

    def test_seeded_difference_found(self):
        from repro.netdebug.usecases.comparison import (
            install_same_route,
            ipv4_router_alt,
        )

        a = ipv4_router()
        install_same_route(a)
        b = ipv4_router_alt()
        install_same_route(b)
        differences = equivalence_check(a, b)
        assert differences  # the missing TTL decrement

    def test_difference_includes_explanation(self):
        program_a = routed_router(port=1)
        program_b = routed_router(port=2)
        differences = equivalence_check(program_a, program_b)
        assert differences
        _, explanation = differences[0]
        assert "ipv4_router" in explanation
