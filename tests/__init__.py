"""Test suite package.

A package (not a bare directory) so shared test infrastructure —
``tests.differential.harness`` — is importable under both the bare
``pytest`` entry point and ``python -m pytest``: pytest puts the repo
root on ``sys.path`` for package-rooted test modules.
"""
