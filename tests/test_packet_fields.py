"""Tests for header layout descriptions (FieldSpec / HeaderSpec)."""

import pytest
from hypothesis import given, strategies as st

from repro.exceptions import PacketError
from repro.packet.fields import FieldSpec, HeaderSpec


class TestFieldSpec:
    def test_basic(self):
        spec = FieldSpec("ttl", 8, default=64)
        assert spec.max_value == 255

    def test_empty_name_rejected(self):
        with pytest.raises(PacketError):
            FieldSpec("", 8)

    def test_zero_width_rejected(self):
        with pytest.raises(PacketError):
            FieldSpec("x", 0)

    def test_default_must_fit(self):
        with pytest.raises(PacketError):
            FieldSpec("x", 4, default=16)


class TestHeaderSpecConstruction:
    def test_build_helper(self):
        spec = HeaderSpec.build("h", ("a", 8), ("b", 8))
        assert spec.field_names == ("a", "b")
        assert spec.bit_width == 16
        assert spec.byte_width == 2

    def test_mixed_fieldspec_and_tuple(self):
        spec = HeaderSpec.build("h", FieldSpec("a", 4, default=2), ("b", 4))
        assert spec.field("a").default == 2

    def test_duplicate_field_rejected(self):
        with pytest.raises(PacketError):
            HeaderSpec.build("h", ("a", 8), ("a", 8))

    def test_non_byte_aligned_rejected(self):
        with pytest.raises(PacketError):
            HeaderSpec.build("h", ("a", 4))

    def test_empty_rejected(self):
        with pytest.raises(PacketError):
            HeaderSpec("h", ())

    def test_unnamed_header_rejected(self):
        with pytest.raises(PacketError):
            HeaderSpec.build("", ("a", 8))


class TestHeaderSpecAccess:
    @pytest.fixture
    def spec(self):
        return HeaderSpec.build("h", ("a", 4), ("b", 4), ("c", 16))

    def test_offsets(self, spec):
        assert spec.offset_of("a") == 0
        assert spec.offset_of("b") == 4
        assert spec.offset_of("c") == 8

    def test_unknown_field(self, spec):
        with pytest.raises(PacketError):
            spec.field("nope")
        with pytest.raises(PacketError):
            spec.offset_of("nope")

    def test_has_field(self, spec):
        assert spec.has_field("a")
        assert not spec.has_field("z")


class TestPackUnpack:
    @pytest.fixture
    def spec(self):
        return HeaderSpec.build("h", ("hi", 4), ("lo", 4), ("word", 16))

    def test_pack_known_values(self, spec):
        data = spec.pack({"hi": 0xA, "lo": 0xB, "word": 0x1234})
        assert data == b"\xab\x12\x34"

    def test_pack_uses_defaults(self):
        spec = HeaderSpec.build(
            "h", FieldSpec("a", 8, default=0x42), ("b", 8)
        )
        assert spec.pack({}) == b"\x42\x00"

    def test_pack_unknown_field_rejected(self, spec):
        with pytest.raises(PacketError, match="unknown"):
            spec.pack({"bogus": 1})

    def test_pack_value_too_wide(self, spec):
        with pytest.raises(PacketError):
            spec.pack({"hi": 16})

    def test_unpack(self, spec):
        values = spec.unpack(b"\xab\x12\x34")
        assert values == {"hi": 0xA, "lo": 0xB, "word": 0x1234}

    def test_unpack_short_buffer(self, spec):
        with pytest.raises(PacketError):
            spec.unpack(b"\xab")

    def test_unpack_ignores_trailing(self, spec):
        values = spec.unpack(b"\xab\x12\x34\xff\xff")
        assert values["word"] == 0x1234

    @given(
        st.integers(min_value=0, max_value=15),
        st.integers(min_value=0, max_value=15),
        st.integers(min_value=0, max_value=0xFFFF),
    )
    def test_roundtrip_property(self, hi, lo, word):
        spec = HeaderSpec.build("h", ("hi", 4), ("lo", 4), ("word", 16))
        values = {"hi": hi, "lo": lo, "word": word}
        assert spec.unpack(spec.pack(values)) == values


@st.composite
def header_layouts(draw):
    """Random byte-aligned header layouts for property tests."""
    widths = draw(
        st.lists(st.integers(min_value=1, max_value=24), min_size=1,
                 max_size=8)
    )
    total = sum(widths)
    if total % 8:
        widths.append(8 - total % 8)
    return HeaderSpec.build(
        "rand", *[(f"f{i}", w) for i, w in enumerate(widths)]
    )


class TestLayoutProperties:
    @given(header_layouts(), st.data())
    def test_pack_unpack_roundtrip_random_layouts(self, spec, data):
        values = {
            f.name: data.draw(
                st.integers(min_value=0, max_value=f.max_value)
            )
            for f in spec.fields
        }
        assert spec.unpack(spec.pack(values)) == values

    @given(header_layouts())
    def test_pack_length_matches_byte_width(self, spec):
        assert len(spec.pack({})) == spec.byte_width

    @given(header_layouts())
    def test_offsets_are_contiguous(self, spec):
        offset = 0
        for field in spec.fields:
            assert spec.offset_of(field.name) == offset
            offset += field.width
        assert offset == spec.bit_width
