"""Multi-hop topologies: trunk links, chained switches, INT collection."""

import pytest

from repro.exceptions import SimulationError
from repro.p4.stdlib import l2_switch
from repro.p4.stdlib_ext import INT_HEADER, int_telemetry
from repro.packet.builder import ethernet_frame, udp_packet
from repro.packet.headers import ipv4, mac
from repro.packet.packet import Header
from repro.sim.network import Network
from repro.target.reference import make_reference_device

DST_MAC = mac("02:00:00:00:00:02")


def two_switch_network():
    """h0 -(0)sw1(1)- -(0)sw2(1)- h1, forwarding by DST_MAC."""
    network = Network()
    for name in ("sw1", "sw2"):
        device = make_reference_device(name)
        device.load(l2_switch())
        device.control_plane.table_add(
            "dmac", "forward", [DST_MAC], [1]
        )
        network.add_device(device)
    network.add_host("h0")
    network.add_host("h1")
    network.connect("h0", "sw1", 0)
    network.connect_devices("sw1", 1, "sw2", 0)
    network.connect("h1", "sw2", 1)
    return network


FRAME = ethernet_frame(
    DST_MAC, mac("02:00:00:00:00:01"), 0x0800, payload=b"hop hop"
).pack()


class TestTrunkLinks:
    def test_two_hop_delivery(self):
        network = two_switch_network()
        network.send("h0", FRAME, at=0.0)
        network.run()
        assert network.hosts["h1"].rx_count() == 1
        assert network.hosts["h1"].received[0].wire == FRAME

    def test_both_devices_processed(self):
        network = two_switch_network()
        network.send("h0", FRAME, at=0.0)
        network.run()
        assert network.devices["sw1"].stats.forwarded == 1
        assert network.devices["sw2"].stats.forwarded == 1

    def test_latency_accumulates_per_hop(self):
        network = two_switch_network()
        network.send("h0", FRAME, at=0.0)
        network.run()
        arrival = network.hosts["h1"].received[0].time_ns
        assert arrival >= 3 * network.link_delay_ns  # three links

    def test_trunk_port_single_occupancy(self):
        network = two_switch_network()
        with pytest.raises(SimulationError):
            network.connect_devices("sw1", 1, "sw2", 2)
        network.add_host("h2")
        with pytest.raises(SimulationError):
            network.connect("h2", "sw1", 1)

    def test_trunk_validation(self):
        network = Network()
        network.add_device(make_reference_device("only"))
        with pytest.raises(SimulationError):
            network.connect_devices("only", 0, "ghost", 0)
        with pytest.raises(SimulationError):
            network.connect_devices("only", 99, "only", 0)

    def test_many_packets_through_chain(self):
        network = two_switch_network()
        for index in range(30):
            network.send("h0", FRAME, at=index * 200.0)
        network.run()
        assert network.hosts["h1"].rx_count() == 30


class TestIntChain:
    """Two INT switches each stamp a record; the collector reads both."""

    def make_network(self):
        network = Network()
        for name, switch_id in (("int1", 1), ("int2", 2)):
            device = make_reference_device(name)
            device.load(int_telemetry(switch_id=switch_id))
            network.add_device(device)
        network.add_host("src")
        network.add_host("collector")
        network.connect("src", "int1", 0)
        network.connect_devices("int1", 1, "int2", 0)
        network.connect("collector", "int2", 1)
        return network

    def test_two_records_stacked_newest_first(self):
        network = self.make_network()
        wire = udp_packet(
            ipv4("10.0.0.2"), ipv4("10.0.0.1"), 9, 9, payload=b""
        ).pack()
        network.send("src", wire, at=0.0)
        network.run()
        received = network.hosts["collector"].received
        assert len(received) == 1
        out = received[0].wire
        # Both hops grew the packet by one record each.
        assert len(out) == len(wire) + 2 * INT_HEADER.byte_width
        base = 14 + 20 + 8
        newest = Header.unpack(INT_HEADER, out[base:])
        older = Header.unpack(
            INT_HEADER, out[base + INT_HEADER.byte_width:]
        )
        assert newest["switch_id"] == 2  # last hop stamps on top
        assert older["switch_id"] == 1

    def test_timestamps_increase_along_path(self):
        network = self.make_network()
        wire = udp_packet(
            ipv4("10.0.0.2"), ipv4("10.0.0.1"), 9, 9, payload=b""
        ).pack()
        network.send("src", wire, at=0.0)
        network.run()
        out = network.hosts["collector"].received[0].wire
        base = 14 + 20 + 8
        newest = Header.unpack(INT_HEADER, out[base:])
        older = Header.unpack(
            INT_HEADER, out[base + INT_HEADER.byte_width:]
        )
        assert newest["ingress_ts"] >= older["ingress_ts"]
