"""Figure 2 reproduction test: the full capability matrix shape."""

import pytest

from repro.analysis.capability import (
    EXPECTED_SHAPE,
    build_matrix,
    render_matrix,
)
from repro.netdebug.report import Capability
from repro.netdebug.usecases import TOOLS, USECASES


@pytest.fixture(scope="module")
def matrix():
    """Build once; the full run exercises every tool on every use case."""
    return build_matrix(seed=7)


class TestFigure2:
    def test_matches_paper_shape(self, matrix):
        assert matrix.grades() == EXPECTED_SHAPE

    def test_netdebug_full_everywhere(self, matrix):
        for usecase in USECASES:
            assert matrix.capability("netdebug", usecase) is Capability.FULL

    def test_formal_only_functional_and_comparison(self, matrix):
        capable = [
            usecase
            for usecase in USECASES
            if matrix.capability("formal", usecase) is not Capability.NONE
        ]
        assert capable == ["functional", "comparison"]

    def test_external_lacks_internal_view_columns(self, matrix):
        assert (
            matrix.capability("external", "resources") is Capability.NONE
        )
        assert (
            matrix.capability("external", "status_monitoring")
            is Capability.NONE
        )

    def test_external_partial_on_traffic_columns(self, matrix):
        for usecase in (
            "functional", "performance", "compiler_check",
            "architecture_check", "comparison",
        ):
            assert (
                matrix.capability("external", usecase)
                is Capability.PARTIAL
            ), usecase

    def test_netdebug_dominates_everywhere(self, matrix):
        """NetDebug's score is >= every other tool's on every use case."""
        for usecase in USECASES:
            nd = matrix.score("netdebug", usecase)
            for tool in ("formal", "external"):
                assert nd >= matrix.score(tool, usecase)

    def test_all_cells_populated(self, matrix):
        for tool in TOOLS:
            for usecase in USECASES:
                result = matrix.results[tool][usecase]
                assert result.challenges, (tool, usecase)

    def test_render_contains_glyphs_and_labels(self, matrix):
        text = render_matrix(matrix)
        assert "NetDebug" in text
        assert "SW formal verification" in text
        assert "External network tester" in text
        for glyph in ("●", "◐", "○"):
            assert glyph in text
        for usecase in USECASES:
            assert usecase in text

    def test_render_without_scores(self, matrix):
        text = render_matrix(matrix, show_scores=False)
        assert "(1.00)" not in text

    def test_determinism_across_seeds(self):
        """The qualitative shape must not depend on the workload seed."""
        for seed in (0, 42):
            assert build_matrix(seed=seed).grades() == EXPECTED_SHAPE
