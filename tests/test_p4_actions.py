"""Tests for actions, parameters and primitive statements."""

import pytest

from repro.exceptions import P4RuntimeError, P4TypeError
from repro.p4.actions import (
    NOACTION,
    Action,
    AddHeader,
    Drop,
    Forward,
    NoOp,
    Param,
    SetField,
)
from repro.p4.expr import Const, EvalContext
from repro.p4.types import TypeEnv
from repro.packet.packet import Packet


class TestParam:
    def test_width(self):
        assert Param("port", 9).width(TypeEnv()) == 9

    def test_direct_eval_raises(self):
        ctx = EvalContext(Packet(), {})
        with pytest.raises(P4RuntimeError):
            Param("port", 9).eval(ctx, TypeEnv())


class TestActionBinding:
    def test_bind_positional(self):
        action = Action("a", [Param("x", 8), Param("y", 16)], [])
        assert action.bind((1, 300)) == {"x": 1, "y": 300}

    def test_bind_wrong_arity(self):
        action = Action("a", [Param("x", 8)], [])
        with pytest.raises(P4TypeError):
            action.bind(())
        with pytest.raises(P4TypeError):
            action.bind((1, 2))

    def test_bind_value_too_wide(self):
        action = Action("a", [Param("x", 8)], [])
        with pytest.raises(P4TypeError):
            action.bind((256,))

    def test_bind_negative(self):
        action = Action("a", [Param("x", 8)], [])
        with pytest.raises(P4TypeError):
            action.bind((-1,))

    def test_duplicate_params_rejected(self):
        with pytest.raises(P4TypeError):
            Action("a", [Param("x", 8), Param("x", 9)], [])

    def test_param_names(self):
        action = Action("a", [Param("x", 8), Param("y", 8)], [])
        assert action.param_names == ["x", "y"]


class TestCosts:
    def test_noop_free(self):
        assert NoOp().cost == 0

    def test_alu_cost_sums_body(self):
        action = Action(
            "a",
            [],
            [
                SetField("ipv4", "ttl", Const(1, 8)),  # cost 1
                AddHeader("vlan"),                      # cost 2
                Drop(),                                 # cost 1
            ],
        )
        assert action.alu_cost == 4

    def test_noaction_is_free(self):
        assert NOACTION.alu_cost == 0
        assert NOACTION.name == "NoAction"
        assert NOACTION.params == []


class TestPrimitiveShapes:
    def test_forward_holds_expression(self):
        primitive = Forward(Const(3, 9))
        assert primitive.port.value == 3

    def test_add_header_after(self):
        primitive = AddHeader("vlan", after="ethernet")
        assert primitive.after == "ethernet"

    def test_primitives_are_frozen(self):
        primitive = Drop()
        with pytest.raises(Exception):
            primitive.anything = 1
