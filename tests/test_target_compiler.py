"""Compiler tests: limit diagnostics, capacity rejection, deviations."""

import pytest

from repro.exceptions import CompileError
from repro.p4.stdlib import PROGRAMS, ipv4_router, l2_switch, strict_parser
from repro.target.compiler import TargetCompiler
from repro.target.limits import ArchLimits, SDNET_LIMITS
from repro.target.reference import ReferenceCompiler
from repro.target.sdnet import REJECT_NOT_IMPLEMENTED, SDNetCompiler


class TestReferenceCompiler:
    def test_compiles_all_stdlib(self):
        compiler = ReferenceCompiler()
        for factory in PROGRAMS.values():
            compiled = compiler.compile(factory())
            assert compiled.honor_reject
            assert compiled.silent_deviations == []
            assert compiled.resources.luts > 0
            assert 0 < max(compiled.utilization.values()) < 1

    def test_invalid_program_rejected(self):
        from repro.p4.dsl import ProgramBuilder
        from repro.exceptions import P4ValidationError
        from repro.packet.headers import ETHERNET

        b = ProgramBuilder("bad")
        b.header(ETHERNET)
        b.parser_state("start", extracts=["ethernet"]).goto("missing")
        b.emit("ethernet")
        program = b.build(validate=False)
        with pytest.raises(P4ValidationError):
            ReferenceCompiler().compile(program)


class TestSDNetCompiler:
    def test_records_reject_deviation_silently(self):
        compiled = SDNetCompiler().compile(strict_parser())
        assert REJECT_NOT_IMPLEMENTED in compiled.silent_deviations
        assert not compiled.honor_reject
        # The user-visible diagnostics do NOT mention the deviation.
        assert all(
            "reject" not in str(d).lower() for d in compiled.diagnostics
        )

    def test_no_deviation_without_reject_path(self):
        compiled = SDNetCompiler().compile(l2_switch())
        assert compiled.silent_deviations == []

    def test_tables_too_large_rejected(self):
        program = ipv4_router(lpm_size=SDNET_LIMITS.max_table_size + 1)
        with pytest.raises(CompileError, match="size"):
            SDNetCompiler().compile(program)

    def test_range_match_rejected(self):
        from repro.netdebug.usecases.compiler_check import (
            range_match_program,
        )

        with pytest.raises(CompileError, match="range"):
            SDNetCompiler().compile(range_match_program())

    def test_parse_depth_rejected(self):
        from repro.netdebug.usecases.architecture_check import chain_program

        SDNetCompiler().compile(
            chain_program(SDNET_LIMITS.max_parse_depth)
        )
        with pytest.raises(CompileError, match="depth"):
            SDNetCompiler().compile(
                chain_program(SDNET_LIMITS.max_parse_depth + 1)
            )


class TestLimitDiagnostics:
    def tiny_limits(self, **overrides):
        defaults = dict(
            name="tiny",
            max_parser_states=2,
            max_parse_depth=1,
            max_tables=1,
            max_table_size=4,
            max_key_bits=16,
            max_pipeline_depth=1,
            max_actions_per_table=2,
        )
        defaults.update(overrides)
        return ArchLimits(**defaults)

    def test_every_limit_produces_named_error(self):
        from repro.p4.stdlib import acl_firewall

        compiler = TargetCompiler(self.tiny_limits())
        diagnostics = compiler.check_limits(acl_firewall())
        messages = " ".join(d.message for d in diagnostics)
        assert "states" in messages
        assert "depth" in messages
        assert "tables" in messages or "table" in messages
        assert "key" in messages

    def test_counters_unsupported(self):
        from repro.p4.stdlib import port_counter

        limits = ArchLimits(name="nc", supports_counters=False,
                            supports_registers=False)
        diagnostics = TargetCompiler(limits).check_limits(port_counter())
        messages = " ".join(d.message for d in diagnostics)
        assert "counters" in messages
        assert "registers" in messages

    def test_reject_warning_when_unclaimed(self):
        limits = ArchLimits(name="nr", supports_reject=False)
        diagnostics = TargetCompiler(limits).check_limits(strict_parser())
        warnings = [d for d in diagnostics if d.severity == "warning"]
        assert any("reject" in d.message for d in warnings)

    def test_capacity_exceeded(self):
        from repro.target.resources import DeviceCapacity

        compiler = ReferenceCompiler()
        compiler.capacity = DeviceCapacity(100, 100, 1, 1)
        with pytest.raises(CompileError, match="capacity"):
            compiler.compile(l2_switch())

    def test_diagnostic_str(self):
        from repro.target.compiler import Diagnostic

        diag = Diagnostic("warning", "something odd")
        assert str(diag) == "warning: something odd"
