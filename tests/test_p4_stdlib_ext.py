"""Tests for the extended stdlib: stateful firewall, INT telemetry."""

import pytest

from repro.netdebug.checker import LatencyCheck, OutputChecker
from repro.p4.interpreter import Interpreter, Verdict
from repro.p4.stdlib_ext import (
    INSIDE_PORT,
    INT_HEADER,
    OUTSIDE_PORT,
    int_telemetry,
    stateful_firewall,
)
from repro.packet.builder import tcp_packet, udp_packet
from repro.packet.headers import ipv4
from repro.target.reference import make_reference_device


def outbound(sport=5555, dport=80):
    """Inside host 10.0.0.5 -> outside host 93.0.0.1."""
    return udp_packet(
        ipv4("93.0.0.1"), ipv4("10.0.0.5"), dport, sport
    ).pack()


def inbound(sport=80, dport=5555):
    """The reply direction of :func:`outbound`."""
    return udp_packet(
        ipv4("10.0.0.5"), ipv4("93.0.0.1"), dport, sport
    ).pack()


class TestStatefulFirewall:
    def test_outbound_opens_and_forwards(self):
        interp = Interpreter(stateful_firewall())
        result = interp.process(outbound(), ingress_port=INSIDE_PORT)
        assert result.verdict is Verdict.FORWARDED
        assert result.egress_port == OUTSIDE_PORT

    def test_reply_admitted_after_outbound(self):
        interp = Interpreter(stateful_firewall())
        interp.process(outbound(), ingress_port=INSIDE_PORT)
        reply = interp.process(inbound(), ingress_port=OUTSIDE_PORT)
        assert reply.verdict is Verdict.FORWARDED
        assert reply.egress_port == INSIDE_PORT

    def test_unsolicited_inbound_dropped(self):
        interp = Interpreter(stateful_firewall())
        attack = interp.process(inbound(), ingress_port=OUTSIDE_PORT)
        assert attack.verdict is Verdict.DROPPED

    def test_state_is_per_flow(self):
        interp = Interpreter(stateful_firewall(flow_slots=4096))
        interp.process(outbound(sport=1111), ingress_port=INSIDE_PORT)
        # The reply to a DIFFERENT flow stays blocked.
        other = interp.process(
            inbound(dport=2222), ingress_port=OUTSIDE_PORT
        )
        assert other.verdict is Verdict.DROPPED

    def test_non_udp_refused(self):
        interp = Interpreter(stateful_firewall())
        packet = tcp_packet(ipv4("93.0.0.1"), ipv4("10.0.0.5"), 80, 1).pack()
        result = interp.process(packet, ingress_port=INSIDE_PORT)
        assert result.verdict is Verdict.DROPPED

    def test_state_survives_across_packets_on_device(self):
        device = make_reference_device("fw-state")
        device.load(stateful_firewall())
        assert device.process(outbound(), INSIDE_PORT)
        outputs = device.process(inbound(), OUTSIDE_PORT)
        assert outputs and outputs[0][0] == INSIDE_PORT


class TestIntTelemetry:
    def test_record_appended(self):
        interp = Interpreter(int_telemetry(switch_id=7))
        wire = udp_packet(ipv4("10.0.0.2"), ipv4("10.0.0.1"), 9, 9).pack()
        result = interp.process(wire, ingress_port=3, timestamp=5000)
        assert result.verdict is Verdict.FORWARDED
        record = result.packet.get("int_meta")
        assert record["switch_id"] == 7
        assert record["ingress_port"] == 3
        assert record["ingress_ts"] == 5000

    def test_non_udp_unstamped(self):
        interp = Interpreter(int_telemetry())
        wire = tcp_packet(ipv4("10.0.0.2"), ipv4("10.0.0.1"), 9, 9).pack()
        result = interp.process(wire)
        assert not result.packet.has("int_meta")

    def test_record_parseable_from_wire(self):
        """The collector view: decode the record from raw output bytes."""
        from repro.packet.packet import Header

        interp = Interpreter(int_telemetry(switch_id=2))
        wire = udp_packet(
            ipv4("10.0.0.2"), ipv4("10.0.0.1"), 9, 9, payload=b""
        ).pack()
        out = interp.process(wire, ingress_port=1).packet.pack()
        # int_meta sits right after ethernet+ipv4+udp.
        offset = 14 + 20 + 8
        record = Header.unpack(INT_HEADER, out[offset:])
        assert record["switch_id"] == 2
        assert record["ingress_port"] == 1


class TestLatencyCheck:
    def test_sla_pass_and_fail(self):
        from repro.target.faults import Fault, FaultKind

        device = make_reference_device("sla0")
        device.load(int_telemetry())
        checker = OutputChecker(device)
        checker.add_check(LatencyCheck("sla-100", max_cycles=100))
        wire = udp_packet(ipv4("10.0.0.2"), ipv4("10.0.0.1"), 9, 9).pack()
        with checker:
            device.inject(wire)
        assert checker.outcomes()[0].ok

        # Now slow a stage beyond the SLA.
        device.injector.inject(
            Fault(
                FaultKind.EXTRA_LATENCY,
                stage="ingress.0",
                extra_cycles=500,
            )
        )
        with checker:
            device.inject(wire)
        outcome = checker.outcomes()[0]
        assert outcome.failed == 1
        assert "SLA" in outcome.first_failure
