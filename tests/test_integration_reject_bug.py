"""End-to-end reproduction of the paper's §4 case study.

"Using NetDebug, we discovered that the reject parser state ... is not
implemented by SDNet. This meant that any packet coming into the data
plane was sent out to the next hop, even if it was supposed to be
dropped. Our framework immediately detected this severe bug, that would
not be noticed by applying software formal verification to the data
plane program."

This test tells that exact story, step by step.
"""

import pytest

from repro.baselines.external_tester import ExternalTester
from repro.baselines.formal import (
    SymbolicVerifier,
    prop_rejected_never_forwarded,
)
from repro.netdebug.controller import NetDebugController
from repro.netdebug.generator import StreamSpec
from repro.netdebug.session import ValidationSession
from repro.p4.interpreter import Verdict
from repro.p4.stdlib import strict_parser
from repro.sim.traffic import default_flow, malformed_mix
from repro.target.reference import make_reference_device
from repro.target.sdnet import (
    REJECT_NOT_IMPLEMENTED,
    make_sdnet_device,
)

SEED = 2018
COUNT = 60


@pytest.fixture(scope="module")
def workload():
    return list(malformed_mix(default_flow(), COUNT, 0.5, seed=SEED))


@pytest.fixture(scope="module")
def sume(workload):
    device = make_sdnet_device("sume0")
    device.load(strict_parser())
    return device


class TestStep1_FormalVerificationPassesTheSpec:
    def test_verifier_proves_spec_correct(self):
        report = SymbolicVerifier(strict_parser()).verify(
            [prop_rejected_never_forwarded()]
        )
        assert report.passed
        assert report.analysis_level == "spec"

    def test_compiler_output_is_clean(self, sume):
        """The toolchain reports nothing about the missing reject state."""
        assert sume.compiled.diagnostics == [] or all(
            "reject" not in str(d).lower()
            for d in sume.compiled.diagnostics
        )


class TestStep2_NetDebugDetectsImmediately:
    def test_every_malformed_packet_flagged(self, sume, workload):
        controller = NetDebugController(sume)
        report = controller.run(
            ValidationSession(
                name="reject-audit",
                streams=[
                    StreamSpec(
                        stream_id=1,
                        packets=[p for p, _ in workload],
                        fix_checksums=False,
                    )
                ],
                use_reference_oracle=True,
            )
        )
        malformed_count = sum(1 for _, bad in workload if bad)
        leaks = report.findings_of("unexpected_output")
        assert len(leaks) == malformed_count
        assert not report.passed

    def test_detection_matches_ground_truth(self, sume):
        assert REJECT_NOT_IMPLEMENTED in sume.compiled.silent_deviations

    def test_leaked_packets_really_left_the_device(self, workload):
        """Cross-check with raw device behaviour: rejects are forwarded."""
        device = make_sdnet_device("sume-raw")
        device.load(strict_parser())
        for packet, malformed in workload:
            outputs = device.process(packet.pack(), 0)
            if malformed:
                assert outputs, "packet supposed to be dropped was... dropped?"
                assert outputs[0][0] == 1  # sent to the next hop
            else:
                assert outputs


class TestStep3_SpecCompliantTargetIsClean:
    def test_reference_device_drops_all_malformed(self, workload):
        device = make_reference_device("ref0")
        device.load(strict_parser())
        controller = NetDebugController(device)
        report = controller.run(
            ValidationSession(
                name="reject-audit-ref",
                streams=[
                    StreamSpec(
                        stream_id=1,
                        packets=[p for p, _ in workload],
                        fix_checksums=False,
                    )
                ],
                use_reference_oracle=True,
            )
        )
        assert report.passed

    def test_interpreter_verdicts_differ_only_on_malformed(self, workload):
        from repro.p4.interpreter import Interpreter

        program = strict_parser()
        for packet, malformed in workload:
            faithful = Interpreter(program, honor_reject=True).process(
                packet.pack()
            )
            deviant = Interpreter(program, honor_reject=False).process(
                packet.pack()
            )
            if malformed:
                assert faithful.verdict is Verdict.PARSER_REJECTED
                assert deviant.verdict is Verdict.FORWARDED
            else:
                assert faithful.verdict is deviant.verdict is (
                    Verdict.FORWARDED
                )


class TestStep4_WhyTheBaselinesMissOrUnderperform:
    def test_formal_verifier_cannot_see_the_target(self):
        """Verifying the program harder would never find this bug."""
        report = SymbolicVerifier(strict_parser(), seed=99).verify(
            [prop_rejected_never_forwarded()]
        )
        assert report.passed  # still passes: the SPEC is correct

    def test_external_tester_sees_symptom_not_cause(self, workload):
        device = make_sdnet_device("sume-ext")
        device.load(strict_parser())
        tester = ExternalTester(device)
        vectors = [
            (p.pack(), 0, None if bad else p.pack(), None if bad else 1)
            for p, bad in workload
        ]
        report = tester.run_vectors(vectors)
        assert report.unexpected > 0  # symptom observed
        # But nothing in the external view names the parser or compiler:
        assert all("reject" not in d for d in report.details)
        assert all("parser" not in d for d in report.details)
