"""The cross-backend differential test harness.

Reusable infrastructure for driving seeded randomized packet batches
through every registered backend (reference / SDNet-like / Tofino-like)
per program and asserting the paper's central contract: **every**
observed divergence from the spec oracle must be exactly explained by
the deviant artifact's declared ground-truth deviation tags — and a
spec-faithful backend must produce none at all.

The heavy lifting (deviant oracles, diff classification, canonical
reports) lives in :mod:`repro.netdebug.differential`; this module adds
the test-facing pieces:

* a default case matrix covering all three known deviation mechanisms
  (parser reject, TCAM quantization, deparse truncation) plus a custom
  RANGE-match program the stdlib does not carry;
* provisioners that install *identical* table state on every target, so
  any divergence is the toolchain's fault, not configuration skew;
* :func:`run_harness` / :func:`assert_consistent` — the entry points
  test modules, benchmarks and CI smoke jobs share.
"""

from __future__ import annotations

from repro.netdebug.campaign import provision_acl_gate
from repro.netdebug.differential import (
    DifferentialCase,
    DifferentialReport,
    DifferentialRunner,
    diagnose_report,
)
from repro.p4.actions import Drop, Forward
from repro.p4.control import ApplyTable, Call, If
from repro.p4.dsl import ProgramBuilder
from repro.p4.expr import Const, IsValid, fld
from repro.p4.program import P4Program
from repro.p4.table import MatchKind
from repro.packet.headers import (
    ETHERNET,
    ETHERTYPE_IPV4,
    IPPROTO_UDP,
    IPV4,
    UDP,
    ipv4,
    mac,
)

__all__ = [
    "DEFAULT_TARGETS",
    "range_gate",
    "provision_range_gate",
    "provision_router",
    "default_cases",
    "run_harness",
    "assert_consistent",
]

DEFAULT_TARGETS = ("reference", "sdnet", "tofino")

#: The RANGE entry installed by :func:`provision_range_gate`: spec
#: semantics admit exactly [5001, 5006]; a power-of-two TCAM expansion
#: widens it to [5000, 5007], so ports 5000 and 5007 are the
#: quantization witnesses.
RANGE_GATE_LOW, RANGE_GATE_HIGH = 5001, 5006


def range_gate() -> P4Program:
    """A UDP port-range gate — the stdlib has no RANGE-match program.

    Admits UDP datagrams whose destination port lies in an installed
    range; everything else is dropped. RANGE keys do not build on the
    SDNet-like target (a *loud* CompileError, the honest outcome), and
    are silently quantized on the Tofino-like target (the deviation the
    harness must catch and explain).
    """
    b = ProgramBuilder("range_gate")
    b.header(ETHERNET)
    b.header(IPV4)
    b.header(UDP)
    b.parser_state("start", extracts=["ethernet"]).select(
        fld("ethernet", "ether_type"),
        [(ETHERTYPE_IPV4, "parse_ipv4")],
        default="done",
    )
    b.parser_state("parse_ipv4", extracts=["ipv4"]).select(
        fld("ipv4", "protocol"),
        [(IPPROTO_UDP, "parse_udp")],
        default="done",
    )
    b.parser_state("parse_udp", extracts=["udp"]).accept()
    b.parser_state("done").accept()

    gate = b.ingress.table("gate")
    gate.key(fld("udp", "dst_port"), MatchKind.RANGE, "dport")
    gate.action("admit", [], [Forward(Const(3, 9))])
    gate.action("drop_packet", [], [Drop()])
    gate.default("drop_packet").size(16)

    b.ingress.stmt(
        If(IsValid("udp"), ApplyTable("gate"), Call("drop_other"))
    )
    b.ingress.action("drop_other", [], [Drop()])

    b.emit("ethernet", "ipv4", "udp")
    return b.build()


def provision_range_gate(device) -> None:
    """Admit UDP ports [5001, 5006] — identically on every target."""
    device.control_plane.table_add(
        "gate", "admit", [(RANGE_GATE_LOW, RANGE_GATE_HIGH)], []
    )


def provision_router(device) -> None:
    """One /16 route covering the harness flows — identically everywhere."""
    device.control_plane.table_add(
        "ipv4_lpm",
        "route",
        [(ipv4("10.1.0.0"), 16)],
        [mac("aa:bb:cc:dd:ee:01"), 1],
    )


def default_cases() -> list[DifferentialCase]:
    """The standard case matrix: every known deviation has a witness.

    * ``strict_parser`` — trips the SDNet reject leak *and* the Tofino
      deparse budget.
    * ``l2_switch`` — deviates nowhere; the all-targets-agree control.
    * ``ipv4_router`` — reject leak via ``verify`` plus deparse budget,
      through real LPM forwarding state.
    * ``acl_firewall`` — ternary TCAM quantization (the ``acl_gate``
      mask has no leading care-bit run).
    * ``range_gate`` — RANGE quantization on Tofino, loud compile
      rejection on SDNet.
    * ``stateful_firewall`` — the register-stateful control, driven by
      bidirectional flow traffic; session-scoped deviant oracles must
      thread register state identically on every backend.
    """
    return [
        DifferentialCase("strict_parser"),
        DifferentialCase("l2_switch"),
        DifferentialCase("ipv4_router", provision=provision_router),
        DifferentialCase("acl_firewall", provision=provision_acl_gate),
        DifferentialCase(range_gate, provision=provision_range_gate),
        DifferentialCase("stateful_firewall", bidirectional=True),
    ]


def run_harness(
    count: int = 64,
    seed: int = 0,
    cases=None,
    targets=DEFAULT_TARGETS,
) -> DifferentialReport:
    """Run the differential matrix once and return its report."""
    return DifferentialRunner(
        cases=default_cases() if cases is None else cases,
        targets=targets,
        count=count,
        seed=seed,
    ).run()


def assert_consistent(report: DifferentialReport) -> None:
    """Fail loudly unless every divergence is explained by declared tags.

    On failure the assertion message carries the full matrix summary
    plus the per-backend stage diagnosis, so a CI log alone answers
    *which* backend deviated, *where*, and *why*.
    """
    if report.consistent:
        return
    details = [report.summary(), ""]
    details.extend(diagnose_report(report))
    for cell in report.cells:
        for diff in cell.unexplained:
            details.append(
                f"UNEXPLAINED: {cell.program} on {cell.target} packet "
                f"{diff.index}: spec={diff.spec.verdict} "
                f"observed={diff.observed.verdict} kinds={diff.kinds}"
            )
        if cell.model_mismatches:
            details.append(
                f"MODEL MISMATCH: {cell.program} on {cell.target} packets "
                f"{cell.model_mismatches} — datapath disagrees with its "
                "own declared deviation model"
            )
    raise AssertionError("\n".join(details))
