"""Cross-backend differential test harness package.

``harness`` is importable test *infrastructure* (no ``test_`` prefix, so
pytest never collects it as a suite); the ``test_*`` modules alongside
drive it.
"""
