"""Headline cross-backend differential tests: the 3-way target matrix.

Every observed divergence from the spec oracle must be exactly explained
by the deviant artifact's declared deviation tags; the reference backend
must never diverge at all; and a backend that *lies* about its
deviations must make the harness fail loudly.
"""

import pytest

from repro.netdebug.campaign import TARGETS
from repro.netdebug.differential import (
    DifferentialCase,
    DifferentialRunner,
    diagnose_report,
)
from repro.target.sdnet import REJECT_NOT_IMPLEMENTED, SDNetCompiler
from repro.target.device import NetworkDevice
from repro.target.tofino import (
    DEPARSE_FIELD_BUDGET_EXCEEDED,
    TCAM_QUANTIZED,
)

from tests.differential.harness import (
    assert_consistent,
    default_cases,
    provision_range_gate,
    range_gate,
    run_harness,
)


@pytest.fixture(scope="module")
def report():
    return run_harness(count=48, seed=11)


class TestThreeWayMatrix:
    def test_harness_consistent_on_two_distinct_seeds(self):
        # The acceptance contract: the harness passes (all divergences
        # explained) for two different seeds, not just a lucky one.
        for seed in (11, 2018):
            assert_consistent(run_harness(count=48, seed=seed))

    def test_reference_is_spec_identical_everywhere(self, report):
        for cell in report.cells:
            if cell.target == "reference":
                assert not cell.diffs
                assert not cell.deviation_tags
                assert not cell.compile_rejected

    def test_sdnet_deviates_only_via_reject(self, report):
        for program in ("strict_parser", "ipv4_router"):
            cell = report.cell(program, "sdnet")
            assert cell.diffs
            assert cell.diffs_by_tag() == {
                REJECT_NOT_IMPLEMENTED: len(cell.diffs)
            }
        assert not report.cell("l2_switch", "sdnet").diffs
        assert not report.cell("acl_firewall", "sdnet").diffs

    def test_tofino_deviates_via_deparse_and_tcam(self, report):
        truncated = report.cell("strict_parser", "tofino")
        assert truncated.diffs
        assert set(truncated.diffs_by_tag()) == {
            DEPARSE_FIELD_BUDGET_EXCEEDED
        }
        quantized = report.cell("acl_firewall", "tofino")
        assert quantized.diffs
        assert TCAM_QUANTIZED in quantized.diffs_by_tag()

    def test_range_quantization_witnessed(self, report):
        cell = report.cell("range_gate", "tofino")
        tcam_diffs = [
            diff for diff in cell.diffs
            if diff.explained_by == (TCAM_QUANTIZED,)
        ]
        # Ports 5000/5007 sit inside the quantized [5000, 5007] block
        # but outside the installed [5001, 5006] range: the spec drops
        # them, the quantizing TCAM admits them.
        assert tcam_diffs
        for diff in tcam_diffs:
            assert diff.spec.verdict == "dropped"
            assert diff.observed.verdict == "forwarded"

    def test_sdnet_rejects_range_program_loudly(self, report):
        cell = report.cell("range_gate", "sdnet")
        assert cell.compile_rejected
        assert "range" in cell.compile_rejected
        assert not cell.diffs  # a loud rejection is not a divergence

    def test_l2_switch_is_the_agreement_control(self, report):
        for target in ("reference", "sdnet", "tofino"):
            assert not report.cell("l2_switch", target).diffs

    def test_diagnosis_names_backend_stage_and_tag(self, report):
        lines = "\n".join(diagnose_report(report))
        assert "strict_parser on sdnet" in lines
        assert "stage 'parser'" in lines
        assert "stage 'deparser'" in lines
        assert "stage 'ingress'" in lines
        assert TCAM_QUANTIZED in lines

    def test_report_is_seed_deterministic(self, report):
        again = run_harness(count=48, seed=11)
        assert report.to_json() == again.to_json()


class TestHarnessCatchesLiars:
    def test_undeclared_deviation_fails_the_harness(self):
        """A backend whose ``deviations()`` hides its reject bug must
        produce *unexplained* diffs — the harness's whole point."""

        class LyingCompiler(SDNetCompiler):
            def deviations(self, program):
                return []  # the lie: datapath still skips reject

        TARGETS["liar"] = lambda name="liar0": NetworkDevice(
            name, LyingCompiler(), num_ports=4
        )
        try:
            report = DifferentialRunner(
                cases=[DifferentialCase("strict_parser")],
                targets=("liar",),
                count=32,
                seed=5,
            ).run()
            cell = report.cell("strict_parser", "liar")
            assert cell.diffs and not cell.consistent
            assert cell.unexplained == cell.diffs
            with pytest.raises(AssertionError, match="UNEXPLAINED"):
                assert_consistent(report)
        finally:
            del TARGETS["liar"]


class TestHarnessPieces:
    def test_default_cases_cover_every_known_tag(self):
        tags_witnessed = set()
        report = run_harness(count=32, seed=0)
        for cell in report.cells:
            tags_witnessed.update(cell.diffs_by_tag())
        assert tags_witnessed == {
            REJECT_NOT_IMPLEMENTED,
            TCAM_QUANTIZED,
            DEPARSE_FIELD_BUDGET_EXCEEDED,
        }

    def test_range_gate_program_builds_and_gates(self):
        from repro.target.reference import make_reference_device
        from repro.packet.builder import udp_packet

        device = make_reference_device("gate-ref")
        device.load(range_gate())
        provision_range_gate(device)
        inside = udp_packet(0x0A010001, 0x0A000001, 5003, 4000).pack()
        outside = udp_packet(0x0A010001, 0x0A000001, 5007, 4000).pack()
        assert device.inject(inside).result.verdict.value == "forwarded"
        assert device.inject(outside).result.verdict.value == "dropped"

    def test_case_names(self):
        names = [case.name for case in default_cases()]
        assert names == [
            "strict_parser",
            "l2_switch",
            "ipv4_router",
            "acl_firewall",
            "range_gate",
            "stateful_firewall",
        ]
