"""Fault injection tests: every fault kind, predicates, management."""

import pytest

from repro.exceptions import TargetError
from repro.p4.interpreter import Verdict
from repro.p4.stdlib import ipv4_router, l2_switch
from repro.packet.builder import udp_packet
from repro.packet.headers import ipv4, mac
from repro.target.faults import Fault, FaultInjector, FaultKind
from repro.target.reference import make_reference_device


def routed_device(name="flt0"):
    device = make_reference_device(name)
    device.load(ipv4_router())
    device.control_plane.table_add(
        "ipv4_lpm", "route", [(ipv4("10.0.0.0"), 8)],
        [mac("aa:bb:cc:dd:ee:01"), 2],
    )
    return device


WIRE = udp_packet(
    ipv4("10.3.3.3"), ipv4("192.168.0.1"), 53, 99, payload=b"q" * 10
).pack()


class TestInjectorManagement:
    def test_inject_and_remove(self):
        injector = FaultInjector()
        fault = injector.inject(Fault(FaultKind.BLACKHOLE, stage="parser"))
        assert injector.active == [fault]
        injector.remove(fault)
        assert injector.active == []

    def test_remove_inactive_raises(self):
        injector = FaultInjector()
        with pytest.raises(TargetError):
            injector.remove(Fault(FaultKind.BLACKHOLE, stage="parser"))

    def test_clear(self):
        injector = FaultInjector()
        injector.inject(Fault(FaultKind.BLACKHOLE, stage="a"))
        injector.inject(Fault(FaultKind.BLACKHOLE, stage="b"))
        injector.clear()
        assert injector.active == []

    def test_faults_at_filters_by_stage(self):
        injector = FaultInjector()
        fault = injector.inject(Fault(FaultKind.BLACKHOLE, stage="x"))
        assert injector.faults_at("x") == [fault]
        assert injector.faults_at("y") == []

    def test_stuck_tables(self):
        injector = FaultInjector()
        injector.inject(
            Fault(FaultKind.TABLE_STUCK_MISS, stage="ingress.0", table="t")
        )
        assert injector.stuck_tables() == {"t"}


class TestBlackhole:
    def test_eats_packets_at_stage(self):
        device = routed_device()
        device.injector.inject(Fault(FaultKind.BLACKHOLE, stage="ingress.0"))
        assert device.process(WIRE, 0) == []
        assert device.stats.dropped == 1

    def test_removal_restores(self):
        device = routed_device()
        fault = device.injector.inject(
            Fault(FaultKind.BLACKHOLE, stage="ingress.0")
        )
        assert device.process(WIRE, 0) == []
        device.injector.remove(fault)
        assert device.process(WIRE, 0) != []

    def test_predicate_limits_scope(self):
        device = routed_device()
        device.injector.inject(
            Fault(
                FaultKind.BLACKHOLE,
                stage="ingress.0",
                predicate=lambda p: p.has("ipv4")
                and p.get("ipv4")["dst_addr"] == ipv4("10.3.3.3"),
            )
        )
        assert device.process(WIRE, 0) == []
        other = udp_packet(
            ipv4("10.9.9.9"), ipv4("192.168.0.1"), 53, 99
        ).pack()
        assert device.process(other, 0) != []


class TestCorruptField:
    def test_xor_mask_applied(self):
        device = routed_device()
        device.injector.inject(
            Fault(
                FaultKind.CORRUPT_FIELD,
                stage="ingress.0",
                header="ipv4",
                field="ttl",
                mask=0xFF,
            )
        )
        outputs = device.process(WIRE, 0)
        assert outputs
        from repro.packet.builder import parse_ethernet

        out = parse_ethernet(outputs[0][1])
        # Route decremented 64 -> 63, fault XORs with 0xFF -> 192.
        assert out.get("ipv4")["ttl"] == 63 ^ 0xFF

    def test_missing_header_is_noop(self):
        device = make_reference_device("cf0")
        device.load(l2_switch())
        device.control_plane.table_add(
            "dmac", "forward", [mac("ff:ff:ff:ff:ff:ff")], [1]
        )
        device.injector.inject(
            Fault(
                FaultKind.CORRUPT_FIELD,
                stage="ingress.0",
                header="ipv4",
                field="ttl",
                mask=0xFF,
            )
        )
        assert device.process(WIRE, 0)  # still forwards, no crash


class TestMisroute:
    def test_overrides_egress(self):
        device = routed_device()
        device.injector.inject(
            Fault(FaultKind.MISROUTE, stage="deparser", port=3)
        )
        outputs = device.process(WIRE, 0)
        assert [port for port, _ in outputs] == [3]


class TestTruncate:
    def test_payload_truncated(self):
        device = routed_device()
        device.injector.inject(
            Fault(
                FaultKind.TRUNCATE_PAYLOAD, stage="deparser", length=2
            )
        )
        outputs = device.process(WIRE, 0)
        from repro.packet.builder import parse_ethernet

        out = parse_ethernet(outputs[0][1])
        assert len(out.payload) == 2


class TestStuckTable:
    def test_forces_default_action(self):
        device = routed_device()
        device.injector.inject(
            Fault(
                FaultKind.TABLE_STUCK_MISS,
                stage="ingress.0",
                table="ipv4_lpm",
            )
        )
        # Route exists but lookups are stuck at miss -> default drop.
        assert device.process(WIRE, 0) == []
        assert device.stats.dropped == 1
