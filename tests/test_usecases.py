"""Per-use-case capability tests (the cells of Figure 2)."""

import pytest

from repro.netdebug.report import Capability
from repro.netdebug.usecases import (
    TOOLS,
    USECASE_MODULES,
    USECASES,
    architecture_check,
    comparison,
    compiler_check,
    functional,
    performance,
    resources,
    status_monitoring,
)
from repro.netdebug.usecases.base import Challenge, score_suite


class TestBase:
    def test_challenge_score_bounds(self):
        with pytest.raises(Exception):
            Challenge("x", 1.5)
        with pytest.raises(Exception):
            Challenge("x", -0.1)

    def test_score_suite_unknown_tool(self):
        with pytest.raises(Exception):
            score_suite("functional", "magic", [])

    def test_capability_thresholds(self):
        assert Capability.from_score(1.0) is Capability.FULL
        assert Capability.from_score(0.9) is Capability.FULL
        assert Capability.from_score(0.5) is Capability.PARTIAL
        assert Capability.from_score(0.25) is Capability.PARTIAL
        assert Capability.from_score(0.1) is Capability.NONE
        assert Capability.from_score(0.0) is Capability.NONE

    def test_empty_suite_scores_zero(self):
        result = score_suite("functional", "netdebug", [])
        assert result.score == 0.0

    def test_modules_registry_complete(self):
        assert set(USECASE_MODULES) == set(USECASES)

    def test_unknown_tool_rejected_by_modules(self):
        for module in USECASE_MODULES.values():
            with pytest.raises(ValueError):
                module.run("wizard")


class TestFunctional:
    def test_netdebug_full(self):
        result = functional.run("netdebug", seed=1)
        assert result.capability is Capability.FULL
        assert len(result.challenges) == 5

    def test_formal_partial_with_exact_blind_spots(self):
        result = functional.run("formal", seed=1)
        assert result.capability is Capability.PARTIAL
        by_name = {c.name: c.score for c in result.challenges}
        assert by_name["spec-bug"] == 1.0
        assert by_name["control-plane-bug"] == 1.0
        assert by_name["target-bug"] == 0.0        # the §4 blind spot
        assert by_name["internal-blackhole"] == 0.0
        assert by_name["internal-accounting"] == 0.0

    def test_external_partial(self):
        result = functional.run("external", seed=1)
        assert result.capability is Capability.PARTIAL
        by_name = {c.name: c.score for c in result.challenges}
        assert by_name["target-bug"] == 1.0        # sees the symptom
        assert by_name["internal-blackhole"] == 0.5
        assert by_name["internal-accounting"] == 0.0


class TestPerformance:
    def test_netdebug_full_with_metrics(self):
        result = performance.run("netdebug")
        assert result.capability is Capability.FULL

    def test_measure_netdebug_values(self):
        measured = performance.measure_netdebug()
        assert measured["throughput_gbps"] > 0
        assert measured["packet_rate_mpps"] > 0
        assert measured["latency_cycles_mean"] > 0
        assert measured["samples"] == performance.STREAM_LEN
        assert measured["line_rate_gbps"] > measured["throughput_gbps"] * 0

    def test_external_partial(self):
        result = performance.run("external")
        assert result.capability is Capability.PARTIAL

    def test_formal_none(self):
        result = performance.run("formal")
        assert result.capability is Capability.NONE


class TestCompilerCheck:
    def test_netdebug_finds_all_three(self):
        result = compiler_check.run("netdebug", seed=2)
        assert result.capability is Capability.FULL
        assert all(c.score == 1.0 for c in result.challenges)

    def test_formal_blind(self):
        result = compiler_check.run("formal")
        assert result.capability is Capability.NONE

    def test_external_symptoms_only(self):
        result = compiler_check.run("external", seed=2)
        assert result.capability is Capability.PARTIAL
        by_name = {c.name: c.score for c in result.challenges}
        assert by_name["range-match"] == 0.0


class TestArchitectureCheck:
    def test_netdebug_full(self):
        result = architecture_check.run("netdebug")
        assert result.capability is Capability.FULL

    def test_probe_parse_depth_matches_limits(self):
        from repro.target.limits import SDNET_LIMITS

        assert (
            architecture_check.probe_parse_depth()
            == SDNET_LIMITS.max_parse_depth
        )

    def test_probe_table_capacity(self):
        installed, overflow_rejected = (
            architecture_check.probe_table_capacity(16)
        )
        assert installed == 16
        assert overflow_rejected

    def test_match_kind_probe(self):
        kinds = architecture_check.probe_match_kinds()
        assert kinds == {
            "exact": True, "lpm": True, "ternary": True, "range": False
        }

    def test_baselines(self):
        assert (
            architecture_check.run("external").capability
            is Capability.PARTIAL
        )
        assert (
            architecture_check.run("formal").capability is Capability.NONE
        )


class TestResources:
    def test_netdebug_full(self):
        result = resources.run("netdebug")
        assert result.capability is Capability.FULL

    def test_sweep_reports_all_programs(self):
        from repro.p4.stdlib import PROGRAMS

        sweep = resources.resource_sweep()
        assert set(sweep) == set(PROGRAMS)
        quantified = [n for n, info in sweep.items() if "luts" in info]
        assert len(quantified) >= 7

    def test_baselines_none(self):
        assert resources.run("external").capability is Capability.NONE
        assert resources.run("formal").capability is Capability.NONE


class TestStatusMonitoring:
    def test_netdebug_full(self):
        result = status_monitoring.run("netdebug")
        assert result.capability is Capability.FULL

    def test_monitored_run_details(self):
        controller, host_rx, sent = status_monitoring.monitored_run(
            packet_count=80, fault_after=40
        )
        # The fault ate the second half: host got only the first part.
        assert host_rx < sent
        assert controller.status_log
        final = controller.status_log[-1].status
        assert final["stats"]["dropped"] > 0

    def test_baselines_none(self):
        assert (
            status_monitoring.run("external").capability is Capability.NONE
        )
        assert (
            status_monitoring.run("formal").capability is Capability.NONE
        )


class TestComparison:
    def test_netdebug_full(self):
        result = comparison.run("netdebug", seed=3)
        assert result.capability is Capability.FULL

    def test_formal_functional_only(self):
        result = comparison.run("formal", seed=3)
        assert result.capability is Capability.PARTIAL
        by_name = {c.name: c.score for c in result.challenges}
        assert by_name["functional-diff"] == 1.0
        assert by_name["performance-diff"] == 0.0

    def test_external_partial(self):
        result = comparison.run("external", seed=3)
        assert result.capability is Capability.PARTIAL

    def test_alt_router_seeded_difference(self):
        """The alt router forgets the TTL decrement — visibly different."""
        from repro.controlplane import RuntimeAPI
        from repro.p4.interpreter import Interpreter, RuntimeState
        from repro.p4.stdlib import ipv4_router
        from repro.packet.builder import udp_packet
        from repro.packet.headers import ipv4

        alt = comparison.ipv4_router_alt()
        comparison.install_same_route(alt)
        ref = ipv4_router()
        comparison.install_same_route(ref)
        wire = udp_packet(
            ipv4("10.5.5.5"), ipv4("192.168.0.1"), 53, 9
        ).pack()
        out_ref = Interpreter(ref).process(wire)
        out_alt = Interpreter(alt).process(wire)
        assert out_ref.packet.get("ipv4")["ttl"] == 63
        assert out_alt.packet.get("ipv4")["ttl"] == 64  # not decremented
