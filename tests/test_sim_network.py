"""Network wiring tests: topology rules, delivery, live traffic."""

import pytest

from repro.exceptions import SimulationError
from repro.p4.stdlib import l2_switch, reflector
from repro.packet.builder import ethernet_frame
from repro.packet.headers import mac
from repro.sim.network import Network
from repro.target.reference import make_reference_device


def switched_network():
    network = Network()
    device = make_reference_device("sw0")
    device.load(l2_switch())
    device.control_plane.table_add(
        "dmac", "forward", [mac("02:00:00:00:00:02")], [1]
    )
    network.add_device(device)
    network.add_host("h0")
    network.add_host("h1")
    network.connect("h0", "sw0", 0)
    network.connect("h1", "sw0", 1)
    return network


FRAME = ethernet_frame(
    mac("02:00:00:00:00:02"), mac("02:00:00:00:00:01"), 0x0800,
    payload=b"hello",
).pack()


class TestTopologyRules:
    def test_duplicate_device(self):
        network = Network()
        network.add_device(make_reference_device("d0"))
        with pytest.raises(SimulationError):
            network.add_device(make_reference_device("d0"))

    def test_duplicate_host(self):
        network = Network()
        network.add_host("h")
        with pytest.raises(SimulationError):
            network.add_host("h")

    def test_connect_unknown_endpoints(self):
        network = Network()
        network.add_device(make_reference_device("d0"))
        network.add_host("h")
        with pytest.raises(SimulationError):
            network.connect("ghost", "d0", 0)
        with pytest.raises(SimulationError):
            network.connect("h", "ghost", 0)
        with pytest.raises(SimulationError):
            network.connect("h", "d0", 99)

    def test_port_single_occupancy(self):
        network = Network()
        network.add_device(make_reference_device("d0"))
        network.add_host("a")
        network.add_host("b")
        network.connect("a", "d0", 0)
        with pytest.raises(SimulationError):
            network.connect("b", "d0", 0)

    def test_send_from_unconnected_host(self):
        network = Network()
        network.add_host("h")
        with pytest.raises(SimulationError):
            network.send("h", b"x")


class TestDelivery:
    def test_end_to_end(self):
        network = switched_network()
        network.send("h0", FRAME, at=0.0)
        network.run()
        h1 = network.hosts["h1"]
        assert h1.rx_count() == 1
        assert h1.received[0].wire == FRAME
        assert h1.rx_bytes() == len(FRAME)

    def test_link_delay_applied(self):
        network = switched_network()
        network.send("h0", FRAME, at=0.0)
        network.run()
        arrival = network.hosts["h1"].received[0].time_ns
        # Two link traversals plus switch processing.
        assert arrival >= 2 * network.link_delay_ns

    def test_unconnected_egress_silently_drops(self):
        network = switched_network()
        # route to port 1 exists, but flood to ports 2..7 go nowhere.
        unknown = ethernet_frame(0x99, 1, 0x0800).pack()
        network.send("h0", unknown, at=0.0)
        network.run()  # must not raise
        assert network.hosts["h1"].rx_count() == 1  # flood reached h1

    def test_many_packets_in_order(self):
        network = switched_network()
        for index in range(50):
            network.send("h0", FRAME, at=index * 100.0)
        network.run()
        times = [f.time_ns for f in network.hosts["h1"].received]
        assert times == sorted(times)
        assert len(times) == 50

    def test_reflector_bounces_back(self):
        network = Network()
        device = make_reference_device("r0")
        device.load(reflector())
        network.add_device(device)
        network.add_host("h0")
        network.connect("h0", "r0", 0)
        network.send("h0", FRAME, at=0.0)
        network.run()
        assert network.hosts["h0"].rx_count() == 1
