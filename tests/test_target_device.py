"""Device-level tests: ports, stats, flood, status, management interface."""

import pytest

from repro.exceptions import TargetError
from repro.p4.interpreter import Verdict
from repro.p4.stdlib import l2_switch, port_counter, strict_parser
from repro.packet.builder import ethernet_frame, udp_packet
from repro.packet.headers import ipv4, mac
from repro.target.device import FLOOD_PORT, NetworkDevice
from repro.target.reference import ReferenceCompiler, make_reference_device
from repro.target.sdnet import make_sdnet_device


def switch_device(name="sw0"):
    device = make_reference_device(name)
    device.load(l2_switch())
    device.control_plane.table_add(
        "dmac", "forward", [mac("02:00:00:00:00:02")], [1]
    )
    return device


FRAME = ethernet_frame(
    mac("02:00:00:00:00:02"), mac("02:00:00:00:00:01"), 0x0800,
    payload=b"data",
).pack()


class TestLifecycle:
    def test_no_program_loaded_raises(self):
        device = make_reference_device()
        with pytest.raises(TargetError):
            _ = device.program
        with pytest.raises(TargetError):
            _ = device.control_plane
        with pytest.raises(TargetError):
            device.process(b"", 0)

    def test_load_returns_compiled(self):
        device = make_reference_device()
        compiled = device.load(l2_switch())
        assert compiled.program.name == "l2_switch"
        assert device.program is compiled.program

    def test_reload_replaces_program(self):
        device = make_reference_device()
        device.load(l2_switch())
        device.load(strict_parser())
        assert device.program.name == "strict_parser"


class TestForwarding:
    def test_unicast(self):
        device = switch_device()
        outputs = device.process(FRAME, 0)
        assert [port for port, _ in outputs] == [1]
        assert device.ports[0].rx_packets == 1
        assert device.ports[1].tx_packets == 1
        assert device.ports[1].tx_bytes == len(FRAME)

    def test_flood_excludes_ingress(self):
        device = switch_device()
        unknown = ethernet_frame(0x99, 1, 0x0800).pack()
        outputs = device.process(unknown, 2)
        ports = sorted(port for port, _ in outputs)
        assert 2 not in ports
        assert len(ports) == len(device.ports) - 1

    def test_invalid_port_raises(self):
        device = switch_device()
        with pytest.raises(TargetError):
            device.process(FRAME, 99)

    def test_invalid_egress_counted(self):
        device = make_reference_device()
        device.load(strict_parser(forward_port=200))  # > num_ports
        packet = udp_packet(ipv4("1.1.1.1"), ipv4("2.2.2.2"), 53, 9)
        assert device.process(packet.pack(), 0) == []
        assert device.stats.invalid_egress == 1

    def test_stats_accumulate(self):
        device = switch_device()
        device.process(FRAME, 0)
        device.process(b"\x00" * 3, 0)  # truncated -> parser reject
        assert device.stats.processed == 2
        assert device.stats.forwarded == 1
        assert device.stats.parser_rejected == 1

    def test_clock_advances(self):
        device = switch_device()
        before = device.clock_cycles
        device.process(FRAME, 0)
        assert device.clock_cycles > before


class TestInjection:
    def test_inject_does_not_touch_ports(self):
        device = switch_device()
        run = device.inject(FRAME, at="input")
        assert run.result.verdict is Verdict.FORWARDED
        # No port counters moved: test traffic never leaves the device.
        assert all(p.rx_packets == 0 for p in device.ports)
        assert all(p.tx_packets == 0 for p in device.ports)

    def test_inject_with_emit(self):
        device = switch_device()
        device.inject(FRAME, at="input", emit=True)
        assert device.ports[1].tx_packets == 1

    def test_inject_mid_pipeline(self):
        device = switch_device()
        run = device.inject(FRAME, at="deparser")
        assert run.stages_traversed[0] == "deparser"


class TestManagementInterface:
    def test_taps_attach_detach(self):
        device = switch_device()
        seen = []
        device.attach_tap("output", seen.append)
        device.process(FRAME, 0)
        device.detach_tap("output", seen.append)
        device.process(FRAME, 0)
        assert len(seen) == 1

    def test_stage_names_exposed(self):
        device = switch_device()
        assert "parser" in device.stage_names()

    def test_status_shape(self):
        device = switch_device()
        device.process(FRAME, 0)
        status = device.status()
        assert status["device"] == "sw0"
        assert status["target"] == "reference"
        assert status["program"] == "l2_switch"
        assert status["stats"]["processed"] == 1
        assert status["ports"][0]["rx_packets"] == 1
        assert status["resources"]["luts"] > 0
        assert "dmac" in status["tables"]
        assert 0 < status["utilization"]["luts"] < 1

    def test_status_includes_counters(self):
        device = make_reference_device()
        device.load(port_counter(num_ports=4))
        device.process(FRAME, 2)
        status = device.status()
        assert status["counters"]["per_port_pkts"][2] == 1

    def test_status_without_program(self):
        device = make_reference_device()
        status = device.status()
        assert "program" not in status
        assert status["stats"]["processed"] == 0


class TestSdnetDevice:
    def test_four_ports(self):
        device = make_sdnet_device()
        assert len(device.ports) == 4

    def test_reject_bug_at_device_level(self):
        reference = make_reference_device()
        sdnet = make_sdnet_device()
        reference.load(strict_parser())
        sdnet.load(strict_parser())
        bad = ethernet_frame(1, 2, 0xBEEF, payload=b"x" * 30).pack()
        assert reference.process(bad, 0) == []
        leaked = sdnet.process(bad, 0)
        assert leaked and leaked[0][0] == 1
