"""Value-set domain tests, including algebraic properties."""

import pytest
from hypothesis import given, strategies as st

from repro.baselines.symbolic import Infeasible, SymbolicState, ValueSet
from repro.exceptions import VerificationError


class TestConstruction:
    def test_any(self):
        vs = ValueSet.any_(8)
        assert vs.kind == "any"
        assert vs.may_equal(0) and vs.may_equal(255)

    def test_concrete(self):
        vs = ValueSet.concrete(8, 7)
        assert vs.is_concrete
        assert vs.concrete_value == 7

    def test_concrete_wraps_to_width(self):
        vs = ValueSet.concrete(8, 0x1FF)
        assert vs.concrete_value == 0xFF

    def test_empty_in_rejected(self):
        with pytest.raises(Infeasible):
            ValueSet(8, "in", frozenset())

    def test_bad_kind(self):
        with pytest.raises(VerificationError):
            ValueSet(8, "maybe")

    def test_concrete_value_requires_concrete(self):
        with pytest.raises(VerificationError):
            _ = ValueSet.any_(8).concrete_value


class TestRefinement:
    def test_eq_narrows(self):
        vs = ValueSet.any_(8).refine_eq(5)
        assert vs.is_concrete and vs.concrete_value == 5

    def test_eq_conflict(self):
        vs = ValueSet.concrete(8, 5)
        with pytest.raises(Infeasible):
            vs.refine_eq(6)

    def test_ne_from_any(self):
        vs = ValueSet.any_(8).refine_ne(0)
        assert vs.kind == "notin"
        assert not vs.may_equal(0)
        assert vs.may_equal(1)

    def test_ne_from_in(self):
        vs = ValueSet(8, "in", frozenset({1, 2})).refine_ne(1)
        assert vs.is_concrete and vs.concrete_value == 2

    def test_ne_empties_in(self):
        with pytest.raises(Infeasible):
            ValueSet.concrete(8, 1).refine_ne(1)

    def test_ne_accumulates(self):
        vs = ValueSet.any_(8).refine_ne(0).refine_ne(1)
        assert vs.values == frozenset({0, 1})

    def test_ne_cannot_empty_domain(self):
        vs = ValueSet.any_(1).refine_ne(0)
        with pytest.raises(Infeasible):
            vs.refine_ne(1)

    def test_in_intersection(self):
        vs = ValueSet(8, "in", frozenset({1, 2, 3})).refine_in(
            frozenset({2, 3, 4})
        )
        assert vs.values == frozenset({2, 3})

    def test_in_with_notin(self):
        vs = ValueSet(8, "notin", frozenset({2})).refine_in(
            frozenset({1, 2, 3})
        )
        assert vs.values == frozenset({1, 3})

    def test_in_empty_conflict(self):
        with pytest.raises(Infeasible):
            ValueSet.concrete(8, 9).refine_in(frozenset({1}))

    def test_must_equal(self):
        assert ValueSet.concrete(8, 3).must_equal(3)
        assert not ValueSet.any_(8).must_equal(3)


class TestPick:
    def test_pick_prefers_hint(self):
        assert ValueSet.any_(8).pick(42) == 42

    def test_pick_ignores_infeasible_hint(self):
        vs = ValueSet.concrete(8, 5)
        assert vs.pick(42) == 5

    def test_pick_notin_avoids_excluded(self):
        vs = ValueSet.any_(8).refine_ne(0).refine_ne(1)
        assert vs.pick() == 2

    def test_pick_always_member(self):
        vs = ValueSet(8, "in", frozenset({9, 17}))
        assert vs.pick() in {9, 17}

    @given(
        st.sets(st.integers(min_value=0, max_value=255), min_size=1,
                max_size=20)
    )
    def test_pick_in_property(self, values):
        vs = ValueSet(8, "in", frozenset(values))
        assert vs.pick() in values

    @given(
        st.sets(st.integers(min_value=0, max_value=255), max_size=20)
    )
    def test_pick_notin_property(self, excluded):
        vs = ValueSet(8, "notin", frozenset(excluded))
        assert vs.pick() not in excluded

    @given(
        st.integers(min_value=0, max_value=255),
        st.integers(min_value=0, max_value=255),
    )
    def test_refine_eq_then_may_equal(self, a, b):
        vs = ValueSet.any_(8)
        refined = vs.refine_eq(a)
        assert refined.may_equal(b) == (a == b)


def _apply_refinements(vs, ops):
    """Fold (op, value) pairs into ``vs``; Infeasible propagates."""
    for op, value in ops:
        vs = vs.refine_ne(value) if op == "ne" else vs.refine_eq(value)
    return vs


_REFINEMENT_OPS = st.lists(
    st.tuples(st.sampled_from(["ne", "eq"]),
              st.integers(min_value=0, max_value=255)),
    max_size=12,
)


class TestValueSetLattice:
    """Lattice laws every refinement sequence must respect: refining
    only ever shrinks the set, order of independent exclusions doesn't
    matter, and Infeasible fires exactly when the set would empty."""

    @given(_REFINEMENT_OPS, st.integers(min_value=0, max_value=255))
    def test_refinement_monotone(self, ops, probe):
        """may_equal can flip feasible->infeasible, never back."""
        vs = ValueSet.any_(8)
        allowed = vs.may_equal(probe)
        for op, value in ops:
            try:
                vs = _apply_refinements(vs, [(op, value)])
            except Infeasible:
                return
            now_allowed = vs.may_equal(probe)
            assert not (now_allowed and not allowed)
            allowed = now_allowed

    @given(st.sets(st.integers(min_value=0, max_value=255), max_size=30))
    def test_ne_order_independent(self, excluded):
        """Exclusions commute: any order yields the same member set."""
        orders = [sorted(excluded), sorted(excluded, reverse=True)]
        results = []
        for order in orders:
            vs = ValueSet.any_(8)
            for value in order:
                vs = vs.refine_ne(value)
            results.append(
                frozenset(v for v in range(256) if vs.may_equal(v))
            )
        assert results[0] == results[1]
        assert results[0] == frozenset(range(256)) - excluded

    @given(_REFINEMENT_OPS)
    def test_pick_is_always_a_member(self, ops):
        """Whatever survived the refinements, pick() is inside it."""
        try:
            vs = _apply_refinements(ValueSet.any_(8), ops)
        except Infeasible:
            return
        assert vs.may_equal(vs.pick())

    @given(st.integers(min_value=1, max_value=9))
    def test_infeasible_iff_domain_empties(self, width):
        """Excluding every domain value raises exactly at the last one."""
        vs = ValueSet.any_(width)
        domain = 1 << width
        for value in range(domain - 1):
            vs = vs.refine_ne(value)
        assert vs.may_equal(domain - 1)
        with pytest.raises(Infeasible):
            vs.refine_ne(domain - 1)

    @given(st.sets(st.integers(min_value=0, max_value=255),
                   min_size=128, max_size=255))
    def test_small_domain_switches_to_in(self, excluded):
        """Once exclusions cover half a narrow domain the set flips to
        the exact IN complement — and stays semantically identical."""
        vs = ValueSet.any_(8)
        for value in sorted(excluded):
            vs = vs.refine_ne(value)
        assert vs.kind == "in"
        assert vs.values == frozenset(range(256)) - excluded

    def test_wide_field_keeps_notin_and_first_gap_pick(self):
        """A 32-bit field excluding a dense prefix answers immediately
        from gap arithmetic instead of materializing the complement."""
        vs = ValueSet.any_(32)
        for value in range(64):
            vs = vs.refine_ne(value)
        assert vs.kind == "notin"
        assert vs.pick() == 64


class TestSymbolicState:
    def test_get_creates_any(self):
        state = SymbolicState()
        vs = state.get("ipv4.ttl", 8)
        assert vs.kind == "any"

    def test_constrain_eq_persists(self):
        state = SymbolicState()
        state.constrain_eq("ipv4.ttl", 8, 7)
        assert state.get("ipv4.ttl", 8).concrete_value == 7

    def test_fork_is_independent(self):
        state = SymbolicState()
        state.constrain_eq("a.b", 8, 1)
        fork = state.fork()
        fork.constrain_ne("c.d", 8, 0)
        assert "c.d" not in state.fields
        assert state.get("a.b", 8).concrete_value == 1

    def test_conflicting_constraints_raise(self):
        state = SymbolicState()
        state.constrain_eq("a.b", 8, 1)
        with pytest.raises(Infeasible):
            state.constrain_eq("a.b", 8, 2)

    def test_witness_value(self):
        state = SymbolicState()
        state.constrain_ne("a.b", 8, 0)
        assert state.witness_value("a.b", 8) != 0
        assert state.witness_value("fresh.field", 8, preferred=64) == 64

    def test_notes(self):
        state = SymbolicState()
        state.note("something")
        assert state.fork().notes == ["something"]

    def test_str_rendering(self):
        assert "any" in str(ValueSet.any_(8))
        assert "0x5" in str(ValueSet.concrete(8, 5))
