"""Regression suite record/replay tests."""

import pytest

from repro.exceptions import NetDebugError
from repro.netdebug.checker import ExpectedOutput
from repro.netdebug.regression import (
    RegressionSuite,
    record_suite,
    replay_suite,
)
from repro.p4.stdlib import strict_parser
from repro.packet.headers import ipv4
from repro.sim.traffic import default_flow, malformed_mix
from repro.target.reference import make_reference_device
from repro.target.sdnet import make_sdnet_device


def loaded(factory, name):
    device = factory(name)
    device.load(strict_parser())
    return device


@pytest.fixture
def frames():
    return [
        packet.pack()
        for packet, _ in malformed_mix(default_flow(), 20, 0.5, seed=6)
    ]


class TestRecord:
    def test_record_produces_one_expectation_per_frame(self, frames):
        device = loaded(make_reference_device, "rec0")
        suite = record_suite(device, frames, name="gold")
        assert len(suite.expectations) == len(frames)
        assert any(e.forbid for e in suite.expectations)      # drops
        assert any(not e.forbid for e in suite.expectations)  # forwards

    def test_mismatched_lengths_rejected(self):
        with pytest.raises(NetDebugError):
            RegressionSuite("bad", [b"x"], [])


class TestReplay:
    def test_replay_on_recording_device_passes(self, frames):
        device = loaded(make_reference_device, "rep0")
        suite = record_suite(device, frames)
        report = replay_suite(device, suite)
        assert report.passed
        assert report.injected == len(frames)

    def test_replay_on_deviant_target_fails(self, frames):
        """The core workflow: gold suite from spec, replay on hardware."""
        gold_device = loaded(make_reference_device, "rep-gold")
        suite = record_suite(gold_device, frames)
        sdnet = loaded(make_sdnet_device, "rep-sd")
        report = replay_suite(sdnet, suite)
        assert not report.passed
        leaks = report.findings_of("unexpected_output")
        malformed = sum(1 for e in suite.expectations if e.forbid)
        assert len(leaks) == malformed

    def test_replay_detects_control_plane_drift(self):
        """Same program, different table entries: replay catches it."""
        from repro.p4.stdlib import ipv4_router
        from repro.packet.builder import udp_packet
        from repro.packet.headers import mac

        gold = make_reference_device("rep-cp-gold")
        gold.load(ipv4_router())
        gold.control_plane.table_add(
            "ipv4_lpm", "route", [(ipv4("10.0.0.0"), 8)],
            [mac("aa:bb:cc:dd:ee:01"), 2],
        )
        frames = [
            udp_packet(ipv4("10.9.9.9"), ipv4("1.1.1.1"), 53, 9).pack()
        ]
        suite = record_suite(gold, frames)

        drifted = make_reference_device("rep-cp-drift")
        drifted.load(ipv4_router())
        drifted.control_plane.table_add(
            "ipv4_lpm", "route", [(ipv4("10.0.0.0"), 8)],
            [mac("aa:bb:cc:dd:ee:01"), 3],  # wrong port
        )
        report = replay_suite(drifted, suite)
        assert not report.passed


class TestPersistence:
    def test_save_load_roundtrip(self, tmp_path, frames):
        device = loaded(make_reference_device, "per0")
        suite = record_suite(device, frames, name="release-1")
        pcap_path, json_path = suite.save(tmp_path)
        assert pcap_path.exists() and json_path.exists()

        loaded_suite = RegressionSuite.load(tmp_path, "release-1")
        assert loaded_suite.frames == suite.frames
        assert loaded_suite.expectations == suite.expectations

    def test_loaded_suite_replays_identically(self, tmp_path, frames):
        gold = loaded(make_reference_device, "per-gold")
        record_suite(gold, frames, name="r2").save(tmp_path)
        suite = RegressionSuite.load(tmp_path, "r2")

        sdnet = loaded(make_sdnet_device, "per-sd")
        report = replay_suite(sdnet, suite)
        assert not report.passed

    def test_pcap_is_standard_format(self, tmp_path, frames):
        from repro.packet.pcap import read_pcap

        device = loaded(make_reference_device, "per-fmt")
        record_suite(device, frames, name="fmt").save(tmp_path)
        records = read_pcap(tmp_path / "fmt.pcap")
        assert [r.data for r in records] == frames


class TestContradictoryExpectations:
    """forbid=True plus output constraints is self-contradictory and
    must be rejected when a suite is built or loaded."""

    def test_forbid_with_fields_rejected(self):
        with pytest.raises(NetDebugError, match="forbid"):
            RegressionSuite(
                "bad-fields", [b"x"],
                [ExpectedOutput(forbid=True, fields={"ipv4.ttl": 63})],
            )

    def test_forbid_with_wire_rejected(self):
        with pytest.raises(NetDebugError, match="forbid"):
            RegressionSuite(
                "bad-wire", [b"x"],
                [ExpectedOutput(forbid=True, wire=b"x")],
            )

    def test_forbid_with_egress_rejected(self):
        with pytest.raises(NetDebugError, match="forbid"):
            RegressionSuite(
                "bad-port", [b"x"],
                [ExpectedOutput(forbid=True, egress_port=1)],
            )

    def test_contradictory_artifact_rejected_on_load(self, tmp_path):
        """A hand-edited artifact with a contradictory expectation must
        not load."""
        import json

        device = loaded(make_reference_device, "con0")
        frames = [
            packet.pack()
            for packet, _ in malformed_mix(default_flow(), 4, 0.0, seed=1)
        ]
        record_suite(device, frames, name="edited").save(tmp_path)
        json_path = tmp_path / "edited.expect.json"
        payload = json.loads(json_path.read_text())
        payload["expectations"][0]["forbid"] = True
        json_path.write_text(json.dumps(payload))
        with pytest.raises(NetDebugError, match="forbid"):
            RegressionSuite.load(tmp_path, "edited")

    def test_plain_forbid_still_fine(self):
        suite = RegressionSuite(
            "ok", [b"x"], [ExpectedOutput(forbid=True, label="drop")]
        )
        assert suite.expectations[0].forbid


class TestTruncatedPcapReplay:
    def test_truncated_record_refuses_load(self, tmp_path):
        import struct

        device = loaded(make_reference_device, "tr0")
        frames = [
            packet.pack()
            for packet, _ in malformed_mix(default_flow(), 3, 0.0, seed=2)
        ]
        record_suite(device, frames, name="cut").save(tmp_path)
        pcap_path = tmp_path / "cut.pcap"
        raw = bytearray(pcap_path.read_bytes())
        # Inflate the first record's orig_len past its incl_len.
        incl_len = struct.unpack_from("<I", raw, 24 + 8)[0]
        struct.pack_into("<I", raw, 24 + 12, incl_len + 42)
        pcap_path.write_bytes(bytes(raw))
        with pytest.raises(NetDebugError, match="truncated"):
            RegressionSuite.load(tmp_path, "cut")

    def test_intact_suite_still_loads(self, tmp_path):
        device = loaded(make_reference_device, "tr1")
        frames = [
            packet.pack()
            for packet, _ in malformed_mix(default_flow(), 3, 0.5, seed=3)
        ]
        record_suite(device, frames, name="whole").save(tmp_path)
        suite = RegressionSuite.load(tmp_path, "whole")
        assert suite.frames == frames


class TestFloodExpectationRoundTrip:
    def test_egress_ports_survive_save_load(self, tmp_path):
        """Flood (l2_switch broadcast) expectations keep their per-port
        expansion through the artifact format."""
        from repro.p4.stdlib import l2_switch
        from repro.packet.builder import udp_packet

        device = make_reference_device("flood-rt")
        device.load(l2_switch())
        frames = [
            udp_packet(ipv4("10.1.0.1"), ipv4("10.0.0.1"), 5000, 1024).pack()
        ]
        suite = record_suite(device, frames, name="flood")
        assert suite.expectations[0].egress_ports == tuple(range(1, 8))
        suite.save(tmp_path)
        loaded_suite = RegressionSuite.load(tmp_path, "flood")
        assert loaded_suite.expectations == suite.expectations
        report = replay_suite(device, loaded_suite)
        assert report.passed
