"""System-level property tests (hypothesis) across module boundaries.

These pin down invariants that hold for *arbitrary* inputs, not just the
curated cases: interpreter determinism, device/interpreter agreement,
oracle self-consistency, deparse round-trip stability, and the
statistical quality of ECMP spreading.
"""

from hypothesis import given, settings, strategies as st

from repro.controlplane import RuntimeAPI
from repro.netdebug.session import reference_expectation
from repro.p4.interpreter import Interpreter, RuntimeState, Verdict
from repro.p4.stdlib import ecmp_load_balancer, ipv4_router, strict_parser
from repro.packet.builder import udp_packet
from repro.packet.headers import ipv4, mac


def routed_router():
    program = ipv4_router()
    RuntimeAPI(program, RuntimeState.for_program(program)).table_add(
        "ipv4_lpm", "route", [(ipv4("10.0.0.0"), 8)],
        [mac("aa:bb:cc:dd:ee:01"), 2],
    )
    return program


udp_args = st.tuples(
    st.integers(min_value=0, max_value=0xFFFFFFFF),  # dst ip
    st.integers(min_value=0, max_value=0xFFFFFFFF),  # src ip
    st.integers(min_value=0, max_value=0xFFFF),      # dst port
    st.integers(min_value=0, max_value=0xFFFF),      # src port
    st.integers(min_value=0, max_value=255),         # ttl
    st.binary(max_size=32),                          # payload
)


def build_wire(args) -> bytes:
    dst, src, dport, sport, ttl, payload = args
    return udp_packet(
        dst, src, dport, sport, ttl=ttl, payload=payload
    ).pack()


class TestInterpreterDeterminism:
    @given(udp_args)
    @settings(max_examples=40)
    def test_same_input_same_output(self, args):
        wire = build_wire(args)
        program = routed_router()
        a = Interpreter(program).process(wire)
        b = Interpreter(program).process(wire)
        assert a.verdict == b.verdict
        if a.packet is not None:
            assert a.packet.pack() == b.packet.pack()
            assert a.metadata["egress_spec"] == b.metadata["egress_spec"]

    @given(udp_args)
    @settings(max_examples=40)
    def test_device_agrees_with_interpreter(self, args):
        """A reference device is the interpreter plus plumbing."""
        from repro.target.reference import make_reference_device

        wire = build_wire(args)
        program = routed_router()
        interp_result = Interpreter(program).process(wire)

        device = make_reference_device("prop-dev")
        device.load(routed_router())
        run = device.inject(wire)
        assert run.result.verdict == interp_result.verdict
        if interp_result.packet is not None:
            assert run.result.packet.pack() == interp_result.packet.pack()


class TestOracleConsistency:
    @given(udp_args)
    @settings(max_examples=40)
    def test_oracle_never_contradicts_reference_device(self, args):
        """What the oracle predicts, the faithful target does."""
        from repro.target.reference import make_reference_device

        wire = build_wire(args)
        device = make_reference_device("prop-oracle")
        device.load(routed_router())
        expectation = reference_expectation(device.program, wire)
        run = device.inject(wire)
        if expectation.forbid:
            assert run.result.verdict is not Verdict.FORWARDED
        else:
            assert run.result.verdict is Verdict.FORWARDED
            assert run.result.packet.pack() == expectation.wire
            assert (
                run.result.metadata["egress_spec"]
                == expectation.egress_port
            )


class TestRejectPartition:
    @given(udp_args)
    @settings(max_examples=40)
    def test_verdicts_partition_on_honor_reject(self, args):
        """honor_reject only ever flips PARSER_REJECTED to FORWARDED."""
        wire = build_wire(args)
        program = strict_parser()
        faithful = Interpreter(program, honor_reject=True).process(wire)
        deviant = Interpreter(program, honor_reject=False).process(wire)
        if faithful.verdict is Verdict.PARSER_REJECTED:
            assert deviant.verdict is Verdict.FORWARDED
        else:
            assert faithful.verdict == deviant.verdict
            assert faithful.packet.pack() == deviant.packet.pack()


class TestDeparseStability:
    @given(udp_args)
    @settings(max_examples=40)
    def test_reprocessing_output_is_stable(self, args):
        """Pushing a forwarded packet through again is idempotent
        modulo the TTL decrement."""
        wire = build_wire(args)
        program = routed_router()
        first = Interpreter(program).process(wire)
        if first.verdict is not Verdict.FORWARDED or not first.packet.has(
            "ipv4"
        ):
            return
        second = Interpreter(program).process(first.packet.pack())
        if second.verdict is Verdict.FORWARDED and second.packet.has("ipv4"):
            assert (
                second.packet.get("ipv4")["ttl"]
                == first.packet.get("ipv4")["ttl"] - 1
            )


class TestEcmpSpreadQuality:
    def test_chi_square_balance(self):
        """Hash spreading over buckets is statistically uniform."""
        from scipy import stats

        group = 8
        program = ecmp_load_balancer(group_size=group)
        api = RuntimeAPI(program, RuntimeState.for_program(program))
        for bucket in range(group):
            api.table_add(
                "ecmp_group", "to_nexthop", [bucket], [bucket + 1, bucket]
            )
        interp = Interpreter(program)
        counts = [0] * group
        for sport in range(2000):
            wire = udp_packet(
                ipv4("10.0.0.9"), ipv4("10.1.0.1"), 80, sport
            ).pack()
            result = interp.process(wire)
            assert result.verdict is Verdict.FORWARDED
            counts[result.egress_port] += 1
        # Chi-square goodness of fit against the uniform distribution.
        _, p_value = stats.chisquare(counts)
        assert p_value > 0.001, f"ECMP severely imbalanced: {counts}"
        assert min(counts) > 0
