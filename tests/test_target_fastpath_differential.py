"""Differential property suite: compiled fast path ≡ tree-walking.

The tentpole perf claim only counts if the compiled execution engine is
*semantically invisible*: for every stdlib program, on both targets,
over a workload mixing valid, malformed, multi-protocol and degenerate
frames, the closure-compiled pipeline must produce exactly the verdicts,
output bytes, egress ports and stateful-object contents that tree-walking
interpretation produces — and, for the reference target, exactly what
the raw spec interpreter produces.
"""

import pytest

from repro.controlplane import RuntimeAPI
from repro.p4.interpreter import Interpreter, RuntimeState, Verdict
from repro.p4.stdlib import PROGRAMS
from repro.p4.stdlib_ext import int_telemetry, stateful_firewall
from repro.packet.builder import ethernet_frame, tcp_packet, udp_packet, vlan_tagged
from repro.packet.headers import ipv4, mac
from repro.sim.traffic import default_flow, imix_stream, malformed_mix
from repro.target.reference import ReferenceCompiler, make_reference_device
from repro.target.sdnet import SDNetCompiler

ALL_FACTORIES = dict(PROGRAMS)
ALL_FACTORIES["stateful_firewall"] = stateful_firewall
ALL_FACTORIES["int_telemetry"] = int_telemetry


def workload() -> list[bytes]:
    """Valid, malformed, multi-protocol and degenerate frames."""
    frames = [
        packet.pack()
        for packet, _ in malformed_mix(default_flow(), 24, 0.5, seed=2018)
    ]
    frames += [p.pack() for p in imix_stream(default_flow(), 12, seed=7)]
    frames += [
        tcp_packet(ipv4("10.1.2.3"), ipv4("10.3.2.1"), 80, 4242).pack(),
        vlan_tagged(
            udp_packet(ipv4("10.0.0.9"), ipv4("10.9.0.0"), 53, 99), vid=5
        ).pack(),
        ethernet_frame(
            mac("02:00:00:00:00:02"), mac("02:00:00:00:00:01"), 0x0800
        ).pack(),
        ethernet_frame(1, 2, 0x88B5, payload=b"probe-ish").pack(),
    ]
    return frames


def install_entries(device) -> None:
    """Exercise the table paths: entries for every stdlib table shape."""
    control: RuntimeAPI = device.control_plane
    program = device.program
    tables = program.all_tables()
    if "ipv4_lpm" in tables:
        control.table_add(
            "ipv4_lpm", "route", [(ipv4("10.0.0.0"), 8)],
            [mac("aa:bb:cc:dd:ee:01"), 2],
        )
    if "dmac" in tables:
        control.table_add(
            "dmac", "forward", [mac("02:00:00:00:00:02")], [1]
        )
    if "acl" in tables:
        control.table_add(
            "acl", "deny",
            [
                (ipv4("10.0.0.0"), 0xFF000000),
                (0, 0),
                (17, 0xFF),
                (0, 0),
                (53, 0xFFFF),
            ],
            [],
            priority=10,
        )
    if "fwd" in tables:
        control.table_add(
            "fwd", "forward", [mac("02:00:00:00:00:02")], [3]
        )
    if "fec" in tables:
        control.table_add(
            "fec", "push_label", [(ipv4("10.0.0.0"), 8)], [42, 2]
        )
    if "vlan_fwd" in tables:
        control.table_add(
            "vlan_fwd", "forward", [5, mac("02:00:00:00:00:02")], [2]
        )
    if "ecmp_group" in tables:
        for bucket in range(4):
            control.table_add(
                "ecmp_group", "to_nexthop", [bucket],
                [mac("aa:00:00:00:00:01") + bucket, bucket],
            )


def run_one(device, wire: bytes, timestamp=None):
    """One frame through a device; normalizes outcome + raised errors."""
    try:
        run = device.inject(wire, timestamp=timestamp)
    except Exception as exc:  # deviant targets can hit runtime errors
        return ("raised", type(exc).__name__, str(exc))
    result = run.result
    return (
        result.verdict.value,
        result.metadata.get("egress_spec"),
        result.packet.pack() if result.packet is not None else None,
        run.died_at,
        run.latency_cycles,
    )


@pytest.mark.parametrize("compiler_cls", [ReferenceCompiler, SDNetCompiler])
@pytest.mark.parametrize("name", sorted(ALL_FACTORIES))
def test_compiled_matches_interpreted(name, compiler_cls):
    """Identical verdicts/outputs/state across every program and target."""
    from repro.exceptions import CompileError
    from repro.target.device import NetworkDevice

    devices = []
    for mode in (True, False):
        device = NetworkDevice(
            f"diff-{name}-{mode}", compiler_cls(), num_ports=8,
            use_compiled=mode,
        )
        try:
            device.load(ALL_FACTORIES[name]())
        except CompileError:
            pytest.skip(f"{name} does not fit {compiler_cls.__name__}")
        install_entries(device)
        devices.append(device)
    compiled_device, interpreted_device = devices

    for index, wire in enumerate(workload()):
        fast = run_one(compiled_device, wire)
        slow = run_one(interpreted_device, wire)
        assert fast == slow, f"{name} frame {index}: {fast} != {slow}"

    # Stateful objects must agree cell for cell after the whole run.
    fast_state = compiled_device.pipeline.state
    slow_state = interpreted_device.pipeline.state
    assert fast_state.counters == slow_state.counters
    assert fast_state.registers == slow_state.registers


@pytest.mark.parametrize("name", sorted(ALL_FACTORIES))
def test_compiled_matches_spec_interpreter(name):
    """On the reference target the fast path IS the spec semantics."""
    device = make_reference_device(f"spec-{name}")
    device.load(ALL_FACTORIES[name]())
    install_entries(device)
    program = ALL_FACTORIES[name]()
    # Mirror the device's installed entries onto the bare program.
    shadow = type(
        "Shadow", (), {"control_plane": None, "program": program}
    )()
    shadow.control_plane = RuntimeAPI(
        program, RuntimeState.for_program(program)
    )
    install_entries(shadow)
    interpreter = Interpreter(program, honor_reject=True)

    for index, wire in enumerate(workload()):
        # Pin the timestamp: the device clock advances per packet, the
        # bare interpreter's defaults to zero.
        fast = run_one(device, wire, timestamp=0)
        try:
            result = interpreter.process(wire)
        except Exception as exc:
            assert fast[0] == "raised", f"{name} frame {index}"
            assert fast[1] == type(exc).__name__
            continue
        assert fast[0] == result.verdict.value, f"{name} frame {index}"
        if result.verdict is Verdict.FORWARDED:
            assert fast[1] == result.metadata["egress_spec"]
            assert fast[2] == result.packet.pack()


def test_drop_then_clear_matches_interpreter():
    """A later ingress statement may clear the drop flag; the staged
    pipeline must honor the whole control block like the interpreter
    does (drop is a flag checked at the control boundary, not a kill
    switch at the statement that set it)."""
    from repro.p4.actions import Drop, Forward
    from repro.p4.dsl import ProgramBuilder
    from repro.p4.expr import Const
    from repro.packet.headers import ETHERNET

    def deny_then_allow():
        b = ProgramBuilder("deny_then_allow")
        b.header(ETHERNET)
        b.parser_state("start", extracts=["ethernet"]).accept()
        b.ingress.action("deny", [], [Drop()])
        b.ingress.action("allow", [], [Forward(Const(2, 9))])
        b.ingress.call("deny")
        b.ingress.call("allow")
        b.emit("ethernet")
        return b.build()

    wire = ethernet_frame(1, 2, 0x0800, payload=b"x").pack()
    expected = Interpreter(deny_then_allow()).process(wire)
    assert expected.verdict is Verdict.FORWARDED  # allow wins

    for mode in (True, False):
        device = make_reference_device(f"dtc-{mode}", use_compiled=mode)
        device.load(deny_then_allow())
        run = device.inject(wire, timestamp=0)
        assert run.result.verdict is Verdict.FORWARDED
        assert run.result.packet.pack() == expected.packet.pack()
        assert run.result.metadata["egress_spec"] == 2


def test_batched_paths_match_single_packet():
    """process_batch/inject_batch are pure amortizations of the
    per-packet calls: outputs and stats must be identical."""
    frames = workload()

    def build():
        device = make_reference_device("batch")
        device.load(PROGRAMS["l2_switch"]())
        install_entries(device)
        return device

    single = build()
    single_outputs = [single.process(wire, 0) for wire in frames]
    batched = build()
    batched_outputs = batched.process_batch(frames, 0)
    assert single_outputs == batched_outputs
    assert single.stats == batched.stats
    assert [
        (p.rx_packets, p.tx_packets) for p in single.ports
    ] == [(p.rx_packets, p.tx_packets) for p in batched.ports]

    injected = build()
    runs = injected.inject_batch(frames)
    assert len(runs) == len(frames)
    reference = build()
    for (timestamp, run), wire in zip(runs, frames):
        expected = reference.inject(wire)
        assert run.result.verdict == expected.result.verdict
        assert run.latency_cycles == expected.latency_cycles
    # Injection never touches the traffic ports, batched or not.
    assert all(p.rx_packets == 0 for p in injected.ports)
