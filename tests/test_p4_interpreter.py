"""Interpreter semantics: parsing, controls, primitives, verdicts."""

import pytest

from repro.exceptions import P4RuntimeError
from repro.p4.actions import (
    AddHeader,
    CountPacket,
    Drop,
    Exit,
    Forward,
    HashField,
    RegisterRead,
    RegisterWrite,
    RemoveHeader,
    SetField,
    SetMeta,
)
from repro.p4.control import Call, If
from repro.p4.dsl import ProgramBuilder
from repro.p4.expr import Const, fld, meta
from repro.p4.interpreter import Interpreter, RuntimeState, Verdict
from repro.p4.parser import ACCEPT, REJECT
from repro.p4.stdlib import ipv4_router, strict_parser
from repro.p4.types import (
    PARSER_ERROR_HEADER_TOO_SHORT,
    PARSER_ERROR_REJECT,
    PARSER_ERROR_VERIFY_FAILED,
)
from repro.packet.builder import ethernet_frame, udp_packet
from repro.packet.headers import ETHERNET, ETHERTYPE_IPV4, IPV4, ipv4, mac


def minimal_program(body_builder=None, name="mini"):
    """Ethernet-only pass-through with an optional extra ingress action."""
    b = ProgramBuilder(name)
    b.header(ETHERNET)
    b.parser_state("start", extracts=["ethernet"]).accept()
    b.ingress.action("out", [], [Forward(Const(1, 9))])
    b.ingress.call("out")
    if body_builder is not None:
        body_builder(b)
    b.emit("ethernet")
    return b


def run(program, wire, **kwargs):
    return Interpreter(program).process(wire, **kwargs)


class TestParsing:
    def test_simple_accept(self):
        program = minimal_program().build()
        frame = ethernet_frame(2, 1, 0x1234, payload=b"pp")
        result = run(program, frame.pack())
        assert result.verdict is Verdict.FORWARDED
        assert result.packet.get("ethernet")["ether_type"] == 0x1234
        assert result.packet.payload == b"pp"

    def test_truncated_header_rejects(self):
        program = minimal_program().build()
        result = run(program, b"\x00\x01\x02")
        assert result.verdict is Verdict.PARSER_REJECTED
        assert result.metadata["parser_error"] == PARSER_ERROR_HEADER_TOO_SHORT

    def test_explicit_reject_code(self):
        program = strict_parser()
        frame = ethernet_frame(1, 2, 0xBEEF, payload=b"x" * 30)
        result = run(program, frame.pack())
        assert result.verdict is Verdict.PARSER_REJECTED
        assert result.metadata["parser_error"] == PARSER_ERROR_REJECT

    def test_verify_failure_code(self):
        program = strict_parser()
        packet = udp_packet(ipv4("1.1.1.1"), ipv4("2.2.2.2"), 53, 1)
        packet.get("ipv4")["version"] = 7
        result = run(program, packet.pack())
        assert result.verdict is Verdict.PARSER_REJECTED
        assert (
            result.metadata["parser_error"] == PARSER_ERROR_VERIFY_FAILED
        )

    def test_select_default_taken(self):
        b = ProgramBuilder("sel")
        b.header(ETHERNET)
        b.header(IPV4)
        b.parser_state("start", extracts=["ethernet"]).select(
            fld("ethernet", "ether_type"),
            [(ETHERTYPE_IPV4, "parse_ipv4")],
            default=ACCEPT,
        )
        b.parser_state("parse_ipv4", extracts=["ipv4"]).accept()
        b.ingress.action("out", [], [Forward(Const(0, 9))])
        b.ingress.call("out")
        b.emit("ethernet", "ipv4")
        program = b.build()
        frame = ethernet_frame(1, 2, 0x9999)
        result = run(program, frame.pack())
        assert result.verdict is Verdict.FORWARDED
        assert not result.packet.has("ipv4")

    def test_parser_trace_events(self):
        program = strict_parser()
        packet = udp_packet(ipv4("1.1.1.1"), ipv4("2.2.2.2"), 53, 1)
        result = run(program, packet.pack())
        kinds = [e.kind for e in result.trace.events]
        assert "parser_state" in kinds
        assert "parser_extract" in kinds
        assert "parser_accept" in kinds

    def test_cyclic_parser_terminates(self):
        b = ProgramBuilder("cyc")
        b.header(ETHERNET)
        b.parser_state("start").goto("loop")
        b.parser_state("loop").goto("start")
        b.emit("ethernet")
        program = b.build()
        result = run(program, b"\x00" * 64)
        assert result.verdict is Verdict.PARSER_REJECTED


class TestRejectDeviation:
    """The honor_reject=False path models the SDNet bug."""

    def test_explicit_reject_ignored(self):
        program = strict_parser()
        frame = ethernet_frame(1, 2, 0xBEEF, payload=b"x" * 30)
        result = Interpreter(program, honor_reject=False).process(
            frame.pack()
        )
        assert result.verdict is Verdict.FORWARDED

    def test_verify_failure_ignored(self):
        program = strict_parser()
        packet = udp_packet(ipv4("1.1.1.1"), ipv4("2.2.2.2"), 53, 1)
        packet.get("ipv4")["version"] = 9
        result = Interpreter(program, honor_reject=False).process(
            packet.pack()
        )
        assert result.verdict is Verdict.FORWARDED

    def test_trace_records_ignored_reject(self):
        program = strict_parser()
        frame = ethernet_frame(1, 2, 0xBEEF, payload=b"x" * 30)
        result = Interpreter(program, honor_reject=False).process(
            frame.pack()
        )
        assert result.trace.of_kind("parser_reject_ignored")

    def test_parser_error_metadata_still_set(self):
        program = strict_parser()
        frame = ethernet_frame(1, 2, 0xBEEF, payload=b"x" * 30)
        result = Interpreter(program, honor_reject=False).process(
            frame.pack()
        )
        assert result.metadata["parser_error"] != 0

    def test_good_packets_identical_either_way(self):
        program = strict_parser()
        packet = udp_packet(ipv4("1.1.1.1"), ipv4("2.2.2.2"), 53, 1)
        faithful = Interpreter(program).process(packet.pack())
        deviant = Interpreter(program, honor_reject=False).process(
            packet.pack()
        )
        assert faithful.packet.pack() == deviant.packet.pack()


class TestPrimitives:
    def test_set_field_and_meta(self):
        def extra(b):
            b.metadata("note", 8)
            b.ingress.action(
                "mark",
                [],
                [
                    SetField("ethernet", "src_addr", Const(0xAB, 48)),
                    SetMeta("note", Const(7, 8)),
                ],
            )
            b.ingress.call("mark")

        program = minimal_program(extra).build()
        result = run(program, ethernet_frame(1, 2, 3).pack())
        assert result.packet.get("ethernet")["src_addr"] == 0xAB
        assert result.metadata["note"] == 7

    def test_set_field_truncates(self):
        def extra(b):
            b.ingress.action(
                "big",
                [],
                [SetField("ethernet", "ether_type",
                          Const(0x1FFFF, 17))],
            )
            b.ingress.call("big")

        program = minimal_program(extra).build(validate=True)
        result = run(program, ethernet_frame(1, 2, 3).pack())
        assert result.packet.get("ethernet")["ether_type"] == 0xFFFF

    def test_add_remove_header(self):
        b = ProgramBuilder("addrm")
        b.header(ETHERNET)
        b.header(IPV4)
        b.parser_state("start", extracts=["ethernet"]).accept()
        b.ingress.action(
            "wrap",
            [],
            [
                AddHeader("ipv4", after="ethernet"),
                SetField("ipv4", "ttl", Const(9, 8)),
                Forward(Const(0, 9)),
            ],
        )
        b.ingress.call("wrap")
        b.emit("ethernet", "ipv4")
        program = b.build()
        result = run(program, ethernet_frame(1, 2, 3).pack())
        assert result.packet.has("ipv4")
        assert result.packet.get("ipv4")["ttl"] == 9

        # now remove it again in egress
        b2 = ProgramBuilder("rm")
        b2.header(ETHERNET)
        b2.header(IPV4)
        b2.parser_state("start", extracts=["ethernet", "ipv4"]).accept()
        b2.ingress.action(
            "strip", [], [RemoveHeader("ipv4"), Forward(Const(0, 9))]
        )
        b2.ingress.call("strip")
        b2.emit("ethernet", "ipv4")
        program2 = b2.build()
        wire = (
            ethernet_frame(1, 2, ETHERTYPE_IPV4).pack()
            + bytes(IPV4.byte_width)
        )
        result2 = run(program2, wire)
        assert not result2.packet.has("ipv4")

    def test_drop(self):
        def extra(b):
            b.ingress.action("kill", [], [Drop()])
            b.ingress.call("kill")

        program = minimal_program(extra).build()
        result = run(program, ethernet_frame(1, 2, 3).pack())
        assert result.verdict is Verdict.DROPPED
        assert result.packet is None

    def test_forward_clears_drop(self):
        def extra(b):
            b.ingress.action("kill", [], [Drop()])
            b.ingress.action("save", [], [Forward(Const(2, 9))])
            b.ingress.call("kill")
            b.ingress.call("save")

        program = minimal_program(extra).build()
        result = run(program, ethernet_frame(1, 2, 3).pack())
        assert result.verdict is Verdict.FORWARDED
        assert result.egress_port == 2

    def test_counter(self):
        def extra(b):
            b.counter("hits", 4)
            b.ingress.action(
                "count", [], [CountPacket("hits", meta("ingress_port"))]
            )
            b.ingress.call("count")

        program = minimal_program(extra).build()
        interp = Interpreter(program)
        wire = ethernet_frame(1, 2, 3).pack()
        interp.process(wire, ingress_port=2)
        interp.process(wire, ingress_port=2)
        interp.process(wire, ingress_port=1)
        assert interp.state.counter_value("hits", 2) == 2
        assert interp.state.counter_value("hits", 1) == 1

    def test_counter_out_of_range(self):
        def extra(b):
            b.counter("hits", 2)
            b.ingress.action(
                "count", [], [CountPacket("hits", Const(5, 8))]
            )
            b.ingress.call("count")

        program = minimal_program(extra).build()
        with pytest.raises(P4RuntimeError):
            run(program, ethernet_frame(1, 2, 3).pack())

    def test_register_write_read(self):
        def extra(b):
            b.register("last", 4, 16)
            b.metadata("seen", 16)
            b.ingress.action(
                "store",
                [],
                [
                    RegisterWrite("last", Const(1, 8), Const(0xBEEF, 16)),
                    RegisterRead("last", Const(1, 8), "seen"),
                ],
            )
            b.ingress.call("store")

        program = minimal_program(extra).build()
        interp = Interpreter(program)
        result = interp.process(ethernet_frame(1, 2, 3).pack())
        assert interp.state.register_value("last", 1) == 0xBEEF
        assert result.metadata["seen"] == 0xBEEF

    def test_register_width_truncates(self):
        def extra(b):
            b.register("r", 1, 4)
            b.ingress.action(
                "w", [], [RegisterWrite("r", Const(0, 1), Const(0xFF, 8))]
            )
            b.ingress.call("w")

        program = minimal_program(extra).build()
        interp = Interpreter(program)
        interp.process(ethernet_frame(1, 2, 3).pack())
        assert interp.state.register_value("r", 0) == 0xF

    def test_hash_deterministic(self):
        def extra(b):
            b.metadata("bucket", 16)
            b.ingress.action(
                "h",
                [],
                [
                    HashField(
                        "bucket",
                        (fld("ethernet", "dst_addr"),
                         fld("ethernet", "src_addr")),
                        8,
                    )
                ],
            )
            b.ingress.call("h")

        program = minimal_program(extra).build()
        wire = ethernet_frame(0x11, 0x22, 3).pack()
        a = run(program, wire).metadata["bucket"]
        b2 = run(program, wire).metadata["bucket"]
        assert a == b2
        assert 0 <= a < 8

    def test_exit_stops_processing(self):
        def extra(b):
            b.ingress.action("bail", [], [Exit()])
            b.ingress.action("after", [], [Drop()])
            b.ingress.call("bail")
            b.ingress.call("after")

        program = minimal_program(extra).build()
        result = run(program, ethernet_frame(1, 2, 3).pack())
        # Exit unwound before the Drop: still forwarded by "out".
        assert result.verdict is Verdict.FORWARDED


class TestControlFlow:
    def test_if_else(self):
        b = ProgramBuilder("ife")
        b.header(ETHERNET)
        b.parser_state("start", extracts=["ethernet"]).accept()
        b.ingress.action("left", [], [Forward(Const(1, 9))])
        b.ingress.action("right", [], [Forward(Const(2, 9))])
        b.ingress.when(
            fld("ethernet", "ether_type").eq(0x0800),
            Call("left"),
            Call("right"),
        )
        b.emit("ethernet")
        program = b.build()
        left = run(program, ethernet_frame(1, 2, 0x0800).pack())
        right = run(program, ethernet_frame(1, 2, 0x9999).pack())
        assert left.egress_port == 1
        assert right.egress_port == 2

    def test_if_hit_branches(self):
        from repro.p4.table import KeyPattern, TableEntry

        b = ProgramBuilder("ifh")
        b.header(ETHERNET)
        b.parser_state("start", extracts=["ethernet"]).accept()
        table = b.ingress.table("t")
        table.key(fld("ethernet", "dst_addr"), "exact", "dst")
        table.action("seen", [], [])
        b.ingress.action("known", [], [Forward(Const(1, 9))])
        b.ingress.action("unknown", [], [Forward(Const(2, 9))])
        b.ingress.on_hit("t", Call("known"), Call("unknown"))
        b.emit("ethernet")
        program = b.build()
        program.table("t").insert(
            TableEntry((KeyPattern.exact(0xAA),), "seen", ())
        )
        hit = run(program, ethernet_frame(0xAA, 1, 3).pack())
        miss = run(program, ethernet_frame(0xBB, 1, 3).pack())
        assert hit.egress_port == 1
        assert miss.egress_port == 2

    def test_egress_runs_after_ingress(self):
        b = ProgramBuilder("egr")
        b.header(ETHERNET)
        b.parser_state("start", extracts=["ethernet"]).accept()
        b.ingress.action("out", [], [Forward(Const(1, 9))])
        b.ingress.call("out")
        b.egress.action(
            "stamp", [], [SetField("ethernet", "src_addr", Const(0xE9, 48))]
        )
        b.egress.call("stamp")
        b.emit("ethernet")
        program = b.build()
        result = run(program, ethernet_frame(1, 2, 3).pack())
        assert result.packet.get("ethernet")["src_addr"] == 0xE9

    def test_egress_skipped_on_drop(self):
        b = ProgramBuilder("egs")
        b.header(ETHERNET)
        b.parser_state("start", extracts=["ethernet"]).accept()
        b.ingress.action("kill", [], [Drop()])
        b.ingress.call("kill")
        b.egress.action("revive", [], [Forward(Const(1, 9))])
        b.egress.call("revive")
        b.emit("ethernet")
        program = b.build()
        result = run(program, ethernet_frame(1, 2, 3).pack())
        assert result.verdict is Verdict.DROPPED


class TestDeparsing:
    def test_emit_order_respected(self):
        b = ProgramBuilder("dep")
        b.header(ETHERNET)
        b.header(IPV4)
        b.parser_state("start", extracts=["ethernet", "ipv4"]).accept()
        b.ingress.action("out", [], [Forward(Const(0, 9))])
        b.ingress.call("out")
        # Deliberately unusual order: ipv4 before ethernet.
        b.emit("ipv4", "ethernet")
        program = b.build()
        wire = ethernet_frame(1, 2, ETHERTYPE_IPV4).pack() + bytes(20)
        result = run(program, wire)
        assert result.packet.header_names() == ["ipv4", "ethernet"]

    def test_payload_preserved(self):
        program = minimal_program().build()
        frame = ethernet_frame(1, 2, 3, payload=b"PAYLOAD")
        result = run(program, frame.pack())
        assert result.packet.payload == b"PAYLOAD"

    def test_metadata_ingress_values(self):
        program = minimal_program().build()
        frame = ethernet_frame(1, 2, 3, payload=b"123")
        result = run(program, frame.pack(), ingress_port=5, timestamp=777)
        assert result.metadata["ingress_port"] == 5
        assert result.metadata["ingress_global_timestamp"] == 777
        assert result.metadata["packet_length"] == frame.wire_length
        assert result.metadata["egress_port"] == result.metadata["egress_spec"]


class TestRouterEndToEnd:
    def test_route_rewrites_and_decrements(self):
        from repro.p4.table import KeyPattern, TableEntry

        program = ipv4_router()
        program.table("ipv4_lpm").insert(
            TableEntry(
                (KeyPattern.lpm(ipv4("10.0.0.0"), 8),),
                "route",
                (mac("aa:bb:cc:dd:ee:ff"), 3),
            )
        )
        packet = udp_packet(ipv4("10.1.2.3"), ipv4("192.168.0.1"), 53, 99)
        result = run(program, packet.pack())
        assert result.verdict is Verdict.FORWARDED
        assert result.egress_port == 3
        out = result.packet
        assert out.get("ipv4")["ttl"] == 63
        assert out.get("ethernet")["dst_addr"] == mac("aa:bb:cc:dd:ee:ff")

    def test_no_route_drops(self):
        program = ipv4_router()
        packet = udp_packet(ipv4("10.1.2.3"), ipv4("192.168.0.1"), 53, 99)
        result = run(program, packet.pack())
        assert result.verdict is Verdict.DROPPED

    def test_ttl_one_drops(self):
        from repro.p4.table import KeyPattern, TableEntry

        program = ipv4_router()
        program.table("ipv4_lpm").insert(
            TableEntry(
                (KeyPattern.lpm(ipv4("10.0.0.0"), 8),),
                "route",
                (1, 1),
            )
        )
        packet = udp_packet(
            ipv4("10.1.2.3"), ipv4("192.168.0.1"), 53, 99, ttl=1
        )
        result = run(program, packet.pack())
        assert result.verdict is Verdict.DROPPED

    def test_non_ipv4_passthrough_drops_by_default(self):
        program = ipv4_router()
        frame = ethernet_frame(1, 2, 0x9999)
        result = run(program, frame.pack())
        # Not IPv4: ingress does nothing, egress_spec stays 0 -> forwarded
        # out port 0 per the metadata default.
        assert result.verdict is Verdict.FORWARDED
        assert result.egress_port == 0
