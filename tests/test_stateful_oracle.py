"""Session-scoped stateful oracle: register round-trips and identity.

The oracle refactor's contract, pinned end to end:

* **register round-trip** — an outbound ``stateful_firewall`` packet
  opens a flow slot, after which the oracle predicts (and every engine
  delivers) the return-path packet *forwarded*; a cold inbound packet
  is predicted (and observed) dropped;
* **stateless control** — :class:`StatelessOracle` reproduces the
  historical fresh-state-per-packet prediction, so it must keep
  forbidding the return path even after the outbound packet;
* **engine identity** — register-bearing programs take the batch
  kernel's packet-major schedule, so the stateful session protocol is
  block-compatible and reports match the lockstep path byte-for-byte;
* **distribution identity** — the seeded ``stateful_firewall`` ×
  ``tcp_bidir`` campaign renders to identical JSON bytes run serially,
  on a 4-worker pool, and on a 2-worker localhost cluster.
"""

import pytest

from repro.netdebug.campaign import ScenarioMatrix, run_campaign
from repro.netdebug.generator import StreamSpec
from repro.netdebug.oracle import ORACLES, ReferenceOracle, StatelessOracle
from repro.netdebug.session import ValidationSession, run_session
from repro.p4.stdlib import strict_parser
from repro.p4.stdlib_ext import stateful_firewall
from repro.packet.builder import udp_packet
from repro.packet.headers import ipv4
from repro.sim.traffic import (
    INSIDE_PORT,
    OUTSIDE_PORT,
    bidirectional_flows,
    default_flow,
)
from repro.target.device import NetworkDevice
from repro.target.reference import ReferenceCompiler

ENGINES = ("tree", "closure", "batch")


def make_device(engine, name="sfw"):
    device = NetworkDevice(
        name, ReferenceCompiler(), num_ports=8, engine=engine
    )
    device.load(stateful_firewall())
    return device


def outbound_wire() -> bytes:
    """Inside host 10.0.0.1:1234 → outside host 10.9.0.1:4321."""
    return udp_packet(ipv4("10.9.0.1"), ipv4("10.0.0.1"), 4321, 1234).pack()


def inbound_wire() -> bytes:
    """The exact reply five-tuple of :func:`outbound_wire`."""
    return udp_packet(ipv4("10.0.0.1"), ipv4("10.9.0.1"), 1234, 4321).pack()


# ---------------------------------------------------------------------------
# Register round-trip: oracle prediction ≡ device behaviour
# ---------------------------------------------------------------------------

class TestRegisterRoundTrip:
    def test_oracle_threads_flow_state(self):
        oracle = ReferenceOracle(stateful_firewall(), num_ports=8)
        opened = oracle.expect(outbound_wire(), ingress_port=INSIDE_PORT)
        assert not opened.forbid and opened.egress_port == OUTSIDE_PORT
        reply = oracle.expect(inbound_wire(), ingress_port=OUTSIDE_PORT)
        assert not reply.forbid and reply.egress_port == INSIDE_PORT

    def test_cold_inbound_is_forbidden(self):
        oracle = ReferenceOracle(stateful_firewall(), num_ports=8)
        cold = oracle.expect(inbound_wire(), ingress_port=OUTSIDE_PORT)
        assert cold.forbid

    def test_reset_forgets_open_flows(self):
        oracle = ReferenceOracle(stateful_firewall(), num_ports=8)
        oracle.expect(outbound_wire(), ingress_port=INSIDE_PORT)
        oracle.reset()
        assert oracle.expect(
            inbound_wire(), ingress_port=OUTSIDE_PORT
        ).forbid

    def test_stateless_oracle_keeps_historical_semantics(self):
        oracle = StatelessOracle(stateful_firewall(), num_ports=8)
        oracle.expect(outbound_wire(), ingress_port=INSIDE_PORT)
        # Fresh state per packet: the return path stays forbidden.
        assert oracle.expect(
            inbound_wire(), ingress_port=OUTSIDE_PORT
        ).forbid

    def test_registry_names_the_two_semantics(self):
        assert ORACLES["stateful"] is ReferenceOracle
        assert ORACLES["stateless"] is StatelessOracle
        assert ReferenceOracle.stateful and not StatelessOracle.stateful

    @pytest.mark.parametrize("engine", ENGINES)
    def test_device_agrees_on_round_trip(self, engine):
        device = make_device(engine, name=f"rt-{engine}")
        opened = device.inject(outbound_wire(), port=INSIDE_PORT)
        assert opened.result.verdict.value == "forwarded"
        assert opened.result.metadata["egress_spec"] == OUTSIDE_PORT
        reply = device.inject(inbound_wire(), port=OUTSIDE_PORT)
        assert reply.result.verdict.value == "forwarded"
        assert reply.result.metadata["egress_spec"] == INSIDE_PORT

    @pytest.mark.parametrize("engine", ENGINES)
    def test_cold_inbound_dropped_on_device(self, engine):
        device = make_device(engine, name=f"cold-{engine}")
        run = device.inject(inbound_wire(), port=OUTSIDE_PORT)
        assert run.result.verdict.value == "dropped"

    @pytest.mark.parametrize("engine", ENGINES)
    @pytest.mark.parametrize("seed", (3, 2018))
    def test_property_predictions_match_device(self, engine, seed):
        """Over a seeded bidirectional sweep, every per-packet oracle
        prediction (forbid vs forward, and the egress port) matches the
        device, on every engine — packet order is the whole point."""
        pairs = bidirectional_flows(default_flow(), 48, seed=seed)
        oracle = ReferenceOracle(stateful_firewall(), num_ports=8)
        device = make_device(engine, name=f"prop-{engine}-{seed}")
        forwarded_replies = 0
        for packet, port in pairs:
            wire = packet.pack()
            expectation = oracle.expect(wire, ingress_port=port)
            run = device.inject(wire, port=port)
            if expectation.forbid:
                assert run.result.verdict.value == "dropped"
            else:
                assert run.result.verdict.value == "forwarded"
                assert (
                    run.result.metadata["egress_spec"]
                    == expectation.egress_port
                )
                if port == OUTSIDE_PORT:
                    forwarded_replies += 1
        # The sweep actually exercised opened return paths.
        assert forwarded_replies > 0


# ---------------------------------------------------------------------------
# Batch-kernel compatibility of the stateful session protocol
# ---------------------------------------------------------------------------

class TestBatchCompatibility:
    def test_register_programs_take_packet_major_path(self):
        """The stateful oracle is block-compatible *because* register
        programs run packet-major: arrival order is preserved exactly.
        A register-free program keeps the columnar schedule."""
        stateful = make_device("batch", name="pm-sfw")
        assert stateful._batch is not None
        assert stateful._batch.columnar is False
        stateless = NetworkDevice(
            "pm-sp", ReferenceCompiler(), num_ports=8, engine="batch"
        )
        stateless.load(strict_parser())
        assert stateless._batch is not None
        assert stateless._batch.columnar is True

    def test_stateful_session_block_path_matches_lockstep(self):
        """A session with a stateful ``oracle_factory`` stays
        block-eligible; the batch engine's report must reproduce the
        closure engine's lockstep report exactly."""
        pairs = bidirectional_flows(default_flow(), 24, seed=11)
        session = ValidationSession(
            name="stateful-block",
            streams=[
                StreamSpec(
                    stream_id=1,
                    packets=[packet for packet, _ in pairs],
                    ingress_ports=[port for _, port in pairs],
                )
            ],
            oracle_factory=ReferenceOracle,
        )
        reports = {
            engine: run_session(
                make_device(engine, name="sess-sfw"), session
            ).to_dict()
            for engine in ("closure", "batch")
        }
        assert reports["closure"] == reports["batch"]


# ---------------------------------------------------------------------------
# Distribution byte-identity (the PR's acceptance criterion)
# ---------------------------------------------------------------------------

class TestDistributedByteIdentity:
    def _matrix(self):
        return ScenarioMatrix(
            programs=["stateful_firewall"],
            targets=["reference", "sdnet", "tofino"],
            faults={"baseline": ()},
            workloads=["tcp_bidir"],
            count=10,
            seed=2018,
            oracle="stateful",
        )

    def test_serial_pool_cluster_byte_identical(self):
        from repro.netdebug.cluster import run_cluster_campaign

        serial = run_campaign(self._matrix(), workers=1, name="ident")
        pool = run_campaign(self._matrix(), workers=4, name="ident")
        cluster = run_cluster_campaign(
            self._matrix(), workers=2, name="ident"
        )
        assert serial.to_json() == pool.to_json()
        assert serial.to_json() == cluster.to_json()
        # Spec-faithful targets pass under the stateful prediction —
        # i.e. the oracle really marked opened return paths forwarded.
        by_target = {
            result.scenario.target: result for result in serial.results
        }
        assert by_target["reference"].passed
        assert by_target["sdnet"].passed
