"""Tests for Header and Packet: stack operations, field paths, equality."""

import pytest

from repro.exceptions import PacketError
from repro.packet.fields import HeaderSpec
from repro.packet.headers import ETHERNET, IPV4, UDP
from repro.packet.packet import Header, Packet


@pytest.fixture
def eth():
    return Header(ETHERNET, {"dst_addr": 2, "src_addr": 1,
                             "ether_type": 0x0800})


@pytest.fixture
def ip():
    return Header(IPV4, {"src_addr": 0x0A000001, "dst_addr": 0x0A000002})


class TestHeader:
    def test_defaults_filled(self):
        header = Header(IPV4)
        assert header["version"] == 4
        assert header["ihl"] == 5

    def test_attribute_and_item_access(self, eth):
        assert eth.ether_type == 0x0800
        assert eth["ether_type"] == 0x0800

    def test_attribute_write(self, eth):
        eth.ether_type = 0x86DD
        assert eth["ether_type"] == 0x86DD

    def test_unknown_field_read(self, eth):
        with pytest.raises(AttributeError):
            _ = eth.nonexistent
        with pytest.raises(PacketError):
            _ = eth["nonexistent"]

    def test_unknown_field_write(self, eth):
        with pytest.raises(PacketError):
            eth["nonexistent"] = 1

    def test_width_enforced_on_write(self, eth):
        with pytest.raises(PacketError):
            eth["ether_type"] = 0x10000

    def test_width_enforced_on_init(self):
        with pytest.raises(PacketError):
            Header(ETHERNET, {"ether_type": 1 << 16})

    def test_pack_unpack_roundtrip(self, ip):
        data = ip.pack()
        again = Header.unpack(IPV4, data)
        assert again == ip

    def test_copy_is_independent(self, eth):
        clone = eth.copy()
        clone["ether_type"] = 0
        assert eth["ether_type"] == 0x0800

    def test_equality_considers_values(self, eth):
        other = Header(ETHERNET, eth.values())
        assert other == eth
        other["ether_type"] = 0
        assert other != eth

    def test_unhashable(self, eth):
        with pytest.raises(TypeError):
            hash(eth)

    def test_repr_contains_name(self, eth):
        assert "ethernet" in repr(eth)


class TestPacketStack:
    def test_duplicate_header_rejected_at_init(self, eth):
        with pytest.raises(PacketError):
            Packet(headers=[eth, eth.copy()])

    def test_has_get(self, eth, ip):
        packet = Packet(headers=[eth, ip])
        assert packet.has("ethernet")
        assert packet.get("ipv4") is ip
        assert packet.get_or_none("tcp") is None
        with pytest.raises(PacketError):
            packet.get("tcp")

    def test_invalid_header_not_has(self, eth):
        eth.valid = False
        packet = Packet(headers=[eth])
        assert not packet.has("ethernet")
        assert packet.get_or_none("ethernet") is eth

    def test_push_front(self, ip, eth):
        packet = Packet(headers=[ip])
        packet.push(eth)
        assert packet.header_names() == ["ethernet", "ipv4"]

    def test_push_after(self, eth, ip):
        packet = Packet(headers=[eth])
        packet.push(ip, after="ethernet")
        assert packet.header_names() == ["ethernet", "ipv4"]

    def test_push_after_missing(self, eth, ip):
        packet = Packet(headers=[eth])
        with pytest.raises(PacketError):
            packet.push(ip, after="vlan")

    def test_push_duplicate(self, eth):
        packet = Packet(headers=[eth])
        with pytest.raises(PacketError):
            packet.push(eth.copy())

    def test_append_and_remove(self, eth, ip):
        packet = Packet(headers=[eth])
        packet.append(ip)
        assert packet.header_names() == ["ethernet", "ipv4"]
        removed = packet.remove("ethernet")
        assert removed is eth
        assert packet.header_names() == ["ipv4"]
        with pytest.raises(PacketError):
            packet.remove("ethernet")

    def test_iter(self, eth, ip):
        packet = Packet(headers=[eth, ip])
        assert [h.name for h in packet] == ["ethernet", "ipv4"]


class TestFieldPaths:
    def test_get_set(self, eth, ip):
        packet = Packet(headers=[eth, ip])
        assert packet.get_field("ipv4.ttl") == 64
        packet.set_field("ipv4.ttl", 5)
        assert ip["ttl"] == 5

    def test_malformed_path(self, eth):
        packet = Packet(headers=[eth])
        with pytest.raises(PacketError):
            packet.get_field("ethernet")
        with pytest.raises(PacketError):
            packet.set_field("ethernet", 1)


class TestSerialization:
    def test_pack_order_and_payload(self, eth, ip):
        packet = Packet(headers=[eth, ip], payload=b"xyz")
        data = packet.pack()
        assert data[:14] == eth.pack()
        assert data[14:34] == ip.pack()
        assert data[34:] == b"xyz"

    def test_invalid_headers_skipped(self, eth, ip):
        ip.valid = False
        packet = Packet(headers=[eth, ip], payload=b"p")
        assert packet.pack() == eth.pack() + b"p"
        assert packet.wire_length == 15

    def test_wire_length(self, eth):
        packet = Packet(headers=[eth], payload=b"abc")
        assert packet.wire_length == 17
        assert len(packet.pack()) == 17

    def test_copy_deep(self, eth):
        packet = Packet(headers=[eth], payload=b"p",
                        metadata={"ingress_port": 3})
        clone = packet.copy()
        clone.get("ethernet")["ether_type"] = 0
        clone.metadata["ingress_port"] = 7
        assert packet.get("ethernet")["ether_type"] == 0x0800
        assert packet.metadata["ingress_port"] == 3

    def test_equality_ignores_metadata(self, eth):
        a = Packet(headers=[eth.copy()], payload=b"p", metadata={"x": 1})
        b = Packet(headers=[eth.copy()], payload=b"p", metadata={"x": 2})
        assert a == b

    def test_summary(self, eth, ip):
        packet = Packet(headers=[eth, ip], payload=b"abc")
        assert packet.summary() == "<ethernet/ipv4 +3B payload>"

    def test_summary_raw(self):
        assert Packet(payload=b"abc").summary() == "<raw +3B payload>"
