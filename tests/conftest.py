"""Shared fixtures for the test suite."""

import pytest


@pytest.fixture(autouse=True)
def _isolated_compile_cache(tmp_path, monkeypatch):
    """Point the persistent compiled-artifact cache at a per-test dir.

    Without this, tests populate (and read!) the developer's real
    ``~/.cache/repro-target``, making runs order-dependent and leaving
    artifacts behind. ``monkeypatch.setenv`` mutates ``os.environ``
    itself, so spawned cluster workers inherit the isolated path too.
    """
    monkeypatch.setenv(
        "REPRO_COMPILE_CACHE", str(tmp_path / "compile-cache")
    )
    yield
