"""Checker tests: rules, expectations, arm/disarm, stream accounting."""

import pytest

from repro.exceptions import NetDebugError
from repro.netdebug.checker import (
    ExpectedOutput,
    ExprCheck,
    OutputChecker,
    PredicateCheck,
)
from repro.netdebug.generator import PacketGenerator, StreamSpec
from repro.p4.expr import fld
from repro.p4.stdlib import ipv4_router, reflector, strict_parser
from repro.packet.builder import ethernet_frame, udp_packet
from repro.packet.headers import ipv4, mac
from repro.target.reference import make_reference_device
from repro.target.sdnet import make_sdnet_device


def reflecting_device(name="chk0"):
    device = make_reference_device(name)
    device.load(reflector())
    return device


def parsing_device(name="chkp0"):
    """A device whose program parses and re-emits ethernet+ipv4."""
    device = make_reference_device(name)
    device.load(strict_parser(forward_port=0))
    return device


def probe_packet(ttl=64):
    return udp_packet(
        ipv4("10.1.0.1"), ipv4("10.0.0.1"), 5000, 1024,
        payload=b"pp", ttl=ttl,
    )


class TestExprCheck:
    def test_passing_rule(self):
        device = parsing_device()
        checker = OutputChecker(device)
        checker.add_check(
            ExprCheck(
                "ttl-positive",
                fld("ipv4", "ttl").gt(0),
                device.program.env,
            )
        )
        with checker:
            device.inject(probe_packet().pack())
        outcomes = checker.outcomes()
        assert outcomes[0].checked == 1
        assert outcomes[0].ok

    def test_failing_rule_produces_finding(self):
        device = parsing_device()
        checker = OutputChecker(device)
        checker.add_check(
            ExprCheck(
                "ttl-above-100",
                fld("ipv4", "ttl").gt(100),
                device.program.env,
            )
        )
        with checker:
            device.inject(probe_packet(ttl=50).pack())
        assert not checker.outcomes()[0].ok
        assert checker.findings[0].kind == "check_failed"
        assert "ttl-above-100" in checker.findings[0].message

    def test_missing_header_fails_by_default(self):
        device = reflecting_device()
        checker = OutputChecker(device)
        checker.add_check(
            ExprCheck(
                "needs-ipv4",
                fld("ipv4", "ttl").gt(0),
                device.program.env,
            )
        )
        with checker:
            device.inject(ethernet_frame(1, 2, 0xBEEF).pack())
        assert not checker.outcomes()[0].ok

    def test_skip_missing_mode(self):
        device = reflecting_device()
        checker = OutputChecker(device)
        checker.add_check(
            ExprCheck(
                "needs-ipv4",
                fld("ipv4", "ttl").gt(0),
                device.program.env,
                skip_missing=True,
            )
        )
        with checker:
            device.inject(ethernet_frame(1, 2, 0xBEEF).pack())
        assert checker.outcomes()[0].checked == 0


class TestPredicateCheck:
    def test_custom_predicate(self):
        device = reflecting_device()
        checker = OutputChecker(device)
        checker.add_check(
            PredicateCheck(
                "short-frames",
                lambda snap: len(snap.wire or b"") < 100,
            )
        )
        with checker:
            device.inject(probe_packet().pack())
        assert checker.outcomes()[0].ok


class TestAttachment:
    def test_double_attach_rejected(self):
        checker = OutputChecker(reflecting_device())
        checker.attach()
        with pytest.raises(NetDebugError):
            checker.attach()
        checker.detach()

    def test_detach_idempotent(self):
        checker = OutputChecker(reflecting_device())
        checker.attach()
        checker.detach()
        checker.detach()  # no raise

    def test_internal_tap_observation(self):
        device = make_reference_device("int0")
        device.load(ipv4_router())
        device.control_plane.table_add(
            "ipv4_lpm", "route", [(ipv4("10.0.0.0"), 8)],
            [mac("aa:bb:cc:dd:ee:01"), 1],
        )
        checker = OutputChecker(device, tap="parser")
        with checker:
            device.inject(probe_packet().pack())
        assert checker.observed == 1


class TestExpectations:
    def test_fifo_match(self):
        device = reflecting_device()
        checker = OutputChecker(device)
        wire = probe_packet().pack()
        reflected = device.inject(wire).result.packet.pack()
        checker.expect(ExpectedOutput(wire=reflected, label="r1"))
        with checker:
            device.inject(wire)
        assert checker.findings == []

    def test_wire_mismatch(self):
        device = reflecting_device()
        checker = OutputChecker(device)
        checker.expect(ExpectedOutput(wire=b"nope", label="bad"))
        with checker:
            device.inject(probe_packet().pack())
        assert checker.findings[0].kind == "output_mismatch"

    def test_field_constraints(self):
        device = parsing_device()
        checker = OutputChecker(device)
        checker.expect(
            ExpectedOutput(fields={"ipv4.ttl": 64}, label="ttl-64")
        )
        checker.expect(
            ExpectedOutput(fields={"ipv4.ttl": 1}, label="ttl-1")
        )
        with checker:
            device.inject(probe_packet().pack())
            device.inject(probe_packet().pack())
        # first matches, second mismatches
        assert len(checker.findings) == 1
        assert "ttl-1" in checker.findings[0].message

    def test_egress_port_constraint(self):
        device = reflecting_device()
        checker = OutputChecker(device)
        checker.expect(ExpectedOutput(egress_port=0, label="to-0"))
        with checker:
            device.inject(probe_packet().pack(), port=0)
        assert checker.findings == []

    def test_missing_field_reported(self):
        device = reflecting_device()
        checker = OutputChecker(device)
        checker.expect(
            ExpectedOutput(fields={"vlan.vid": 5}, label="vlan?")
        )
        with checker:
            device.inject(probe_packet().pack())
        assert "missing field" in checker.findings[0].message

    def test_unconsumed_expectation_reported_at_finalize(self):
        device = reflecting_device()
        checker = OutputChecker(device)
        checker.expect(ExpectedOutput(egress_port=0, label="never"))
        checker.finalize()
        assert checker.findings[0].kind == "missing_output"

    def test_unconsumed_forbid_is_fine(self):
        checker = OutputChecker(reflecting_device())
        checker.expect(ExpectedOutput(forbid=True, label="dropped"))
        checker.finalize()
        assert checker.findings == []


class TestArmDisarm:
    def test_forbid_honored_on_drop(self):
        device = make_reference_device("arm0")
        device.load(strict_parser())
        checker = OutputChecker(device)
        bad = ethernet_frame(1, 2, 0xBEEF, payload=b"x" * 30).pack()
        with checker:
            checker.arm(ExpectedOutput(forbid=True, label="must-drop"))
            device.inject(bad)
            checker.disarm()
        assert checker.findings == []

    def test_forbid_violated_on_leak(self):
        device = make_sdnet_device("arm1")
        device.load(strict_parser())
        checker = OutputChecker(device)
        bad = ethernet_frame(1, 2, 0xBEEF, payload=b"x" * 30).pack()
        with checker:
            checker.arm(ExpectedOutput(forbid=True, label="must-drop"))
            device.inject(bad)
            checker.disarm()
        assert checker.findings[0].kind == "unexpected_output"

    def test_missing_output_on_unexpected_drop(self):
        device = make_reference_device("arm2")
        device.load(ipv4_router())  # no routes: drops everything
        checker = OutputChecker(device)
        with checker:
            checker.arm(ExpectedOutput(egress_port=1, label="routed"))
            device.inject(probe_packet().pack())
            checker.disarm()
        assert checker.findings[0].kind == "missing_output"

    def test_double_arm_rejected(self):
        checker = OutputChecker(reflecting_device())
        checker.arm(ExpectedOutput())
        with pytest.raises(NetDebugError):
            checker.arm(ExpectedOutput())

    def test_disarm_without_arm_is_noop(self):
        checker = OutputChecker(reflecting_device())
        checker.disarm()
        assert checker.findings == []


class TestStreamAccounting:
    def test_probe_sequence_tracking(self):
        device = reflecting_device()
        generator = PacketGenerator(device)
        generator.configure(
            StreamSpec(
                stream_id=6, template=probe_packet(), count=10, wrap=True
            )
        )
        checker = OutputChecker(device)
        with checker:
            generator.run_stream(6)
        checker.finalize({6: 10})
        stats = checker.streams[6]
        assert stats.received == 10
        assert stats.lost == 0
        assert stats.duplicated == 0
        assert checker.latency.count == 10
        assert checker.latency.mean > 0

    def test_loss_detected(self):
        device = reflecting_device()
        generator = PacketGenerator(device)
        generator.configure(
            StreamSpec(
                stream_id=6, template=probe_packet(), count=4, wrap=True
            )
        )
        checker = OutputChecker(device)
        with checker:
            generator.run_stream(6)
        checker.finalize({6: 9})  # claim 9 sent, 4 observed
        assert checker.streams[6].lost == 5
        assert any(
            f.kind == "sequence_loss" for f in checker.findings
        )
