"""Fault localization tests across stages and fault kinds."""

import pytest

from repro.netdebug.localization import bisect_fault, localize, localize_fault
from repro.p4.stdlib import acl_firewall, ipv4_router
from repro.packet.builder import udp_packet
from repro.packet.headers import ipv4, mac
from repro.target.faults import Fault, FaultKind
from repro.target.reference import make_reference_device


def routed_device(name="loc0", program_factory=ipv4_router):
    device = make_reference_device(name)
    device.load(program_factory())
    if program_factory is ipv4_router:
        device.control_plane.table_add(
            "ipv4_lpm", "route", [(ipv4("10.0.0.0"), 8)],
            [mac("aa:bb:cc:dd:ee:01"), 2],
        )
    else:
        device.control_plane.table_add(
            "fwd", "forward", [mac("ff:ff:ff:ff:ff:ff")], [2]
        )
    return device


WIRE = udp_packet(
    ipv4("10.6.6.6"), ipv4("192.168.0.1"), 53, 99, payload=b"lq"
).pack()


class TestPassive:
    @pytest.mark.parametrize(
        "stage", ["parser", "ingress.0", "deparser"]
    )
    def test_blackhole_located_at_any_stage(self, stage):
        device = routed_device(f"loc-{stage}")
        device.injector.inject(Fault(FaultKind.BLACKHOLE, stage=stage))
        result = localize_fault(device, WIRE)
        assert result.found
        assert result.stage == stage
        assert result.injections_used == 1

    def test_healthy_device_reports_nothing(self):
        device = routed_device("loc-ok")
        result = localize_fault(device, WIRE)
        assert not result.found

    def test_program_drop_also_located(self):
        """Intended drops surface at their stage; intent is caller's job."""
        device = make_reference_device("loc-drop")
        device.load(ipv4_router())  # no routes -> drop at ingress.0
        result = localize_fault(device, WIRE)
        assert result.found
        assert result.stage == "ingress.0"

    def test_evidence_trail(self):
        device = routed_device("loc-ev")
        device.injector.inject(
            Fault(FaultKind.BLACKHOLE, stage="ingress.0")
        )
        result = localize_fault(device, WIRE)
        assert any("parser" in line for line in result.evidence)

    def test_observers_cleaned_up(self):
        device = routed_device("loc-clean")
        localize_fault(device, WIRE)
        # No taps left behind: a new injection publishes to nobody.
        assert all(
            not observers
            for observers in device.pipeline._taps.values()
        )


class TestActiveBisection:
    @pytest.mark.parametrize("stage", ["ingress.0", "deparser"])
    def test_brackets_fault(self, stage):
        device = routed_device(f"bis-{stage}")
        device.injector.inject(Fault(FaultKind.BLACKHOLE, stage=stage))
        result = bisect_fault(device, WIRE)
        assert result.found
        assert result.stage == stage

    def test_healthy_device(self):
        device = routed_device("bis-ok")
        result = bisect_fault(device, WIRE)
        assert not result.found

    def test_logarithmic_injections(self):
        device = routed_device("bis-log", acl_firewall)
        device.injector.inject(
            Fault(FaultKind.BLACKHOLE, stage="ingress.1")
        )
        result = bisect_fault(device, WIRE)
        stages = len(device.stage_names())
        assert result.found
        # 1 initial + ceil(log2(stages)) bisection probes, generously.
        assert result.injections_used <= 2 + stages.bit_length()


class TestCombined:
    def test_localize_prefers_passive(self):
        device = routed_device("cmb0")
        device.injector.inject(
            Fault(FaultKind.BLACKHOLE, stage="ingress.0")
        )
        result = localize(device, WIRE)
        assert result.found
        assert "passive" in result.method

    def test_localize_healthy(self):
        device = routed_device("cmb1")
        result = localize(device, WIRE)
        assert not result.found

    def test_str_rendering(self):
        device = routed_device("cmb2")
        device.injector.inject(
            Fault(FaultKind.BLACKHOLE, stage="parser")
        )
        result = localize(device, WIRE)
        assert "parser" in str(result)
        healthy = localize(routed_device("cmb3"), WIRE)
        assert "no fault" in str(healthy)
