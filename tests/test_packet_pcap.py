"""Tests for the minimal pcap reader/writer."""

import struct

import pytest
from hypothesis import given, strategies as st

from repro.exceptions import PacketError
from repro.packet.pcap import PcapRecord, read_pcap, write_pcap


class TestRecord:
    def test_timestamp_split(self):
        record = PcapRecord(b"x", timestamp_us=3_500_001)
        assert record.ts_sec == 3
        assert record.ts_usec == 500_001


class TestRoundTrip:
    def test_empty_file(self, tmp_path):
        path = tmp_path / "empty.pcap"
        write_pcap(path, [])
        assert read_pcap(path) == []

    def test_bytes_records(self, tmp_path):
        path = tmp_path / "raw.pcap"
        write_pcap(path, [b"\x01\x02", b"\x03"])
        records = read_pcap(path)
        assert [r.data for r in records] == [b"\x01\x02", b"\x03"]

    def test_timestamps_preserved(self, tmp_path):
        path = tmp_path / "ts.pcap"
        write_pcap(
            path,
            [PcapRecord(b"a", 1_000_001), PcapRecord(b"b", 2_000_002)],
        )
        records = read_pcap(path)
        assert [r.timestamp_us for r in records] == [1_000_001, 2_000_002]

    @given(
        st.lists(
            st.tuples(
                st.binary(min_size=1, max_size=128),
                st.integers(min_value=0, max_value=10**12),
            ),
            max_size=20,
        )
    )
    def test_roundtrip_property(self, tmp_path_factory, entries):
        path = tmp_path_factory.mktemp("pcap") / "prop.pcap"
        write_pcap(path, [PcapRecord(d, t) for d, t in entries])
        records = read_pcap(path)
        assert [(r.data, r.timestamp_us) for r in records] == entries


class TestMalformed:
    def test_truncated_global_header(self, tmp_path):
        path = tmp_path / "trunc.pcap"
        path.write_bytes(b"\xd4\xc3")
        with pytest.raises(PacketError):
            read_pcap(path)

    def test_bad_magic(self, tmp_path):
        path = tmp_path / "bad.pcap"
        path.write_bytes(b"\x00" * 24)
        with pytest.raises(PacketError):
            read_pcap(path)

    def test_truncated_record_header(self, tmp_path):
        path = tmp_path / "tr.pcap"
        write_pcap(path, [b"abcd"])
        data = path.read_bytes()
        path.write_bytes(data[:-10])
        with pytest.raises(PacketError):
            read_pcap(path)

    def test_truncated_record_body(self, tmp_path):
        path = tmp_path / "tb.pcap"
        write_pcap(path, [b"abcd"])
        data = path.read_bytes()
        path.write_bytes(data[:-2])
        with pytest.raises(PacketError):
            read_pcap(path)

    def test_big_endian_accepted(self, tmp_path):
        path = tmp_path / "be.pcap"
        header = struct.pack(">IHHiIII", 0xA1B2C3D4, 2, 4, 0, 0, 65535, 1)
        record = struct.pack(">IIII", 1, 2, 3, 3) + b"abc"
        path.write_bytes(header + record)
        records = read_pcap(path)
        assert records[0].data == b"abc"
        assert records[0].timestamp_us == 1_000_002


class TestTruncatedCaptures:
    def test_orig_len_round_trips(self, tmp_path):
        path = tmp_path / "orig.pcap"
        write_pcap(path, [PcapRecord(b"abcd", orig_len=1500)])
        [record] = read_pcap(path)
        assert record.data == b"abcd"
        assert record.orig_len == 1500
        assert record.truncated

    def test_full_records_not_truncated(self, tmp_path):
        path = tmp_path / "full.pcap"
        write_pcap(path, [b"\x01\x02\x03"])
        [record] = read_pcap(path)
        assert record.orig_len == 3
        assert not record.truncated

    def test_orig_len_excluded_from_equality(self, tmp_path):
        path = tmp_path / "eq.pcap"
        original = PcapRecord(b"xy", timestamp_us=7)
        write_pcap(path, [original])
        [read_back] = read_pcap(path)
        assert read_back == original  # orig_len filled in, still equal

    def test_hand_built_truncated_record_detected(self, tmp_path):
        path = tmp_path / "hand.pcap"
        header = struct.pack("<IHHiIII", 0xA1B2C3D4, 2, 4, 0, 0, 65535, 1)
        # incl_len=2 but orig_len=60: a snaplen-truncated capture.
        record = struct.pack("<IIII", 0, 0, 2, 60) + b"\xaa\xbb"
        path.write_bytes(header + record)
        [record_read] = read_pcap(path)
        assert record_read.data == b"\xaa\xbb"
        assert record_read.truncated
