"""Table semantics: match kinds, ranking, capacity, control-plane checks."""

import pytest
from hypothesis import given, strategies as st

from repro.exceptions import ControlPlaneError, P4ValidationError
from repro.p4.actions import NOACTION, Action, Forward, Param
from repro.p4.expr import EvalContext, fld, meta
from repro.p4.table import (
    KeyPattern,
    MatchKind,
    Table,
    TableEntry,
    TableKey,
)
from repro.p4.types import TypeEnv
from repro.packet.headers import IPV4
from repro.packet.packet import Header, Packet


@pytest.fixture
def env():
    type_env = TypeEnv()
    type_env.declare_header(IPV4)
    return type_env


def make_ctx(dst: int, ttl: int = 64) -> EvalContext:
    packet = Packet(headers=[Header(IPV4, {"dst_addr": dst, "ttl": ttl})])
    return EvalContext(packet, {"ingress_port": 0})


def forward_action() -> Action:
    return Action("fwd", [Param("port", 9)], [Forward(Param("port", 9))])


def make_table(kind: MatchKind, size: int = 16) -> Table:
    table = Table(
        "t",
        keys=[TableKey(fld("ipv4", "dst_addr"), kind, "dst")],
        size=size,
    )
    table.declare_action(NOACTION)
    table.declare_action(forward_action())
    return table


class TestDeclaration:
    def test_positive_size_required(self):
        with pytest.raises(P4ValidationError):
            Table("t", size=0)

    def test_duplicate_action_rejected(self):
        table = make_table(MatchKind.EXACT)
        with pytest.raises(P4ValidationError):
            table.declare_action(Action("fwd", [], []))

    def test_unknown_action_lookup(self):
        with pytest.raises(P4ValidationError):
            make_table(MatchKind.EXACT).action("zap")

    def test_kind_flags(self):
        assert make_table(MatchKind.LPM).is_lpm
        assert make_table(MatchKind.TERNARY).is_ternary
        assert not make_table(MatchKind.EXACT).is_lpm


class TestInsertValidation:
    def test_arity_checked(self):
        table = make_table(MatchKind.EXACT)
        with pytest.raises(ControlPlaneError):
            table.insert(TableEntry((), "fwd", (1,)))

    def test_action_must_exist(self):
        table = make_table(MatchKind.EXACT)
        with pytest.raises(ControlPlaneError):
            table.insert(
                TableEntry((KeyPattern.exact(1),), "nope", ())
            )

    def test_action_data_arity_checked(self):
        table = make_table(MatchKind.EXACT)
        with pytest.raises(Exception):
            table.insert(TableEntry((KeyPattern.exact(1),), "fwd", ()))

    def test_capacity_enforced(self):
        table = make_table(MatchKind.EXACT, size=2)
        for index in range(2):
            table.insert(
                TableEntry((KeyPattern.exact(index),), "fwd", (1,))
            )
        with pytest.raises(ControlPlaneError):
            table.insert(TableEntry((KeyPattern.exact(9),), "fwd", (1,)))

    def test_negative_priority_rejected(self):
        with pytest.raises(ControlPlaneError):
            TableEntry((KeyPattern.exact(1),), "fwd", (1,), priority=-1)

    def test_remove_and_clear(self):
        table = make_table(MatchKind.EXACT)
        entry = TableEntry((KeyPattern.exact(1),), "fwd", (1,))
        table.insert(entry)
        table.remove(entry)
        assert table.entries == []
        with pytest.raises(ControlPlaneError):
            table.remove(entry)
        table.insert(entry)
        table.clear()
        assert table.entries == []


class TestExactMatch:
    def test_hit_and_miss(self, env):
        table = make_table(MatchKind.EXACT)
        table.insert(TableEntry((KeyPattern.exact(0x0A000001),), "fwd", (3,)))
        hit = table.lookup(make_ctx(0x0A000001), env)
        assert hit.hit and hit.action == "fwd" and hit.action_data == (3,)
        miss = table.lookup(make_ctx(0x0A000002), env)
        assert not miss.hit and miss.action == "NoAction"

    def test_default_action_data(self, env):
        table = make_table(MatchKind.EXACT)
        table.default_action = "fwd"
        table.default_action_data = (7,)
        miss = table.lookup(make_ctx(1), env)
        assert miss.action == "fwd" and miss.action_data == (7,)


class TestLpmMatch:
    def test_longest_prefix_wins(self, env):
        table = make_table(MatchKind.LPM)
        table.insert(
            TableEntry((KeyPattern.lpm(0x0A000000, 8),), "fwd", (1,))
        )
        table.insert(
            TableEntry((KeyPattern.lpm(0x0A010000, 16),), "fwd", (2,))
        )
        result = table.lookup(make_ctx(0x0A010203), env)
        assert result.action_data == (2,)
        result = table.lookup(make_ctx(0x0A990203), env)
        assert result.action_data == (1,)

    def test_zero_prefix_matches_all(self, env):
        table = make_table(MatchKind.LPM)
        table.insert(TableEntry((KeyPattern.lpm(0, 0),), "fwd", (9,)))
        assert table.lookup(make_ctx(0xDEADBEEF), env).action_data == (9,)

    def test_full_prefix_is_exact(self, env):
        table = make_table(MatchKind.LPM)
        table.insert(
            TableEntry((KeyPattern.lpm(0x0A000001, 32),), "fwd", (5,))
        )
        assert table.lookup(make_ctx(0x0A000001), env).hit
        assert not table.lookup(make_ctx(0x0A000002), env).hit

    def test_missing_prefix_len_rejected(self, env):
        table = make_table(MatchKind.LPM)
        table.insert(TableEntry((KeyPattern(value=1),), "fwd", (1,)))
        with pytest.raises(ControlPlaneError):
            table.lookup(make_ctx(1), env)

    @given(
        st.integers(min_value=0, max_value=0xFFFFFFFF),
        st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=0xFFFFFFFF),
                st.integers(min_value=0, max_value=32),
            ),
            min_size=1,
            max_size=10,
        ),
    )
    def test_lpm_agrees_with_naive_model(self, dst, prefixes):
        """Table LPM selection equals the naive longest-match reference."""
        env = TypeEnv()
        env.declare_header(IPV4)
        table = make_table(MatchKind.LPM, size=32)
        for index, (value, plen) in enumerate(prefixes):
            table.insert(
                TableEntry((KeyPattern.lpm(value, plen),), "fwd", (index,))
            )
        result = table.lookup(make_ctx(dst), env)

        def matches(value, plen):
            if plen == 0:
                return True
            shift = 32 - plen
            return (dst >> shift) == (value >> shift)

        best = None
        for index, (value, plen) in enumerate(prefixes):
            if matches(value, plen):
                if best is None or plen > best[1]:
                    best = (index, plen)
        if best is None:
            assert not result.hit
        else:
            assert result.hit
            # Same prefix length could appear twice; compare lengths.
            assert prefixes[result.action_data[0]][1] == best[1]


class TestTernaryMatch:
    def test_mask_semantics(self, env):
        table = make_table(MatchKind.TERNARY)
        table.insert(
            TableEntry(
                (KeyPattern.ternary(0x0A000000, 0xFF000000),), "fwd", (1,)
            )
        )
        assert table.lookup(make_ctx(0x0A123456), env).hit
        assert not table.lookup(make_ctx(0x0B000000), env).hit

    def test_priority_breaks_overlap(self, env):
        table = make_table(MatchKind.TERNARY)
        table.insert(
            TableEntry(
                (KeyPattern.ternary(0, 0),), "fwd", (1,), priority=1
            )
        )
        table.insert(
            TableEntry(
                (KeyPattern.ternary(0x0A000000, 0xFF000000),),
                "fwd",
                (2,),
                priority=10,
            )
        )
        assert table.lookup(make_ctx(0x0A000001), env).action_data == (2,)
        assert table.lookup(make_ctx(0x0B000001), env).action_data == (1,)

    def test_missing_mask_rejected(self, env):
        table = make_table(MatchKind.TERNARY)
        table.insert(TableEntry((KeyPattern(value=1),), "fwd", (1,)))
        with pytest.raises(ControlPlaneError):
            table.lookup(make_ctx(1), env)


class TestRangeMatch:
    def test_inclusive_bounds(self, env):
        table = Table(
            "r",
            keys=[TableKey(fld("ipv4", "ttl"), MatchKind.RANGE, "ttl")],
        )
        table.declare_action(NOACTION)
        table.declare_action(forward_action())
        table.insert(TableEntry((KeyPattern.range(10, 20),), "fwd", (1,)))
        assert table.lookup(make_ctx(0, ttl=10), env).hit
        assert table.lookup(make_ctx(0, ttl=20), env).hit
        assert not table.lookup(make_ctx(0, ttl=9), env).hit
        assert not table.lookup(make_ctx(0, ttl=21), env).hit

    def test_priority_on_overlap(self, env):
        table = Table(
            "r",
            keys=[TableKey(fld("ipv4", "ttl"), MatchKind.RANGE, "ttl")],
        )
        table.declare_action(NOACTION)
        table.declare_action(forward_action())
        table.insert(
            TableEntry((KeyPattern.range(0, 255),), "fwd", (1,), priority=1)
        )
        table.insert(
            TableEntry((KeyPattern.range(60, 70),), "fwd", (2,), priority=5)
        )
        assert table.lookup(make_ctx(0, ttl=64), env).action_data == (2,)


class TestMultiKey:
    def test_all_keys_must_match(self, env):
        env.declare_metadata("ecmp", 16)
        table = Table(
            "m",
            keys=[
                TableKey(fld("ipv4", "dst_addr"), MatchKind.EXACT, "dst"),
                TableKey(meta("ingress_port"), MatchKind.EXACT, "port"),
            ],
        )
        table.declare_action(NOACTION)
        table.declare_action(forward_action())
        table.insert(
            TableEntry(
                (KeyPattern.exact(5), KeyPattern.exact(0)), "fwd", (1,)
            )
        )
        assert table.lookup(make_ctx(5), env).hit
        ctx = make_ctx(5)
        ctx.metadata["ingress_port"] = 1
        assert not table.lookup(ctx, env).hit
