"""Coverage-guided packet generation: covering sets, maps, workload
wiring, campaign/differential integration and determinism pins."""

import json

import pytest

from repro.baselines.paths import SPEC_MODEL, DeviationModel
from repro.exceptions import NetDebugError, SimulationError
from repro.netdebug.campaign import (
    PROVISIONERS,
    TARGETS,
    CampaignReport,
    ScenarioMatrix,
    run_campaign,
)
from repro.netdebug.coverage import (
    CoverageMap,
    covering_set,
    verify_coverage,
    verify_report_coverage,
)
from repro.netdebug.differential import DifferentialCase, DifferentialRunner
from repro.netdebug.diffing import (
    baseline_coverage_matrix,
    run_baseline_coverage,
)
from repro.p4.stdlib import PROGRAMS, acl_firewall, strict_parser
from repro.sim.traffic import WorkloadContext, build_workload, default_flow

ALL_TARGETS = sorted(TARGETS)


def model_for(program_name, target_name, setup=""):
    """The provisioned compiled artifact's deviation model for a cell."""
    device = TARGETS[target_name](f"covtest-{target_name}-{program_name}")
    compiled = device.load(PROGRAMS[program_name]())
    if setup:
        PROVISIONERS[setup](device)
    return compiled.program, DeviationModel.from_compiled(compiled)


class TestCoveringSet:
    @pytest.mark.parametrize("program_name", sorted(PROGRAMS))
    @pytest.mark.parametrize("target_name", ALL_TARGETS)
    def test_every_feasible_path_exercised(
        self, program_name, target_name
    ):
        """The acceptance sweep: on every stdlib program × target the
        emitted set exercises 100% of the recorded behaviour classes."""
        program, model = model_for(program_name, target_name)
        packets, cmap = covering_set(
            program, model, seed=2018, target=target_name
        )
        assert len(packets) == len(cmap.covered)
        missing = verify_coverage(
            program, model, [p.pack() for p in packets], cmap
        )
        assert missing == []

    def test_deterministic_per_seed(self):
        program, model = model_for("acl_firewall", "tofino", "acl_gate")
        first_packets, first_map = covering_set(
            program, model, seed=7, target="tofino"
        )
        second_packets, second_map = covering_set(
            program, model, seed=7, target="tofino"
        )
        assert [p.pack() for p in first_packets] == [
            p.pack() for p in second_packets
        ]
        assert first_map.to_dict() == second_map.to_dict()

    def test_seed_changes_payload_not_paths(self):
        program, model = model_for("strict_parser", "reference")
        _, map_a = covering_set(program, model, seed=1)
        _, map_b = covering_set(program, model, seed=2)
        assert map_a.signatures() == map_b.signatures()
        assert map_a.to_dict() != map_b.to_dict()  # payload bytes moved

    def test_tofino_quantization_prunes_universal_miss(self):
        """acl_gate's ternary deny mask quantizes to match-all on
        tofino: the miss branch becomes unreachable and the covering
        set shrinks accordingly, with the prune reasons recorded."""
        program, spec_model = model_for(
            "acl_firewall", "reference", "acl_gate"
        )
        _, reference_map = covering_set(
            program, spec_model, seed=2018, target="reference"
        )
        program, tofino_model = model_for(
            "acl_firewall", "tofino", "acl_gate"
        )
        _, tofino_map = covering_set(
            program, tofino_model, seed=2018, target="tofino"
        )
        assert len(tofino_map.covered) < len(reference_map.covered)
        assert any(
            "matches every packet" in path.reason
            for path in tofino_map.pruned
        )

    def test_map_round_trips(self):
        program, model = model_for("acl_firewall", "sdnet", "acl_gate")
        _, cmap = covering_set(program, model, seed=3, target="sdnet")
        data = cmap.to_dict()
        assert CoverageMap.from_dict(data).to_dict() == data

    def test_verify_coverage_names_missing_classes(self):
        program, model = model_for("strict_parser", "reference")
        packets, cmap = covering_set(program, model, seed=0)
        wires = [p.pack() for p in packets[:-1]]  # drop one witness
        missing = verify_coverage(program, model, wires, cmap)
        assert len(missing) == 1
        assert missing[0] in cmap.signatures()


class TestCoverageWorkload:
    def test_registered(self):
        from repro.sim.traffic import WORKLOADS

        assert "coverage" in WORKLOADS

    def test_requires_context(self):
        with pytest.raises(SimulationError, match="context"):
            build_workload("coverage", default_flow(), 8, seed=1)

    def test_count_zero_probe_is_context_free(self):
        bundle = build_workload("coverage", default_flow(), 0, seed=1)
        assert bundle.packets == ()
        assert bundle.coverage is None

    def test_count_floor_refused_loudly(self):
        context = WorkloadContext("acl_firewall", "reference", "acl_gate")
        with pytest.raises(SimulationError, match="raise the scenario"):
            build_workload(
                "coverage", default_flow(), 2, seed=1, context=context
            )

    def test_bundle_carries_map(self):
        context = WorkloadContext("strict_parser", "reference")
        bundle = build_workload(
            "coverage", default_flow(), 64, seed=1, context=context
        )
        assert bundle.coverage is not None
        assert len(bundle.packets) == len(bundle.coverage.covered)

    def test_unknown_setup_rejected(self):
        context = WorkloadContext("strict_parser", "reference", "nope")
        with pytest.raises(SimulationError, match="unknown setup"):
            build_workload(
                "coverage", default_flow(), 64, seed=1, context=context
            )


class TestCampaignIntegration:
    def test_scenario_results_carry_maps_and_meta(self):
        report = run_baseline_coverage(workers=1)
        assert len(report.results) == 6
        for result in report.results:
            assert result.coverage is not None
            assert result.coverage.program == result.scenario.program
        meta = report.meta["coverage"]
        assert set(meta) == {r.scenario.key for r in report.results}
        assert all("feasible" in cell for cell in meta.values())

    def test_report_round_trips_with_coverage(self):
        report = run_baseline_coverage(workers=1)
        data = report.to_dict()
        rebuilt = CampaignReport.from_dict(data)
        assert rebuilt.to_dict() == data
        assert rebuilt.results[0].coverage.signatures()

    def test_verify_report_coverage_clean(self):
        report = run_baseline_coverage(workers=1)
        assert verify_report_coverage(report) == {}

    def test_verify_report_coverage_catches_tampering(self):
        report = run_baseline_coverage(workers=1)
        victim = report.results[0].coverage.covered[0]
        victim.signature = "start>nowhere|dropped|"
        unexercised = verify_report_coverage(report)
        assert report.results[0].scenario.key in unexercised

    def test_non_coverage_reports_stay_unchanged(self):
        """The conditional-emission contract: scenarios without a map
        serialize exactly as before this workload existed."""
        matrix = ScenarioMatrix(
            programs=["strict_parser"],
            targets=["reference"],
            faults={"baseline": ()},
            workloads=["udp"],
            count=4,
            seed=1,
        )
        report = run_campaign(matrix, workers=1, name="plain")
        payload = report.to_dict()
        assert "coverage" not in payload["results"][0]
        assert "coverage" not in report.meta

    def test_serial_pool_cluster_byte_identical(self):
        from repro.netdebug.cluster import run_cluster_campaign

        matrix = baseline_coverage_matrix()
        serial = run_campaign(
            matrix, workers=1, name="baseline-coverage"
        )
        pooled = run_campaign(
            matrix, workers=2, name="baseline-coverage"
        )
        clustered = run_cluster_campaign(
            matrix, workers=2, name="baseline-coverage", timeout=300
        )
        assert serial.to_json() == pooled.to_json()
        assert serial.to_json() == clustered.to_json()

    def test_matches_committed_golden(self):
        report = run_baseline_coverage(workers=1)
        committed = json.loads(open("baselines/coverage.json").read())
        assert report.to_dict() == committed


class TestDifferentialIntegration:
    def test_coverage_excludes_bidirectional(self):
        with pytest.raises(NetDebugError, match="coverage"):
            DifferentialCase(
                program="strict_parser", coverage=True, bidirectional=True
            )

    def test_cells_record_and_verify_coverage(self):
        runner = DifferentialRunner(
            cases=[DifferentialCase(program="strict_parser", coverage=True)],
            count=64,
            seed=2018,
        )
        report = runner.run()
        for cell in report.cells:
            assert cell.coverage is not None
            assert cell.coverage["unexercised"] == 0
            assert cell.packets == cell.coverage["packets"]
        data = report.to_dict()
        from repro.netdebug.differential import DifferentialReport

        assert DifferentialReport.from_dict(data).to_dict() == data

    def test_unexercised_breaks_consistency(self):
        runner = DifferentialRunner(
            cases=[DifferentialCase(program="strict_parser", coverage=True)],
            count=64,
            seed=2018,
        )
        report = runner.run()
        cell = report.cells[0]
        assert cell.consistent
        cell.coverage["unexercised"] = 1
        assert not cell.consistent

    def test_count_below_covering_set_is_loud(self):
        runner = DifferentialRunner(
            cases=[
                DifferentialCase(
                    program="acl_firewall",
                    coverage=True,
                    provision=PROVISIONERS["acl_gate"],
                )
            ],
            count=2,
            seed=2018,
        )
        with pytest.raises(NetDebugError, match="raise count"):
            runner.run()

    def test_covering_set_finds_what_200_random_packets_find(self):
        """The headline claim: every deviation tag a 200-packet random
        sweep surfaces, the covering set surfaces too — at under a
        tenth of the packet budget."""
        cases = [
            DifferentialCase(program="strict_parser"),
            DifferentialCase(
                program="acl_firewall",
                provision=PROVISIONERS["acl_gate"],
            ),
        ]
        random_report = DifferentialRunner(
            cases=cases, count=200, seed=2018
        ).run()
        coverage_cases = [
            DifferentialCase(program="strict_parser", coverage=True),
            DifferentialCase(
                program="acl_firewall",
                coverage=True,
                provision=PROVISIONERS["acl_gate"],
            ),
        ]
        coverage_report = DifferentialRunner(
            cases=coverage_cases, count=200, seed=2018
        ).run()
        random_packets = coverage_packets = 0
        for random_cell in random_report.cells:
            coverage_cell = coverage_report.cell(
                random_cell.program, random_cell.target
            )
            random_tags = set(random_cell.diffs_by_tag())
            coverage_tags = set(coverage_cell.diffs_by_tag())
            assert random_tags <= coverage_tags, (
                f"{random_cell.program}/{random_cell.target}: covering "
                f"set missed tags {random_tags - coverage_tags}"
            )
            random_packets += random_cell.packets
            coverage_packets += coverage_cell.packets
        assert coverage_packets * 10 <= random_packets
