"""The Tofino-like target: quantization primitives, silent deviations,
published-limit enforcement, and engine parity."""

import pytest

from repro.bitutils import quantize_range, quantize_ternary_mask
from repro.exceptions import CompileError, PacketError
from repro.netdebug.localization import (
    DEVIATION_CAPABILITIES,
    diagnose_deviations,
    explain_findings,
)
from repro.p4.stdlib import acl_firewall, l2_switch, strict_parser
from repro.packet.builder import udp_packet
from repro.target.limits import TOFINO_LIMITS
from repro.target.reference import make_reference_device
from repro.target.tofino import (
    DEPARSE_FIELD_BUDGET,
    DEPARSE_FIELD_BUDGET_EXCEEDED,
    TCAM_QUANTIZED,
    TofinoCompiler,
    make_tofino_device,
)


class TestQuantizationPrimitives:
    def test_prefix_masks_unchanged(self):
        assert quantize_ternary_mask(0xFF00, 16) == 0xFF00
        assert quantize_ternary_mask(0xFFFF, 16) == 0xFFFF
        assert quantize_ternary_mask(0, 16) == 0

    def test_holes_truncate_to_leading_run(self):
        assert quantize_ternary_mask(0xFF0F, 16) == 0xFF00
        assert quantize_ternary_mask(0xF0F0, 16) == 0xF000

    def test_no_leading_run_degrades_to_match_all(self):
        assert quantize_ternary_mask(0x00FF, 16) == 0x0000

    def test_quantized_mask_is_subset(self):
        for mask_value in (0xABCD, 0x8001, 0x7FFF, 0x0001):
            quantized = quantize_ternary_mask(mask_value, 16)
            assert quantized & mask_value == quantized

    def test_aligned_ranges_unchanged(self):
        assert quantize_range(4, 7, 16) == (4, 7)
        assert quantize_range(0, 255, 16) == (0, 255)
        assert quantize_range(9, 9, 16) == (9, 9)

    def test_unaligned_ranges_widen_to_covering_block(self):
        assert quantize_range(5001, 5002, 16) == (5000, 5003)
        assert quantize_range(5001, 5006, 16) == (5000, 5007)
        assert quantize_range(7, 8, 16) == (0, 15)

    def test_quantized_range_is_superset(self):
        for low, high in ((3, 12), (100, 101), (0, 0), (511, 513)):
            qlow, qhigh = quantize_range(low, high, 16)
            assert qlow <= low and qhigh >= high

    def test_empty_range_rejected(self):
        with pytest.raises(PacketError):
            quantize_range(5, 4, 16)

    def test_out_of_width_bounds_clamp_not_wrap(self):
        # A wrapped high bound would produce a tiny disjoint block;
        # clamping keeps the superset contract within the value domain.
        qlow, qhigh = quantize_range(5, 0x10003, 16)
        assert qlow <= 5 and qhigh == 0xFFFF
        assert quantize_range(0x20000, 0x30000, 16) == (0xFFFF, 0xFFFF)


class TestTofinoCompiler:
    def test_deviations_are_tagged_but_silent(self):
        compiled = TofinoCompiler().compile(acl_firewall())
        assert set(compiled.silent_deviations) == {
            TCAM_QUANTIZED,
            DEPARSE_FIELD_BUDGET_EXCEEDED,
        }
        # The §4 property: ground truth on the artifact, nothing in the
        # user-visible diagnostics.
        assert compiled.diagnostics == []
        assert compiled.quantize_tcam
        assert compiled.deparse_field_budget == DEPARSE_FIELD_BUDGET

    def test_short_emit_program_has_no_deparse_tag(self):
        compiled = TofinoCompiler().compile(l2_switch())
        assert compiled.silent_deviations == []

    def test_reject_is_honored(self):
        device = make_tofino_device("tof-reject")
        device.load(strict_parser())
        bad = udp_packet(0x0A010001, 0x0A000001, 5000, 4000)
        bad.get("ipv4")["version"] = 6
        run = device.inject(bad.pack())
        assert run.result.verdict.value == "parser_rejected"

    def test_tcam_stage_budget_enforced_loudly(self):
        from repro.netdebug.usecases.architecture_check import (
            _wide_ternary_program,
        )

        compiler = TofinoCompiler()
        compiler.compile(
            _wide_ternary_program(TOFINO_LIMITS.tcam_bits_per_stage)
        )
        with pytest.raises(CompileError, match="TCAM"):
            compiler.compile(
                _wide_ternary_program(
                    TOFINO_LIMITS.tcam_bits_per_stage + 8
                )
            )


class TestDeparseTruncation:
    def test_forwarded_wire_loses_budgeted_headers(self):
        device = make_tofino_device("tof-trunc")
        device.load(strict_parser())
        reference = make_reference_device("ref-trunc")
        reference.load(strict_parser())
        wire = udp_packet(
            0x0A010001, 0x0A000001, 5000, 4000, payload=b"x" * 20
        ).pack()
        got = device.inject(wire).result.packet.pack()
        want = reference.inject(wire).result.packet.pack()
        # Ethernet survives, the 20 IPv4 header bytes are silently gone.
        assert got != want
        assert len(want) - len(got) == 20
        assert got[:14] == want[:14]

    def test_both_engines_truncate_identically(self):
        compiled_dev = make_tofino_device("tof-fast")
        compiled_dev.load(strict_parser())
        tree_dev = make_tofino_device("tof-tree", use_compiled=False)
        tree_dev.load(strict_parser())
        for size in (64, 128, 300):
            wire = udp_packet(
                0x0A010001, 0x0A000001, 5000, 4000,
                payload=b"y" * (size - 42),
            ).pack()
            a = compiled_dev.inject(wire)
            b = tree_dev.inject(wire)
            assert a.result.verdict == b.result.verdict
            assert a.result.packet.pack() == b.result.packet.pack()


class TestQuantizedMatching:
    def _gated_device(self, factory, name):
        device = factory(name)
        device.load(acl_firewall())
        control = device.control_plane
        control.table_add("fwd", "forward", [0x020000000002], [2])
        control.table_add(
            "acl", "deny",
            [(0, 0), (0, 0), (0, 0), (0, 0), (0x00FF, 0x00FF)],
            [], priority=10,
        )
        return device

    def test_low_byte_mask_denies_everything_on_tofino(self):
        tofino = self._gated_device(make_tofino_device, "tof-acl")
        reference = self._gated_device(make_reference_device, "ref-acl")
        wire = udp_packet(
            0x0A010001, 0x0A000001, 5000, 4000,
            eth_dst=0x020000000002,
        ).pack()
        # Spec: dport 5000 low byte is 0x88 != 0xFF -> allowed.
        assert reference.inject(wire).result.verdict.value == "forwarded"
        # Quantized mask degrades to match-all -> denied.
        assert tofino.inject(wire).result.verdict.value == "dropped"

    def test_engines_agree_on_quantized_verdicts(self):
        fast = self._gated_device(make_tofino_device, "tof-acl-fast")
        tree = self._gated_device(
            lambda name: make_tofino_device(name, use_compiled=False),
            "tof-acl-tree",
        )
        for dport in (5000, 5119, 255, 0x12FF):
            wire = udp_packet(
                0x0A010001, 0x0A000001, dport, 4000,
                eth_dst=0x020000000002,
            ).pack()
            assert (
                fast.inject(wire).result.verdict
                == tree.inject(wire).result.verdict
            )


class TestDeviationDiagnosis:
    def test_every_known_tag_is_mapped(self):
        compiled = TofinoCompiler().compile(acl_firewall())
        for tag in compiled.silent_deviations:
            assert tag in DEVIATION_CAPABILITIES

    def test_diagnoses_localize_stages(self):
        compiled = TofinoCompiler().compile(acl_firewall())
        stages = {d.tag: d.stage for d in diagnose_deviations(compiled)}
        assert stages == {
            TCAM_QUANTIZED: "ingress",
            DEPARSE_FIELD_BUDGET_EXCEEDED: "deparser",
        }

    def test_unknown_tags_surface_not_vanish(self):
        compiled = TofinoCompiler().compile(l2_switch())
        compiled.silent_deviations.append("mystery-deviation")
        diagnoses = diagnose_deviations(compiled)
        assert diagnoses[0].stage == "unknown"

    def test_explain_findings_attributes_kinds(self):
        compiled = TofinoCompiler().compile(acl_firewall())
        explained = explain_findings(
            compiled, ["missing_output", "output_mismatch", "sequence_loss"]
        )
        assert {d.tag for d in explained["missing_output"]} == {
            TCAM_QUANTIZED
        }
        assert {d.tag for d in explained["output_mismatch"]} == {
            TCAM_QUANTIZED,
            DEPARSE_FIELD_BUDGET_EXCEEDED,
        }
        # A kind no deviation produces -> empty list: a genuine fault.
        assert explained["sequence_loss"] == []
