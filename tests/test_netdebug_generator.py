"""Generator tests: sweeps, fuzzing, wrapping, injection bookkeeping."""

import pytest

from repro.exceptions import NetDebugError
from repro.netdebug.generator import (
    FieldFuzz,
    FieldSweep,
    PacketGenerator,
    StreamSpec,
)
from repro.netdebug.testpacket import decode_probe
from repro.p4.interpreter import Verdict
from repro.p4.stdlib import l2_switch, reflector
from repro.packet.builder import udp_packet
from repro.packet.checksum import verify_ipv4_checksum
from repro.packet.headers import ipv4, mac
from repro.target.reference import make_reference_device


def template():
    return udp_packet(
        ipv4("10.1.0.1"), ipv4("10.0.0.1"), 5000, 1024, payload=b"tmpl"
    )


def loaded_device(name="gen0"):
    device = make_reference_device(name)
    device.load(reflector())
    return device


class TestFieldSweep:
    def test_explicit_values_cycle(self):
        sweep = FieldSweep("ipv4.ttl", values=(1, 2, 3))
        assert [sweep.value_at(i) for i in range(5)] == [1, 2, 3, 1, 2]

    def test_range_sweep(self):
        sweep = FieldSweep("udp.dst_port", start=100, stop=110, step=5)
        assert [sweep.value_at(i) for i in range(3)] == [100, 105, 100]

    def test_materialized_in_packets(self):
        spec = StreamSpec(
            stream_id=1,
            template=template(),
            count=4,
            sweeps=[FieldSweep("ipv4.ttl", values=(10, 20))],
        )
        ttls = [p.get("ipv4")["ttl"] for p in spec.materialize()]
        assert ttls == [10, 20, 10, 20]

    def test_checksums_fixed_after_sweep(self):
        spec = StreamSpec(
            stream_id=1,
            template=template(),
            count=3,
            sweeps=[FieldSweep("ipv4.ttl", values=(10, 20, 30))],
        )
        for packet in spec.materialize():
            assert verify_ipv4_checksum(packet)

    def test_checksum_fixing_optional(self):
        spec = StreamSpec(
            stream_id=1,
            template=template(),
            count=1,
            sweeps=[FieldSweep("ipv4.ttl", values=(9,))],
            fix_checksums=False,
        )
        packet = next(spec.materialize())
        assert not verify_ipv4_checksum(packet)


class TestFieldFuzz:
    def test_deterministic_per_seed(self):
        def ports(seed):
            spec = StreamSpec(
                stream_id=4,
                template=template(),
                count=6,
                fuzzes=[FieldFuzz("udp.src_port", seed=seed)],
            )
            return [p.get("udp")["src_port"] for p in spec.materialize()]

        assert ports(1) == ports(1)
        assert ports(1) != ports(2)

    def test_values_within_width(self):
        spec = StreamSpec(
            stream_id=4,
            template=template(),
            count=20,
            fuzzes=[FieldFuzz("ipv4.ttl", seed=0)],
        )
        for packet in spec.materialize():
            assert 0 <= packet.get("ipv4")["ttl"] <= 255


class TestStreamSpec:
    def test_explicit_packet_list(self):
        packets = [template(), template()]
        spec = StreamSpec(stream_id=1, packets=packets)
        materialized = list(spec.materialize())
        assert len(materialized) == 2
        assert materialized[0] is not packets[0]  # copies

    def test_template_required(self):
        spec = StreamSpec(stream_id=1)
        with pytest.raises(NetDebugError):
            list(spec.materialize())


class TestGenerator:
    def test_configure_and_run(self):
        device = loaded_device()
        generator = PacketGenerator(device)
        generator.configure(
            StreamSpec(stream_id=2, template=template(), count=5)
        )
        records = generator.run_stream(2)
        assert len(records) == 5
        assert [r.seq_no for r in records] == list(range(5))
        assert all(
            r.run.result.verdict is Verdict.FORWARDED for r in records
        )
        assert generator.injected == records

    def test_configure_requires_source(self):
        generator = PacketGenerator(loaded_device())
        with pytest.raises(NetDebugError):
            generator.configure(StreamSpec(stream_id=1))

    def test_unknown_stream(self):
        generator = PacketGenerator(loaded_device())
        with pytest.raises(NetDebugError):
            generator.run_stream(7)
        with pytest.raises(NetDebugError):
            generator.remove_stream(7)

    def test_remove_stream(self):
        generator = PacketGenerator(loaded_device())
        generator.configure(
            StreamSpec(stream_id=1, template=template(), count=1)
        )
        generator.remove_stream(1)
        assert generator.streams == []

    def test_wrapped_probes_carry_headers(self):
        device = loaded_device()
        generator = PacketGenerator(device)
        generator.configure(
            StreamSpec(stream_id=9, template=template(), count=3, wrap=True)
        )
        records = generator.run_stream(9)
        for record in records:
            info = decode_probe(record.wire)
            assert info is not None
            assert info.stream_id == 9

    def test_run_all_in_stream_order(self):
        device = loaded_device()
        generator = PacketGenerator(device)
        generator.configure(
            StreamSpec(stream_id=5, template=template(), count=1)
        )
        generator.configure(
            StreamSpec(stream_id=3, template=template(), count=1)
        )
        records = generator.run_all()
        assert [r.stream_id for r in records] == [3, 5]

    def test_injection_bypasses_ports(self):
        device = loaded_device()
        generator = PacketGenerator(device)
        generator.configure(
            StreamSpec(stream_id=1, template=template(), count=4)
        )
        generator.run_stream(1)
        assert all(p.rx_packets == 0 for p in device.ports)
        assert all(p.tx_packets == 0 for p in device.ports)

    def test_scheduled_stream_on_simulator(self):
        from repro.sim.events import Simulator

        device = loaded_device()
        generator = PacketGenerator(device)
        generator.configure(
            StreamSpec(
                stream_id=1, template=template(), count=10, rate_pps=1e6
            )
        )
        sim = Simulator()
        count = generator.schedule_stream(1, sim)
        assert count == 10
        sim.run()
        assert len(generator.injected) == 10
        assert sim.now == pytest.approx(9_000.0)

    def test_on_injected_callback(self):
        device = loaded_device()
        generator = PacketGenerator(device)
        generator.configure(
            StreamSpec(stream_id=1, template=template(), count=3)
        )
        seen = []
        generator.run_stream(1, on_injected=seen.append)
        assert len(seen) == 3
