"""Checksum tests, including the RFC 1071 reference example."""

import pytest
from hypothesis import given, strategies as st

from repro.exceptions import ChecksumError, PacketError
from repro.packet.builder import ipv4_packet, tcp_packet, udp_packet
from repro.packet.checksum import (
    internet_checksum,
    ipv4_header_checksum,
    l4_checksum,
    update_all_checksums,
    update_ipv4_checksum,
    update_l4_checksum,
    verify_ipv4_checksum,
)
from repro.packet.checksum import require_valid_ipv4
from repro.packet.headers import IPPROTO_ICMP, ipv4


class TestInternetChecksum:
    def test_rfc1071_example(self):
        # RFC 1071 §3: data 00 01 f2 03 f4 f5 f6 f7 -> sum 0xddf2,
        # checksum is its complement.
        data = bytes([0x00, 0x01, 0xF2, 0x03, 0xF4, 0xF5, 0xF6, 0xF7])
        assert internet_checksum(data) == (~0xDDF2) & 0xFFFF

    def test_empty(self):
        assert internet_checksum(b"") == 0xFFFF

    def test_odd_length_padded(self):
        assert internet_checksum(b"\x01") == internet_checksum(b"\x01\x00")

    def test_all_ones_data(self):
        assert internet_checksum(b"\xff\xff") == 0

    @given(st.binary(min_size=0, max_size=64))
    def test_verification_property(self, data):
        """Appending the checksum makes the whole sum verify to zero."""
        checksum = internet_checksum(data)
        if len(data) % 2:
            data += b"\x00"
        combined = data + checksum.to_bytes(2, "big")
        assert internet_checksum(combined) == 0


class TestIpv4Checksum:
    def test_builder_produces_valid(self):
        packet = ipv4_packet(ipv4("10.0.0.2"), ipv4("10.0.0.1"))
        assert verify_ipv4_checksum(packet)

    def test_header_known_vector(self):
        # Classic wikipedia example header checksums to 0xb861.
        packet = ipv4_packet(
            ipv4("192.168.0.199"),
            ipv4("192.168.0.1"),
            protocol=17,
            ttl=64,
            fix_checksums=False,
        )
        header = packet.get("ipv4")
        header["total_len"] = 0x0073
        header["identification"] = 0
        header["flags"] = 0b010
        assert ipv4_header_checksum(packet) == 0xB861

    def test_mutation_invalidates(self):
        packet = ipv4_packet(ipv4("10.0.0.2"), ipv4("10.0.0.1"))
        packet.get("ipv4")["ttl"] = 63
        assert not verify_ipv4_checksum(packet)
        update_ipv4_checksum(packet)
        assert verify_ipv4_checksum(packet)

    def test_require_valid_raises(self):
        packet = ipv4_packet(ipv4("10.0.0.2"), ipv4("10.0.0.1"))
        packet.get("ipv4")["ttl"] = 1
        with pytest.raises(ChecksumError):
            require_valid_ipv4(packet)
        update_ipv4_checksum(packet)
        require_valid_ipv4(packet)  # no raise


class TestL4Checksum:
    def test_udp_checksum_stored_by_builder(self):
        packet = udp_packet(
            ipv4("10.0.0.2"), ipv4("10.0.0.1"), 53, 1234, payload=b"hi"
        )
        assert packet.get("udp")["checksum"] == l4_checksum(packet)

    def test_tcp_checksum_stored_by_builder(self):
        packet = tcp_packet(
            ipv4("10.0.0.2"), ipv4("10.0.0.1"), 80, 5555, payload=b"GET /"
        )
        assert packet.get("tcp")["checksum"] == l4_checksum(packet)

    def test_udp_zero_becomes_all_ones(self):
        # Craft a segment whose computed checksum would be zero is hard;
        # instead verify the rule is applied by checking the value is
        # never zero across a payload sweep.
        for index in range(64):
            packet = udp_packet(
                ipv4("10.0.0.2"), ipv4("10.0.0.1"), 53, 1234,
                payload=bytes([index]),
            )
            assert packet.get("udp")["checksum"] != 0

    def test_payload_change_changes_checksum(self):
        a = udp_packet(ipv4("1.2.3.4"), ipv4("4.3.2.1"), 1, 2, payload=b"a")
        b = udp_packet(ipv4("1.2.3.4"), ipv4("4.3.2.1"), 1, 2, payload=b"b")
        assert a.get("udp")["checksum"] != b.get("udp")["checksum"]

    def test_unsupported_protocol(self):
        packet = ipv4_packet(
            ipv4("10.0.0.2"), ipv4("10.0.0.1"), protocol=IPPROTO_ICMP
        )
        with pytest.raises(PacketError):
            l4_checksum(packet)

    def test_update_l4(self):
        packet = udp_packet(
            ipv4("10.0.0.2"), ipv4("10.0.0.1"), 53, 1234, payload=b"x"
        )
        packet.get("udp")["checksum"] = 0xDEAD
        update_l4_checksum(packet)
        assert packet.get("udp")["checksum"] == l4_checksum(packet)


class TestUpdateAll:
    def test_no_ipv4_is_noop(self):
        from repro.packet.builder import ethernet_frame

        packet = ethernet_frame(1, 2, 0x9999)
        update_all_checksums(packet)  # must not raise

    def test_fixes_both_layers(self):
        packet = udp_packet(
            ipv4("10.0.0.2"), ipv4("10.0.0.1"), 53, 1234, payload=b"zz"
        )
        packet.get("ipv4")["ttl"] = 9
        packet.get("udp")["checksum"] = 0
        update_all_checksums(packet)
        assert verify_ipv4_checksum(packet)
        assert packet.get("udp")["checksum"] == l4_checksum(packet)
