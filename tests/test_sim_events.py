"""Discrete-event simulator tests: ordering, cancellation, bounds."""

import pytest

from repro.exceptions import SimulationError
from repro.sim.events import Simulator, ns_per_cycle


class TestScheduling:
    def test_time_order(self):
        sim = Simulator()
        order = []
        sim.schedule(30, lambda: order.append("c"))
        sim.schedule(10, lambda: order.append("a"))
        sim.schedule(20, lambda: order.append("b"))
        sim.run()
        assert order == ["a", "b", "c"]

    def test_fifo_within_same_time(self):
        sim = Simulator()
        order = []
        sim.schedule(5, lambda: order.append(1))
        sim.schedule(5, lambda: order.append(2))
        sim.schedule(5, lambda: order.append(3))
        sim.run()
        assert order == [1, 2, 3]

    def test_now_advances(self):
        sim = Simulator()
        times = []
        sim.schedule(100, lambda: times.append(sim.now))
        sim.schedule(200, lambda: times.append(sim.now))
        sim.run()
        assert times == [100.0, 200.0]

    def test_negative_delay_rejected(self):
        sim = Simulator()
        with pytest.raises(SimulationError):
            sim.schedule(-1, lambda: None)

    def test_schedule_in_past_rejected(self):
        sim = Simulator()
        sim.schedule(10, lambda: None)
        sim.run()
        with pytest.raises(SimulationError):
            sim.schedule_at(5, lambda: None)

    def test_nested_scheduling(self):
        sim = Simulator()
        order = []

        def first():
            order.append("first")
            sim.schedule(1, lambda: order.append("nested"))

        sim.schedule(10, first)
        sim.schedule(100, lambda: order.append("last"))
        sim.run()
        assert order == ["first", "nested", "last"]


class TestControl:
    def test_cancel(self):
        sim = Simulator()
        fired = []
        handle = sim.schedule(10, lambda: fired.append(1))
        sim.cancel(handle)
        sim.run()
        assert fired == []

    def test_run_until_stops_early(self):
        sim = Simulator()
        fired = []
        sim.schedule(10, lambda: fired.append("early"))
        sim.schedule(1000, lambda: fired.append("late"))
        sim.run(until=100)
        assert fired == ["early"]
        assert sim.now == 100
        sim.run()
        assert fired == ["early", "late"]

    def test_step(self):
        sim = Simulator()
        fired = []
        sim.schedule(1, lambda: fired.append(1))
        assert sim.step()
        assert not sim.step()
        assert fired == [1]

    def test_peek_time(self):
        sim = Simulator()
        assert sim.peek_time() is None
        handle = sim.schedule(42, lambda: None)
        assert sim.peek_time() == 42
        sim.cancel(handle)
        assert sim.peek_time() is None

    def test_runaway_detection(self):
        sim = Simulator()

        def reschedule():
            sim.schedule(1, reschedule)

        sim.schedule(1, reschedule)
        with pytest.raises(SimulationError, match="events"):
            sim.run(max_events=100)

    def test_events_run_counter(self):
        sim = Simulator()
        for index in range(5):
            sim.schedule(index, lambda: None)
        sim.run()
        assert sim.events_run == 5


class TestClockConversion:
    def test_ns_per_cycle(self):
        assert ns_per_cycle(200) == pytest.approx(5.0)
        assert ns_per_cycle(1000) == pytest.approx(1.0)
