"""Controller (software tool) tests: sessions, monitoring, resources."""

import pytest

from repro.exceptions import NetDebugError
from repro.netdebug.controller import NetDebugController
from repro.netdebug.generator import StreamSpec
from repro.netdebug.session import ValidationSession
from repro.p4.stdlib import l2_switch, strict_parser
from repro.packet.headers import ipv4, mac
from repro.sim.events import Simulator
from repro.sim.traffic import default_flow, udp_stream
from repro.target.faults import Fault, FaultKind
from repro.target.reference import make_reference_device


def controller_on_switch(name="ctl0"):
    device = make_reference_device(name)
    device.load(l2_switch())
    device.control_plane.table_add(
        "dmac", "forward", [mac("02:00:00:00:00:02")], [1]
    )
    return NetDebugController(device)


def packets(count=4, seed=0):
    return list(udp_stream(default_flow(), count, size=96, seed=seed))


class TestSessions:
    def test_run_archives_report(self):
        controller = controller_on_switch()
        report = controller.run(
            ValidationSession(
                name="s1",
                streams=[StreamSpec(stream_id=1, packets=packets())],
            )
        )
        assert controller.reports == [report]

    def test_all_findings_aggregates(self):
        controller = controller_on_switch()
        from repro.netdebug.checker import ExpectedOutput

        controller.run(
            ValidationSession(
                name="s1",
                streams=[StreamSpec(stream_id=1, packets=packets(1))],
                expectations=[ExpectedOutput(egress_port=7, label="x")],
            )
        )
        controller.run(
            ValidationSession(
                name="s2",
                streams=[StreamSpec(stream_id=1, packets=packets(1))],
                expectations=[ExpectedOutput(egress_port=7, label="y")],
            )
        )
        assert len(controller.all_findings()) == 2


class TestStatusMonitoring:
    def test_poll_status(self):
        controller = controller_on_switch()
        sample = controller.poll_status()
        assert sample.status["program"] == "l2_switch"
        assert controller.status_log == [sample]

    def test_monitor_schedules_polls(self):
        controller = controller_on_switch()
        sim = Simulator()
        count = controller.monitor(sim, period_ns=100.0, duration_ns=1000.0)
        assert count == 10
        sim.run()
        assert len(controller.status_log) == 10

    def test_monitor_bad_period(self):
        controller = controller_on_switch()
        with pytest.raises(NetDebugError):
            controller.monitor(Simulator(), 0, 100)

    def test_monitoring_sees_traffic_evolution(self):
        controller = controller_on_switch()
        device = controller.device
        sim = Simulator()
        controller.monitor(sim, period_ns=50.0, duration_ns=400.0)
        wires = [p.pack() for p in packets(6)]
        for index, wire in enumerate(wires):
            sim.schedule_at(
                index * 60.0, lambda w=wire: device.process(w, 0)
            )
        sim.run()
        processed = [
            s.status["stats"]["processed"] for s in controller.status_log
        ]
        assert processed == sorted(processed)
        assert processed[-1] == 6


class TestResources:
    def test_read_resources(self):
        controller = controller_on_switch()
        info = controller.read_resources()
        assert info["program"] == "l2_switch"
        assert info["luts"] > 0
        assert 0 < info["utilization"]["luts"] < 1


class TestLocalization:
    def test_delegates_to_localize(self):
        device = make_reference_device("ctl-loc")
        device.load(strict_parser())
        device.injector.inject(
            Fault(FaultKind.BLACKHOLE, stage="ingress.0")
        )
        controller = NetDebugController(device)
        from repro.packet.builder import udp_packet

        wire = udp_packet(ipv4("1.1.1.1"), ipv4("2.2.2.2"), 53, 9).pack()
        result = controller.localize_fault(wire)
        assert result.found
        assert result.stage == "ingress.0"
