"""Tests for the control-flow IR and its structural queries."""

import pytest

from repro.exceptions import P4ValidationError
from repro.p4.actions import NOACTION, Action
from repro.p4.control import ApplyTable, Call, Control, If, IfHit, Seq
from repro.p4.expr import Const
from repro.p4.table import Table


class TestSeq:
    def test_of_drops_nones(self):
        seq = Seq.of(ApplyTable("a"), None, ApplyTable("b"))
        assert len(seq.body) == 2

    def test_empty(self):
        assert Seq.of().body == ()


class TestControlDeclarations:
    def test_duplicate_table_rejected(self):
        control = Control("ingress")
        control.declare_table(Table("t"))
        with pytest.raises(P4ValidationError):
            control.declare_table(Table("t"))

    def test_duplicate_action_same_object_ok(self):
        control = Control("ingress")
        action = Action("a", [], [])
        control.declare_action(action)
        control.declare_action(action)  # idempotent

    def test_duplicate_action_different_object_rejected(self):
        control = Control("ingress")
        control.declare_action(Action("a", [], []))
        with pytest.raises(P4ValidationError):
            control.declare_action(Action("a", [], []))

    def test_unknown_lookups(self):
        control = Control("ingress")
        with pytest.raises(P4ValidationError):
            control.table("missing")
        with pytest.raises(P4ValidationError):
            control.action("missing")


class TestStructuralQueries:
    def build_control(self):
        control = Control("ingress")
        for name in ("t1", "t2", "t3"):
            table = Table(name)
            table.declare_action(NOACTION)
            control.declare_table(table)
        control.declare_action(Action("a", [], []))
        control.body = Seq(
            (
                ApplyTable("t1"),
                If(
                    Const(1),
                    IfHit("t2", then=ApplyTable("t3")),
                    Call("a"),
                ),
            )
        )
        return control

    def test_applied_tables_in_order(self):
        control = self.build_control()
        assert control.applied_tables() == ["t1", "t2", "t3"]

    def test_max_depth(self):
        control = self.build_control()
        # t1 (1) + if-branch: t2 then t3 (2) => 3 dependent applies.
        assert control.max_depth() == 3

    def test_empty_control_depth_zero(self):
        assert Control("egress").max_depth() == 0
        assert Control("egress").applied_tables() == []

    def test_if_without_else(self):
        control = Control("c")
        table = Table("t")
        table.declare_action(NOACTION)
        control.declare_table(table)
        control.body = If(Const(1), ApplyTable("t"))
        assert control.applied_tables() == ["t"]
        assert control.max_depth() == 1
