"""Control-plane runtime API tests."""

import pytest

from repro.controlplane import RuntimeAPI
from repro.exceptions import ControlPlaneError
from repro.p4.interpreter import RuntimeState
from repro.p4.stdlib import acl_firewall, ipv4_router, port_counter
from repro.packet.headers import ipv4, mac


def api_for(program):
    return program, RuntimeAPI(program, RuntimeState.for_program(program))


class TestTableAdd:
    def test_lpm_pair(self):
        program, api = api_for(ipv4_router())
        entry = api.table_add(
            "ipv4_lpm", "route", [(ipv4("10.0.0.0"), 8)], [1, 2]
        )
        assert entry in program.table("ipv4_lpm").entries
        assert entry.patterns[0].prefix_len == 8

    def test_exact_requires_int(self):
        program, api = api_for(acl_firewall())
        with pytest.raises(ControlPlaneError, match="exact"):
            api.table_add("fwd", "forward", [(1, 2)], [1])

    def test_lpm_requires_pair(self):
        _, api = api_for(ipv4_router())
        with pytest.raises(ControlPlaneError, match="LPM"):
            api.table_add("ipv4_lpm", "route", [5], [1, 2])

    def test_ternary_requires_pair(self):
        _, api = api_for(acl_firewall())
        with pytest.raises(ControlPlaneError, match="ternary"):
            api.table_add(
                "acl", "deny", [1, (0, 0), (0, 0), (0, 0), (0, 0)], []
            )

    def test_key_arity_checked(self):
        _, api = api_for(ipv4_router())
        with pytest.raises(ControlPlaneError, match="keys"):
            api.table_add("ipv4_lpm", "route", [], [1, 2])

    def test_unknown_table(self):
        _, api = api_for(ipv4_router())
        with pytest.raises(Exception):
            api.table_add("ghost", "route", [(0, 0)], [])

    def test_range_validation(self):
        from repro.netdebug.usecases.compiler_check import (
            range_match_program,
        )

        program = range_match_program()
        api = RuntimeAPI(program, RuntimeState.for_program(program))
        api.table_add("port_ranges", "to_cpu", [(10, 20)], [])
        with pytest.raises(ControlPlaneError, match="low"):
            api.table_add("port_ranges", "to_cpu", [(20, 10)], [])


class TestTableManagement:
    def test_delete_and_clear(self):
        program, api = api_for(ipv4_router())
        entry = api.table_add(
            "ipv4_lpm", "route", [(ipv4("10.0.0.0"), 8)], [1, 2]
        )
        api.table_delete("ipv4_lpm", entry)
        assert api.table_entries("ipv4_lpm") == []
        api.table_add("ipv4_lpm", "route", [(0, 0)], [1, 2])
        api.table_clear("ipv4_lpm")
        assert api.table_entries("ipv4_lpm") == []

    def test_occupancy(self):
        program, api = api_for(ipv4_router())
        api.table_add("ipv4_lpm", "route", [(0, 0)], [1, 2])
        occupancy = api.table_occupancy()
        assert occupancy["ipv4_lpm"] == (1, 512)

    def test_set_default_action(self):
        program, api = api_for(ipv4_router())
        api.set_default_action("ipv4_lpm", "route", (5, 3))
        table = program.table("ipv4_lpm")
        assert table.default_action == "route"
        assert table.default_action_data == (5, 3)

    def test_set_default_unknown_action(self):
        _, api = api_for(ipv4_router())
        with pytest.raises(ControlPlaneError):
            api.set_default_action("ipv4_lpm", "ghost")

    def test_set_default_bad_arity(self):
        _, api = api_for(ipv4_router())
        with pytest.raises(Exception):
            api.set_default_action("ipv4_lpm", "route", (1,))


class TestStatefulObjects:
    def test_counter_read_reset(self):
        program, api = api_for(port_counter(num_ports=4))
        state = api._state
        state.counters["per_port_pkts"][1] = 7
        assert api.counter_read("per_port_pkts", 1) == 7
        api.counter_reset("per_port_pkts")
        assert api.counter_read("per_port_pkts", 1) == 0

    def test_counter_errors(self):
        _, api = api_for(port_counter(num_ports=4))
        with pytest.raises(ControlPlaneError):
            api.counter_read("ghost")
        with pytest.raises(ControlPlaneError):
            api.counter_read("per_port_pkts", 99)
        with pytest.raises(ControlPlaneError):
            api.counter_reset("ghost")

    def test_register_read_write(self):
        _, api = api_for(port_counter(num_ports=4))
        api.register_write("last_len", 2, 0xABCD)
        assert api.register_read("last_len", 2) == 0xABCD

    def test_register_errors(self):
        _, api = api_for(port_counter(num_ports=4))
        with pytest.raises(ControlPlaneError):
            api.register_read("ghost")
        with pytest.raises(ControlPlaneError):
            api.register_read("last_len", 99)
        with pytest.raises(ControlPlaneError):
            api.register_write("last_len", 0, 1 << 20)  # too wide
        with pytest.raises(ControlPlaneError):
            api.register_write("last_len", 99, 1)
        with pytest.raises(ControlPlaneError):
            api.register_write("ghost", 0, 1)
