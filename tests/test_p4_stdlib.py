"""Behavioural tests for every stdlib program."""

import pytest

from repro.controlplane import RuntimeAPI
from repro.p4.interpreter import Interpreter, RuntimeState, Verdict
from repro.p4.stdlib import (
    PROGRAMS,
    acl_firewall,
    ecmp_load_balancer,
    ipv4_router,
    l2_switch,
    mpls_tunnel,
    port_counter,
    reflector,
    strict_parser,
    vlan_forwarder,
)
from repro.p4.validation import validate_program
from repro.packet.builder import (
    ethernet_frame,
    tcp_packet,
    udp_packet,
    vlan_tagged,
)
from repro.packet.headers import ETHERTYPE_MPLS, ipv4, mac


def api_for(program):
    return RuntimeAPI(program, RuntimeState.for_program(program))


class TestRegistry:
    def test_all_programs_validate(self):
        for factory in PROGRAMS.values():
            validate_program(factory())

    def test_fresh_instances(self):
        assert l2_switch() is not l2_switch()

    def test_registry_names_match(self):
        for name, factory in PROGRAMS.items():
            assert factory().name.startswith(name[:4]) or True
            assert factory().name  # non-empty


class TestL2Switch:
    def test_known_mac_forwarded(self):
        program = l2_switch()
        api_for(program).table_add(
            "dmac", "forward", [mac("02:00:00:00:00:02")], [3]
        )
        frame = ethernet_frame(mac("02:00:00:00:00:02"), 1, 0x0800)
        result = Interpreter(program).process(frame.pack())
        assert result.egress_port == 3

    def test_unknown_mac_floods(self):
        program = l2_switch()
        frame = ethernet_frame(mac("02:00:00:00:00:09"), 1, 0x0800)
        result = Interpreter(program).process(frame.pack())
        assert result.egress_port == 0x1FF  # flood marker

    def test_drop_action_available(self):
        program = l2_switch()
        api_for(program).table_add(
            "dmac", "drop_packet", [mac("02:00:00:00:00:03")], []
        )
        frame = ethernet_frame(mac("02:00:00:00:00:03"), 1, 0x0800)
        result = Interpreter(program).process(frame.pack())
        assert result.verdict is Verdict.DROPPED


class TestAclFirewall:
    def make(self):
        program = acl_firewall()
        api = api_for(program)
        api.table_add(
            "acl",
            "deny",
            [
                (ipv4("10.0.0.0"), 0xFF000000),
                (0, 0),
                (6, 0xFF),  # TCP
                (0, 0),
                (0, 0),
            ],
            priority=5,
        )
        api.table_add(
            "fwd", "forward", [mac("02:00:00:00:00:02")], [2]
        )
        return program

    def test_denied_tcp_dropped(self):
        program = self.make()
        packet = tcp_packet(
            ipv4("192.168.0.1"), ipv4("10.1.1.1"), 80, 1000,
            eth_dst=mac("02:00:00:00:00:02"),
        )
        result = Interpreter(program).process(packet.pack())
        assert result.verdict is Verdict.DROPPED

    def test_udp_from_same_source_allowed(self):
        program = self.make()
        packet = udp_packet(
            ipv4("192.168.0.1"), ipv4("10.1.1.1"), 53, 1000,
            eth_dst=mac("02:00:00:00:00:02"),
        )
        result = Interpreter(program).process(packet.pack())
        assert result.egress_port == 2

    def test_unknown_dmac_dropped(self):
        program = self.make()
        packet = udp_packet(
            ipv4("192.168.0.1"), ipv4("172.16.0.1"), 53, 1000,
            eth_dst=mac("02:00:00:00:00:99"),
        )
        result = Interpreter(program).process(packet.pack())
        assert result.verdict is Verdict.DROPPED


class TestMplsTunnel:
    def make(self):
        program = mpls_tunnel()
        api = api_for(program)
        api.table_add(
            "fec", "push_label", [(ipv4("10.0.0.0"), 8)], [100, 1]
        )
        api.table_add("label_pop", "pop_label", [100], [2])
        return program

    def test_push_on_ip_ingress(self):
        program = self.make()
        packet = udp_packet(ipv4("10.2.3.4"), ipv4("192.168.9.9"), 53, 1)
        result = Interpreter(program).process(packet.pack())
        assert result.verdict is Verdict.FORWARDED
        out = result.packet
        assert out.has("mpls")
        assert out.get("mpls")["label"] == 100
        assert out.get("ethernet")["ether_type"] == ETHERTYPE_MPLS
        assert result.egress_port == 1

    def test_pop_roundtrip(self):
        program = self.make()
        packet = udp_packet(ipv4("10.2.3.4"), ipv4("192.168.9.9"), 53, 1)
        pushed = Interpreter(program).process(packet.pack())
        popped = Interpreter(program).process(pushed.packet.pack())
        assert popped.verdict is Verdict.FORWARDED
        assert not popped.packet.has("mpls")
        assert popped.egress_port == 2
        assert popped.packet.get("ethernet")["ether_type"] == 0x0800


class TestStrictParser:
    def test_valid_forwarded(self):
        program = strict_parser(forward_port=4)
        packet = udp_packet(ipv4("1.1.1.1"), ipv4("2.2.2.2"), 53, 9)
        result = Interpreter(program).process(packet.pack())
        assert result.egress_port == 4

    @pytest.mark.parametrize("version,ihl", [(5, 5), (6, 5), (4, 4), (0, 0)])
    def test_bad_ip_header_rejected(self, version, ihl):
        program = strict_parser()
        packet = udp_packet(ipv4("1.1.1.1"), ipv4("2.2.2.2"), 53, 9)
        packet.get("ipv4")["version"] = version
        packet.get("ipv4")["ihl"] = ihl
        result = Interpreter(program).process(packet.pack())
        assert result.verdict is Verdict.PARSER_REJECTED

    def test_unknown_ethertype_rejected(self):
        program = strict_parser()
        frame = ethernet_frame(1, 2, 0xBEEF, payload=b"x" * 40)
        result = Interpreter(program).process(frame.pack())
        assert result.verdict is Verdict.PARSER_REJECTED


class TestPortCounter:
    def test_counts_by_ingress_port(self):
        program = port_counter(num_ports=4)
        interp = Interpreter(program)
        frame = ethernet_frame(1, 2, 3, payload=b"abc").pack()
        for port in (0, 1, 1, 3):
            interp.process(frame, ingress_port=port)
        assert interp.state.counter_value("per_port_pkts", 0) == 1
        assert interp.state.counter_value("per_port_pkts", 1) == 2
        assert interp.state.counter_value("per_port_pkts", 3) == 1

    def test_register_records_length(self):
        program = port_counter(num_ports=4)
        interp = Interpreter(program)
        frame = ethernet_frame(1, 2, 3, payload=b"abcde").pack()
        interp.process(frame, ingress_port=2)
        assert interp.state.register_value("last_len", 2) == len(frame)


class TestEcmp:
    def make(self, group_size=4):
        program = ecmp_load_balancer(group_size=group_size)
        api = api_for(program)
        for bucket in range(group_size):
            api.table_add(
                "ecmp_group", "to_nexthop", [bucket],
                [mac("02:00:00:00:00:0a") + bucket, bucket],
            )
        return program

    def test_flow_sticks_to_one_bucket(self):
        program = self.make()
        interp = Interpreter(program)
        packet = udp_packet(ipv4("10.9.9.9"), ipv4("10.1.1.1"), 53, 4242)
        ports = {
            interp.process(packet.pack()).egress_port for _ in range(5)
        }
        assert len(ports) == 1

    def test_different_flows_spread(self):
        program = self.make()
        interp = Interpreter(program)
        ports = set()
        for sport in range(40):
            packet = udp_packet(
                ipv4("10.9.9.9"), ipv4("10.1.1.1"), 53, 1000 + sport
            )
            result = interp.process(packet.pack())
            assert result.verdict is Verdict.FORWARDED
            ports.add(result.egress_port)
        assert len(ports) >= 2  # hashing spreads across buckets

    def test_non_udp_dropped(self):
        program = self.make()
        packet = tcp_packet(ipv4("10.9.9.9"), ipv4("10.1.1.1"), 80, 1)
        result = Interpreter(program).process(packet.pack())
        assert result.verdict is Verdict.DROPPED


class TestVlanForwarder:
    def make(self):
        program = vlan_forwarder()
        api_for(program).table_add(
            "vlan_fwd", "forward",
            [7, mac("02:00:00:00:00:02")], [3],
        )
        return program

    def test_tagged_forwarded(self):
        program = self.make()
        packet = vlan_tagged(
            udp_packet(
                ipv4("1.1.1.1"), ipv4("2.2.2.2"), 53, 9,
                eth_dst=mac("02:00:00:00:00:02"),
            ),
            vid=7,
        )
        result = Interpreter(program).process(packet.pack())
        assert result.egress_port == 3

    def test_wrong_vid_dropped(self):
        program = self.make()
        packet = vlan_tagged(
            udp_packet(
                ipv4("1.1.1.1"), ipv4("2.2.2.2"), 53, 9,
                eth_dst=mac("02:00:00:00:00:02"),
            ),
            vid=8,
        )
        result = Interpreter(program).process(packet.pack())
        assert result.verdict is Verdict.DROPPED

    def test_untagged_dropped(self):
        program = self.make()
        packet = udp_packet(
            ipv4("1.1.1.1"), ipv4("2.2.2.2"), 53, 9,
            eth_dst=mac("02:00:00:00:00:02"),
        )
        result = Interpreter(program).process(packet.pack())
        assert result.verdict is Verdict.DROPPED


class TestReflector:
    def test_bounces_with_swapped_macs(self):
        program = reflector()
        frame = ethernet_frame(0xAA, 0xBB, 0x1234, payload=b"ping")
        result = Interpreter(program).process(frame.pack(), ingress_port=5)
        assert result.egress_port == 5
        out = result.packet.get("ethernet")
        assert out["dst_addr"] == 0xBB
        assert out["src_addr"] == 0xAA
        assert result.packet.payload == b"ping"


class TestRouterDefaults:
    def test_sizes_configurable(self):
        program = ipv4_router(lpm_size=32)
        assert program.table("ipv4_lpm").size == 32
