"""Session orchestration tests: oracles, expectations, reports."""

import pytest

from repro.exceptions import NetDebugError
from repro.netdebug.checker import ExpectedOutput, ExprCheck
from repro.netdebug.generator import StreamSpec
from repro.netdebug.session import (
    ValidationSession,
    reference_expectation,
    run_session,
)
from repro.p4.expr import fld
from repro.p4.stdlib import ipv4_router, strict_parser
from repro.packet.builder import ethernet_frame, parse_ethernet, udp_packet
from repro.packet.headers import ipv4, mac
from repro.sim.traffic import default_flow, malformed_mix, udp_stream
from repro.target.reference import make_reference_device
from repro.target.sdnet import make_sdnet_device


def routed_device(factory=make_reference_device, name="ses0"):
    device = factory(name)
    device.load(ipv4_router())
    device.control_plane.table_add(
        "ipv4_lpm", "route", [(ipv4("10.0.0.0"), 8)],
        [mac("aa:bb:cc:dd:ee:01"), 2],
    )
    return device


def routed_packets(count=5, seed=0):
    flow = default_flow()
    flow = type(flow)(
        src_ip=flow.src_ip, dst_ip=ipv4("10.4.0.1"),
        src_port=flow.src_port, dst_port=flow.dst_port,
    )
    return list(udp_stream(flow, count, size=96, seed=seed))


class TestReferenceExpectation:
    def test_forward_prediction(self):
        device = routed_device()
        wire = routed_packets(1)[0].pack()
        expectation = reference_expectation(device.program, wire)
        assert not expectation.forbid
        assert expectation.egress_port == 2
        predicted = parse_ethernet(expectation.wire)
        assert predicted.get("ipv4")["ttl"] == 63  # decremented

    def test_drop_prediction(self):
        device = routed_device()
        # No route for 172.x -> default drop.
        wire = udp_packet(
            ipv4("172.16.0.1"), ipv4("10.0.0.1"), 1, 2
        ).pack()
        expectation = reference_expectation(device.program, wire)
        assert expectation.forbid

    def test_reject_prediction(self):
        program = strict_parser()
        wire = ethernet_frame(1, 2, 0xBEEF, payload=b"x" * 30).pack()
        expectation = reference_expectation(program, wire)
        assert expectation.forbid
        assert "parser_rejected" in expectation.label

    def test_flood_prediction_expands_per_port(self):
        from repro.p4.stdlib import l2_switch

        program = l2_switch()  # default action floods (0x1FF)
        wire = routed_packets(1)[0].pack()
        expectation = reference_expectation(
            program, wire, ingress_port=0, num_ports=4
        )
        assert not expectation.forbid
        assert expectation.egress_port is None
        assert expectation.egress_ports == (1, 2, 3)  # ingress excluded
        per_port = expectation.expand_per_port()
        assert [e.egress_port for e in per_port] == [1, 2, 3]
        assert all(e.wire == expectation.wire for e in per_port)

    def test_flood_prediction_without_port_count(self):
        """An oracle that cannot expand a flood must say so: an empty
        egress_ports expectation checks nothing."""
        from repro.p4.stdlib import l2_switch

        with pytest.raises(NetDebugError, match="num_ports"):
            reference_expectation(
                l2_switch(), routed_packets(1)[0].pack()
            )

    def test_missing_egress_spec_is_clear_error(self, monkeypatch):
        """A forward prediction without egress_spec metadata must raise
        NetDebugError, not a bare KeyError."""
        import repro.netdebug.session as session_module

        real_process = session_module.Interpreter.process

        def stripped(self, wire, ingress_port=0, timestamp=0):
            result = real_process(
                self, wire, ingress_port=ingress_port, timestamp=timestamp
            )
            result.metadata.pop("egress_spec", None)
            return result

        monkeypatch.setattr(
            session_module.Interpreter, "process", stripped
        )
        device = routed_device(name="ses-noegress")
        wire = routed_packets(1)[0].pack()
        with pytest.raises(NetDebugError, match="egress_spec"):
            reference_expectation(device.program, wire)


class TestRunSession:
    def test_empty_session_rejected(self):
        device = routed_device()
        with pytest.raises(NetDebugError):
            run_session(device, ValidationSession(name="empty"))

    def test_out_of_range_ingress_port_rejected_at_setup(self):
        """A bad port fails before any packet is injected, naming the
        stream, the offending index and the device's valid range."""
        device = routed_device(make_sdnet_device)  # 4 ports
        session = ValidationSession(
            name="badport",
            streams=[
                StreamSpec(
                    stream_id=7,
                    packets=routed_packets(3),
                    ingress_ports=[0, 9, 1],
                )
            ],
            use_reference_oracle=True,
        )
        with pytest.raises(
            NetDebugError,
            match=r"stream 7 ingress_ports\[1\] is 9.*0\.\.3",
        ):
            run_session(device, session)

    def test_negative_ingress_port_rejected_at_setup(self):
        device = routed_device()
        session = ValidationSession(
            name="negport",
            streams=[
                StreamSpec(
                    stream_id=1,
                    packets=routed_packets(2),
                    ingress_ports=[-1, 0],
                )
            ],
            use_reference_oracle=True,
        )
        with pytest.raises(
            NetDebugError, match=r"ingress_ports\[0\] is -1"
        ):
            run_session(device, session)

    def test_valid_ingress_ports_still_run(self):
        device = routed_device()
        session = ValidationSession(
            name="goodports",
            streams=[
                StreamSpec(
                    stream_id=1,
                    packets=routed_packets(3),
                    ingress_ports=[0, 1, 2],
                )
            ],
            use_reference_oracle=True,
        )
        report = run_session(device, session)
        assert report.injected == 3

    def test_oracle_session_passes_on_faithful_device(self):
        device = routed_device()
        session = ValidationSession(
            name="ok",
            streams=[StreamSpec(stream_id=1, packets=routed_packets(8))],
            use_reference_oracle=True,
        )
        report = run_session(device, session)
        assert report.passed
        assert report.injected == 8
        assert report.observed == 8
        assert report.program == "ipv4_router"

    def test_oracle_session_fails_on_deviant_device(self):
        device = make_sdnet_device("ses-sd")
        device.load(strict_parser())
        packets = [
            p for p, _ in malformed_mix(default_flow(), 20, 0.5, seed=5)
        ]
        session = ValidationSession(
            name="deviant",
            streams=[
                StreamSpec(stream_id=1, packets=packets,
                           fix_checksums=False)
            ],
            use_reference_oracle=True,
        )
        report = run_session(device, session)
        assert not report.passed
        assert report.findings_of("unexpected_output")

    def test_explicit_expectations(self):
        device = routed_device()
        packets = routed_packets(2)
        session = ValidationSession(
            name="explicit",
            streams=[StreamSpec(stream_id=1, packets=packets)],
            expectations=[
                ExpectedOutput(egress_port=2, label="a"),
                ExpectedOutput(egress_port=3, label="b"),  # wrong
            ],
        )
        report = run_session(device, session)
        assert len(report.findings) == 1
        assert "b" in report.findings[0].message

    def test_too_few_expectations_rejected(self):
        device = routed_device()
        session = ValidationSession(
            name="short",
            streams=[StreamSpec(stream_id=1, packets=routed_packets(3))],
            expectations=[ExpectedOutput(egress_port=2)],
        )
        with pytest.raises(NetDebugError):
            run_session(device, session)

    def test_custom_oracle_callable(self):
        device = routed_device()
        calls = []

        def oracle(wire, port):
            calls.append(wire)
            return ExpectedOutput(egress_port=2)

        session = ValidationSession(
            name="custom",
            streams=[StreamSpec(stream_id=1, packets=routed_packets(3))],
            oracle=oracle,
        )
        report = run_session(device, session)
        assert len(calls) == 3
        assert report.passed

    def test_checks_applied(self):
        device = routed_device()
        session = ValidationSession(
            name="with-checks",
            streams=[StreamSpec(stream_id=1, packets=routed_packets(4))],
            checks=[
                ExprCheck(
                    "ttl-decremented",
                    fld("ipv4", "ttl").eq(63),
                    device.program.env,
                )
            ],
        )
        report = run_session(device, session)
        assert report.checks[0].checked == 4
        assert report.checks[0].ok

    def test_wrapped_streams_count_loss(self):
        from repro.p4.stdlib import reflector

        device = make_reference_device("ses-wrap")
        device.load(reflector())
        session = ValidationSession(
            name="wrapped",
            streams=[
                StreamSpec(
                    stream_id=4,
                    packets=routed_packets(6),
                    wrap=True,
                )
            ],
        )
        report = run_session(device, session)
        assert report.streams[4].received == 6
        assert report.streams[4].lost == 0
        assert report.latency.count == 6

    def test_multiple_streams(self):
        device = routed_device()
        session = ValidationSession(
            name="multi",
            streams=[
                StreamSpec(stream_id=1, packets=routed_packets(2)),
                StreamSpec(stream_id=2, packets=routed_packets(3, seed=1)),
            ],
            use_reference_oracle=True,
        )
        report = run_session(device, session)
        assert report.injected == 5

    def test_flood_oracle_session_passes(self):
        """l2_switch's default action floods: the oracle must expand the
        prediction per port instead of pinning the flood sentinel."""
        from repro.p4.stdlib import l2_switch

        device = make_reference_device("ses-flood")
        device.load(l2_switch())
        session = ValidationSession(
            name="flood",
            streams=[StreamSpec(stream_id=1, packets=routed_packets(4))],
            use_reference_oracle=True,
        )
        report = run_session(device, session)
        assert report.passed

    def test_flood_misroute_is_caught(self):
        """A device unicasting a spec-flooded packet (MISROUTE fault)
        must fail the flood expectation, not sneak through because the
        chosen port happens to be a member of the flood set."""
        from repro.p4.stdlib import l2_switch
        from repro.target.faults import Fault, FaultKind

        device = make_reference_device("ses-misroute")
        device.load(l2_switch())
        device.injector.inject(
            Fault(FaultKind.MISROUTE, stage="deparser", port=3)
        )
        session = ValidationSession(
            name="misroute",
            streams=[StreamSpec(stream_id=1, packets=routed_packets(3))],
            use_reference_oracle=True,
        )
        report = run_session(device, session)
        assert not report.passed
        assert report.findings_of("output_mismatch")

    def test_summary_renders(self):
        device = routed_device()
        session = ValidationSession(
            name="summary",
            streams=[StreamSpec(stream_id=1, packets=routed_packets(2))],
            use_reference_oracle=True,
        )
        report = run_session(device, session)
        text = report.summary()
        assert "summary" in text
        assert "PASS" in text
