"""Tests for the COUNTER_FREEZE and EXTRA_LATENCY fault kinds."""

import pytest

from repro.netdebug.controller import NetDebugController
from repro.netdebug.generator import StreamSpec
from repro.netdebug.session import ValidationSession
from repro.p4.stdlib import port_counter, strict_parser
from repro.packet.builder import ethernet_frame, udp_packet
from repro.packet.headers import ipv4
from repro.sim.traffic import default_flow, udp_stream
from repro.target.faults import Fault, FaultKind
from repro.target.reference import make_reference_device


class TestCounterFreeze:
    def make_device(self, frozen: bool):
        device = make_reference_device(f"cf-{frozen}")
        device.load(port_counter(num_ports=4))
        if frozen:
            device.injector.inject(
                Fault(
                    FaultKind.COUNTER_FREEZE,
                    stage="ingress.0",
                    counter="per_port_pkts",
                )
            )
        return device

    def test_counter_stops_incrementing(self):
        device = self.make_device(frozen=True)
        frame = ethernet_frame(1, 2, 3).pack()
        for _ in range(5):
            device.process(frame, 1)
        assert device.control_plane.counter_read("per_port_pkts", 1) == 0

    def test_packets_still_forwarded(self):
        """The freeze is silent: traffic flows, accounting lies."""
        device = self.make_device(frozen=True)
        frame = ethernet_frame(1, 2, 3).pack()
        assert device.process(frame, 1)  # still emits

    def test_healthy_counter_counts(self):
        device = self.make_device(frozen=False)
        frame = ethernet_frame(1, 2, 3).pack()
        for _ in range(5):
            device.process(frame, 1)
        assert device.control_plane.counter_read("per_port_pkts", 1) == 5

    def test_other_counters_unaffected(self):
        device = make_reference_device("cf-other")
        device.load(port_counter(num_ports=4))
        device.injector.inject(
            Fault(
                FaultKind.COUNTER_FREEZE,
                stage="ingress.0",
                counter="unrelated",
            )
        )
        device.process(ethernet_frame(1, 2, 3).pack(), 1)
        assert device.control_plane.counter_read("per_port_pkts", 1) == 1

    def test_netdebug_audit_detects_freeze(self):
        """The internal-accounting check catches the lying counter —
        exactly the class of bug only in-device tooling can see."""
        device = self.make_device(frozen=True)
        controller = NetDebugController(device)
        packets = list(udp_stream(default_flow(), 10, size=96))
        controller.run(
            ValidationSession(
                name="audit",
                streams=[StreamSpec(stream_id=1, packets=packets)],
            )
        )
        counted = device.control_plane.counter_read("per_port_pkts", 0)
        assert counted == 0  # NetDebug sees the discrepancy: 0 != 10

    def test_register_still_updates(self):
        device = self.make_device(frozen=True)
        frame = ethernet_frame(1, 2, 3, payload=b"abc").pack()
        device.process(frame, 1)
        assert device.control_plane.register_read("last_len", 1) == len(
            frame
        )


class TestExtraLatency:
    WIRE = udp_packet(ipv4("1.1.1.1"), ipv4("2.2.2.2"), 53, 9).pack()

    def make_device(self, extra: int):
        device = make_reference_device(f"lat-{extra}")
        device.load(strict_parser(forward_port=0))
        if extra:
            device.injector.inject(
                Fault(
                    FaultKind.EXTRA_LATENCY,
                    stage="ingress.0",
                    extra_cycles=extra,
                )
            )
        return device

    def test_latency_increases_by_exact_amount(self):
        baseline = self.make_device(0).inject(self.WIRE).latency_cycles
        slowed = self.make_device(500).inject(self.WIRE).latency_cycles
        assert slowed == baseline + 500

    def test_output_unchanged(self):
        """Latency faults are functionally invisible — outputs match."""
        fast = self.make_device(0).inject(self.WIRE)
        slow = self.make_device(500).inject(self.WIRE)
        assert fast.result.packet.pack() == slow.result.packet.pack()

    def test_detectable_by_probe_timestamps(self):
        """NetDebug's probe latency accounting exposes the slow stage."""
        from repro.p4.stdlib import reflector
        from repro.netdebug.checker import OutputChecker
        from repro.netdebug.generator import PacketGenerator

        def mean_latency(extra):
            device = make_reference_device(f"lat-probe-{extra}")
            device.load(reflector())
            if extra:
                device.injector.inject(
                    Fault(
                        FaultKind.EXTRA_LATENCY,
                        stage="ingress.0",
                        extra_cycles=extra,
                    )
                )
            generator = PacketGenerator(device)
            generator.configure(
                StreamSpec(
                    stream_id=1,
                    packets=list(udp_stream(default_flow(), 10)),
                    wrap=True,
                )
            )
            checker = OutputChecker(device)
            with checker:
                generator.run_stream(1)
            return checker.latency.mean

        assert mean_latency(400) == mean_latency(0) + 400

    def test_multiple_latency_faults_accumulate(self):
        device = self.make_device(100)
        device.injector.inject(
            Fault(
                FaultKind.EXTRA_LATENCY, stage="parser", extra_cycles=50
            )
        )
        baseline = self.make_device(0).inject(self.WIRE).latency_cycles
        assert device.inject(self.WIRE).latency_cycles == baseline + 150
