"""Tests for the seeded-defect workload builders used by Figure 2."""

import pytest

from repro.netdebug.usecases.workloads import (
    INTENT_ALLOW,
    INTENT_DENY,
    allowed_packet,
    buggy_acl_program,
    denied_packet,
    install_acl_intent,
    intact_acl_program,
    router_with_entry,
)
from repro.p4.interpreter import Interpreter, Verdict
from repro.packet.builder import parse_ethernet
from repro.packet.headers import ipv4


class TestAclPrograms:
    def test_intact_acl_enforces_intent(self):
        program = intact_acl_program()
        install_acl_intent(program)
        denied = Interpreter(program).process(denied_packet())
        allowed = Interpreter(program).process(allowed_packet())
        assert denied.verdict is Verdict.DROPPED
        assert allowed.verdict is Verdict.FORWARDED
        assert allowed.egress_port == 1

    def test_buggy_acl_leaks_denied_traffic(self):
        program = buggy_acl_program()
        install_acl_intent(program)
        denied = Interpreter(program).process(denied_packet())
        # The seeded bug: deny is a no-op, so the packet sails through.
        assert denied.verdict is Verdict.FORWARDED

    def test_programs_differ_only_in_deny_body(self):
        from repro.p4.json_loader import program_to_dict

        buggy = program_to_dict(buggy_acl_program())
        intact = program_to_dict(intact_acl_program())
        # Same structure everywhere except the deny action body.
        assert buggy["parser"] == intact["parser"]
        assert buggy["deparser"] == intact["deparser"]
        buggy_deny = next(
            a
            for t in buggy["ingress"]["tables"]
            for a in t["actions"]
            if a["name"] == "deny"
        )
        intact_deny = next(
            a
            for t in intact["ingress"]["tables"]
            for a in t["actions"]
            if a["name"] == "deny"
        )
        assert buggy_deny["body"] == []
        assert intact_deny["body"] == [{"op": "drop"}]

    def test_packets_match_intent_constants(self):
        denied = parse_ethernet(denied_packet())
        assert denied.get("ipv4")["src_addr"] == INTENT_DENY["src_ip"]
        assert denied.get("udp")["dst_port"] == INTENT_DENY["dst_port"]
        allowed = parse_ethernet(allowed_packet())
        assert allowed.get("ipv4")["src_addr"] == INTENT_ALLOW["src_ip"]
        assert allowed.get("udp")["dst_port"] == INTENT_ALLOW["dst_port"]

    def test_intent_installs_one_entry(self):
        program = intact_acl_program()
        install_acl_intent(program)
        assert len(program.table("acl").entries) == 1
        entry = program.table("acl").entries[0]
        assert entry.action == "deny"
        assert entry.priority == 10


class TestRouterWithEntry:
    def test_entry_installed_at_requested_port(self):
        program = router_with_entry(5)
        entry = program.table("ipv4_lpm").entries[0]
        assert entry.action_data[1] == 5

    def test_behavioural_difference_between_ports(self):
        from repro.packet.builder import udp_packet

        wire = udp_packet(
            ipv4("10.7.7.7"), ipv4("172.16.0.5"), 9000, 1000
        ).pack()
        a = Interpreter(router_with_entry(2)).process(wire)
        b = Interpreter(router_with_entry(3)).process(wire)
        assert a.egress_port == 2
        assert b.egress_port == 3
