"""3-engine differential: the batch kernel is semantically invisible.

The batch engine only counts if a block run is indistinguishable from
per-packet execution: for every stdlib(+ext) program, on all three
targets — including Tofino's TCAM quantization and deparse field
budget — ``inject_block`` must produce exactly the verdicts, output
bytes, egress ports, death stages, latencies, stateful-object contents
and device accounting of the per-packet engines, and campaign reports
must stay **byte-identical** across ``tree``/``closure``/``batch``.
"""

import pytest

from repro.exceptions import CompileError
from repro.netdebug.campaign import run_campaign
from repro.netdebug.diffing import baseline_matrix
from repro.netdebug.generator import PacketGenerator, StreamSpec
from repro.netdebug.session import ValidationSession, run_session
from repro.p4.stdlib import PROGRAMS
from repro.sim.traffic import default_flow, malformed_mix
from repro.target.device import NetworkDevice
from repro.target.reference import ReferenceCompiler
from repro.target.sdnet import SDNetCompiler
from repro.target.tofino import TofinoCompiler

from tests.test_target_fastpath_differential import (
    ALL_FACTORIES,
    install_entries,
    run_one,
    workload,
)

COMPILERS = {
    "reference": ReferenceCompiler,
    "sdnet": SDNetCompiler,
    "tofino": TofinoCompiler,
}


def make_device(name, compiler_cls, factory, engine):
    # Same name across engines: reports embed the device name, and the
    # cross-engine identity assertions compare reports wholesale.
    device = NetworkDevice(
        name, compiler_cls(), num_ports=8, engine=engine
    )
    try:
        device.load(factory())
    except CompileError:
        pytest.skip(
            f"{factory.__name__} does not fit {compiler_cls.__name__}"
        )
    install_entries(device)
    return device


def normalize(outcome):
    """Block outcome -> the tuple shape ``run_one`` produces."""
    _timestamp, run = outcome
    if isinstance(run, Exception):
        return ("raised", type(run).__name__, str(run))
    result = run.result
    return (
        result.verdict.value,
        result.metadata.get("egress_spec"),
        result.packet.pack() if result.packet is not None else None,
        run.died_at,
        run.latency_cycles,
    )


def assert_block_matches(per_packet_device, batch_device, frames):
    """One block on ``batch_device`` ≡ frame-by-frame injection."""
    expected = [run_one(per_packet_device, wire) for wire in frames]
    outcomes = batch_device.inject_block(frames, on_error="capture")
    got = [normalize(outcome) for outcome in outcomes]
    for index, (g, e) in enumerate(zip(got, expected)):
        assert g == e, f"frame {index}: {g} != {e}"
    assert len(got) == len(expected)
    fast_state = batch_device.pipeline.state
    slow_state = per_packet_device.pipeline.state
    assert fast_state.counters == slow_state.counters
    assert fast_state.registers == slow_state.registers
    assert batch_device.clock_cycles == per_packet_device.clock_cycles
    assert batch_device.stats == per_packet_device.stats


@pytest.mark.parametrize("target", sorted(COMPILERS))
@pytest.mark.parametrize("name", sorted(ALL_FACTORIES))
def test_batch_block_matches_closure(name, target):
    """Every program × target: block run ≡ closure engine, exactly."""
    compiler_cls = COMPILERS[target]
    closure = make_device(
        f"bd-{name}-{target}", compiler_cls, ALL_FACTORIES[name], "closure"
    )
    batch = make_device(
        f"bd-{name}-{target}", compiler_cls, ALL_FACTORIES[name], "batch"
    )
    assert_block_matches(closure, batch, workload())


# ---------------------------------------------------------------------------
# Edge cases pinned against the tree-walking oracle
# ---------------------------------------------------------------------------

def test_batch_tofino_deparse_truncation_matches_tree():
    """Tofino's deparse field budget truncates forwarded bytes; the
    batch deparse column must truncate identically (ethernet + ipv4 is
    16 fields against a budget of 14)."""
    tree = make_device(
        "tof-trunc", TofinoCompiler, PROGRAMS["ipv4_router"], "tree"
    )
    batch = make_device(
        "tof-trunc", TofinoCompiler, PROGRAMS["ipv4_router"], "batch"
    )
    frames = workload()
    assert_block_matches(tree, batch, frames)
    # The deviation actually fired: at least one forwarded frame left
    # the device shorter than it entered.
    truncated = [
        normalize(o)
        for o in make_device(
            "tof-trunc2", TofinoCompiler, PROGRAMS["ipv4_router"], "batch"
        ).inject_block(frames, on_error="capture")
    ]
    assert any(
        out[0] == "forwarded" and out[2] is not None
        for out in truncated
    )


def test_batch_header_add_remove_mid_block_matches_tree():
    """``mpls_tunnel`` pushes/pops headers for matched prefixes only,
    so lanes diverge in header layout mid-block; every lane must still
    deparse byte-for-byte like the tree walk."""
    for target in ("reference", "sdnet"):
        tree = make_device(
            f"mpls-{target}", COMPILERS[target], PROGRAMS["mpls_tunnel"],
            "tree",
        )
        batch = make_device(
            f"mpls-{target}", COMPILERS[target], PROGRAMS["mpls_tunnel"],
            "batch",
        )
        assert_block_matches(tree, batch, workload())


def test_batch_interleaved_rejects_match_tree():
    """Parser-rejected frames interleaved with accepted ones must not
    shift the surviving lanes' outcomes, clocks or accounting."""
    frames = [
        packet.pack()
        for packet, _ in malformed_mix(default_flow(), 32, 0.5, seed=77)
    ]
    tree = make_device(
        "rej", ReferenceCompiler, PROGRAMS["strict_parser"], "tree"
    )
    batch = make_device(
        "rej", ReferenceCompiler, PROGRAMS["strict_parser"], "batch"
    )
    assert_block_matches(tree, batch, frames)
    # The mix really interleaved: some lanes rejected, some survived.
    assert 0 < batch.stats.parser_rejected < len(frames)


# ---------------------------------------------------------------------------
# Duplicate-extract bookkeeping elision
# ---------------------------------------------------------------------------

def looping_parser_program():
    """A parser FSM with a self-loop: ether_type 0x9999 re-enters
    ``start``, which re-extracts ethernet — the duplicate-header case
    the ``seen`` guard exists for. Targets reject it statically (parse
    depth), so it only exercises the eligibility analysis itself."""
    from repro.p4.actions import Forward
    from repro.p4.dsl import ProgramBuilder
    from repro.p4.expr import Const, fld
    from repro.packet.headers import ETHERNET

    b = ProgramBuilder("looping_parser")
    b.header(ETHERNET)
    b.parser_state("start", extracts=["ethernet"]).select(
        fld("ethernet", "ether_type"),
        [(0x9999, "start")],
        default="done",
    )
    b.parser_state("done").accept()
    b.ingress.action("fwd", [], [Forward(Const(1, 9))])
    b.ingress.call("fwd")
    b.emit("ethernet")
    return b.build()


def duplicate_extract_program():
    """Acyclic FSM whose second state re-extracts ethernet: compiles
    (finite parse depth) but every ether_type-0x9999 parse must raise
    the duplicate-header error — the guard cannot be elided."""
    from repro.p4.actions import Forward
    from repro.p4.dsl import ProgramBuilder
    from repro.p4.expr import Const, fld
    from repro.packet.headers import ETHERNET

    b = ProgramBuilder("duplicate_extract")
    b.header(ETHERNET)
    b.parser_state("start", extracts=["ethernet"]).select(
        fld("ethernet", "ether_type"),
        [(0x9999, "again")],
        default="done",
    )
    b.parser_state("again", extracts=["ethernet"]).accept()
    b.parser_state("done").accept()
    b.ingress.action("fwd", [], [Forward(Const(1, 9))])
    b.ingress.call("fwd")
    b.emit("ethernet")
    return b.build()


def test_stdlib_parsers_elide_duplicate_bookkeeping():
    """Every stdlib(+ext) parser is acyclic with unique extracts, so the
    generated source must carry no ``seen`` set — the byte-identity
    tests above then pin that the elision is semantically invisible."""
    from repro.target.batch import (
        _compile_block_parser,
        _parser_acyclic_unique_extracts,
    )

    for name in sorted(ALL_FACTORIES):
        program = ALL_FACTORIES[name]()
        assert _parser_acyclic_unique_extracts(program), name
        parse = _compile_block_parser(program, honor_reject=True)
        assert parse is not None, name
        assert "seen" not in parse.__code__.co_varnames, name


def test_cyclic_parser_is_ineligible():
    """A looping FSM must fail the eligibility analysis even though
    targets reject it before a device ever runs it."""
    from repro.target.batch import _parser_acyclic_unique_extracts

    assert not _parser_acyclic_unique_extracts(looping_parser_program())


def test_duplicate_extract_parser_keeps_guard_and_matches_closure():
    """A duplicate-extract parser is ineligible: the generated source
    keeps the guard, and block outcomes — including the
    duplicate-header error on the re-extracting frame — still match
    per-packet execution."""
    from repro.packet.builder import ethernet_frame
    from repro.packet.headers import mac
    from repro.target.batch import (
        _compile_block_parser,
        _parser_acyclic_unique_extracts,
    )

    program = duplicate_extract_program()
    assert not _parser_acyclic_unique_extracts(program)
    parse = _compile_block_parser(program, honor_reject=True)
    assert parse is not None
    assert "seen" in parse.__code__.co_varnames

    frames = [
        ethernet_frame(
            mac("02:00:00:00:00:02"), mac("02:00:00:00:00:01"), 0x9999,
            payload=b"\x00" * 14,
        ).pack(),
        ethernet_frame(
            mac("02:00:00:00:00:02"), mac("02:00:00:00:00:01"), 0x0800
        ).pack(),
    ]
    closure = make_device(
        "dup-guard", ReferenceCompiler, duplicate_extract_program,
        "closure",
    )
    batch = make_device(
        "dup-guard", ReferenceCompiler, duplicate_extract_program, "batch"
    )
    assert_block_matches(closure, batch, frames)
    outcome = normalize(
        make_device(
            "dup-guard2", ReferenceCompiler, duplicate_extract_program,
            "batch",
        ).inject_block(frames, on_error="capture")[0]
    )
    assert outcome[0] == "raised" and "duplicate header" in outcome[2]


# ---------------------------------------------------------------------------
# Session- and campaign-level byte identity
# ---------------------------------------------------------------------------

ENGINES = ("tree", "closure", "batch")


def _oracle_session(count=12):
    packets = [
        packet for packet, _ in malformed_mix(
            default_flow(), count, 0.4, seed=2018
        )
    ]
    return ValidationSession(
        name="engine-diff",
        streams=[StreamSpec(stream_id=1, packets=packets)],
        use_reference_oracle=True,
    )


@pytest.mark.parametrize("target", sorted(COMPILERS))
def test_session_reports_identical_across_engines(target):
    """The batch session block path reproduces the lockstep protocol's
    SessionReport exactly — findings, latencies and stream stats."""
    reports = []
    for engine in ENGINES:
        device = make_device(
            f"sess-{target}", COMPILERS[target],
            PROGRAMS["acl_firewall"], engine,
        )
        reports.append(run_session(device, _oracle_session()).to_dict())
    assert reports[0] == reports[1] == reports[2]


def _stream_records(engine, *, timestamps=None, ports=None,
                    force_per_packet=False):
    """run_stream one malformed-mix stream; return records + device."""
    device = make_device(
        "gen-block", COMPILERS["reference"], PROGRAMS["strict_parser"],
        engine,
    )
    packets = [
        packet
        for packet, _ in malformed_mix(default_flow(), 16, 0.5, seed=41)
    ]
    generator = PacketGenerator(device)
    generator.configure(
        StreamSpec(
            stream_id=3, packets=packets, timestamps=timestamps,
            ingress_ports=ports,
        )
    )
    # A no-op per-packet callback disables the block path without
    # changing observable semantics — the forced-fallback control arm.
    hook = (lambda record: None) if force_per_packet else None
    records = generator.run_stream(3, on_injected=hook)
    return records, device


def _normalize_records(records):
    return [
        (
            record.stream_id,
            record.seq_no,
            record.wire,
            record.timestamp,
            normalize((record.timestamp, record.run)),
        )
        for record in records
    ]


@pytest.mark.parametrize(
    "timestamps,ports",
    [
        (None, None),
        (list(range(100, 1700, 100)), None),
        (None, [seq % 4 for seq in range(16)]),
        (list(range(100, 1700, 100)), [seq % 4 for seq in range(16)]),
    ],
    ids=["bare", "timestamps", "ports", "both"],
)
def test_run_stream_block_path_matches_per_packet(timestamps, ports):
    """``run_stream``'s default block path — including streams carrying
    their own arrival process and per-packet ingress ports — is
    byte-identical to the forced per-packet loop, records and device
    accounting alike."""
    blocked, block_device = _stream_records(
        "batch", timestamps=timestamps, ports=ports
    )
    looped, loop_device = _stream_records(
        "batch", timestamps=timestamps, ports=ports, force_per_packet=True
    )
    assert _normalize_records(blocked) == _normalize_records(looped)
    assert block_device.clock_cycles == loop_device.clock_cycles
    assert block_device.stats == loop_device.stats
    assert (
        block_device.pipeline.state.counters
        == loop_device.pipeline.state.counters
    )


def test_run_stream_block_path_matches_across_engines():
    """The same stream yields identical records whichever engine backs
    the device — the block path must not observably differ from the
    per-packet engines it bypasses."""
    normalized = {}
    for engine in ENGINES:
        records, _ = _stream_records(
            engine,
            timestamps=list(range(50, 850, 50)),
            ports=[seq % 3 for seq in range(16)],
        )
        normalized[engine] = _normalize_records(records)
    assert (
        normalized["tree"] == normalized["closure"] == normalized["batch"]
    )


def test_campaign_reports_byte_identical_across_engines():
    """The golden-baseline matrix renders to identical JSON bytes under
    all three engines — cache counters and engine choice must never
    leak into the canonical report."""
    texts = {}
    for engine in ENGINES:
        report = run_campaign(
            baseline_matrix(), name="engine-diff", engine=engine
        )
        texts[engine] = report.to_json()
    assert texts["tree"] == texts["closure"] == texts["batch"]
