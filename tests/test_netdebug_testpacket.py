"""Probe format tests: encode/decode round-trips, magic detection."""

from hypothesis import given, strategies as st

from repro.netdebug.testpacket import (
    PROBE_MAGIC,
    decode_probe,
    is_probe,
    make_probe,
)
from repro.packet.builder import ethernet_frame, udp_packet
from repro.packet.headers import ipv4


class TestEncode:
    def test_payload_probe(self):
        probe = make_probe(3, 14, timestamp=999, tap_id=2, inner=b"body")
        info = decode_probe(probe.pack())
        assert info is not None
        assert info.stream_id == 3
        assert info.seq_no == 14
        assert info.timestamp == 999
        assert info.tap_id == 2
        assert info.inner == b"body"

    def test_wrapped_inner_packet(self):
        inner = udp_packet(ipv4("1.1.1.1"), ipv4("2.2.2.2"), 53, 9)
        probe = make_probe(1, 2, inner=inner)
        info = decode_probe(probe.pack())
        assert info.inner == inner.pack()
        assert info.has_inner

    def test_empty_inner(self):
        probe = make_probe(1, 2)
        info = decode_probe(probe.pack())
        assert info.inner == b""
        assert not info.has_inner


class TestDetection:
    def test_non_probe_frames(self):
        frame = ethernet_frame(1, 2, 0x0800, payload=b"x" * 40)
        assert not is_probe(frame.pack())
        assert decode_probe(frame.pack()) is None

    def test_short_frames(self):
        assert not is_probe(b"")
        assert not is_probe(b"\x00" * 20)

    def test_right_ethertype_wrong_magic(self):
        probe = make_probe(1, 2)
        probe.get("netdebug")["magic"] = 0x1234
        assert not is_probe(probe.pack())

    def test_magic_constant(self):
        probe = make_probe(1, 2)
        assert probe.get("netdebug")["magic"] == PROBE_MAGIC


class TestProperties:
    @given(
        st.integers(min_value=0, max_value=0xFFFF),
        st.integers(min_value=0, max_value=0xFFFFFFFF),
        st.integers(min_value=0, max_value=(1 << 48) - 1),
        st.integers(min_value=0, max_value=255),
        st.binary(max_size=128),
    )
    def test_roundtrip(self, stream_id, seq_no, timestamp, tap_id, body):
        probe = make_probe(
            stream_id, seq_no, timestamp=timestamp, tap_id=tap_id,
            inner=body,
        )
        wire = probe.pack()
        assert is_probe(wire)
        info = decode_probe(wire)
        assert info.stream_id == stream_id
        assert info.seq_no == seq_no
        assert info.timestamp == timestamp
        assert info.tap_id == tap_id
        assert info.inner == body
