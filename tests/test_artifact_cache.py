"""The persistent compiled-artifact cache and its cluster version guard."""

import pickle

import pytest

from repro.exceptions import ClusterError
from repro.netdebug.campaign import run_campaign
from repro.netdebug.cluster import _serve_inline
from repro.netdebug.diffing import baseline_matrix
from repro.netdebug.transport import (
    require_cache_version,
    stamp_cache_version,
)
from repro.p4.stdlib import PROGRAMS
from repro.target.artifact_cache import (
    CACHE_VERSION,
    ArtifactCache,
    get_artifact_cache,
    stats_delta,
    stats_snapshot,
)
from repro.target.reference import ReferenceCompiler, make_reference_device
from repro.target.sdnet import SDNetCompiler

from tests.test_target_fastpath_differential import run_one, workload


def _compile(factory=None, compiler=None):
    compiler = compiler or ReferenceCompiler()
    program = (factory or PROGRAMS["acl_firewall"])()
    return program, compiler, compiler.compile(program)


# ---------------------------------------------------------------------------
# Keying
# ---------------------------------------------------------------------------

def test_key_is_stable_and_distinguishes_inputs(tmp_path):
    cache = ArtifactCache(tmp_path)
    program, compiler, _ = _compile()
    key = cache.key_for(program, compiler)
    assert key == cache.key_for(PROGRAMS["acl_firewall"](), compiler)
    # Different program, different target, different extra tag: all
    # change the key (a hit must never alias another artifact).
    assert key != cache.key_for(PROGRAMS["l2_switch"](), compiler)
    assert key != cache.key_for(program, SDNetCompiler())
    assert key != cache.key_for(program, compiler, extra="acl_gate")


def test_key_changes_with_installed_entries(tmp_path):
    """Provisioned table entries live inside the IR the key covers."""
    cache = ArtifactCache(tmp_path)
    device = make_reference_device("keyed")
    device.load(PROGRAMS["l2_switch"]())
    compiler = ReferenceCompiler()
    before = cache.key_for(device.program, compiler)
    device.control_plane.table_add(
        "dmac", "forward", [0x020000000002], [1]
    )
    assert cache.key_for(device.program, compiler) != before


# ---------------------------------------------------------------------------
# Store / load round trip
# ---------------------------------------------------------------------------

def test_store_load_round_trip_is_behavioral(tmp_path):
    """A loaded artifact (closures rebuilt) runs packets identically."""
    cache = ArtifactCache(tmp_path)
    program, compiler, compiled = _compile()
    key = cache.key_for(program, compiler)
    before = stats_snapshot()
    cache.store(key, compiled)
    loaded = cache.load(key, compiler)
    delta = stats_delta(before)
    assert delta["stores"] == 1 and delta["hits"] == 1
    assert loaded is not None
    assert loaded.fast is not None

    original = make_reference_device("orig")
    original.install(compiled)
    restored = make_reference_device("orig")
    restored.install(loaded)
    for wire in workload():
        assert run_one(original, wire) == run_one(restored, wire)


def test_missing_entry_is_a_miss(tmp_path):
    cache = ArtifactCache(tmp_path)
    before = stats_snapshot()
    assert cache.load("0" * 64, ReferenceCompiler()) is None
    assert stats_delta(before)["misses"] == 1


@pytest.mark.parametrize(
    "corruption",
    ["truncated", "garbage", "version", "key", "target"],
)
def test_corrupt_or_stale_entries_miss_and_unlink(tmp_path, corruption):
    cache = ArtifactCache(tmp_path)
    program, compiler, compiled = _compile()
    key = cache.key_for(program, compiler)
    cache.store(key, compiled)
    path = cache._path(key)

    if corruption == "truncated":
        path.write_bytes(path.read_bytes()[:20])
    elif corruption == "garbage":
        path.write_bytes(b"not a pickle at all")
    elif corruption == "version":
        payload = pickle.loads(path.read_bytes())
        payload["version"] = CACHE_VERSION + 1
        path.write_bytes(pickle.dumps(payload))
    elif corruption == "key":
        payload = pickle.loads(path.read_bytes())
        payload["key"] = "f" * 64
        path.write_bytes(pickle.dumps(payload))
    elif corruption == "target":
        # Same bytes filed under a different target's compiler.
        compiler = SDNetCompiler()

    before = stats_snapshot()
    assert cache.load(key, compiler) is None
    assert stats_delta(before) == {
        "hits": 0, "misses": 1, "stores": 0, "memory_hits": 0,
    }
    assert not path.exists(), "corrupt entry must be deleted"


def test_store_failure_is_silent(tmp_path):
    """An unusable cache directory must never fail the run. (A plain
    file where the directory should be defeats even root, which a
    read-only mode bit does not.)"""
    blocker = tmp_path / "ro"
    blocker.write_text("not a directory")
    cache = ArtifactCache(blocker)
    program, compiler, compiled = _compile()
    before = stats_snapshot()
    cache.store(cache.key_for(program, compiler), compiled)
    assert stats_delta(before)["stores"] == 0


# ---------------------------------------------------------------------------
# Environment resolution
# ---------------------------------------------------------------------------

def test_env_var_selects_directory(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_COMPILE_CACHE", str(tmp_path / "here"))
    cache = get_artifact_cache()
    assert cache is not None
    assert cache.directory == tmp_path / "here"


@pytest.mark.parametrize("word", ["off", "0", "none", "disabled", " OFF "])
def test_env_var_disables_cache(monkeypatch, word):
    monkeypatch.setenv("REPRO_COMPILE_CACHE", word)
    assert get_artifact_cache() is None


def test_default_directory_under_home(tmp_path, monkeypatch):
    monkeypatch.delenv("REPRO_COMPILE_CACHE", raising=False)
    monkeypatch.setenv("HOME", str(tmp_path))
    cache = get_artifact_cache()
    assert cache is not None
    assert str(cache.directory).startswith(str(tmp_path))


# ---------------------------------------------------------------------------
# Campaign integration
# ---------------------------------------------------------------------------

def test_warm_campaign_hits_cache_and_keeps_bytes(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_COMPILE_CACHE", str(tmp_path / "warm"))
    matrix = baseline_matrix()
    cold = run_campaign(matrix, name="cache-check")
    warm = run_campaign(matrix, name="cache-check")

    assert cold.meta["compile_cache"]["stores"] > 0
    assert warm.meta["compile_cache"]["hits"] > 0
    assert warm.meta["compile_cache"]["stores"] == 0
    # Counters are observability only — never part of the canonical
    # report bytes the golden baselines pin.
    assert cold.to_json() == warm.to_json()
    assert "compile_cache" not in cold.to_json()


def test_disabled_cache_still_runs(monkeypatch):
    """With the disk cache off, only the in-process tier moves."""
    monkeypatch.setenv("REPRO_COMPILE_CACHE", "off")
    report = run_campaign(baseline_matrix(), name="nocache")
    counters = report.meta["compile_cache"]
    assert counters["hits"] == 0
    assert counters["misses"] == 0
    assert counters["stores"] == 0
    assert counters["memory_hits"] > 0


# ---------------------------------------------------------------------------
# Cluster version guard
# ---------------------------------------------------------------------------

class _ScriptedChannel:
    """Feeds scripted messages to a worker serve loop; records sends."""

    def __init__(self, messages):
        self._messages = list(messages)
        self.sent = []

    def recv(self, json_only=False):
        return self._messages.pop(0) if self._messages else None

    def send(self, message, binary=False):
        self.sent.append(message)

    def close(self):
        pass


def test_stamp_and_require_round_trip():
    message = stamp_cache_version({"type": "job"})
    assert message["cache_version"] == CACHE_VERSION
    require_cache_version(message)  # does not raise


def test_worker_rejects_version_skew():
    for bad in ({}, {"cache_version": CACHE_VERSION + 1}):
        message = {"type": "job", "id": 0, "fn": "run", "job": (), **bad}
        with pytest.raises(ClusterError, match="skewed"):
            _serve_inline(_ScriptedChannel([message]), None)


def test_worker_accepts_current_version():
    """A correctly stamped frame flows through to shard execution (the
    bogus job then fails, proving the guard was passed)."""
    message = stamp_cache_version(
        {"type": "job", "id": 0, "fn": "run", "job": ()}
    )
    channel = _ScriptedChannel([message])
    _serve_inline(channel, None)
    assert channel.sent and channel.sent[0]["type"] == "error"
