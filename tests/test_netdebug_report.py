"""Unit tests for the report datatypes."""

import pytest

from repro.netdebug.report import (
    Capability,
    CheckOutcome,
    Finding,
    LatencyStats,
    SessionReport,
    StreamStats,
)


class TestLatencyStats:
    def test_empty(self):
        stats = LatencyStats()
        assert stats.count == 0
        assert stats.mean == 0.0
        assert stats.p50 == 0.0
        assert stats.p99 == 0.0
        assert stats.max == 0

    def test_aggregates(self):
        stats = LatencyStats()
        for value in (10, 20, 30, 40):
            stats.record(value)
        assert stats.count == 4
        assert stats.mean == 25.0
        assert stats.p50 == 25.0
        assert stats.max == 40

    def test_p99_near_max(self):
        stats = LatencyStats()
        for value in range(100):
            stats.record(value)
        assert stats.p99 == 99.0

    def test_microsecond_conversion(self):
        stats = LatencyStats()
        stats.record(200)
        converted = stats.to_microseconds(clock_mhz=200)
        assert converted["mean_us"] == pytest.approx(1.0)
        assert converted["max_us"] == pytest.approx(1.0)


class TestStreamStats:
    def test_in_order_reception(self):
        stats = StreamStats(1, sent=3)
        for seq in (0, 1, 2):
            stats.record_rx(seq)
        stats.finalize()
        assert stats.received == 3
        assert stats.lost == 0
        assert stats.reordered == 0
        assert stats.duplicated == 0

    def test_loss(self):
        stats = StreamStats(1, sent=5)
        stats.record_rx(0)
        stats.record_rx(4)
        stats.finalize()
        assert stats.lost == 3

    def test_reorder(self):
        stats = StreamStats(1, sent=3)
        stats.record_rx(0)
        stats.record_rx(2)
        stats.record_rx(1)  # late
        stats.finalize()
        assert stats.reordered == 1
        assert stats.lost == 0

    def test_duplicates_not_counted_as_progress(self):
        stats = StreamStats(1, sent=2)
        stats.record_rx(0)
        stats.record_rx(0)
        stats.finalize()
        assert stats.duplicated == 1
        assert stats.lost == 1  # seq 1 never arrived


class TestCapability:
    def test_enum_values(self):
        assert Capability.FULL.value == "full"
        assert Capability.PARTIAL.value == "partial"
        assert Capability.NONE.value == "none"

    @pytest.mark.parametrize(
        "score,expected",
        [
            (1.0, Capability.FULL),
            (0.95, Capability.FULL),
            (0.89, Capability.PARTIAL),
            (0.3, Capability.PARTIAL),
            (0.2, Capability.NONE),
            (0.0, Capability.NONE),
        ],
    )
    def test_thresholds(self, score, expected):
        assert Capability.from_score(score) is expected


class TestSessionReport:
    def make(self, **overrides):
        report = SessionReport(
            session="s", device="d", program="p", **overrides
        )
        return report

    def test_passed_requires_clean_slate(self):
        assert self.make().passed
        failing_check = CheckOutcome("r", checked=1, failed=1)
        assert not self.make(checks=[failing_check]).passed
        finding = Finding("unexpected_output", "boom")
        assert not self.make(findings=[finding]).passed

    def test_findings_of_filters(self):
        report = self.make(
            findings=[
                Finding("a", "1"),
                Finding("b", "2"),
                Finding("a", "3"),
            ]
        )
        assert len(report.findings_of("a")) == 2
        assert report.findings_of("zzz") == []

    def test_summary_includes_measurements(self):
        report = self.make(measurements={"throughput_gbps": 12.5})
        assert "throughput_gbps" in report.summary()

    def test_summary_includes_failures(self):
        outcome = CheckOutcome(
            "ttl", checked=2, failed=1, first_failure="ttl was 0"
        )
        report = self.make(checks=[outcome])
        text = report.summary()
        assert "FAILED" in text
        assert "ttl was 0" in text

    def test_check_outcome_ok(self):
        assert CheckOutcome("x", checked=5, passed=5).ok
        assert not CheckOutcome("x", checked=5, failed=1).ok


class TestToMicrosecondsGuard:
    def test_zero_or_negative_clock_rejected(self):
        stats = LatencyStats(samples=[10, 20])
        with pytest.raises(ValueError):
            stats.to_microseconds(0)
        with pytest.raises(ValueError):
            stats.to_microseconds(-200)

    def test_empty_stats_convert_to_zeros(self):
        values = LatencyStats().to_microseconds(200)
        assert set(values.values()) == {0.0}


class TestSessionReportRoundTrip:
    def _report(self):
        report = SessionReport(session="rt", device="dev0", program="p4")
        report.checks.append(
            CheckOutcome(rule="r1", checked=5, passed=4, failed=1,
                         first_failure="boom")
        )
        report.findings.append(
            Finding("check_failed", "r1: boom", stage="output", stream_id=2)
        )
        stats = StreamStats(stream_id=2, sent=5)
        for seq in range(4):
            stats.record_rx(seq)
        stats.finalize()
        report.streams[2] = stats
        for cycles in (11, 13, 17):
            report.latency.record(cycles)
        report.injected = 5
        report.observed = 4
        report.measurements["cycles_per_packet"] = 21.5
        return report

    def test_from_dict_inverts_to_dict(self):
        report = self._report()
        rebuilt = SessionReport.from_dict(report.to_dict())
        assert rebuilt.to_dict() == report.to_dict()
        assert rebuilt.passed == report.passed
        assert rebuilt.latency.samples == [11, 13, 17]
        assert rebuilt.streams[2].lost == 1

    def test_empty_report_round_trips(self):
        report = SessionReport(session="empty", device="d", program="p")
        rebuilt = SessionReport.from_dict(report.to_dict())
        assert rebuilt.to_dict() == report.to_dict()
        assert rebuilt.latency.mean == 0.0
