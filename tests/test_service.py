"""Campaign-service tests: the hardened wire, the JSON job codec,
capability tags, and the multi-tenant fleet end to end.

The contract under test (the service acceptance criteria):

* frame fuzz — an HMAC-authenticated channel rejects truncated tags,
  wrong keys, tampered bodies, replayed frames, oversize frames and
  non-JSON kind bytes, and a pickle frame sent at the service is
  refused **without ever being unpickled**;
* job frames are data, never code: the codec round-trips declarative
  scenarios/faults and refuses predicate-carrying faults;
* two concurrent campaigns from different tenants both complete
  **byte-identical** to a serial ``run_campaign`` of the same matrix;
* a worker killed mid-campaign and a worker that drops + reconnects
  both recover with no dropped and no duplicated cells;
* fair-share: weights 3:1 yield contended dispatch shares within 2×
  of the weights; strict priority preempts across tiers;
* capability tags place shards only on eligible workers, and a
  campaign no fleet member could ever run fails loudly.
"""

import socket
import struct
import threading
import time

import pytest

from repro.exceptions import ClusterError, NetDebugError
from repro.netdebug.campaign import (
    ScenarioMatrix,
    _pool_context,
    run_campaign,
)
from repro.netdebug.client import ServiceClient
from repro.netdebug.cluster import (
    normalize_tags,
    service_worker_main,
    tags_eligible,
)
from repro.netdebug.service import CampaignService
from repro.netdebug.transport import (
    Channel,
    FrameAuth,
    KIND_JSON,
    MAX_FRAME_BYTES,
    TAG_BYTES,
    decode_job,
    encode_job,
    recv_message,
    send_message,
)
from repro.target.faults import Fault, FaultKind

SECRET = "test-fleet-secret"

_HEADER = struct.Struct(">IB")


def service_matrix(labels=1, count=2, seed=13, **overrides):
    base = dict(
        programs=["strict_parser"],
        targets=["reference"],
        faults={f"fault{i}": () for i in range(labels)},
        workloads=["udp", "malformed"],
        count=count,
        seed=seed,
    )
    base.update(overrides)
    return ScenarioMatrix(**base)


# ---------------------------------------------------------------------------
# Frame fuzz: the hardened wire
# ---------------------------------------------------------------------------

class TestFrameAuth:
    def pair(self):
        return socket.socketpair()

    def test_authenticated_round_trip_both_directions(self):
        a, b = self.pair()
        left, right = Channel(a, secret=SECRET), Channel(b, secret=SECRET)
        for i in range(3):
            left.send({"type": "ping", "i": i})
            assert right.recv() == {"type": "ping", "i": i}
            right.send({"type": "pong", "i": i})
            assert left.recv() == {"type": "pong", "i": i}

    def test_unauthenticated_frame_too_short_for_tag(self):
        a, b = self.pair()
        send_message(a, {})  # 2-byte body, no tag
        with pytest.raises(ClusterError, match="authentication tag"):
            recv_message(b, auth=FrameAuth(SECRET))

    def test_wrong_key_rejected(self):
        a, b = self.pair()
        Channel(a, secret="not-the-fleet-secret").send({"type": "hello"})
        with pytest.raises(
            ClusterError, match="frame authentication failed"
        ):
            Channel(b, secret=SECRET).recv()

    def test_tampered_body_rejected(self):
        a, b = self.pair()
        auth = FrameAuth(SECRET)
        body = b'{"type": "job", "id": 1}'
        tag = auth.tag(0, KIND_JSON, body)
        evil = b'{"type": "job", "id": 9}'  # same length, flipped byte
        a.sendall(_HEADER.pack(len(evil + tag), KIND_JSON) + evil + tag)
        with pytest.raises(
            ClusterError, match="frame authentication failed"
        ):
            Channel(b, secret=SECRET).recv()

    def test_replayed_frame_rejected(self):
        # The exact bytes the receiver accepted at sequence 0 must fail
        # at sequence 1: the tag covers the implicit counter.
        a, b = self.pair()
        auth = FrameAuth(SECRET)
        body = b'{"type": "result", "assignment": 7}'
        tag = auth.tag(0, KIND_JSON, body)
        frame = _HEADER.pack(len(body + tag), KIND_JSON) + body + tag
        a.sendall(frame + frame)
        channel = Channel(b, secret=SECRET)
        assert channel.recv()["assignment"] == 7
        with pytest.raises(ClusterError, match="sequence 1"):
            channel.recv()

    def test_oversize_frame_rejected_before_allocation(self):
        a, b = self.pair()
        a.sendall(_HEADER.pack(MAX_FRAME_BYTES + 1, KIND_JSON))
        with pytest.raises(ClusterError, match="exceeds limit"):
            recv_message(b, auth=FrameAuth(SECRET))

    def test_unknown_kind_byte_rejected_by_json_only(self):
        a, b = self.pair()
        a.sendall(_HEADER.pack(2, 0x5A) + b"{}")
        with pytest.raises(ClusterError, match="only JSON"):
            recv_message(b, json_only=True, auth=FrameAuth(SECRET))


# A class whose unpickling has an observable side effect: if the
# service ever feeds a pickle frame to pickle.loads, TRIPPED fills.
TRIPPED = []


def _trip():
    TRIPPED.append("unpickled")
    return {"owned": True}


class Boom:
    def __reduce__(self):
        return (_trip, ())


def test_service_rejects_pickle_frames_without_unpickling():
    service = CampaignService().start()
    try:
        sock = socket.create_connection(service.address, timeout=10.0)
        try:
            send_message(sock, {"job": Boom()}, binary=True)
            sock.settimeout(10.0)
            # The daemon drops the connection by kind byte alone.
            assert sock.recv(1) == b""
        finally:
            sock.close()
        assert TRIPPED == []
    finally:
        service.close()


def test_authenticated_service_rejects_wrong_key_client():
    service = CampaignService(secret=SECRET).start()
    try:
        client = ServiceClient(
            service.address, secret="wrong-key", timeout=10.0
        )
        with pytest.raises(ClusterError):
            client.workers()
    finally:
        service.close()


# ---------------------------------------------------------------------------
# JSON job codec
# ---------------------------------------------------------------------------

class TestJobCodec:
    def test_round_trip(self):
        matrix = service_matrix(
            labels=1,
            faults={
                "chaos": (
                    Fault(FaultKind.BLACKHOLE, stage="ingress.0"),
                ),
            },
        )
        scenario = matrix.expand()[0]
        payload = encode_job(
            41, scenario, matrix.faults[scenario.fault], engine="batch"
        )
        epoch, decoded, faults, record, engine, oracle = decode_job(
            payload
        )
        assert (epoch, record, engine, oracle) == (41, False, "batch", None)
        assert decoded == scenario
        assert faults == matrix.faults[scenario.fault]

    def test_predicate_faults_refused(self):
        matrix = service_matrix(
            faults={
                "picky": (
                    Fault(
                        FaultKind.BLACKHOLE,
                        stage="ingress.0",
                        predicate=lambda packet: True,
                    ),
                ),
            },
        )
        scenario = matrix.expand()[0]
        with pytest.raises(NetDebugError, match="predicate"):
            encode_job(1, scenario, matrix.faults[scenario.fault])

    def test_malformed_payload_refused(self):
        with pytest.raises(ClusterError, match="malformed JSON job"):
            decode_job({"epoch": 1, "faults": []})


# ---------------------------------------------------------------------------
# Capability tags
# ---------------------------------------------------------------------------

class TestTags:
    def test_normalize_sorts_and_dedupes(self):
        assert normalize_tags(
            ["engine:batch", "target:tofino", " engine:batch ", ""]
        ) == ("engine:batch", "target:tofino")

    def test_malformed_tag_rejected(self):
        with pytest.raises(ClusterError, match="dim:value"):
            normalize_tags(["tofino"])

    def test_eligibility_per_dimension(self):
        required = ("target:tofino", "engine:batch")
        assert tags_eligible((), required)  # untagged takes anything
        assert tags_eligible(("target:tofino",), required)
        assert tags_eligible(
            ("target:tofino", "engine:batch"), required
        )
        assert not tags_eligible(("target:reference",), required)
        assert not tags_eligible(
            ("target:tofino", "engine:closure"), required
        )


# ---------------------------------------------------------------------------
# The fleet, end to end
# ---------------------------------------------------------------------------

class Fleet:
    """One in-process daemon plus forked service workers."""

    def __init__(self, secret=SECRET, **service_kwargs):
        self.secret = secret
        self.service = CampaignService(
            secret=secret, **service_kwargs
        ).start()
        self.processes = []

    def add_worker(self, slots=1, tags=(), **kwargs):
        kwargs.setdefault("connect_retry_s", 5.0)
        process = _pool_context().Process(
            target=service_worker_main,
            args=(self.service.address,),
            kwargs=dict(
                slots=slots, tags=tags, secret=self.secret, **kwargs
            ),
        )
        process.start()
        self.processes.append(process)
        return process

    def wait_workers(self, n, timeout=30.0):
        deadline = time.monotonic() + timeout
        while time.monotonic() < deadline:
            listing = self.service.worker_listing()
            if sum(1 for w in listing if w["alive"]) >= n:
                return listing
            time.sleep(0.05)
        raise AssertionError(f"fleet never reached {n} live workers")

    def client(self, timeout=120.0):
        return ServiceClient(
            self.service.address, secret=self.secret, timeout=timeout
        )

    def close(self):
        self.service.close()
        for process in self.processes:
            process.join(timeout=10.0)
            if process.is_alive():
                process.terminate()


@pytest.fixture
def fleet(request):
    fleets = []

    def make(**kwargs):
        f = Fleet(**kwargs)
        fleets.append(f)
        return f

    yield make
    for f in fleets:
        f.close()


class TestService:
    def test_concurrent_campaigns_byte_identical_and_gated(self, fleet):
        f = fleet()
        f.add_worker()
        f.add_worker()
        f.wait_workers(2)
        client = f.client()
        alpha_matrix = service_matrix(labels=2, seed=7)
        beta_matrix = service_matrix(labels=2, seed=9, count=3)
        alpha = client.submit(
            alpha_matrix, name="alpha", tenant="ci", priority=1, weight=3.0
        )
        beta = client.submit(
            beta_matrix, name="beta", tenant="nightly", weight=1.0
        )
        seen = []
        alpha_report = alpha.stream(
            on_result=lambda key, rep, prog: seen.append(key)
        )
        beta_report = beta.result()
        assert sorted(seen) == sorted(
            s.key for s in alpha_matrix.expand()
        )
        assert (
            alpha_report.to_json()
            == run_campaign(alpha_matrix, name="alpha").to_json()
        )
        assert (
            beta_report.to_json()
            == run_campaign(beta_matrix, name="beta").to_json()
        )
        assert alpha_report.meta["service"]["tenant"] == "ci"
        assert alpha_report.meta["service"]["priority"] == 1
        # Server-side diff gate against the serial twin: identical.
        verdict = alpha.gate(run_campaign(alpha_matrix, name="alpha"))
        assert verdict["identical"] and not verdict["regression"]
        alpha.close()
        beta.close()

    def test_worker_crash_mid_campaign_recovers(self, fleet):
        # One worker hard-exits on its second shard; after the grace
        # its lost assignment requeues on the survivor. No dropped or
        # duplicated cells: the report is byte-identical to serial.
        f = fleet(reconnect_grace_s=0.5, steal_after_s=30.0)
        f.add_worker(crash_after=1)
        f.add_worker()
        f.wait_workers(2)
        matrix = service_matrix(labels=3, seed=21)
        report = f.client().run(matrix, name="chaos")
        assert (
            report.to_json()
            == run_campaign(matrix, name="chaos").to_json()
        )
        assert report.meta["service"]["requeues"] >= 1

    def test_worker_drop_and_reconnect_resumes_same_session(self, fleet):
        # The only worker drops its connection every 2 completions and
        # reconnects under the same session id; the outstanding-shard
        # ledger resumes the campaign with nothing lost or re-run.
        f = fleet(steal_after_s=30.0)
        f.add_worker(drop_after=2)
        f.wait_workers(1)
        matrix = service_matrix(labels=3, seed=33)
        report = f.client().run(matrix, name="flaky")
        assert (
            report.to_json()
            == run_campaign(matrix, name="flaky").to_json()
        )
        sessions = {
            w["session"] for w in f.service.worker_listing()
        }
        assert len(sessions) == 1

    def test_fair_share_within_2x_of_weights(self, fleet):
        # One worker, two same-tier tenants at weights 3:1: contended
        # dispatch shares must land within 2x of the weight ratio.
        f = fleet()
        f.add_worker()
        f.wait_workers(1)
        client = f.client()
        heavy = client.submit(
            service_matrix(labels=6, seed=51), name="heavy",
            tenant="t-heavy", weight=3.0,
        )
        light = client.submit(
            service_matrix(labels=6, seed=52), name="light",
            tenant="t-light", weight=1.0,
        )
        heavy_meta = heavy.result().meta["service"]
        light_meta = light.result().meta["service"]
        heavy.close()
        light.close()
        assert heavy_meta["contended"] > 0
        assert light_meta["contended"] > 0
        ratio = heavy_meta["contended"] / light_meta["contended"]
        assert 3.0 / 2.0 <= ratio <= 3.0 * 2.0, (heavy_meta, light_meta)

    def test_strict_priority_preempts_lower_tier(self, fleet):
        f = fleet()
        f.add_worker()
        f.wait_workers(1)
        client = f.client()
        low = client.submit(
            service_matrix(labels=6, seed=61), name="low", priority=0
        )
        high = client.submit(
            service_matrix(labels=1, seed=62), name="high", priority=5
        )
        high.result()
        listing = {
            c["campaign"]: c for c in client.campaigns()
        }
        low_live = listing[low.campaign]
        assert low_live["completed"] < low_live["total"]
        low.result()  # and the low tier still finishes afterwards
        low.close()
        high.close()

    def test_tagged_placement_pins_shards_to_eligible_workers(
        self, fleet
    ):
        # A worker pinned to another target's toolchain must receive
        # nothing from a reference-only campaign (not even steals).
        f = fleet(steal_after_s=30.0)
        f.add_worker(tags=("target:tofino",))
        f.add_worker()
        f.wait_workers(2)
        matrix = service_matrix(labels=2, seed=71)
        report = f.client().run(matrix, name="pinned")
        assert report.scenarios == len(matrix.expand())
        by_tags = {
            tuple(w["tags"]): w for w in f.service.worker_listing()
        }
        assert by_tags[("target:tofino",)]["completed"] == 0
        assert by_tags[()]["completed"] == report.scenarios

    def test_stranded_campaign_fails_naming_capabilities(self, fleet):
        f = fleet()
        f.add_worker(tags=("target:reference",))
        f.wait_workers(1)
        handle = f.client().submit(
            service_matrix(targets=["tofino"]), name="stranded"
        )
        with pytest.raises(ClusterError, match="requires capabilities"):
            handle.result()
        handle.close()

    def test_predicate_matrix_refused_at_submission(self, fleet):
        f = fleet()
        matrix = service_matrix(
            faults={
                "picky": (
                    Fault(
                        FaultKind.BLACKHOLE,
                        stage="ingress.0",
                        predicate=lambda packet: True,
                    ),
                ),
            },
        )
        with pytest.raises(NetDebugError, match="predicate"):
            f.client().submit(matrix, name="nope")
