"""Seeded differential properties over all registered targets.

The contract under test, at property scale (~200 randomized packets per
program, every target in the campaign ``TARGETS`` registry):

* **deviation-tag/verdict consistency** — a cell may diverge from the
  spec oracle only if its artifact declares deviation tags, every
  divergence is explained by a declared tag, and the datapath always
  matches its own declared deviant model;
* **determinism** — the same seed reproduces the byte-identical
  report; distinct seeds keep the consistency contract.
"""

import pytest

from repro.netdebug.campaign import TARGETS, provision_acl_gate
from repro.netdebug.differential import (
    DifferentialCase,
    DifferentialReport,
    DifferentialRunner,
    seeded_batch,
)
from repro.sim.traffic import default_flow

from tests.differential.harness import provision_router

ALL_TARGETS = tuple(sorted(TARGETS))

CASES = [
    DifferentialCase("strict_parser"),
    DifferentialCase("l2_switch"),
    DifferentialCase("ipv4_router", provision=provision_router),
    DifferentialCase("acl_firewall", provision=provision_acl_gate),
]

PACKETS_PER_PROGRAM = 200


def run_matrix(seed: int):
    return DifferentialRunner(
        cases=CASES,
        targets=ALL_TARGETS,
        count=PACKETS_PER_PROGRAM,
        seed=seed,
    ).run()


@pytest.fixture(scope="module")
def report():
    return run_matrix(seed=42)


class TestTagVerdictConsistency:
    def test_registry_is_three_way(self):
        assert set(ALL_TARGETS) == {"reference", "sdnet", "tofino"}

    def test_every_cell_covers_the_full_batch(self, report):
        for cell in report.cells:
            if not cell.compile_rejected:
                assert cell.packets == PACKETS_PER_PROGRAM

    def test_no_divergence_without_a_declared_tag(self, report):
        for cell in report.cells:
            if not cell.deviation_tags:
                assert not cell.diffs, (
                    f"{cell.program} on {cell.target} diverged with no "
                    "declared deviation"
                )

    def test_every_divergence_is_explained(self, report):
        for cell in report.cells:
            assert not cell.unexplained, (
                f"{cell.program} on {cell.target}: "
                f"{len(cell.unexplained)} unexplained diffs"
            )

    def test_datapath_matches_its_declared_model(self, report):
        for cell in report.cells:
            assert not cell.model_mismatches

    def test_explaining_tags_are_declared_tags(self, report):
        for cell in report.cells:
            for diff in cell.diffs:
                assert set(diff.explained_by) <= set(cell.deviation_tags)

    def test_attribution_matches_diff_kinds(self, report):
        # acl_firewall on tofino: quantized-TCAM denials are verdict
        # diffs and must be attributed to the TCAM tag alone, not also
        # to the deparse budget the dropped packet never reached.
        cell = report.cell("acl_firewall", "tofino")
        verdict_diffs = [
            d for d in cell.diffs if d.kinds == ("verdict",)
        ]
        assert verdict_diffs
        for diff in verdict_diffs:
            assert diff.explained_by == (
                "ternary-range-quantized-pow2",
            )

    def test_deviant_backends_actually_diverge(self, report):
        # The property suite must not pass vacuously: the known deviant
        # cells diverge on a 200-packet batch.
        assert report.cell("strict_parser", "sdnet").diffs
        assert report.cell("strict_parser", "tofino").diffs
        assert report.cell("acl_firewall", "tofino").diffs
        assert not report.deviant_cells() == []

    def test_reference_never_diverges(self, report):
        for cell in report.cells:
            if cell.target == "reference":
                assert not cell.diffs and not cell.deviation_tags


class TestSeedDeterminism:
    def test_same_seed_byte_identical_report(self, report):
        assert run_matrix(seed=42).to_json() == report.to_json()

    def test_same_seed_byte_identical_batches(self):
        flow = default_flow(3)
        assert seeded_batch(flow, 64, seed=9) == seeded_batch(
            flow, 64, seed=9
        )

    def test_distinct_seeds_distinct_batches(self):
        flow = default_flow(3)
        assert seeded_batch(flow, 64, seed=9) != seeded_batch(
            flow, 64, seed=10
        )

    def test_distinct_seed_still_consistent(self):
        other = run_matrix(seed=1234)
        assert other.consistent
        assert other.to_json() != run_matrix(seed=42).to_json()


class TestDuplicateCaseNames:
    def test_duplicate_case_names_rejected_at_construction(self):
        from repro.exceptions import NetDebugError

        with pytest.raises(NetDebugError, match="duplicate names"):
            DifferentialRunner(
                cases=[
                    DifferentialCase("strict_parser"),
                    DifferentialCase("l2_switch", label="strict_parser"),
                ]
            )

    def test_distinct_labels_for_one_program_accepted(self):
        runner = DifferentialRunner(
            cases=[
                DifferentialCase("acl_firewall", label="acl-bare"),
                DifferentialCase("acl_firewall", label="acl-gated"),
            ]
        )
        assert [case.name for case in runner.cases] == [
            "acl-bare", "acl-gated"
        ]


class TestCaseOrderIndependence:
    def test_cell_results_stable_under_case_reordering(self):
        # Batches key on the case NAME (seed and flow), so reordering
        # or growing the case list leaves existing cells' results
        # byte-identical — the invariant cross-version matrix diffing
        # relies on to report added cells instead of universal churn.
        def run(cases):
            return DifferentialRunner(
                cases=cases, targets=ALL_TARGETS, count=24, seed=5
            ).run()

        forward = run(
            [DifferentialCase("strict_parser"),
             DifferentialCase("l2_switch")]
        )
        reordered = run(
            [DifferentialCase("l2_switch"),
             DifferentialCase("strict_parser")]
        )
        for cell in forward.cells:
            twin = reordered.cell(cell.program, cell.target)
            assert cell.to_dict() == twin.to_dict()


class TestRoundTrip:
    def test_from_json_reconstructs_byte_identical_json(self, report):
        # The cross-version differ consumes serialized reports, so the
        # round trip must be lossless down to the bytes — including the
        # full per-packet diff lists and their wire evidence.
        text = report.to_json()
        rebuilt = DifferentialReport.from_json(text)
        assert rebuilt.to_json() == text

    def test_round_trip_preserves_diff_structure(self, report):
        rebuilt = DifferentialReport.from_json(report.to_json())
        for cell, twin in zip(report.cells, rebuilt.cells):
            assert cell.diffs_by_tag() == twin.diffs_by_tag()
            assert cell.consistent == twin.consistent
            assert len(cell.unexplained) == len(twin.unexplained)
            for diff, diff_twin in zip(cell.diffs, twin.diffs):
                assert diff == diff_twin
