"""Tests for the parser state-machine IR."""

import pytest

from repro.exceptions import P4ValidationError
from repro.p4.expr import fld
from repro.p4.parser import (
    ACCEPT,
    REJECT,
    Parser,
    ParserState,
    SelectCase,
    Transition,
)


class TestSelectCase:
    def test_exact_match(self):
        case = SelectCase(((0x0800, -1),), "parse_ipv4")
        assert case.matches((0x0800,))
        assert not case.matches((0x0806,))

    def test_masked_match(self):
        case = SelectCase(((0x0800, 0xFF00),), "x")
        assert case.matches((0x08FF,))
        assert not case.matches((0x0900,))

    def test_wildcard_mask(self):
        case = SelectCase(((0, 0),), "x")
        assert case.matches((12345,))

    def test_multi_key(self):
        case = SelectCase(((1, -1), (2, -1)), "x")
        assert case.matches((1, 2))
        assert not case.matches((1, 3))

    def test_arity_mismatch(self):
        case = SelectCase(((1, -1),), "x")
        with pytest.raises(P4ValidationError):
            case.matches((1, 2))


class TestTransition:
    def test_direct(self):
        transition = Transition.to("next")
        assert not transition.is_select
        assert transition.targets() == {"next"}

    def test_select_builder_exact(self):
        transition = Transition.select(
            [fld("ethernet", "ether_type")],
            [(0x0800, "parse_ipv4"), (0x86DD, "parse_ipv6")],
            default=REJECT,
        )
        assert transition.is_select
        assert transition.targets() == {"parse_ipv4", "parse_ipv6", REJECT}
        assert transition.cases[0].matches((0x0800,))

    def test_select_builder_masked(self):
        transition = Transition.select(
            [fld("ipv4", "dst_addr")],
            [((0x0A000000, 0xFF000000), "internal")],
            default="external",
        )
        assert transition.cases[0].matches((0x0A123456,))
        assert not transition.cases[0].matches((0x0B000000,))

    def test_select_bad_pattern(self):
        with pytest.raises(P4ValidationError):
            Transition.select(
                [fld("a", "b"), fld("c", "d")], [(5, "x")]
            )


class TestParserState:
    def test_reserved_names_rejected(self):
        with pytest.raises(P4ValidationError):
            ParserState(ACCEPT)
        with pytest.raises(P4ValidationError):
            ParserState(REJECT)

    def test_default_transition_accepts(self):
        state = ParserState("start")
        assert state.transition.default == ACCEPT


class TestParser:
    def build(self):
        parser = Parser()
        parser.add_state(
            ParserState(
                "start",
                ["ethernet"],
                transition=Transition.select(
                    [fld("ethernet", "ether_type")],
                    [(0x0800, "parse_ipv4")],
                    default=ACCEPT,
                ),
            )
        )
        parser.add_state(
            ParserState("parse_ipv4", ["ipv4"],
                        transition=Transition.to(ACCEPT))
        )
        parser.add_state(
            ParserState("orphan", ["vlan"], transition=Transition.to(REJECT))
        )
        return parser

    def test_duplicate_state_rejected(self):
        parser = self.build()
        with pytest.raises(P4ValidationError):
            parser.add_state(ParserState("start"))

    def test_unknown_state_lookup(self):
        with pytest.raises(P4ValidationError):
            self.build().state("missing")

    def test_reachability_excludes_orphans(self):
        parser = self.build()
        assert parser.reachable_states() == {"start", "parse_ipv4"}

    def test_can_reach_reject_false_when_orphaned(self):
        # Only the orphan can reject; it is unreachable.
        assert not self.build().can_reach_reject()

    def test_can_reach_reject_via_default(self):
        parser = Parser()
        parser.add_state(
            ParserState(
                "start",
                ["ethernet"],
                transition=Transition.select(
                    [fld("ethernet", "ether_type")],
                    [(0x0800, ACCEPT)],
                    default=REJECT,
                ),
            )
        )
        assert parser.can_reach_reject()

    def test_can_reach_reject_via_verify(self):
        parser = Parser()
        parser.add_state(
            ParserState(
                "start",
                ["ipv4"],
                verify=(fld("ipv4", "version").eq(4), 1),
            )
        )
        assert parser.can_reach_reject()

    def test_max_extract_depth_linear(self):
        parser = Parser()
        parser.add_state(
            ParserState("start", ["ethernet"],
                        transition=Transition.to("l2"))
        )
        parser.add_state(
            ParserState("l2", ["vlan", "mpls"],
                        transition=Transition.to(ACCEPT))
        )
        assert parser.max_extract_depth() == 3

    def test_max_extract_depth_branches_take_max(self):
        parser = Parser()
        parser.add_state(
            ParserState(
                "start",
                ["ethernet"],
                transition=Transition.select(
                    [fld("ethernet", "ether_type")],
                    [(1, "short"), (2, "long")],
                    default=ACCEPT,
                ),
            )
        )
        parser.add_state(
            ParserState("short", ["vlan"], transition=Transition.to(ACCEPT))
        )
        parser.add_state(
            ParserState("long", ["vlan"], transition=Transition.to("more"))
        )
        parser.add_state(
            ParserState("more", ["ipv4"], transition=Transition.to(ACCEPT))
        )
        assert parser.max_extract_depth() == 3

    def test_cycle_reports_huge_depth(self):
        parser = Parser()
        parser.add_state(
            ParserState("start", ["vlan"], transition=Transition.to("start"))
        )
        assert parser.max_extract_depth() >= 1 << 16
