"""Tests for the measurement aggregation helpers."""

import pytest
from hypothesis import given, strategies as st

from repro.analysis.stats import Series, percent, ratio


class TestSeries:
    def test_basic_stats(self):
        series = Series("lat", [1.0, 2.0, 3.0, 4.0])
        assert series.count == 4
        assert series.mean == 2.5
        assert series.minimum == 1.0
        assert series.maximum == 4.0
        assert series.stdev > 0

    def test_empty_series(self):
        series = Series("empty", [])
        assert series.count == 0
        assert series.mean == 0.0
        assert series.stdev == 0.0
        assert series.minimum == 0.0
        assert series.percentile(0.99) == 0.0

    def test_single_sample_stdev(self):
        assert Series("one", [5.0]).stdev == 0.0

    def test_percentiles(self):
        series = Series("p", [float(v) for v in range(100)])
        assert series.percentile(0.0) == 0.0
        assert series.percentile(0.5) == 50.0
        assert series.percentile(0.99) == 99.0
        assert series.percentile(1.0) == 99.0  # clamped to last

    def test_row_format(self):
        row = Series("throughput", [1.5, 2.5]).row()
        assert "throughput" in row
        assert "n=2" in row
        assert "mean=2" in row

    @given(st.lists(st.floats(min_value=0, max_value=1e6), min_size=1,
                    max_size=50))
    def test_mean_between_min_max(self, samples):
        series = Series("prop", samples)
        # fmean may land one ulp outside [min, max]; allow that slack.
        slack = 1e-9 * max(1.0, series.maximum)
        assert series.minimum - slack <= series.mean
        assert series.mean <= series.maximum + slack

    @given(st.lists(st.floats(min_value=0, max_value=1e6), min_size=1,
                    max_size=50))
    def test_percentile_monotone(self, samples):
        series = Series("prop", samples)
        assert series.percentile(0.25) <= series.percentile(0.75)


class TestHelpers:
    def test_ratio(self):
        assert ratio(6, 3) == 2.0
        assert ratio(1, 0) == 0.0

    def test_percent(self):
        assert percent(0.125) == "12.5%"
        assert percent(1.0) == "100.0%"
