"""Every example script must run cleanly end to end."""

import runpy
import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).resolve().parent.parent / "examples"
EXAMPLES = sorted(EXAMPLES_DIR.glob("*.py"))


def test_examples_present():
    names = {path.name for path in EXAMPLES}
    assert "quickstart.py" in names
    assert "reject_state_bug.py" in names
    assert len(EXAMPLES) >= 3


@pytest.mark.parametrize(
    "path", EXAMPLES, ids=[path.stem for path in EXAMPLES]
)
def test_example_runs(path, capsys):
    runpy.run_path(str(path), run_name="__main__")
    out = capsys.readouterr().out
    assert out.strip(), f"{path.name} produced no output"


def test_quickstart_reports_pass(capsys):
    runpy.run_path(str(EXAMPLES_DIR / "quickstart.py"), run_name="__main__")
    out = capsys.readouterr().out
    assert "verdict=PASS" in out
    assert "quickstart OK" in out


def test_reject_example_tells_the_story(capsys):
    runpy.run_path(
        str(EXAMPLES_DIR / "reject_state_bug.py"), run_name="__main__"
    )
    out = capsys.readouterr().out
    assert "PASS" in out                      # formal verification passes
    assert "forwarded to the next hop" in out  # the leak
    assert "reproducing the paper's result" in out
