"""Report serialization and controller archival tests."""

import json

from repro.netdebug.controller import NetDebugController
from repro.netdebug.generator import StreamSpec
from repro.netdebug.session import ValidationSession
from repro.p4.stdlib import strict_parser
from repro.sim.traffic import default_flow, malformed_mix, udp_stream
from repro.target.reference import make_reference_device
from repro.target.sdnet import make_sdnet_device


def run_audit(device, count=10, seed=0):
    controller = NetDebugController(device)
    packets = [
        p for p, _ in malformed_mix(default_flow(), count, 0.5, seed)
    ]
    controller.run(
        ValidationSession(
            name="audit",
            streams=[
                StreamSpec(stream_id=1, packets=packets,
                           fix_checksums=False)
            ],
            use_reference_oracle=True,
        )
    )
    return controller


class TestToDict:
    def test_passing_report(self):
        device = make_reference_device("persist-ref")
        device.load(strict_parser())
        controller = run_audit(device)
        data = controller.reports[0].to_dict()
        assert data["passed"]
        assert data["program"] == "strict_parser"
        assert data["injected"] == 10
        assert data["findings"] == []
        json.dumps(data)  # must be JSON-compatible

    def test_failing_report_carries_findings(self):
        device = make_sdnet_device("persist-sd")
        device.load(strict_parser())
        controller = run_audit(device)
        data = controller.reports[0].to_dict()
        assert not data["passed"]
        assert data["findings"]
        assert all(
            f["kind"] == "unexpected_output" for f in data["findings"]
        )

    def test_streams_and_latency_serialized(self):
        from repro.p4.stdlib import reflector

        device = make_reference_device("persist-probe")
        device.load(reflector())
        controller = NetDebugController(device)
        controller.run(
            ValidationSession(
                name="probes",
                streams=[
                    StreamSpec(
                        stream_id=7,
                        packets=list(udp_stream(default_flow(), 5)),
                        wrap=True,
                    )
                ],
            )
        )
        data = controller.reports[0].to_dict()
        assert data["streams"]["7"]["received"] == 5
        assert data["latency"]["count"] == 5
        assert data["latency"]["mean"] > 0


class TestSaveLoad:
    def test_roundtrip(self, tmp_path):
        device = make_sdnet_device("persist-rt")
        device.load(strict_parser())
        controller = run_audit(device, count=8, seed=3)
        path = tmp_path / "reports.json"
        written = controller.save_reports(path)
        assert written == 1
        loaded = NetDebugController.load_reports(path)
        assert loaded == [r.to_dict() for r in controller.reports]

    def test_file_carries_device_identity(self, tmp_path):
        device = make_sdnet_device("persist-id")
        device.load(strict_parser())
        controller = run_audit(device)
        path = tmp_path / "reports.json"
        controller.save_reports(path)
        payload = json.loads(path.read_text())
        assert payload["device"] == "persist-id"
        assert payload["target"] == "sdnet-sume"

    def test_regression_diff_workflow(self, tmp_path):
        """The intended use: diff reports across target versions."""
        runs = {}
        for name, factory in (
            ("good", make_reference_device),
            ("bad", make_sdnet_device),
        ):
            device = factory(f"persist-{name}")
            device.load(strict_parser())
            controller = run_audit(device, seed=11)
            path = tmp_path / f"{name}.json"
            controller.save_reports(path)
            runs[name] = NetDebugController.load_reports(path)[0]
        assert runs["good"]["passed"] and not runs["bad"]["passed"]
        regressions = [
            f for f in runs["bad"]["findings"]
            if f not in runs["good"]["findings"]
        ]
        assert regressions
