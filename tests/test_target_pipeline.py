"""Staged pipeline tests: stage decomposition, taps, injection, latency."""

import pytest

from repro.exceptions import TargetError
from repro.p4.interpreter import Verdict
from repro.p4.stdlib import acl_firewall, ipv4_router, strict_parser
from repro.packet.builder import ethernet_frame, udp_packet
from repro.packet.headers import ipv4, mac
from repro.target.reference import ReferenceCompiler, make_reference_device
from repro.target.sdnet import SDNetCompiler
from repro.target.pipeline import StagedPipeline, TAP_INPUT, TAP_OUTPUT


def build_pipeline(program_factory=ipv4_router, compiler_cls=ReferenceCompiler):
    compiler = compiler_cls()
    program = program_factory()
    compiled = compiler.compile(program)
    return StagedPipeline(compiled, compiler.limits)


def routed_program():
    from repro.controlplane import RuntimeAPI
    from repro.p4.interpreter import RuntimeState

    program = ipv4_router()
    RuntimeAPI(program, RuntimeState.for_program(program)).table_add(
        "ipv4_lpm", "route", [(ipv4("10.0.0.0"), 8)],
        [mac("aa:bb:cc:dd:ee:01"), 2],
    )
    return program


ROUTED_WIRE = udp_packet(
    ipv4("10.3.3.3"), ipv4("192.168.0.1"), 53, 99, payload=b"q"
).pack()


class TestTopology:
    def test_stage_names_shape(self):
        pipeline = build_pipeline()
        names = pipeline.stage_names()
        assert names[0] == TAP_INPUT
        assert names[1] == "parser"
        assert names[-2] == "deparser"
        assert names[-1] == TAP_OUTPUT
        assert any(n.startswith("ingress.") for n in names)

    def test_multi_statement_controls_get_stages(self):
        pipeline = build_pipeline(acl_firewall)
        ingress_stages = [
            n for n in pipeline.stage_names() if n.startswith("ingress.")
        ]
        assert len(ingress_stages) == 2  # acl block + fwd conditional

    def test_attach_unknown_tap_rejected(self):
        pipeline = build_pipeline()
        with pytest.raises(TargetError):
            pipeline.attach_tap("nowhere", lambda s: None)

    def test_detach_unattached_rejected(self):
        pipeline = build_pipeline()
        with pytest.raises(TargetError):
            pipeline.detach_tap(TAP_INPUT, lambda s: None)


class TestTraversal:
    def test_snapshots_at_every_stage(self):
        pipeline = build_pipeline(routed_program)
        seen = []
        for stage in pipeline.stage_names():
            pipeline.attach_tap(
                stage, lambda s, stage=stage: seen.append((stage, s.alive))
            )
        run = pipeline.process(ROUTED_WIRE)
        assert run.result.verdict is Verdict.FORWARDED
        assert [s for s, _ in seen] == pipeline.stage_names()
        assert all(alive for _, alive in seen)

    def test_output_tap_carries_wire(self):
        pipeline = build_pipeline(routed_program)
        captured = []
        pipeline.attach_tap(TAP_OUTPUT, captured.append)
        run = pipeline.process(ROUTED_WIRE)
        assert captured[0].wire == run.result.packet.pack()

    def test_reject_dies_at_parser(self):
        pipeline = build_pipeline(strict_parser)
        dead = []
        pipeline.attach_tap("parser", dead.append)
        run = pipeline.process(
            ethernet_frame(1, 2, 0xBEEF, payload=b"x" * 30).pack()
        )
        assert run.result.verdict is Verdict.PARSER_REJECTED
        assert run.died_at == "parser"
        assert not dead[0].alive
        assert dead[0].verdict_hint == "parser_reject"

    def test_program_drop_records_stage(self):
        pipeline = build_pipeline(ipv4_router)  # no routes -> drop
        run = pipeline.process(ROUTED_WIRE)
        assert run.result.verdict is Verdict.DROPPED
        assert run.died_at == "ingress.0"

    def test_sdnet_pipeline_ignores_reject(self):
        pipeline = build_pipeline(strict_parser, SDNetCompiler)
        run = pipeline.process(
            ethernet_frame(1, 2, 0xBEEF, payload=b"x" * 30).pack()
        )
        assert run.result.verdict is Verdict.FORWARDED

    def test_latency_positive_and_grows_with_stages(self):
        short = build_pipeline(strict_parser)
        long = build_pipeline(acl_firewall)
        wire = udp_packet(ipv4("1.1.1.1"), ipv4("2.2.2.2"), 53, 9).pack()
        run_short = short.process(wire)
        run_long = long.process(wire)
        assert run_short.latency_cycles > 0
        assert run_long.latency_cycles > run_short.latency_cycles


class TestInjection:
    def test_inject_at_parser_equivalent_to_input(self):
        pipeline = build_pipeline(routed_program)
        a = pipeline.process(ROUTED_WIRE, inject_at=TAP_INPUT)
        b = pipeline.process(ROUTED_WIRE, inject_at="parser")
        assert a.result.packet.pack() == b.result.packet.pack()

    def test_inject_past_stage_skips_it(self):
        """Injection downstream of a dropping stage survives."""
        pipeline = build_pipeline(ipv4_router)  # drops on table miss
        normal = pipeline.process(ROUTED_WIRE)
        assert normal.result.verdict is Verdict.DROPPED
        past = pipeline.process(ROUTED_WIRE, inject_at="deparser")
        assert past.result.verdict is Verdict.FORWARDED

    def test_inject_unknown_point_rejected(self):
        pipeline = build_pipeline()
        with pytest.raises(TargetError):
            pipeline.process(b"", inject_at="bogus")

    def test_late_injection_still_parses(self):
        pipeline = build_pipeline(routed_program)
        run = pipeline.process(ROUTED_WIRE, inject_at="ingress.0")
        assert run.result.verdict is Verdict.FORWARDED
        # Parsed representation was available to the match-action stage.
        assert run.result.packet.has("ipv4")

    def test_late_injection_of_malformed_rejected(self):
        pipeline = build_pipeline(strict_parser)
        bad = ethernet_frame(1, 2, 0xBEEF, payload=b"x" * 30).pack()
        run = pipeline.process(bad, inject_at="ingress.0")
        assert run.result.verdict is Verdict.PARSER_REJECTED

    def test_stages_traversed_recorded(self):
        pipeline = build_pipeline(routed_program)
        run = pipeline.process(ROUTED_WIRE)
        assert run.stages_traversed == pipeline.stage_names()
        partial = pipeline.process(ROUTED_WIRE, inject_at="deparser")
        assert partial.stages_traversed == ["deparser", TAP_OUTPUT]
