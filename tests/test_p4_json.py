"""JSON serialization round-trips for expressions, programs, stdlib."""

import pytest

from repro.exceptions import P4ValidationError
from repro.p4.expr import (
    BinOp,
    Concat,
    Const,
    FieldRef,
    IsValid,
    MetaRef,
    Mux,
    Slice,
    UnOp,
)
from repro.p4.json_loader import (
    expr_from_dict,
    expr_to_dict,
    load_program,
    program_from_dict,
    program_to_dict,
    save_program,
)
from repro.p4.stdlib import PROGRAMS
from repro.p4.table import KeyPattern, TableEntry
from repro.packet.headers import ipv4, mac


class TestExprRoundTrip:
    @pytest.mark.parametrize(
        "expr",
        [
            Const(5, 8),
            Const(5),
            FieldRef("ipv4", "ttl"),
            MetaRef("scratch"),
            IsValid("tcp"),
            BinOp("+", Const(1, 8), FieldRef("ipv4", "ttl")),
            UnOp("~", Const(0xFF, 8)),
            Slice(Const(0xABCD, 16), 15, 8),
            Concat(Const(1, 4), Const(2, 4)),
            Mux(Const(1), Const(2, 8), Const(3, 8)),
        ],
    )
    def test_roundtrip(self, expr):
        assert expr_from_dict(expr_to_dict(expr)) == expr

    def test_unknown_op_rejected(self):
        with pytest.raises(P4ValidationError):
            expr_from_dict({"op": "quantum"})


class TestProgramRoundTrip:
    @pytest.mark.parametrize("name", sorted(PROGRAMS))
    def test_stdlib_programs(self, name):
        program = PROGRAMS[name]()
        data = program_to_dict(program)
        rebuilt = program_from_dict(data)
        assert program_to_dict(rebuilt) == data

    def test_entries_not_serialized(self):
        """Table entries are control-plane state, not program text."""
        from repro.p4.stdlib import ipv4_router

        program = ipv4_router()
        program.table("ipv4_lpm").insert(
            TableEntry(
                (KeyPattern.lpm(ipv4("10.0.0.0"), 8),),
                "route",
                (mac("aa:bb:cc:dd:ee:01"), 1),
            )
        )
        rebuilt = program_from_dict(program_to_dict(program))
        assert rebuilt.table("ipv4_lpm").entries == []

    def test_semantics_preserved(self):
        """A reloaded program behaves identically on the same packet."""
        from repro.p4.interpreter import Interpreter
        from repro.p4.stdlib import strict_parser
        from repro.packet.builder import ethernet_frame, udp_packet

        original = strict_parser()
        rebuilt = program_from_dict(program_to_dict(original))
        good = udp_packet(ipv4("1.1.1.1"), ipv4("2.2.2.2"), 53, 9).pack()
        bad = ethernet_frame(1, 2, 0xBEEF, payload=b"x" * 30).pack()
        for wire in (good, bad):
            a = Interpreter(original).process(wire)
            b = Interpreter(rebuilt).process(wire)
            assert a.verdict == b.verdict
            if a.packet is not None:
                assert a.packet.pack() == b.packet.pack()

    def test_file_roundtrip(self, tmp_path):
        from repro.p4.stdlib import acl_firewall

        program = acl_firewall()
        path = tmp_path / "prog.json"
        save_program(program, path)
        loaded = load_program(path)
        assert program_to_dict(loaded) == program_to_dict(program)

    def test_user_metadata_preserved(self):
        from repro.p4.stdlib import acl_firewall

        rebuilt = program_from_dict(program_to_dict(acl_firewall()))
        assert rebuilt.env.metadata["l4_src_port"] == 16

    def test_counters_registers_preserved(self):
        from repro.p4.stdlib import port_counter

        rebuilt = program_from_dict(program_to_dict(port_counter()))
        assert "per_port_pkts" in rebuilt.counters
        assert rebuilt.registers["last_len"].width == 16

    def test_invalid_program_caught_on_load(self):
        from repro.p4.stdlib import l2_switch

        data = program_to_dict(l2_switch())
        data["deparser"] = ["not_a_header"]
        with pytest.raises(P4ValidationError):
            program_from_dict(data)
        # but validate=False loads it anyway
        program = program_from_dict(data, validate=False)
        assert program.deparser.emit_order == ["not_a_header"]
