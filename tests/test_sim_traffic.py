"""Traffic generator tests: determinism, sizes, malformed mixes."""

import pytest

from repro.p4.interpreter import Interpreter, Verdict
from repro.p4.stdlib import strict_parser
from repro.sim.traffic import (
    FlowSpec,
    IMIX_DISTRIBUTION,
    constant_rate_times,
    default_flow,
    imix_stream,
    malformed_mix,
    pad_to_size,
    poisson_times,
    udp_stream,
)
from repro.packet.builder import udp_packet
from repro.packet.headers import ipv4


class TestPadding:
    def test_pads_to_exact_size(self):
        packet = udp_packet(ipv4("1.1.1.1"), ipv4("2.2.2.2"), 53, 9)
        padded = pad_to_size(packet, 128)
        assert padded.wire_length == 128

    def test_truncates_oversized_payload(self):
        packet = udp_packet(
            ipv4("1.1.1.1"), ipv4("2.2.2.2"), 53, 9, payload=b"x" * 200
        )
        padded = pad_to_size(packet, 64)
        assert padded.wire_length == 64

    def test_too_small_rejected(self):
        packet = udp_packet(ipv4("1.1.1.1"), ipv4("2.2.2.2"), 53, 9)
        with pytest.raises(ValueError):
            pad_to_size(packet, 10)

    def test_original_untouched(self):
        packet = udp_packet(ipv4("1.1.1.1"), ipv4("2.2.2.2"), 53, 9)
        pad_to_size(packet, 500)
        assert packet.wire_length < 500


class TestArrivalTimes:
    def test_constant_rate(self):
        times = list(constant_rate_times(1e6, 4))
        assert times == [0.0, 1000.0, 2000.0, 3000.0]

    def test_poisson_monotone_and_seeded(self):
        a = list(poisson_times(1e6, 50, seed=1))
        b = list(poisson_times(1e6, 50, seed=1))
        c = list(poisson_times(1e6, 50, seed=2))
        assert a == b
        assert a != c
        assert all(x < y for x, y in zip(a, a[1:]))

    def test_poisson_mean_close_to_rate(self):
        times = list(poisson_times(1e6, 2000, seed=3))
        mean_gap = times[-1] / len(times)
        assert 800 < mean_gap < 1250  # ~1000ns nominal


class TestUdpStream:
    def test_count_and_size(self):
        packets = list(udp_stream(default_flow(), 10, size=200))
        assert len(packets) == 10
        assert all(p.wire_length == 200 for p in packets)

    def test_deterministic_per_seed(self):
        a = [p.pack() for p in udp_stream(default_flow(), 5, seed=9)]
        b = [p.pack() for p in udp_stream(default_flow(), 5, seed=9)]
        assert a == b

    def test_five_tuple_applied(self):
        flow = FlowSpec(
            src_ip=ipv4("1.2.3.4"),
            dst_ip=ipv4("5.6.7.8"),
            src_port=111,
            dst_port=222,
        )
        packet = next(udp_stream(flow, 1))
        assert packet.get("ipv4")["src_addr"] == ipv4("1.2.3.4")
        assert packet.get("udp")["dst_port"] == 222

    def test_checksums_valid(self):
        from repro.packet.checksum import verify_ipv4_checksum

        for packet in udp_stream(default_flow(), 5, size=100):
            assert verify_ipv4_checksum(packet)


class TestImix:
    def test_sizes_from_distribution(self):
        allowed = {size for size, _ in IMIX_DISTRIBUTION}
        packets = list(imix_stream(default_flow(), 50, seed=4))
        assert {p.wire_length for p in packets} <= allowed

    def test_small_frames_dominate(self):
        packets = list(imix_stream(default_flow(), 600, seed=5))
        small = sum(1 for p in packets if p.wire_length == 64)
        large = sum(1 for p in packets if p.wire_length == 1518)
        assert small > large


class TestMalformedMix:
    def test_labels_are_truthful(self):
        """Every label must agree with the strict parser's spec verdict."""
        program = strict_parser()
        for packet, malformed in malformed_mix(default_flow(), 60, 0.5, 11):
            result = Interpreter(program).process(packet.pack())
            if malformed:
                assert result.verdict is Verdict.PARSER_REJECTED
            else:
                assert result.verdict is Verdict.FORWARDED

    def test_fraction_respected_roughly(self):
        out = list(malformed_mix(default_flow(), 400, 0.5, seed=2))
        bad = sum(1 for _, malformed in out if malformed)
        assert 120 < bad < 280

    def test_all_good_when_zero_fraction(self):
        out = list(malformed_mix(default_flow(), 20, 0.0, seed=2))
        assert all(not malformed for _, malformed in out)

    def test_deterministic(self):
        a = [(p.pack(), m) for p, m in malformed_mix(default_flow(), 20, 0.5, 7)]
        b = [(p.pack(), m) for p, m in malformed_mix(default_flow(), 20, 0.5, 7)]
        assert a == b


class TestDefaultFlow:
    def test_indexed_flows_distinct(self):
        assert default_flow(0) != default_flow(1)
