"""Traffic generator tests: determinism, sizes, malformed mixes."""

import pytest

from repro.p4.interpreter import Interpreter, Verdict
from repro.p4.stdlib import strict_parser
from repro.sim.traffic import (
    FlowSpec,
    IMIX_DISTRIBUTION,
    constant_rate_times,
    default_flow,
    imix_stream,
    malformed_mix,
    pad_to_size,
    poisson_times,
    udp_stream,
)
from repro.packet.builder import udp_packet
from repro.packet.headers import ipv4


class TestPadding:
    def test_pads_to_exact_size(self):
        packet = udp_packet(ipv4("1.1.1.1"), ipv4("2.2.2.2"), 53, 9)
        padded = pad_to_size(packet, 128)
        assert padded.wire_length == 128

    def test_truncates_oversized_payload(self):
        packet = udp_packet(
            ipv4("1.1.1.1"), ipv4("2.2.2.2"), 53, 9, payload=b"x" * 200
        )
        padded = pad_to_size(packet, 64)
        assert padded.wire_length == 64

    def test_too_small_rejected(self):
        packet = udp_packet(ipv4("1.1.1.1"), ipv4("2.2.2.2"), 53, 9)
        with pytest.raises(ValueError):
            pad_to_size(packet, 10)

    def test_original_untouched(self):
        packet = udp_packet(ipv4("1.1.1.1"), ipv4("2.2.2.2"), 53, 9)
        pad_to_size(packet, 500)
        assert packet.wire_length < 500


class TestArrivalTimes:
    def test_constant_rate(self):
        times = list(constant_rate_times(1e6, 4))
        assert times == [0.0, 1000.0, 2000.0, 3000.0]

    def test_poisson_monotone_and_seeded(self):
        a = list(poisson_times(1e6, 50, seed=1))
        b = list(poisson_times(1e6, 50, seed=1))
        c = list(poisson_times(1e6, 50, seed=2))
        assert a == b
        assert a != c
        assert all(x < y for x, y in zip(a, a[1:]))

    def test_poisson_mean_close_to_rate(self):
        times = list(poisson_times(1e6, 2000, seed=3))
        mean_gap = times[-1] / len(times)
        assert 800 < mean_gap < 1250  # ~1000ns nominal


class TestUdpStream:
    def test_count_and_size(self):
        packets = list(udp_stream(default_flow(), 10, size=200))
        assert len(packets) == 10
        assert all(p.wire_length == 200 for p in packets)

    def test_deterministic_per_seed(self):
        a = [p.pack() for p in udp_stream(default_flow(), 5, seed=9)]
        b = [p.pack() for p in udp_stream(default_flow(), 5, seed=9)]
        assert a == b

    def test_five_tuple_applied(self):
        flow = FlowSpec(
            src_ip=ipv4("1.2.3.4"),
            dst_ip=ipv4("5.6.7.8"),
            src_port=111,
            dst_port=222,
        )
        packet = next(udp_stream(flow, 1))
        assert packet.get("ipv4")["src_addr"] == ipv4("1.2.3.4")
        assert packet.get("udp")["dst_port"] == 222

    def test_checksums_valid(self):
        from repro.packet.checksum import verify_ipv4_checksum

        for packet in udp_stream(default_flow(), 5, size=100):
            assert verify_ipv4_checksum(packet)


class TestImix:
    def test_sizes_from_distribution(self):
        allowed = {size for size, _ in IMIX_DISTRIBUTION}
        packets = list(imix_stream(default_flow(), 50, seed=4))
        assert {p.wire_length for p in packets} <= allowed

    def test_small_frames_dominate(self):
        packets = list(imix_stream(default_flow(), 600, seed=5))
        small = sum(1 for p in packets if p.wire_length == 64)
        large = sum(1 for p in packets if p.wire_length == 1518)
        assert small > large


class TestMalformedMix:
    def test_labels_are_truthful(self):
        """Every label must agree with the strict parser's spec verdict."""
        program = strict_parser()
        for packet, malformed in malformed_mix(default_flow(), 60, 0.5, 11):
            result = Interpreter(program).process(packet.pack())
            if malformed:
                assert result.verdict is Verdict.PARSER_REJECTED
            else:
                assert result.verdict is Verdict.FORWARDED

    def test_fraction_respected_roughly(self):
        out = list(malformed_mix(default_flow(), 400, 0.5, seed=2))
        bad = sum(1 for _, malformed in out if malformed)
        assert 120 < bad < 280

    def test_all_good_when_zero_fraction(self):
        out = list(malformed_mix(default_flow(), 20, 0.0, seed=2))
        assert all(not malformed for _, malformed in out)

    def test_deterministic(self):
        a = [(p.pack(), m) for p, m in malformed_mix(default_flow(), 20, 0.5, 7)]
        b = [(p.pack(), m) for p, m in malformed_mix(default_flow(), 20, 0.5, 7)]
        assert a == b


class TestDefaultFlow:
    def test_indexed_flows_distinct(self):
        assert default_flow(0) != default_flow(1)


class TestRateGuards:
    """rate_pps <= 0 must raise SimulationError eagerly, not divide by
    zero (constant) or silently generate infinite gaps (poisson)."""

    @pytest.mark.parametrize("rate", [0, 0.0, -1, -1e6, float("inf"),
                                      float("nan")])
    def test_constant_rate_rejects_bad_rate(self, rate):
        from repro.exceptions import SimulationError

        with pytest.raises(SimulationError):
            constant_rate_times(rate, 5)

    @pytest.mark.parametrize("rate", [0, -2.5, float("inf")])
    def test_poisson_rejects_bad_rate(self, rate):
        from repro.exceptions import SimulationError

        with pytest.raises(SimulationError):
            poisson_times(rate, 5)

    def test_error_is_eager_not_deferred(self):
        """The guard fires at call time, before any iteration."""
        from repro.exceptions import SimulationError

        with pytest.raises(SimulationError):
            constant_rate_times(0, 5)  # never iterated

    def test_valid_rates_still_work(self):
        assert len(list(constant_rate_times(1e6, 4))) == 4
        assert len(list(poisson_times(1e6, 4, seed=1))) == 4


class TestWorkloadRegistry:
    def test_known_workloads_materialize(self):
        import repro.netdebug.coverage  # noqa: F401  (registers "coverage")
        from repro.sim.traffic import WORKLOADS, build_workload

        assert set(WORKLOADS) == {
            "udp", "imix", "poisson", "burst", "onoff", "malformed",
            "tcp_bidir", "int_probe", "coverage",
        }
        for name in WORKLOADS:
            if name == "coverage":
                # Needs a compiled-program context; exercised in
                # tests/test_coverage.py instead.
                continue
            bundle = build_workload(name, default_flow(), 6, seed=2)
            assert bundle.name == name
            assert len(bundle.packets) == 6

    def test_poisson_carries_arrival_times(self):
        from repro.sim.traffic import build_workload

        bundle = build_workload("poisson", default_flow(), 8, seed=3)
        assert bundle.times_ns is not None
        assert len(bundle.times_ns) == 8
        assert list(bundle.times_ns) == sorted(bundle.times_ns)
        assert build_workload("udp", default_flow(), 8).times_ns is None

    def test_deterministic_per_seed(self):
        from repro.sim.traffic import build_workload

        a = build_workload("imix", default_flow(), 10, seed=5)
        b = build_workload("imix", default_flow(), 10, seed=5)
        c = build_workload("imix", default_flow(), 10, seed=6)
        assert [p.pack() for p in a.packets] == [p.pack() for p in b.packets]
        assert [p.pack() for p in a.packets] != [p.pack() for p in c.packets]

    def test_burst_workload_is_seed_deterministic_and_bursty(self):
        from repro.sim.traffic import build_workload

        a = build_workload("burst", default_flow(), 24, seed=7)
        b = build_workload("burst", default_flow(), 24, seed=7)
        c = build_workload("burst", default_flow(), 24, seed=8)
        assert a.times_ns == b.times_ns
        assert a.times_ns != c.times_ns
        assert list(a.times_ns) == sorted(a.times_ns)
        gaps = [
            second - first
            for first, second in zip(a.times_ns, a.times_ns[1:])
        ]
        # Trains at the peak rate separated by much longer idle gaps.
        assert max(gaps) > 5 * min(gaps)

    def test_onoff_workload_is_seed_deterministic_two_state(self):
        from repro.sim.traffic import build_workload

        a = build_workload("onoff", default_flow(), 40, seed=3)
        b = build_workload("onoff", default_flow(), 40, seed=3)
        assert a.times_ns == b.times_ns
        assert list(a.times_ns) == sorted(a.times_ns)
        gaps = {
            round(second - first, 3)
            for first, second in zip(a.times_ns, a.times_ns[1:])
        }
        # ON gaps plus at least one OFF-dwell-stretched gap.
        assert len(gaps) > 1
        assert max(gaps) > 5 * min(gaps)

    @pytest.mark.parametrize("rate", [0.0, -1.0, float("nan")])
    def test_burst_and_onoff_reject_bad_rates_eagerly(self, rate):
        from repro.exceptions import SimulationError
        from repro.sim.traffic import burst_times, onoff_times

        with pytest.raises(SimulationError):
            burst_times(rate, 4)
        with pytest.raises(SimulationError):
            onoff_times(rate, 4)

    def test_burst_shape_parameters_validated(self):
        from repro.exceptions import SimulationError
        from repro.sim.traffic import burst_times, onoff_times

        with pytest.raises(SimulationError, match="burst_size"):
            burst_times(1e6, 4, burst_size=0)
        with pytest.raises(SimulationError, match="duty_cycle"):
            burst_times(1e6, 4, duty_cycle=1.5)
        with pytest.raises(SimulationError, match="p_on_off"):
            onoff_times(1e6, 4, p_on_off=0.0)
        with pytest.raises(SimulationError, match="off_scale"):
            onoff_times(1e6, 4, off_scale=-1.0)

    def test_unknown_workload_lists_registry(self):
        from repro.exceptions import SimulationError
        from repro.sim.traffic import build_workload

        with pytest.raises(SimulationError, match="udp"):
            build_workload("voip", default_flow(), 4)

    def test_negative_count_rejected(self):
        from repro.exceptions import SimulationError
        from repro.sim.traffic import build_workload

        with pytest.raises(SimulationError):
            build_workload("udp", default_flow(), -1)
