"""Tests for architecture limits and the FPGA resource model."""

import pytest

from repro.p4.stdlib import (
    PROGRAMS,
    acl_firewall,
    ipv4_router,
    l2_switch,
    port_counter,
    reflector,
)
from repro.target.limits import ArchLimits, REFERENCE_LIMITS, SDNET_LIMITS
from repro.target.resources import (
    DeviceCapacity,
    ResourceUsage,
    SUME_CAPACITY,
    estimate_parser,
    estimate_program,
    estimate_stateful,
)


class TestLimits:
    def test_line_rate(self):
        limits = ArchLimits(name="x", clock_mhz=200, bus_bytes=32)
        assert limits.line_rate_gbps == pytest.approx(51.2)

    def test_sdnet_claims_reject(self):
        # The published limits CLAIM reject support; the backend lies.
        assert SDNET_LIMITS.supports_reject

    def test_sdnet_no_range(self):
        from repro.p4.table import MatchKind

        assert MatchKind.RANGE not in SDNET_LIMITS.supported_match_kinds
        assert MatchKind.RANGE in REFERENCE_LIMITS.supported_match_kinds

    def test_sdnet_tighter_than_reference(self):
        assert SDNET_LIMITS.max_parse_depth < REFERENCE_LIMITS.max_parse_depth
        assert SDNET_LIMITS.max_tables < REFERENCE_LIMITS.max_tables
        assert SDNET_LIMITS.max_table_size < REFERENCE_LIMITS.max_table_size


class TestResourceUsage:
    def test_addition(self):
        total = ResourceUsage(1, 2, 3, 4) + ResourceUsage(10, 20, 30, 40)
        assert total == ResourceUsage(11, 22, 33, 44)

    def test_scaling(self):
        assert ResourceUsage(100, 100, 10, 2).scaled(0.5) == ResourceUsage(
            50, 50, 5, 1
        )

    def test_capacity_utilization(self):
        capacity = DeviceCapacity(1000, 1000, 100, 10)
        usage = ResourceUsage(500, 100, 50, 5)
        utilization = capacity.utilization(usage)
        assert utilization["luts"] == 0.5
        assert utilization["bram_blocks"] == 0.5
        assert capacity.fits(usage)
        assert not capacity.fits(ResourceUsage(2000, 0, 0, 0))

    def test_sume_capacity_is_virtex7(self):
        assert SUME_CAPACITY.luts == 433_200
        assert SUME_CAPACITY.bram_blocks == 1_470


class TestEstimates:
    def test_all_programs_positive(self):
        for factory in PROGRAMS.values():
            usage = estimate_program(factory())
            assert usage.luts > 0
            assert usage.flipflops > 0
            assert usage.bram_blocks > 0

    def test_all_programs_fit_sume(self):
        for name, factory in PROGRAMS.items():
            usage = estimate_program(factory())
            assert SUME_CAPACITY.fits(usage), name

    def test_ternary_costs_more_than_exact(self):
        """TCAM emulation must dominate: the relative shape that matters."""
        acl = estimate_program(acl_firewall())
        switch = estimate_program(l2_switch())
        assert acl.luts > 2 * switch.luts

    def test_bigger_table_costs_more(self):
        small = estimate_program(ipv4_router(lpm_size=64))
        large = estimate_program(ipv4_router(lpm_size=4096))
        assert large.bram_blocks >= small.bram_blocks
        assert large.luts >= small.luts

    def test_stateful_uses_bram(self):
        usage = estimate_stateful(port_counter(num_ports=1024))
        assert usage.bram_blocks >= 2
        assert usage.luts == 0

    def test_parser_scales_with_states(self):
        simple = estimate_parser(reflector())
        complex_ = estimate_parser(acl_firewall())
        assert complex_.luts > simple.luts

    def test_hash_units_add_dsps(self):
        from repro.p4.stdlib import ecmp_load_balancer

        with_hash = estimate_program(ecmp_load_balancer())
        without = estimate_program(l2_switch())
        assert with_hash.dsp_slices > without.dsp_slices
