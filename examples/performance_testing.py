#!/usr/bin/env python3
"""Performance testing use case: throughput, packet rate and latency.

Measures an L2 switch across a frame-size sweep, twice:

* from *inside* the device with NetDebug (exact per-packet pipeline
  latency, per-stage breakdown, zero measurement overhead), and
* from *outside* with the OSNT-like external tester (round-trip times
  inflated by cable/PHY/capture overhead, no internal visibility).

The side-by-side table shows why Figure 2 grades external testers only
"partial" on performance.

Run:  python examples/performance_testing.py
"""

from repro.netdebug.usecases.performance import (
    measure_external,
    measure_netdebug,
)


def main() -> None:
    sizes = (64, 256, 1024, 1518)
    print(f"{'frame':>6} | {'NetDebug Gb/s':>13} {'Mpps':>8} "
          f"{'lat (cyc)':>10} | {'external Gb/s':>13} {'RTT ns':>9}")
    print("-" * 72)
    for size in sizes:
        internal = measure_netdebug(seed=0, frame_size=size)
        external = measure_external(seed=0, frame_size=size)
        print(
            f"{size:>6} | {internal['throughput_gbps']:>13.2f} "
            f"{internal['packet_rate_mpps']:>8.3f} "
            f"{internal['latency_cycles_mean']:>10.1f} | "
            f"{external['throughput_gbps']:>13.2f} "
            f"{external['rtt_mean_ns']:>9.1f}"
        )

    internal = measure_netdebug(seed=0, frame_size=256)
    print("\nper-stage latency breakdown (NetDebug only — internal taps):")
    for stage, cycles in internal["stage_cycles"].items():
        bar = "#" * cycles
        print(f"  {stage:<12} {cycles:>3} cycles  {bar}")
    print(f"\ndevice line rate: {internal['line_rate_gbps']:.1f} Gb/s")
    print("note: external RTTs include ~480ns of cable/PHY/capture")
    print("overhead the tester cannot subtract — the in-device figure")
    print("is only measurable with NetDebug's internal timestamps.")


if __name__ == "__main__":
    main()
