"""The 3-way target matrix: one spec, three backends, two silent bugs.

Runs the same two programs (``strict_parser``, ``acl_firewall``) across
all three registered targets — the spec-faithful reference, the
SDNet-like backend that silently skips the parser ``reject`` state, and
the Tofino-like backend that quantizes TCAM patterns and truncates the
deparser — twice over:

1. as a **validation campaign** (`ScenarioMatrix` × `run_campaign`),
   where the per-cell verdicts split exactly along each backend's
   deviation;
2. through the **cross-backend differential runner**, which proves that
   every observed divergence is explained by the artifact's declared
   ground-truth deviation tags and localizes each one to its pipeline
   stage.

Run:  python examples/differential_matrix.py [--count N] [--seed S]
      [--out campaign.json]     # save the campaign report (CI artifact)
"""

import argparse

from repro.netdebug.campaign import (
    ScenarioMatrix,
    provision_acl_gate,
    run_campaign,
)
from repro.netdebug.differential import (
    DifferentialCase,
    DifferentialRunner,
    diagnose_report,
)


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--count", type=int, default=10,
                        help="packets per scenario / differential cell")
    parser.add_argument("--seed", type=int, default=2018)
    parser.add_argument("--out", default="",
                        help="write the campaign report JSON here")
    # parse_known_args: stay runnable under test harnesses (runpy) that
    # leave their own flags in sys.argv.
    args, _ = parser.parse_known_args()

    matrix = ScenarioMatrix(
        programs=["strict_parser", "acl_firewall"],
        targets=["reference", "sdnet", "tofino"],
        workloads=["udp", "malformed"],
        count=args.count,
        seed=args.seed,
        setup="acl_gate",
    )
    report = run_campaign(matrix, name="three-way")
    print(report.summary())
    print()

    diff = DifferentialRunner(
        cases=[
            DifferentialCase("strict_parser"),
            DifferentialCase("acl_firewall", provision=provision_acl_gate),
        ],
        count=args.count,
        seed=args.seed,
    ).run()
    print(diff.summary())
    print()
    for line in diagnose_report(diff):
        print(line)
    print()
    print(
        "all divergences explained by declared deviation tags:",
        "YES" if diff.consistent else "NO",
    )

    if args.out:
        path = report.save(args.out)
        print(f"campaign report written to {path}")


if __name__ == "__main__":
    main()
