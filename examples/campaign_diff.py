"""Cross-version campaign diffing: catch a firmware regression by diff.

The regression workflow at matrix scale: run the seeded baseline
campaign twice (two "firmware versions" of the same build), diff the
canonical reports, and show both outcomes a reviewer will meet —

1. **identical builds** — the diff is empty and the gate passes;
2. **a regressed build** — one scenario that used to pass now leaks a
   packet; the diff lists the verdict flip, marks it UNEXPLAINED (no
   declared deviation-tag change excuses it) and the gate fails.

The second report is tampered at the JSON level — exactly what a broken
build hands the differ: same scenarios, one new finding.

Run:  python examples/campaign_diff.py [--count N] [--workers W]
"""

import argparse

from repro.netdebug.campaign import CampaignReport
from repro.netdebug.diffing import (
    diff_campaigns,
    inject_unexplained_flip,
    run_baseline_campaign,
    run_baseline_differential,
)


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--count", type=int, default=6,
                        help="packets per scenario")
    parser.add_argument("--workers", type=int, default=1)
    # parse_known_args: stay runnable under test harnesses (runpy) that
    # leave their own flags in sys.argv.
    args, _ = parser.parse_known_args()

    print("running the seeded baseline campaign twice...")
    old = run_baseline_campaign(workers=args.workers, count=args.count)
    new = run_baseline_campaign(workers=args.workers, count=args.count)
    matrix = run_baseline_differential(count=args.count)

    clean = diff_campaigns(old, new, matrix, matrix)
    print()
    print(clean.summary())
    print(f"gate verdict: {'FAIL' if clean.is_regression else 'PASS'} "
          f"(exit {1 if clean.is_regression else 0})")

    # Simulate firmware v2 shipping a silent bug: one scenario that
    # passed on v1 now forwards a frame the spec drops. Tampering the
    # serialized report is deliberate — the differ sees only canonical
    # JSON, never the build that produced it.
    payload = inject_unexplained_flip(
        new.to_dict(),
        message="firmware v2 forwards a frame the spec drops",
    )
    regressed = CampaignReport.from_dict(payload)

    broken = diff_campaigns(old, regressed, matrix, matrix)
    print()
    print("after the simulated firmware regression:")
    print(broken.summary())
    assert broken.is_regression
    assert len(broken.unexplained_flips) == 1
    print(f"gate verdict: FAIL (exit 1) — "
          f"{len(broken.unexplained_flips)} unexplained verdict flip")


if __name__ == "__main__":
    main()
