#!/usr/bin/env python3
"""Compiler check and architecture check use cases.

Uses NetDebug's workflow access to the toolchain plus differential
testing to characterize the SDNet-like backend:

* compiler defects — the unimplemented ``reject`` state and ignored
  ``verify`` statements (silent), and the refused RANGE match (loud);
* architecture limits — probing the real parse-depth ceiling, table
  capacity behaviour, and supported match kinds.

Run:  python examples/compiler_architecture_check.py
"""

from repro.exceptions import CompileError
from repro.netdebug import NetDebugController, StreamSpec, ValidationSession
from repro.netdebug.usecases.architecture_check import (
    probe_match_kinds,
    probe_parse_depth,
    probe_table_capacity,
)
from repro.netdebug.usecases.compiler_check import (
    range_match_program,
    verify_only_program,
)
from repro.p4.stdlib import strict_parser
from repro.sim.traffic import default_flow, malformed_mix
from repro.target import SDNetCompiler, SDNET_LIMITS, make_sdnet_device


def differential_audit(program, packets) -> int:
    """Count spec-vs-target divergences NetDebug finds for a program."""
    device = make_sdnet_device(f"chk-{program.name}")
    device.load(program)
    report = NetDebugController(device).run(
        ValidationSession(
            name=f"audit-{program.name}",
            streams=[
                StreamSpec(stream_id=1, packets=packets,
                           fix_checksums=False)
            ],
            use_reference_oracle=True,
        )
    )
    return len(report.findings_of("unexpected_output"))


def main() -> None:
    workload = [
        p for p, _ in malformed_mix(default_flow(), 30, 0.6, seed=7)
    ]

    print("== compiler check: differential spec-vs-target testing ==")
    reject_leaks = differential_audit(strict_parser(), workload)
    print(f"strict_parser : {reject_leaks} divergences "
          "-> the reject state is NOT implemented")
    verify_leaks = differential_audit(verify_only_program(), workload)
    print(f"verify_only   : {verify_leaks} divergences "
          "-> verify statements never fire")

    print("\n== compiler check: documented limitations ==")
    try:
        SDNetCompiler().compile(range_match_program())
        print("range_match   : accepted (unexpected!)")
    except CompileError as exc:
        print(f"range_match   : refused — {str(exc).splitlines()[-1].strip()}")

    print("\n== architecture check: probing the real envelope ==")
    depth = probe_parse_depth()
    print(f"parse depth   : probed {depth}, "
          f"published {SDNET_LIMITS.max_parse_depth} "
          f"[{'match' if depth == SDNET_LIMITS.max_parse_depth else 'MISMATCH'}]")
    installed, overflow_rejected = probe_table_capacity(64)
    print(f"table capacity: {installed}/64 entries installed, "
          f"overflow {'rejected' if overflow_rejected else 'ACCEPTED'}")
    kinds = probe_match_kinds()
    print("match kinds   : "
          + ", ".join(f"{kind}={'yes' if ok else 'no'}"
                      for kind, ok in sorted(kinds.items())))

    print("\nonly a tool with compiler + management access can produce")
    print("this table; a traffic box sees symptoms, a verifier nothing —")
    print("the compiler/architecture rows of Figure 2.")


if __name__ == "__main__":
    main()
