"""A parallel validation campaign sweeping programs, targets, faults
and workloads.

One declarative ScenarioMatrix replaces dozens of hand-rolled
validation sessions: every (program × target × fault × workload) cell
becomes an independent shard, shards run on a worker pool (compile
once per worker, fresh device per shard), and the aggregated
CampaignReport grades each cell. The sweep below catches both bug
classes NetDebug exists for, in one run:

* the §4 compiler bug — the SDNet-like target silently forwards
  packets the spec rejects (``unexpected_output`` on the malformed
  workload), and
* an injected hardware fault — a blackhole stage eating every packet
  (``missing_output``).

Run with ``--workers N`` to fan shards out over N processes and
``--record DIR`` to freeze the campaign to replayable regression
artifacts.
"""

import argparse

from repro.netdebug.campaign import (
    ScenarioMatrix,
    replay_campaign,
    run_campaign,
)
from repro.target.faults import Fault, FaultKind


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--workers", type=int, default=2)
    parser.add_argument("--count", type=int, default=10,
                        help="packets per scenario")
    parser.add_argument("--record", default="",
                        help="also freeze the campaign to this directory "
                             "and replay it back")
    # parse_known_args: stay runnable under test harnesses (runpy) that
    # leave their own flags in sys.argv.
    args, _ = parser.parse_known_args()

    matrix = ScenarioMatrix(
        programs=["strict_parser", "l2_switch"],
        targets=["reference", "sdnet"],
        faults={
            "baseline": (),
            "blackhole": (
                Fault(FaultKind.BLACKHOLE, stage="ingress.0"),
            ),
        },
        workloads=["udp", "malformed", "poisson"],
        count=args.count,
        seed=2018,
    )

    report = run_campaign(
        matrix, workers=args.workers, name="sweep",
        record_dir=args.record or None,
    )
    print(report.summary())

    leaks = sum(
        len(result.report.findings_of("unexpected_output"))
        for result in report.results
        if result.scenario.target == "sdnet"
        and result.scenario.fault == "baseline"
    )
    blackholed = sum(
        1 for result in report.failed()
        if result.scenario.fault == "blackhole"
    )
    print()
    print(f"reject-state leaks on sdnet: {leaks} packets "
          "(the paper's §4 case study)")
    print(f"blackhole scenarios caught: {blackholed}")

    if args.record:
        replayed = replay_campaign(args.record, name="sweep",
                                   workers=args.workers)
        same = [r.verdict for r in replayed.results] == [
            r.verdict for r in report.results
        ]
        print(f"replay from {args.record!r}: verdicts reproduced={same}")

    print()
    print("campaign sweep OK" if not report.passed and leaks and blackholed
          else "campaign sweep UNEXPECTED: deviations not caught")


if __name__ == "__main__":
    main()
