#!/usr/bin/env python3
"""The paper's §4 case study: discovering SDNet's missing reject state.

Walks through the exact story the paper tells:

1. A program whose parser *rejects* malformed packets is proven correct
   by software formal verification — on the specification.
2. Compiled through the SDNet-like toolchain onto the simulated NetFPGA
   device, with a clean compiler log.
3. NetDebug injects a mixed workload directly into the data plane and
   checks outputs against the reference oracle: every packet that should
   have been dropped is caught leaving the device.
4. The same audit on a spec-compliant target passes, isolating the fault
   to the toolchain.

Run:  python examples/reject_state_bug.py
"""

from repro.baselines import SymbolicVerifier, prop_rejected_never_forwarded
from repro.netdebug import (
    NetDebugController,
    StreamSpec,
    ValidationSession,
)
from repro.p4.stdlib import strict_parser
from repro.sim.traffic import default_flow, malformed_mix
from repro.target import (
    REJECT_NOT_IMPLEMENTED,
    make_reference_device,
    make_sdnet_device,
)


def main() -> None:
    program = strict_parser()

    print("== step 1: software formal verification (p4v-style) ==")
    report = SymbolicVerifier(program).verify(
        [prop_rejected_never_forwarded()]
    )
    print(report.summary())
    assert report.passed
    print("-> the SPEC provably drops rejected packets\n")

    print("== step 2: compile for the SDNet-like NetFPGA target ==")
    sume = make_sdnet_device("sume0")
    compiled = sume.load(program)
    print(f"compiler diagnostics: {compiled.diagnostics or 'none'}")
    print("-> toolchain output is clean; nothing hints at a problem\n")

    print("== step 3: NetDebug validation on the real target ==")
    workload = list(malformed_mix(default_flow(), 40, 0.5, seed=2018))
    malformed = sum(1 for _, bad in workload if bad)
    session = ValidationSession(
        name="reject-audit",
        streams=[
            StreamSpec(
                stream_id=1,
                packets=[packet for packet, _ in workload],
                fix_checksums=False,
            )
        ],
        use_reference_oracle=True,
    )
    audit = NetDebugController(sume).run(session)
    leaks = audit.findings_of("unexpected_output")
    print(f"injected {audit.injected} packets "
          f"({malformed} must be dropped by the parser)")
    print(f"NetDebug findings: {len(leaks)} packets that should have "
          "been dropped were forwarded to the next hop")
    assert len(leaks) == malformed
    truth = REJECT_NOT_IMPLEMENTED in sume.compiled.silent_deviations
    print(f"ground truth (backend deviation list): "
          f"reject-not-implemented = {truth}\n")

    print("== step 4: the same audit on a spec-compliant target ==")
    reference = make_reference_device("ref0")
    reference.load(strict_parser())
    clean = NetDebugController(reference).run(session)
    print(f"reference target verdict: "
          f"{'PASS' if clean.passed else 'FAIL'}")
    assert clean.passed

    print("\nconclusion: the program is correct, the compiler is not —")
    print("a severe target bug that formal verification cannot see and")
    print("NetDebug detects immediately, reproducing the paper's result.")


if __name__ == "__main__":
    main()
