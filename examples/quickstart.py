#!/usr/bin/env python3
"""Quickstart: validate an IPv4 router with NetDebug in ~40 lines.

Builds a router program from the stdlib, loads it onto a simulated
device, installs a route through the control plane, and runs a NetDebug
validation session whose expected outputs come from the spec-faithful
reference oracle. Everything passes — this is the happy path.

Run:  python examples/quickstart.py
"""

from repro.netdebug import (
    NetDebugController,
    StreamSpec,
    ValidationSession,
)
from repro.p4.stdlib import ipv4_router
from repro.packet import ipv4, mac
from repro.sim.traffic import FlowSpec, udp_stream
from repro.target import make_reference_device


def main() -> None:
    # 1. A data-plane program (P4-like IR from the stdlib).
    program = ipv4_router()

    # 2. A simulated device; loading compiles the program for the target.
    device = make_reference_device("router0")
    compiled = device.load(program)
    print(f"loaded {program.name!r} on {device.name}: "
          f"{compiled.resources.luts} LUTs, "
          f"{compiled.utilization['luts']:.1%} of the device")

    # 3. Control plane: one route, 10.0.0.0/8 -> port 2.
    device.control_plane.table_add(
        "ipv4_lpm",
        "route",
        [(ipv4("10.0.0.0"), 8)],
        [mac("aa:bb:cc:dd:ee:01"), 2],
    )

    # 4. A NetDebug validation session: 20 test packets toward the
    #    routed prefix, checked against the reference oracle.
    flow = FlowSpec(
        src_ip=ipv4("192.168.1.1"),
        dst_ip=ipv4("10.55.0.1"),
        src_port=1234,
        dst_port=5678,
    )
    session = ValidationSession(
        name="router-smoke-test",
        streams=[
            StreamSpec(
                stream_id=1,
                packets=list(udp_stream(flow, 20, size=128)),
            )
        ],
        use_reference_oracle=True,
    )

    # 5. The host-side software tool runs it over the dedicated interface.
    controller = NetDebugController(device)
    report = controller.run(session)
    print()
    print(report.summary())
    assert report.passed, "the reference target must validate cleanly"
    print("\nquickstart OK — the data plane behaves exactly per spec")


if __name__ == "__main__":
    main()
