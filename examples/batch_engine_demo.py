"""The batch engine and the persistent compiled-artifact cache.

Runs the seeded baseline campaign matrix under ``engine="batch"`` — the
block kernel that compiles each program once and executes whole
struct-of-arrays packet blocks — and prints the canonical report JSON
plus the compile-cache counters. Run it twice: the first (cold) pass
compiles and stores every program x target artifact; the second (warm)
pass resolves them from ``REPRO_COMPILE_CACHE`` (default
``~/.cache/repro-target``) without recompiling, while the report bytes
stay identical.

``--expect-hits`` turns the warm-path claim into an exit code for CI:
the run fails unless at least one artifact was served from the disk
cache and none had to be stored.
"""

import argparse
import sys

from repro.netdebug.campaign import run_campaign
from repro.netdebug.diffing import baseline_matrix


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--engine", default="batch",
                        choices=("tree", "closure", "batch"),
                        help="execution engine for campaign devices")
    parser.add_argument("--expect-hits", action="store_true",
                        help="fail unless the artifact cache served "
                             "hits and stored nothing (CI warm-path "
                             "check)")
    parser.add_argument("--json", action="store_true",
                        help="print the canonical report JSON instead "
                             "of the summary table")
    # parse_known_args: stay runnable under test harnesses (runpy) that
    # leave their own flags in sys.argv.
    args, _ = parser.parse_known_args()

    report = run_campaign(
        baseline_matrix(), name="batch-demo", engine=args.engine
    )

    if args.json:
        print(report.to_json())
    else:
        print(report.summary())

    # Counters go to stderr so `--json > report.json` captures only the
    # canonical bytes (CI cmp's a cold and a warm capture).
    cache = report.meta["compile_cache"]
    print(f"\ncompile cache: {cache['hits']} hits, "
          f"{cache['misses']} misses, {cache['stores']} stores, "
          f"{cache['memory_hits']} in-memory hits",
          file=sys.stderr)

    if args.expect_hits:
        if cache["hits"] == 0:
            raise SystemExit(
                "expected warm cache hits but every artifact missed — "
                "is REPRO_COMPILE_CACHE pointing at the cold run's "
                "directory?"
            )
        if cache["stores"] > 0:
            raise SystemExit(
                f"warm run stored {cache['stores']} artifacts — the "
                "cache key is unstable across identical runs"
            )
        print("warm-path check passed: cache hits > 0, stores == 0",
              file=sys.stderr)


if __name__ == "__main__":
    main()
