#!/usr/bin/env python3
"""Writing the data plane — and its validation — as P4-like source text.

The paper's framework is "fully programmable through P4". This example
uses the textual frontend end to end: the DUT program is parsed from
source, compiled onto the SDNet-like target, and validated by NetDebug
with the reference oracle. The same source also runs on the faithful
target to isolate where any divergence comes from.

Run:  python examples/textual_p4_program.py
"""

from repro.netdebug import NetDebugController, StreamSpec, ValidationSession
from repro.p4 import parse_program
from repro.packet import ipv4, mac
from repro.sim.traffic import default_flow, malformed_mix
from repro.target import make_reference_device, make_sdnet_device

SOURCE = """
# guarded_forwarder.p4t — accept only well-formed IPv4, then forward
# by destination prefix; everything else must die in the parser.

header ethernet;
header ipv4;

parser start {
    extract(ethernet);
    select (ethernet.ether_type) {
        0x0800: parse_ipv4;
        default: reject;
    }
}
parser parse_ipv4 {
    extract(ipv4);
    verify(ipv4.version == 4 and ipv4.ihl >= 5, 3);
    goto accept;
}

action route(next_hop: 48, port: 9) {
    set(ethernet.dst_addr, next_hop);
    set(ipv4.ttl, ipv4.ttl - 1);
    forward(port);
}
action drop_all() { drop(); }

table prefixes {
    key: ipv4.dst_addr lpm;
    actions: route, drop_all;
    default: drop_all;
    size: 128;
}

control ingress {
    # valid() guards matter: on a buggy target, parser-rejected packets
    # reach this control WITHOUT an ipv4 header.
    if (valid(ipv4) and ipv4.ttl <= 1) { call(drop_all); }
    else {
        if (valid(ipv4)) { apply(prefixes); }
        else { call(drop_all); }
    }
}

deparser { emit(ethernet); emit(ipv4); }
"""


def validate_on(device_factory, label: str):
    device = device_factory(label)
    program = parse_program(SOURCE, name="guarded_forwarder")
    device.load(program)
    device.control_plane.table_add(
        "prefixes", "route", [(ipv4("10.0.0.0"), 8)],
        [mac("aa:bb:cc:dd:ee:01"), 1],
    )
    workload = [
        packet for packet, _ in malformed_mix(default_flow(), 30, 0.4, 42)
    ]
    report = NetDebugController(device).run(
        ValidationSession(
            name=f"text-validation-{label}",
            streams=[
                StreamSpec(stream_id=1, packets=workload,
                           fix_checksums=False)
            ],
            use_reference_oracle=True,
        )
    )
    return report


def main() -> None:
    print("program source: 50 lines of P4-like text, parsed at runtime\n")

    reference = validate_on(make_reference_device, "ref")
    print(f"reference target : "
          f"{'PASS' if reference.passed else 'FAIL'} "
          f"({len(reference.findings)} findings)")

    sdnet = validate_on(make_sdnet_device, "sume")
    leaks = sdnet.findings_of("unexpected_output")
    print(f"SDNet-like target: "
          f"{'PASS' if sdnet.passed else 'FAIL'} "
          f"({len(leaks)} packets forwarded that the source says to drop)")

    assert reference.passed and not sdnet.passed
    print("\nsame source, same table entries, same workload — the")
    print("difference is the backend. Textual P4 programs plug straight")
    print("into the whole validation pipeline.")


if __name__ == "__main__":
    main()
