#!/usr/bin/env python3
"""Figure 1, live: NetDebug validating a switch that is carrying traffic.

Two hosts exchange traffic through a switch under a discrete-event
simulation. While packets fly, the NetDebug controller (host software,
dedicated interface):

* runs a test-packet session through the data plane — in parallel with
  the live traffic, never touching the external ports, and
* polls internal status periodically (the status-monitoring use case),
  catching a mid-run hardware fault as a drop burst that external
  observation cannot explain.

Run:  python examples/live_traffic_validation.py
"""

from repro.netdebug import (
    NetDebugController,
    StreamSpec,
    ValidationSession,
    is_probe,
)
from repro.p4.stdlib import l2_switch
from repro.packet import mac
from repro.sim import Network
from repro.sim.traffic import FlowSpec, constant_rate_times, udp_stream
from repro.target import Fault, FaultKind, make_reference_device

LIVE = 120
TEST = 40


def main() -> None:
    # -- topology: h0 --(port0)-- sw0 --(port1)-- h1
    network = Network()
    device = network.add_device(make_reference_device("sw0"))
    device.load(l2_switch())
    device.control_plane.table_add(
        "dmac", "forward", [mac("02:00:00:00:00:02")], [1]
    )
    network.add_host("h0")
    network.add_host("h1")
    network.connect("h0", "sw0", 0)
    network.connect("h1", "sw0", 1)

    flow = FlowSpec(
        src_ip=0x0A000001, dst_ip=0x0A000002,
        src_port=40000, dst_port=7,
        eth_dst=mac("02:00:00:00:00:02"),
    )

    # -- live traffic on the wire
    for when, packet in zip(
        constant_rate_times(2e6, LIVE), udp_stream(flow, LIVE, size=128)
    ):
        network.send("h0", packet.pack(), at=when)

    controller = NetDebugController(device)

    # -- a NetDebug session fired mid-run, beside the live traffic
    session = ValidationSession(
        name="in-service-validation",
        streams=[
            StreamSpec(
                stream_id=1,
                packets=list(udp_stream(flow, TEST, size=256, seed=3)),
                wrap=True,
            )
        ],
    )
    results = {}
    network.sim.schedule_at(
        20_000.0, lambda: results.update(report=controller.run(session))
    )

    # -- periodic internal status polls (every 10 µs of sim time)
    controller.monitor(network.sim, period_ns=10_000.0,
                       duration_ns=70_000.0)

    # -- a hardware fault appears partway through the run
    network.sim.schedule_at(
        40_000.0,
        lambda: device.injector.inject(
            Fault(FaultKind.BLACKHOLE, stage="ingress.0")
        ),
    )

    network.run()
    report = results["report"]
    h1 = network.hosts["h1"]

    print("== live traffic ==")
    delivered_before_fault = h1.rx_count()
    print(f"delivered to h1: {delivered_before_fault}/{LIVE} "
          "(the fault at t=40µs ate the rest)")
    leaked_probes = sum(1 for f in h1.received if is_probe(f.wire))
    print(f"NetDebug probes that escaped to hosts: {leaked_probes}")
    assert leaked_probes == 0

    print("\n== in-service validation session ==")
    print(report.summary())

    print("\n== status monitoring timeline (dedicated interface) ==")
    print(f"{'t (µs)':>8} {'processed':>10} {'forwarded':>10} "
          f"{'dropped':>8}")
    for sample in controller.status_log:
        stats = sample.status["stats"]
        # clock_cycles -> µs at 250 MHz reference clock
        t_us = sample.clock_cycles / 250
        print(f"{t_us:>8.1f} {stats['processed']:>10} "
              f"{stats['forwarded']:>10} {stats['dropped']:>8}")
    drops = [s.status["stats"]["dropped"] for s in controller.status_log]
    assert drops[-1] > 0
    print("\nthe drop burst is visible ONLY through the internal status")
    print("feed — externally the traffic just stops. That is the status")
    print("monitoring column of Figure 2.")


if __name__ == "__main__":
    main()
