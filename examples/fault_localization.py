#!/usr/bin/env python3
"""Fault localization: finding where a packet died inside the pipeline.

A hardware fault (blackhole) is injected into the middle of an ACL
firewall's pipeline. Externally the device just "eats" packets — a
tester cabled to the ports can say nothing more. NetDebug localizes the
fault two ways:

* passively, with one injection observed at every internal tap, and
* actively, by bisection: re-injecting the packet *at* successive taps
  until it survives, which brackets the faulty stage in O(log n) tries.

Run:  python examples/fault_localization.py
"""

from repro.baselines import ExternalTester
from repro.netdebug import NetDebugController, bisect_fault
from repro.p4.stdlib import acl_firewall
from repro.packet import ipv4, mac, udp_packet
from repro.target import Fault, FaultKind, make_reference_device

FAULTY_STAGE = "ingress.1"


def main() -> None:
    device = make_reference_device("fw0")
    device.load(acl_firewall())
    device.control_plane.table_add(
        "fwd", "forward", [mac("02:00:00:00:00:02")], [2]
    )
    print(f"pipeline stages: {device.stage_names()}")

    # A hardware fault somewhere in the middle of the pipeline.
    device.injector.inject(Fault(FaultKind.BLACKHOLE, stage=FAULTY_STAGE))
    print(f"(injected a blackhole fault at {FAULTY_STAGE!r})\n")

    wire = udp_packet(
        ipv4("192.168.0.9"), ipv4("172.16.0.1"), 443, 9999,
        eth_dst=mac("02:00:00:00:00:02"),
    ).pack()

    print("== what the external tester sees ==")
    captures = ExternalTester(device).send(wire, 0)
    print(f"sent 1 frame on port 0, captured {len(captures)} frames")
    print("-> 'the device lost my packet', location unknown\n")

    print("== NetDebug passive localization (internal taps) ==")
    controller = NetDebugController(device)
    passive = controller.localize_fault(wire)
    for line in passive.evidence:
        print(f"  {line}")
    print(f"-> {passive}\n")
    assert passive.stage == FAULTY_STAGE

    print("== NetDebug active bisection (direct injection) ==")
    active = bisect_fault(device, wire)
    for line in active.evidence:
        print(f"  {line}")
    print(f"-> {active}")
    assert active.stage == FAULTY_STAGE

    print("\nboth strategies point at the same stage — exactly the")
    print("'find where the fault occurred, even inside the data plane'")
    print("capability the paper claims for NetDebug.")


if __name__ == "__main__":
    main()
