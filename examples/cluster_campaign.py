"""A distributed validation campaign on a localhost cluster.

The same declarative ScenarioMatrix the pool path sweeps is dispatched
here over the real socket transport: a coordinator serves shards to N
worker processes, per-shard SessionReports stream back as they finish
(out of order) and render live through the on_result hook, and the
final CampaignReport is reassembled deterministically — byte-identical
to a serial run of the same matrix, which this script verifies.

To spread the same campaign over real machines, replace the launcher
with the CLI:

    python -m repro.netdebug.cluster coordinator --listen 0.0.0.0:47815 ...
    python -m repro.netdebug.cluster worker --connect host:47815 --slots 4
"""

import argparse

from repro.netdebug.campaign import ScenarioMatrix, run_campaign
from repro.netdebug.cluster import ProgressPrinter, run_cluster_campaign


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--workers", type=int, default=2,
                        help="local worker processes to launch")
    parser.add_argument("--slots", type=int, default=1,
                        help="concurrent shards per worker")
    parser.add_argument("--count", type=int, default=8,
                        help="packets per scenario")
    # parse_known_args: stay runnable under test harnesses (runpy) that
    # leave their own flags in sys.argv.
    args, _ = parser.parse_known_args()

    matrix = ScenarioMatrix(
        programs=["strict_parser", "acl_firewall"],
        targets=["reference", "sdnet", "tofino"],
        workloads=["udp", "malformed"],
        count=args.count,
        seed=2018,
        setup="acl_gate",
    )

    print(f"dispatching {len(matrix.expand())} scenario shards to "
          f"{args.workers} socket-connected workers "
          f"({args.slots} slot(s) each)...\n")
    printer = ProgressPrinter()
    report = run_cluster_campaign(
        matrix,
        workers=args.workers,
        slots=args.slots,
        name="cluster-sweep",
        on_result=printer,
        timeout=300,
    )

    print()
    print(report.summary())
    print()
    print(f"time to first streamed result: {printer.first_result_s:.3f}s")

    serial = run_campaign(matrix, workers=1, name="cluster-sweep")
    identical = serial.to_json() == report.to_json()
    print(f"byte-identical to the serial run: {identical}")
    if not identical:
        raise SystemExit("cluster determinism contract violated!")


if __name__ == "__main__":
    main()
