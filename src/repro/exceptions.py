"""Exception hierarchy for the repro package.

Every subsystem raises a subclass of :class:`ReproError`, so callers can
catch a single base class at API boundaries while tests can assert on the
precise failure mode.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this library."""


class PacketError(ReproError):
    """Malformed packet data or an out-of-range field access."""


class ParseError(PacketError):
    """A packet could not be parsed against a header layout."""


class ChecksumError(PacketError):
    """A checksum verification failed."""


class P4Error(ReproError):
    """Base class for errors in the P4 intermediate representation."""


class P4TypeError(P4Error):
    """A type mismatch inside a P4 program (field widths, header names)."""


class P4ValidationError(P4Error):
    """A P4 program failed static well-formedness validation."""


class P4RuntimeError(P4Error):
    """The interpreter hit an illegal state while executing a program."""


class CompileError(ReproError):
    """The target compiler rejected a program outright."""


class TargetError(ReproError):
    """A simulated hardware target misbehaved or was misconfigured."""


class ControlPlaneError(ReproError):
    """An invalid control-plane operation (bad entry, unknown table)."""


class SimulationError(ReproError):
    """The discrete-event simulator was driven into an invalid state."""


class NetDebugError(ReproError):
    """The NetDebug framework was misconfigured or misused."""


class UnknownTargetError(NetDebugError):
    """A scenario or manifest references a target backend that is not in
    the campaign ``TARGETS`` registry. The message always lists the
    registered targets so matrix typos are one-glance fixable."""


class ClusterError(NetDebugError):
    """Distributed campaign execution failed: a shard exhausted its
    retry budget, every worker exited with work still queued, a worker
    reported a shard exception, or the transport saw a malformed or
    truncated frame. The message carries the shard/worker context."""


class VerificationError(ReproError):
    """The formal-verification baseline hit an unsupported construct."""
