"""NetDebug reproduction: a programmable framework for validating data planes.

Reproduces Bressana, Zilberman & Soulé, *A Programmable Framework for
Validating Data Planes* (SIGCOMM 2018) as a pure-Python system:

* :mod:`repro.packet` — bit-precise packets, standard headers, checksums.
* :mod:`repro.p4` — a P4₁₆-like IR with parser ``reject`` semantics,
  match-action tables, interpreter, DSL and a program stdlib.
* :mod:`repro.target` — simulated hardware targets: a spec-faithful
  reference and an SDNet-like backend whose datapath silently omits the
  ``reject`` state (the paper's §4 case study).
* :mod:`repro.netdebug` — the NetDebug framework: in-device test packet
  generator, line-rate output checker at internal tap points, host-side
  controller, fault localization, and the seven §3 use cases.
* :mod:`repro.baselines` — the Figure 2 comparison tools: a p4v-like
  spec-level formal verifier and an OSNT-like external tester.
* :mod:`repro.analysis` — the Figure 2 capability matrix, computed by
  actually running every tool against every use case.
"""

from .exceptions import (
    ChecksumError,
    CompileError,
    ControlPlaneError,
    NetDebugError,
    P4Error,
    P4RuntimeError,
    P4TypeError,
    P4ValidationError,
    PacketError,
    ParseError,
    ReproError,
    SimulationError,
    TargetError,
    VerificationError,
)

__version__ = "0.1.0"

__all__ = [
    "__version__",
    "ReproError",
    "PacketError",
    "ParseError",
    "ChecksumError",
    "P4Error",
    "P4TypeError",
    "P4ValidationError",
    "P4RuntimeError",
    "CompileError",
    "TargetError",
    "ControlPlaneError",
    "SimulationError",
    "NetDebugError",
    "VerificationError",
]
