"""Match-action tables.

A :class:`Table` declares its match keys (expression + match kind), the
actions it may invoke, a default action and a capacity. Entries are
installed at runtime by the control plane (:mod:`repro.controlplane`) and
matched here with P4 semantics: exact, longest-prefix, ternary-with-
priority and range matching.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum

from ..bitutils import quantize_range, quantize_ternary_mask
from ..exceptions import ControlPlaneError, P4TypeError, P4ValidationError
from .actions import Action
from .expr import EvalContext, Expr

__all__ = ["MatchKind", "TableKey", "TableEntry", "Table", "MatchResult"]


class MatchKind(str, Enum):
    """P4 match kinds supported by the model."""

    EXACT = "exact"
    LPM = "lpm"
    TERNARY = "ternary"
    RANGE = "range"


@dataclass(frozen=True)
class TableKey:
    """One match key: the expression evaluated per packet plus its kind."""

    expr: Expr
    kind: MatchKind
    name: str = ""  # optional display name for reports


@dataclass(frozen=True)
class KeyPattern:
    """The per-key pattern stored in an entry.

    Interpretation depends on the key's match kind:
      - EXACT:   ``value`` (mask/high unused)
      - LPM:     ``value`` with ``prefix_len`` significant bits
      - TERNARY: ``value`` and ``mask``
      - RANGE:   inclusive ``[value, high]``
    """

    value: int
    mask: int | None = None
    prefix_len: int | None = None
    high: int | None = None

    @classmethod
    def exact(cls, value: int) -> "KeyPattern":
        return cls(value=value)

    @classmethod
    def lpm(cls, value: int, prefix_len: int) -> "KeyPattern":
        return cls(value=value, prefix_len=prefix_len)

    @classmethod
    def ternary(cls, value: int, mask: int) -> "KeyPattern":
        return cls(value=value, mask=mask)

    @classmethod
    def range(cls, low: int, high: int) -> "KeyPattern":
        return cls(value=low, high=high)


@dataclass(frozen=True)
class TableEntry:
    """An installed table entry: patterns, action, action data, priority."""

    patterns: tuple[KeyPattern, ...]
    action: str
    action_data: tuple[int, ...] = ()
    priority: int = 0

    def __post_init__(self) -> None:
        if self.priority < 0:
            raise ControlPlaneError("entry priority must be non-negative")


@dataclass(frozen=True)
class MatchResult:
    """Outcome of a table lookup."""

    hit: bool
    action: str
    action_data: tuple[int, ...]
    entry: TableEntry | None = None


def _key_matches(
    kind: MatchKind,
    pattern: KeyPattern,
    value: int,
    width: int,
    quantize: bool = False,
) -> bool:
    """Match one key value against one pattern.

    ``quantize`` selects the TCAM-quantized semantics of targets whose
    ternary/range hardware only implements power-of-two boundaries
    (:func:`repro.bitutils.quantize_ternary_mask` /
    :func:`repro.bitutils.quantize_range`); exact and LPM keys are
    unaffected — an LPM prefix already *is* a power-of-two block.
    """
    if kind is MatchKind.EXACT:
        return value == pattern.value
    if kind is MatchKind.LPM:
        if pattern.prefix_len is None:
            raise ControlPlaneError("LPM pattern missing prefix_len")
        if pattern.prefix_len == 0:
            return True
        shift = width - pattern.prefix_len
        return (value >> shift) == (pattern.value >> shift)
    if kind is MatchKind.TERNARY:
        if pattern.mask is None:
            raise ControlPlaneError("ternary pattern missing mask")
        key_mask = pattern.mask
        if quantize:
            key_mask = quantize_ternary_mask(key_mask, width)
        return (value & key_mask) == (pattern.value & key_mask)
    if kind is MatchKind.RANGE:
        if pattern.high is None:
            raise ControlPlaneError("range pattern missing high bound")
        low, high = pattern.value, pattern.high
        if quantize:
            low, high = quantize_range(low, high, width)
        return low <= value <= high
    raise P4TypeError(f"unknown match kind {kind!r}")


@dataclass
class Table:
    """A match-action table declaration plus its installed entries."""

    name: str
    keys: list[TableKey] = field(default_factory=list)
    actions: dict[str, Action] = field(default_factory=dict)
    default_action: str = "NoAction"
    default_action_data: tuple[int, ...] = ()
    size: int = 1024
    entries: list[TableEntry] = field(default_factory=list)

    def __post_init__(self) -> None:
        if self.size <= 0:
            raise P4ValidationError(
                f"table {self.name!r} must have positive size"
            )

    # ------------------------------------------------------------------
    # Declaration helpers
    # ------------------------------------------------------------------
    def declare_action(self, action: Action) -> Action:
        if action.name in self.actions and self.actions[action.name] is not action:
            raise P4ValidationError(
                f"table {self.name!r} already declares action "
                f"{action.name!r}"
            )
        self.actions[action.name] = action
        return action

    def action(self, name: str) -> Action:
        try:
            return self.actions[name]
        except KeyError:
            raise P4ValidationError(
                f"table {self.name!r} has no action {name!r}"
            ) from None

    @property
    def is_lpm(self) -> bool:
        return any(k.kind is MatchKind.LPM for k in self.keys)

    @property
    def is_ternary(self) -> bool:
        return any(k.kind is MatchKind.TERNARY for k in self.keys)

    # ------------------------------------------------------------------
    # Control-plane operations
    # ------------------------------------------------------------------
    def insert(self, entry: TableEntry) -> None:
        """Install an entry, validating arity, action and capacity."""
        if len(entry.patterns) != len(self.keys):
            raise ControlPlaneError(
                f"table {self.name!r} expects {len(self.keys)} key "
                f"patterns, got {len(entry.patterns)}"
            )
        if entry.action not in self.actions:
            raise ControlPlaneError(
                f"table {self.name!r} has no action {entry.action!r}"
            )
        self.action(entry.action).bind(entry.action_data)  # arity check
        if len(self.entries) >= self.size:
            raise ControlPlaneError(
                f"table {self.name!r} is full ({self.size} entries)"
            )
        self.entries.append(entry)

    def clear(self) -> None:
        self.entries.clear()

    def remove(self, entry: TableEntry) -> None:
        try:
            self.entries.remove(entry)
        except ValueError:
            raise ControlPlaneError(
                f"entry not present in table {self.name!r}"
            ) from None

    # ------------------------------------------------------------------
    # Data-plane lookup
    # ------------------------------------------------------------------
    def lookup(
        self, ctx: EvalContext, env, quantize: bool = False
    ) -> MatchResult:
        """Match the packet in ``ctx`` against the installed entries.

        Selection follows P4 semantics: among matching entries, LPM tables
        prefer the longest prefix; ternary/range tables prefer the highest
        priority; exact tables have at most one match by construction.
        ``quantize`` applies the power-of-two TCAM quantization some
        targets silently impose on ternary/range keys (see
        :func:`_key_matches`); spec-faithful callers leave it False.
        """
        values = tuple(key.expr.eval(ctx, env) for key in self.keys)
        widths = tuple(key.expr.width(env) for key in self.keys)
        best: TableEntry | None = None
        best_rank: tuple[int, int] = (-1, -1)
        for entry in self.entries:
            if not all(
                _key_matches(key.kind, pattern, value, width, quantize)
                for key, pattern, value, width in zip(
                    self.keys, entry.patterns, values, widths
                )
            ):
                continue
            # Rank: total LPM prefix length first, then explicit priority.
            prefix_total = sum(
                p.prefix_len or 0
                for k, p in zip(self.keys, entry.patterns)
                if k.kind is MatchKind.LPM
            )
            rank = (prefix_total, entry.priority)
            if best is None or rank > best_rank:
                best = entry
                best_rank = rank
        if best is None:
            return MatchResult(
                hit=False,
                action=self.default_action,
                action_data=self.default_action_data,
            )
        return MatchResult(
            hit=True,
            action=best.action,
            action_data=best.action_data,
            entry=best,
        )
