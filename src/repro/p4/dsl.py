"""A compact Python builder DSL for P4-like programs.

The DSL keeps program construction readable::

    b = ProgramBuilder("router")
    b.header(ETHERNET)
    b.header(IPV4)
    start = b.parser_state("start", extracts=["ethernet"])
    start.select(fld("ethernet", "ether_type"),
                 [(ETHERTYPE_IPV4, "parse_ipv4")], default=ACCEPT)
    ...
    program = b.build()

It is sugar over the IR in :mod:`repro.p4` — everything the DSL produces
can also be built directly.
"""

from __future__ import annotations

from ..exceptions import P4ValidationError
from ..packet.fields import HeaderSpec
from .actions import NOACTION, Action, Param, Primitive
from .control import ApplyTable, Call, Control, If, IfHit, Seq, Stmt
from .expr import Expr
from .parser import ACCEPT, REJECT, ParserState, Transition
from .program import P4Program
from .table import MatchKind, Table, TableKey
from .types import TypeEnv

__all__ = ["StateBuilder", "TableBuilder", "ControlBuilder", "ProgramBuilder"]


class StateBuilder:
    """Fluent wrapper around one :class:`ParserState`."""

    def __init__(self, state: ParserState):
        self._state = state

    def extract(self, *headers: str) -> "StateBuilder":
        self._state.extracts.extend(headers)
        return self

    def verify(self, cond: Expr, error_code: int = 0) -> "StateBuilder":
        if self._state.verify is not None:
            raise P4ValidationError(
                f"state {self._state.name!r} already has a verify"
            )
        self._state.verify = (cond, error_code)
        return self

    def goto(self, state: str) -> "StateBuilder":
        self._state.transition = Transition.to(state)
        return self

    def accept(self) -> "StateBuilder":
        return self.goto(ACCEPT)

    def reject(self) -> "StateBuilder":
        return self.goto(REJECT)

    def select(
        self,
        keys: Expr | list[Expr],
        cases: list[tuple[object, str]],
        default: str = REJECT,
    ) -> "StateBuilder":
        if isinstance(keys, Expr):
            keys = [keys]
        self._state.transition = Transition.select(keys, cases, default)
        return self


class TableBuilder:
    """Fluent wrapper around one :class:`Table`."""

    def __init__(self, table: Table):
        self._table = table

    def key(
        self, expr: Expr, kind: MatchKind | str = MatchKind.EXACT,
        name: str = "",
    ) -> "TableBuilder":
        kind = MatchKind(kind)
        self._table.keys.append(TableKey(expr, kind, name))
        return self

    def action(
        self,
        name: str,
        params: list[tuple[str, int]] | None = None,
        body: list[Primitive] | None = None,
    ) -> "TableBuilder":
        built = Action(
            name,
            [Param(pname, bits) for pname, bits in (params or [])],
            list(body or []),
        )
        self._table.declare_action(built)
        return self

    def declare(self, action: Action) -> "TableBuilder":
        self._table.declare_action(action)
        return self

    def default(
        self, action: str, args: tuple[int, ...] = ()
    ) -> "TableBuilder":
        self._table.default_action = action
        self._table.default_action_data = args
        return self

    def size(self, size: int) -> "TableBuilder":
        self._table.size = size
        return self

    @property
    def table(self) -> Table:
        return self._table


class ControlBuilder:
    """Fluent wrapper around one :class:`Control`."""

    def __init__(self, control: Control):
        self._control = control
        self._stmts: list[Stmt] = []

    def table(self, name: str) -> TableBuilder:
        table = Table(name)
        table.declare_action(NOACTION)
        self._control.declare_table(table)
        return TableBuilder(table)

    def action(
        self,
        name: str,
        params: list[tuple[str, int]] | None = None,
        body: list[Primitive] | None = None,
    ) -> "ControlBuilder":
        built = Action(
            name,
            [Param(pname, bits) for pname, bits in (params or [])],
            list(body or []),
        )
        self._control.declare_action(built)
        return self

    def apply(self, table: str) -> "ControlBuilder":
        self._stmts.append(ApplyTable(table))
        return self

    def when(
        self, cond: Expr, then: Stmt, otherwise: Stmt | None = None
    ) -> "ControlBuilder":
        self._stmts.append(If(cond, then, otherwise))
        return self

    def on_hit(
        self, table: str, then: Stmt | None = None,
        otherwise: Stmt | None = None,
    ) -> "ControlBuilder":
        self._stmts.append(IfHit(table, then, otherwise))
        return self

    def call(self, action: str, args: tuple[int, ...] = ()) -> "ControlBuilder":
        self._stmts.append(Call(action, args))
        return self

    def stmt(self, statement: Stmt) -> "ControlBuilder":
        self._stmts.append(statement)
        return self

    def finish(self) -> Control:
        self._control.body = Seq(tuple(self._stmts))
        return self._control


class ProgramBuilder:
    """Top-level builder assembling a complete :class:`P4Program`."""

    def __init__(self, name: str):
        self._program = P4Program(name=name, env=TypeEnv())
        self._ingress = ControlBuilder(self._program.ingress)
        self._egress = ControlBuilder(self._program.egress)

    # -- types ----------------------------------------------------------
    def header(self, spec: HeaderSpec) -> "ProgramBuilder":
        self._program.env.declare_header(spec)
        return self

    def metadata(self, name: str, width: int) -> "ProgramBuilder":
        self._program.env.declare_metadata(name, width)
        return self

    # -- parser ---------------------------------------------------------
    def parser_state(
        self, name: str, extracts: list[str] | None = None
    ) -> StateBuilder:
        state = ParserState(name, list(extracts or []))
        self._program.parser.add_state(state)
        return StateBuilder(state)

    def start_state(self, name: str = "start") -> "ProgramBuilder":
        self._program.parser.start = name
        return self

    # -- controls -------------------------------------------------------
    @property
    def ingress(self) -> ControlBuilder:
        return self._ingress

    @property
    def egress(self) -> ControlBuilder:
        return self._egress

    # -- stateful objects -------------------------------------------------
    def counter(self, name: str, size: int) -> "ProgramBuilder":
        self._program.declare_counter(name, size)
        return self

    def register(self, name: str, size: int, width: int) -> "ProgramBuilder":
        self._program.declare_register(name, size, width)
        return self

    # -- deparser ---------------------------------------------------------
    def emit(self, *headers: str) -> "ProgramBuilder":
        for header in headers:
            self._program.deparser.add(header)
        return self

    def build(self, validate: bool = True) -> P4Program:
        """Finalize the program; optionally run static validation."""
        self._ingress.finish()
        self._egress.finish()
        if validate:
            from .validation import validate_program

            validate_program(self._program)
        return self._program
