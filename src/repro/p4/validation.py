"""Static well-formedness validation for P4-like programs.

These checks run before a program is compiled to a target or executed.
They are the moral equivalent of the P4 front-end's semantic checks:
dangling state names, references to undeclared headers or fields, action
arity mismatches, deparser consistency and so on. A failed check raises
:class:`~repro.exceptions.P4ValidationError` listing every problem found.
"""

from __future__ import annotations

from ..exceptions import P4TypeError, P4ValidationError
from .actions import (
    Action,
    AddHeader,
    CountPacket,
    HashField,
    Param,
    RegisterRead,
    RegisterWrite,
    RemoveHeader,
    SetField,
    SetMeta,
)
from .control import ApplyTable, Call, Control, If, IfHit, Seq, Stmt
from .expr import Expr, FieldRef, IsValid, MetaRef
from .parser import ACCEPT, REJECT
from .program import P4Program

__all__ = ["validate_program", "collect_expr_refs"]


def collect_expr_refs(expr: Expr) -> tuple[set[tuple[str, str]], set[str]]:
    """All (header, field) and metadata names an expression reads."""
    fields: set[tuple[str, str]] = set()
    metas: set[str] = set()

    def walk(node: Expr) -> None:
        if isinstance(node, FieldRef):
            fields.add((node.header, node.field))
        elif isinstance(node, MetaRef):
            metas.add(node.name)
        elif isinstance(node, IsValid):
            fields.add((node.header, ""))
        for child in node.children():
            walk(child)

    walk(expr)
    return fields, metas


class _Validator:
    def __init__(self, program: P4Program):
        self.program = program
        self.errors: list[str] = []

    def error(self, message: str) -> None:
        self.errors.append(message)

    # -- expressions -----------------------------------------------------
    def check_expr(self, expr: Expr, where: str) -> None:
        fields, metas = collect_expr_refs(expr)
        for header, field in fields:
            if header not in self.program.env.headers:
                self.error(f"{where}: undeclared header {header!r}")
            elif field and not self.program.env.headers[header].has_field(field):
                self.error(
                    f"{where}: header {header!r} has no field {field!r}"
                )
        for name in metas:
            if name not in self.program.env.metadata:
                self.error(f"{where}: undeclared metadata {name!r}")

    # -- parser ----------------------------------------------------------
    def check_parser(self) -> None:
        parser = self.program.parser
        if parser.start in (ACCEPT, REJECT):
            return  # degenerate but legal: parse nothing
        if parser.start not in parser.states:
            self.error(f"parser start state {parser.start!r} is undefined")
            return
        for state in parser.states.values():
            where = f"parser state {state.name!r}"
            for header in state.extracts:
                if header not in self.program.env.headers:
                    self.error(f"{where}: extracts undeclared header "
                               f"{header!r}")
            if state.verify is not None:
                self.check_expr(state.verify[0], f"{where} verify")
            transition = state.transition
            for key in transition.keys:
                self.check_expr(key, f"{where} select key")
            for target in transition.targets():
                if target not in (ACCEPT, REJECT) and target not in parser.states:
                    self.error(
                        f"{where}: transition to undefined state "
                        f"{target!r}"
                    )
            for case in transition.cases:
                if len(case.patterns) != len(transition.keys):
                    self.error(
                        f"{where}: select case arity "
                        f"{len(case.patterns)} != {len(transition.keys)} keys"
                    )

    # -- actions -----------------------------------------------------------
    def check_action(self, action: Action, where: str) -> None:
        param_names = set(action.param_names)
        for primitive in action.body:
            pwhere = f"{where} action {action.name!r}"
            exprs: list[Expr] = []
            if isinstance(primitive, SetField):
                if primitive.header not in self.program.env.headers:
                    self.error(
                        f"{pwhere}: set_field on undeclared header "
                        f"{primitive.header!r}"
                    )
                elif not self.program.env.headers[primitive.header].has_field(
                    primitive.field
                ):
                    self.error(
                        f"{pwhere}: header {primitive.header!r} has no "
                        f"field {primitive.field!r}"
                    )
                exprs.append(primitive.value)
            elif isinstance(primitive, SetMeta):
                if primitive.name not in self.program.env.metadata:
                    self.error(
                        f"{pwhere}: set_meta on undeclared metadata "
                        f"{primitive.name!r}"
                    )
                exprs.append(primitive.value)
            elif isinstance(primitive, (AddHeader, RemoveHeader)):
                if primitive.header not in self.program.env.headers:
                    self.error(
                        f"{pwhere}: undeclared header {primitive.header!r}"
                    )
            elif isinstance(primitive, CountPacket):
                if primitive.name not in self.program.counters:
                    self.error(
                        f"{pwhere}: undeclared counter {primitive.name!r}"
                    )
                exprs.append(primitive.index)
            elif isinstance(primitive, RegisterWrite):
                if primitive.name not in self.program.registers:
                    self.error(
                        f"{pwhere}: undeclared register {primitive.name!r}"
                    )
                exprs.extend((primitive.index, primitive.value))
            elif isinstance(primitive, RegisterRead):
                if primitive.name not in self.program.registers:
                    self.error(
                        f"{pwhere}: undeclared register {primitive.name!r}"
                    )
                if primitive.into not in self.program.env.metadata:
                    self.error(
                        f"{pwhere}: reg_read into undeclared metadata "
                        f"{primitive.into!r}"
                    )
                exprs.append(primitive.index)
            elif isinstance(primitive, HashField):
                if primitive.into not in self.program.env.metadata:
                    self.error(
                        f"{pwhere}: hash into undeclared metadata "
                        f"{primitive.into!r}"
                    )
                if primitive.modulo <= 0:
                    self.error(f"{pwhere}: hash modulo must be positive")
                exprs.extend(primitive.inputs)
            for expr in exprs:
                self.check_expr(expr, pwhere)
                self._check_params_bound(expr, param_names, pwhere)

    def _check_params_bound(
        self, expr: Expr, params: set[str], where: str
    ) -> None:
        if isinstance(expr, Param) and expr.name not in params:
            self.error(
                f"{where}: references unknown parameter {expr.name!r}"
            )
        for child in expr.children():
            self._check_params_bound(child, params, where)

    # -- controls ------------------------------------------------------------
    def check_control(self, control: Control) -> None:
        where = f"control {control.name!r}"
        for table in control.tables.values():
            twhere = f"{where} table {table.name!r}"
            for key in table.keys:
                self.check_expr(key.expr, f"{twhere} key")
            if table.default_action not in table.actions:
                self.error(
                    f"{twhere}: default action "
                    f"{table.default_action!r} is not declared"
                )
            else:
                try:
                    table.action(table.default_action).bind(
                        table.default_action_data
                    )
                except P4TypeError as exc:
                    self.error(f"{twhere}: {exc}")
            for action in table.actions.values():
                self.check_action(action, twhere)
        for action in control.actions.values():
            self.check_action(action, where)
        self._check_stmt(control, control.body)

    def _check_stmt(self, control: Control, stmt: Stmt | None) -> None:
        where = f"control {control.name!r}"
        if stmt is None:
            return
        if isinstance(stmt, Seq):
            for child in stmt.body:
                self._check_stmt(control, child)
        elif isinstance(stmt, If):
            self.check_expr(stmt.cond, f"{where} if-condition")
            self._check_stmt(control, stmt.then)
            self._check_stmt(control, stmt.otherwise)
        elif isinstance(stmt, (ApplyTable, IfHit)):
            if stmt.table not in control.tables:
                self.error(f"{where}: applies unknown table {stmt.table!r}")
            if isinstance(stmt, IfHit):
                self._check_stmt(control, stmt.then)
                self._check_stmt(control, stmt.otherwise)
        elif isinstance(stmt, Call):
            if stmt.action not in control.actions:
                self.error(f"{where}: calls unknown action {stmt.action!r}")
            else:
                try:
                    control.actions[stmt.action].bind(stmt.args)
                except P4TypeError as exc:
                    self.error(f"{where}: {exc}")

    # -- deparser --------------------------------------------------------------
    def check_deparser(self) -> None:
        for header in self.program.deparser.emit_order:
            if header not in self.program.env.headers:
                self.error(f"deparser emits undeclared header {header!r}")

    def run(self) -> None:
        self.check_parser()
        self.check_control(self.program.ingress)
        self.check_control(self.program.egress)
        self.check_deparser()
        try:
            self.program.all_tables()
        except P4ValidationError as exc:
            self.error(str(exc))


def validate_program(program: P4Program) -> None:
    """Validate ``program``; raises with all problems on failure."""
    validator = _Validator(program)
    validator.run()
    if validator.errors:
        listing = "\n  - ".join(validator.errors)
        raise P4ValidationError(
            f"program {program.name!r} failed validation:\n  - {listing}"
        )
