"""JSON (de)serialization for P4-like programs.

The format is a structural dump of the IR — comparable in spirit to the
BMv2 JSON that real P4 compilers emit. It allows programs to be stored on
disk, shipped to a device's management interface, and diffed between
workflow versions (the paper's *comparison* use case).
"""

from __future__ import annotations

import json
from pathlib import Path

from ..exceptions import P4ValidationError
from ..packet.fields import FieldSpec, HeaderSpec
from .actions import (
    Action,
    AddHeader,
    CountPacket,
    Drop,
    Exit,
    Forward,
    HashField,
    NoOp,
    Param,
    Primitive,
    RegisterRead,
    RegisterWrite,
    RemoveHeader,
    SetField,
    SetMeta,
)
from .control import ApplyTable, Call, Control, If, IfHit, Seq, Stmt
from .expr import (
    BinOp,
    Concat,
    Const,
    Expr,
    FieldRef,
    IsValid,
    MetaRef,
    Mux,
    Slice,
    UnOp,
)
from .parser import Parser, ParserState, SelectCase, Transition
from .program import P4Program
from .table import MatchKind, Table, TableKey
from .types import STANDARD_METADATA, TypeEnv

__all__ = [
    "program_to_dict",
    "program_from_dict",
    "save_program",
    "load_program",
]


# ----------------------------------------------------------------------
# Expressions
# ----------------------------------------------------------------------
def expr_to_dict(expr: Expr) -> dict:
    if isinstance(expr, Const):
        return {"op": "const", "value": expr.value, "width": expr.width_hint}
    if isinstance(expr, Param):
        return {"op": "param", "name": expr.name, "width": expr.bits}
    if isinstance(expr, FieldRef):
        return {"op": "field", "header": expr.header, "field": expr.field}
    if isinstance(expr, MetaRef):
        return {"op": "meta", "name": expr.name}
    if isinstance(expr, IsValid):
        return {"op": "is_valid", "header": expr.header}
    if isinstance(expr, BinOp):
        return {
            "op": "bin",
            "kind": expr.op,
            "left": expr_to_dict(expr.left),
            "right": expr_to_dict(expr.right),
        }
    if isinstance(expr, UnOp):
        return {
            "op": "un",
            "kind": expr.op,
            "operand": expr_to_dict(expr.operand),
        }
    if isinstance(expr, Slice):
        return {
            "op": "slice",
            "operand": expr_to_dict(expr.operand),
            "high": expr.high,
            "low": expr.low,
        }
    if isinstance(expr, Concat):
        return {
            "op": "concat",
            "left": expr_to_dict(expr.left),
            "right": expr_to_dict(expr.right),
        }
    if isinstance(expr, Mux):
        return {
            "op": "mux",
            "cond": expr_to_dict(expr.cond),
            "then": expr_to_dict(expr.then),
            "otherwise": expr_to_dict(expr.otherwise),
        }
    raise P4ValidationError(f"unserializable expression {expr!r}")


def expr_from_dict(data: dict) -> Expr:
    op = data["op"]
    if op == "const":
        return Const(data["value"], data.get("width"))
    if op == "param":
        return Param(data["name"], data["width"])
    if op == "field":
        return FieldRef(data["header"], data["field"])
    if op == "meta":
        return MetaRef(data["name"])
    if op == "is_valid":
        return IsValid(data["header"])
    if op == "bin":
        return BinOp(
            data["kind"], expr_from_dict(data["left"]),
            expr_from_dict(data["right"]),
        )
    if op == "un":
        return UnOp(data["kind"], expr_from_dict(data["operand"]))
    if op == "slice":
        return Slice(expr_from_dict(data["operand"]), data["high"], data["low"])
    if op == "concat":
        return Concat(
            expr_from_dict(data["left"]), expr_from_dict(data["right"])
        )
    if op == "mux":
        return Mux(
            expr_from_dict(data["cond"]),
            expr_from_dict(data["then"]),
            expr_from_dict(data["otherwise"]),
        )
    raise P4ValidationError(f"unknown expression op {op!r}")


# ----------------------------------------------------------------------
# Primitives and actions
# ----------------------------------------------------------------------
def primitive_to_dict(primitive: Primitive) -> dict:
    if isinstance(primitive, SetField):
        return {
            "op": "set_field",
            "header": primitive.header,
            "field": primitive.field,
            "value": expr_to_dict(primitive.value),
        }
    if isinstance(primitive, SetMeta):
        return {
            "op": "set_meta",
            "name": primitive.name,
            "value": expr_to_dict(primitive.value),
        }
    if isinstance(primitive, AddHeader):
        return {
            "op": "add_header",
            "header": primitive.header,
            "after": primitive.after,
        }
    if isinstance(primitive, RemoveHeader):
        return {"op": "remove_header", "header": primitive.header}
    if isinstance(primitive, Drop):
        return {"op": "drop"}
    if isinstance(primitive, Forward):
        return {"op": "forward", "port": expr_to_dict(primitive.port)}
    if isinstance(primitive, NoOp):
        return {"op": "no_op"}
    if isinstance(primitive, CountPacket):
        return {
            "op": "count",
            "name": primitive.name,
            "index": expr_to_dict(primitive.index),
        }
    if isinstance(primitive, RegisterWrite):
        return {
            "op": "reg_write",
            "name": primitive.name,
            "index": expr_to_dict(primitive.index),
            "value": expr_to_dict(primitive.value),
        }
    if isinstance(primitive, RegisterRead):
        return {
            "op": "reg_read",
            "name": primitive.name,
            "index": expr_to_dict(primitive.index),
            "into": primitive.into,
        }
    if isinstance(primitive, HashField):
        return {
            "op": "hash",
            "into": primitive.into,
            "inputs": [expr_to_dict(e) for e in primitive.inputs],
            "modulo": primitive.modulo,
        }
    if isinstance(primitive, Exit):
        return {"op": "exit"}
    raise P4ValidationError(
        f"unserializable primitive {type(primitive).__name__}"
    )


def primitive_from_dict(data: dict) -> Primitive:
    op = data["op"]
    if op == "set_field":
        return SetField(
            data["header"], data["field"], expr_from_dict(data["value"])
        )
    if op == "set_meta":
        return SetMeta(data["name"], expr_from_dict(data["value"]))
    if op == "add_header":
        return AddHeader(data["header"], data.get("after"))
    if op == "remove_header":
        return RemoveHeader(data["header"])
    if op == "drop":
        return Drop()
    if op == "forward":
        return Forward(expr_from_dict(data["port"]))
    if op == "no_op":
        return NoOp()
    if op == "count":
        return CountPacket(data["name"], expr_from_dict(data["index"]))
    if op == "reg_write":
        return RegisterWrite(
            data["name"],
            expr_from_dict(data["index"]),
            expr_from_dict(data["value"]),
        )
    if op == "reg_read":
        return RegisterRead(
            data["name"], expr_from_dict(data["index"]), data["into"]
        )
    if op == "hash":
        return HashField(
            data["into"],
            tuple(expr_from_dict(e) for e in data["inputs"]),
            data["modulo"],
        )
    if op == "exit":
        return Exit()
    raise P4ValidationError(f"unknown primitive op {op!r}")


def action_to_dict(action: Action) -> dict:
    return {
        "name": action.name,
        "params": [{"name": p.name, "width": p.bits} for p in action.params],
        "body": [primitive_to_dict(p) for p in action.body],
    }


def action_from_dict(data: dict) -> Action:
    return Action(
        data["name"],
        [Param(p["name"], p["width"]) for p in data["params"]],
        [primitive_from_dict(p) for p in data["body"]],
    )


# ----------------------------------------------------------------------
# Statements
# ----------------------------------------------------------------------
def stmt_to_dict(stmt: Stmt | None) -> dict | None:
    if stmt is None:
        return None
    if isinstance(stmt, Seq):
        return {"op": "seq", "body": [stmt_to_dict(s) for s in stmt.body]}
    if isinstance(stmt, ApplyTable):
        return {"op": "apply", "table": stmt.table}
    if isinstance(stmt, If):
        return {
            "op": "if",
            "cond": expr_to_dict(stmt.cond),
            "then": stmt_to_dict(stmt.then),
            "otherwise": stmt_to_dict(stmt.otherwise),
        }
    if isinstance(stmt, IfHit):
        return {
            "op": "if_hit",
            "table": stmt.table,
            "then": stmt_to_dict(stmt.then),
            "otherwise": stmt_to_dict(stmt.otherwise),
        }
    if isinstance(stmt, Call):
        return {"op": "call", "action": stmt.action, "args": list(stmt.args)}
    raise P4ValidationError(f"unserializable statement {stmt!r}")


def stmt_from_dict(data: dict | None) -> Stmt | None:
    if data is None:
        return None
    op = data["op"]
    if op == "seq":
        return Seq(tuple(stmt_from_dict(s) for s in data["body"]))
    if op == "apply":
        return ApplyTable(data["table"])
    if op == "if":
        return If(
            expr_from_dict(data["cond"]),
            stmt_from_dict(data["then"]),
            stmt_from_dict(data["otherwise"]),
        )
    if op == "if_hit":
        return IfHit(
            data["table"],
            stmt_from_dict(data["then"]),
            stmt_from_dict(data["otherwise"]),
        )
    if op == "call":
        return Call(data["action"], tuple(data["args"]))
    raise P4ValidationError(f"unknown statement op {op!r}")


# ----------------------------------------------------------------------
# Parser / tables / controls / program
# ----------------------------------------------------------------------
def _parser_to_dict(parser: Parser) -> dict:
    states = []
    for state in parser.states.values():
        transition = state.transition
        states.append(
            {
                "name": state.name,
                "extracts": list(state.extracts),
                "verify": (
                    None
                    if state.verify is None
                    else {
                        "cond": expr_to_dict(state.verify[0]),
                        "error": state.verify[1],
                    }
                ),
                "keys": [expr_to_dict(k) for k in transition.keys],
                "cases": [
                    {
                        "patterns": [list(p) for p in case.patterns],
                        "next": case.next_state,
                    }
                    for case in transition.cases
                ],
                "default": transition.default,
            }
        )
    return {"start": parser.start, "states": states}


def _parser_from_dict(data: dict) -> Parser:
    parser = Parser(start=data["start"])
    for sdata in data["states"]:
        verify = None
        if sdata["verify"] is not None:
            verify = (
                expr_from_dict(sdata["verify"]["cond"]),
                sdata["verify"]["error"],
            )
        transition = Transition(
            keys=tuple(expr_from_dict(k) for k in sdata["keys"]),
            cases=tuple(
                SelectCase(
                    tuple(tuple(p) for p in cdata["patterns"]), cdata["next"]
                )
                for cdata in sdata["cases"]
            ),
            default=sdata["default"],
        )
        parser.add_state(
            ParserState(
                sdata["name"], list(sdata["extracts"]), verify, transition
            )
        )
    return parser


def _table_to_dict(table: Table) -> dict:
    return {
        "name": table.name,
        "keys": [
            {
                "expr": expr_to_dict(k.expr),
                "kind": k.kind.value,
                "name": k.name,
            }
            for k in table.keys
        ],
        "actions": [action_to_dict(a) for a in table.actions.values()],
        "default_action": table.default_action,
        "default_action_data": list(table.default_action_data),
        "size": table.size,
    }


def _table_from_dict(data: dict) -> Table:
    table = Table(
        data["name"],
        keys=[
            TableKey(
                expr_from_dict(k["expr"]), MatchKind(k["kind"]), k["name"]
            )
            for k in data["keys"]
        ],
        default_action=data["default_action"],
        default_action_data=tuple(data["default_action_data"]),
        size=data["size"],
    )
    for adata in data["actions"]:
        table.declare_action(action_from_dict(adata))
    return table


def _control_to_dict(control: Control) -> dict:
    return {
        "name": control.name,
        "tables": [_table_to_dict(t) for t in control.tables.values()],
        "actions": [action_to_dict(a) for a in control.actions.values()],
        "body": stmt_to_dict(control.body),
    }


def _control_from_dict(data: dict) -> Control:
    control = Control(data["name"])
    for tdata in data["tables"]:
        control.declare_table(_table_from_dict(tdata))
    for adata in data["actions"]:
        control.declare_action(action_from_dict(adata))
    body = stmt_from_dict(data["body"])
    control.body = body if body is not None else Seq(())
    return control


def program_to_dict(program: P4Program) -> dict:
    """Serialize a program to a JSON-compatible dict."""
    user_meta = {
        name: width
        for name, width in program.env.metadata.items()
        if name not in STANDARD_METADATA
    }
    return {
        "name": program.name,
        "headers": [
            {
                "name": spec.name,
                "fields": [
                    {"name": f.name, "width": f.width, "default": f.default}
                    for f in spec.fields
                ],
            }
            for spec in program.env.headers.values()
        ],
        "metadata": user_meta,
        "parser": _parser_to_dict(program.parser),
        "ingress": _control_to_dict(program.ingress),
        "egress": _control_to_dict(program.egress),
        "deparser": list(program.deparser.emit_order),
        "counters": [
            {"name": c.name, "size": c.size}
            for c in program.counters.values()
        ],
        "registers": [
            {"name": r.name, "size": r.size, "width": r.width}
            for r in program.registers.values()
        ],
    }


def program_from_dict(data: dict, validate: bool = True) -> P4Program:
    """Rebuild a program from :func:`program_to_dict` output."""
    env = TypeEnv()
    for hdata in data["headers"]:
        env.declare_header(
            HeaderSpec(
                hdata["name"],
                tuple(
                    FieldSpec(f["name"], f["width"], f.get("default", 0))
                    for f in hdata["fields"]
                ),
            )
        )
    for name, width in data.get("metadata", {}).items():
        env.declare_metadata(name, width)
    program = P4Program(
        name=data["name"],
        env=env,
        parser=_parser_from_dict(data["parser"]),
        ingress=_control_from_dict(data["ingress"]),
        egress=_control_from_dict(data["egress"]),
    )
    for header in data["deparser"]:
        program.deparser.add(header)
    for cdata in data.get("counters", []):
        program.declare_counter(cdata["name"], cdata["size"])
    for rdata in data.get("registers", []):
        program.declare_register(rdata["name"], rdata["size"], rdata["width"])
    if validate:
        from .validation import validate_program

        validate_program(program)
    return program


def save_program(program: P4Program, path: str | Path) -> None:
    """Write a program to ``path`` as indented JSON."""
    Path(path).write_text(json.dumps(program_to_dict(program), indent=2))


def load_program(path: str | Path, validate: bool = True) -> P4Program:
    """Load a program previously written by :func:`save_program`."""
    return program_from_dict(
        json.loads(Path(path).read_text()), validate=validate
    )
