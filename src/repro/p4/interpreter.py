"""Spec-faithful interpreter for P4-like programs.

The interpreter defines the *reference semantics* that every target is
judged against: parse → ingress → egress → deparse, with ``reject``
dropping the packet as the P4₁₆ specification requires. Targets
(:mod:`repro.target`) reuse these routines but may deviate deliberately —
the SDNet-like target's missing ``reject`` state is implemented as exactly
such a deviation.

Every run produces a :class:`Trace` of fine-grained events. The trace is
what NetDebug's internal tap points observe; external tools only ever see
the final :class:`PipelineResult`.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass, field
from enum import Enum

from ..bitutils import truncate
from ..exceptions import P4RuntimeError
from ..packet.packet import Header, Packet
from .actions import (
    Action,
    AddHeader,
    CountPacket,
    Drop,
    Exit,
    Forward,
    HashField,
    NoOp,
    Param,
    Primitive,
    RegisterRead,
    RegisterWrite,
    RemoveHeader,
    SetField,
    SetMeta,
)
from .control import ApplyTable, Call, Control, If, IfHit, Seq, Stmt
from .expr import BinOp, Concat, Const, EvalContext, Expr, FieldRef, IsValid, MetaRef, Mux, Slice, UnOp
from .parser import ACCEPT, REJECT, Parser
from .program import P4Program
from .types import (
    PARSER_ERROR_DEPTH_EXCEEDED,
    PARSER_ERROR_HEADER_TOO_SHORT,
    PARSER_ERROR_REJECT,
    PARSER_ERROR_VERIFY_FAILED,
    standard_metadata_defaults,
)

__all__ = [
    "Verdict",
    "TraceEvent",
    "Trace",
    "RuntimeState",
    "PipelineResult",
    "Interpreter",
    "ExitPipeline",
    "bind_expr",
    "stable_hash",
]

#: Safety bound on parser steps, to terminate cyclic parser graphs.
MAX_PARSER_STEPS = 64


class Verdict(str, Enum):
    """Final disposition of a packet."""

    FORWARDED = "forwarded"
    DROPPED = "dropped"
    PARSER_REJECTED = "parser_rejected"


@dataclass(frozen=True)
class TraceEvent:
    """One step of execution, visible at NetDebug tap points.

    ``kind`` is one of: ``parser_state``, ``parser_extract``,
    ``parser_verify_fail``, ``parser_accept``, ``parser_reject``,
    ``table_apply``, ``action``, ``primitive``, ``drop``, ``forward``,
    ``deparse``.
    """

    kind: str
    detail: str
    stage: str = ""


@dataclass
class Trace:
    """Ordered record of everything a packet's traversal did."""

    events: list[TraceEvent] = field(default_factory=list)

    def add(self, kind: str, detail: str, stage: str = "") -> None:
        self.events.append(TraceEvent(kind, detail, stage))

    def of_kind(self, kind: str) -> list[TraceEvent]:
        return [e for e in self.events if e.kind == kind]

    def stages_visited(self) -> list[str]:
        seen: list[str] = []
        for event in self.events:
            if event.stage and (not seen or seen[-1] != event.stage):
                seen.append(event.stage)
        return seen


@dataclass
class RuntimeState:
    """Mutable stateful objects shared across packets: counters, registers.

    Owned by the device, configured/observed through the control plane.
    """

    counters: dict[str, list[int]] = field(default_factory=dict)
    registers: dict[str, list[int]] = field(default_factory=dict)
    register_widths: dict[str, int] = field(default_factory=dict)

    @classmethod
    def for_program(cls, program: P4Program) -> "RuntimeState":
        state = cls()
        for decl in program.counters.values():
            state.counters[decl.name] = [0] * decl.size
        for decl in program.registers.values():
            state.registers[decl.name] = [0] * decl.size
            state.register_widths[decl.name] = decl.width
        return state

    def counter_value(self, name: str, index: int = 0) -> int:
        return self.counters[name][index]

    def register_value(self, name: str, index: int = 0) -> int:
        return self.registers[name][index]


@dataclass
class PipelineResult:
    """Everything a single-packet run produced."""

    verdict: Verdict
    packet: Packet | None
    metadata: dict[str, int]
    trace: Trace

    @property
    def egress_port(self) -> int | None:
        if self.verdict is not Verdict.FORWARDED:
            return None
        return self.metadata.get("egress_spec")


class ExitPipeline(Exception):
    """Raised by the ``Exit`` primitive to unwind the controls.

    Shared by the tree-walking interpreter and the compiled fast path
    (:mod:`repro.target.fastpath`) so both unwind identically.
    """


#: Backwards-compatible private alias.
_ExitPipeline = ExitPipeline


class _BoundExpr(Expr):
    """An expression with action parameters substituted by constants."""

    # Implemented via bind_expr below; class exists only for typing docs.


def bind_expr(expr: Expr, binding: dict[str, int]) -> Expr:
    """Substitute :class:`Param` nodes with bound constant values."""
    if isinstance(expr, Param):
        try:
            return Const(binding[expr.name], expr.bits)
        except KeyError:
            raise P4RuntimeError(
                f"action parameter {expr.name!r} is unbound"
            ) from None
    if isinstance(expr, BinOp):
        return BinOp(expr.op, bind_expr(expr.left, binding),
                     bind_expr(expr.right, binding))
    if isinstance(expr, UnOp):
        return UnOp(expr.op, bind_expr(expr.operand, binding))
    if isinstance(expr, Slice):
        return Slice(bind_expr(expr.operand, binding), expr.high, expr.low)
    if isinstance(expr, Concat):
        return Concat(bind_expr(expr.left, binding),
                      bind_expr(expr.right, binding))
    if isinstance(expr, Mux):
        return Mux(bind_expr(expr.cond, binding),
                   bind_expr(expr.then, binding),
                   bind_expr(expr.otherwise, binding))
    # Leaves (Const, FieldRef, MetaRef, IsValid) contain no params.
    return expr


def stable_hash(values: tuple[int, ...], modulo: int) -> int:
    """Deterministic CRC32-based hash used by the HashField primitive."""
    blob = b"".join(
        v.to_bytes((v.bit_length() + 7) // 8 or 1, "big") for v in values
    )
    return zlib.crc32(blob) % modulo


class Interpreter:
    """Executes a :class:`P4Program` on packets with reference semantics.

    Attributes:
        program: The program under execution.
        state: Stateful objects (counters/registers), shared across packets.
        honor_reject: When False, a parser transition to ``reject`` is
            silently treated as ``accept`` — the SDNet deviation the paper's
            case study discovered. Reference semantics use True.
        quantize_tcam: When True, ternary/range table patterns are
            quantized to power-of-two boundaries at match time — the
            Tofino-like TCAM deviation. Reference semantics use False.
        deparse_field_budget: When set, only the emit-order prefix
            within this header-field budget is deparsed — the
            Tofino-like deparse deviation. Reference semantics use None.

    The three deviation knobs default to spec-faithful values; targets
    reuse this engine with their own settings so every deviant datapath
    has exactly one tree-walking definition.
    """

    def __init__(
        self,
        program: P4Program,
        state: RuntimeState | None = None,
        honor_reject: bool = True,
        quantize_tcam: bool = False,
        deparse_field_budget: int | None = None,
    ):
        self.program = program
        self.state = state or RuntimeState.for_program(program)
        self.honor_reject = honor_reject
        self.quantize_tcam = quantize_tcam
        self._emit_prefix = program.deparser.emit_prefix(
            program.env, deparse_field_budget
        )

    # ------------------------------------------------------------------
    # Entry point
    # ------------------------------------------------------------------
    def process(
        self,
        wire: bytes,
        ingress_port: int = 0,
        timestamp: int = 0,
    ) -> PipelineResult:
        """Run one packet (wire bytes) through the full pipeline."""
        metadata = standard_metadata_defaults()
        metadata["ingress_port"] = ingress_port
        metadata["packet_length"] = truncate(len(wire), 16)
        metadata["ingress_global_timestamp"] = truncate(timestamp, 48)
        for name in self.program.env.metadata:
            metadata.setdefault(name, 0)
        trace = Trace()

        packet, payload, accepted = self.run_parser(wire, metadata, trace)
        if not accepted:
            return PipelineResult(Verdict.PARSER_REJECTED, None, metadata, trace)
        packet.payload = payload

        ctx = EvalContext(packet, metadata)
        try:
            self.run_control(self.program.ingress, ctx, trace)
            if not metadata["drop"]:
                self.run_control(self.program.egress, ctx, trace)
        except _ExitPipeline:
            pass

        if metadata["drop"]:
            trace.add("drop", "standard_metadata.drop set", stage="egress")
            return PipelineResult(Verdict.DROPPED, None, metadata, trace)

        out = self.deparse(packet, trace)
        trace.add("forward", f"egress_spec={metadata['egress_spec']}",
                  stage="deparser")
        metadata["egress_port"] = metadata["egress_spec"]
        return PipelineResult(Verdict.FORWARDED, out, metadata, trace)

    # ------------------------------------------------------------------
    # Parser
    # ------------------------------------------------------------------
    def run_parser(
        self, wire: bytes, metadata: dict[str, int], trace: Trace
    ) -> tuple[Packet, bytes, bool]:
        """Run the parser FSM; returns (packet, payload, accepted)."""
        parser: Parser = self.program.parser
        packet = Packet()
        offset = 0
        state_name = parser.start
        steps = 0

        def reject(code: int, why: str) -> tuple[Packet, bytes, bool]:
            metadata["parser_error"] = code
            if self.honor_reject:
                trace.add("parser_reject", why, stage="parser")
                return packet, wire[offset:], False
            # SDNet deviation: the reject state is not implemented; the
            # packet continues through the pipeline as if accepted.
            trace.add(
                "parser_reject_ignored",
                f"{why} (target does not implement reject)",
                stage="parser",
            )
            return packet, wire[offset:], True

        while True:
            if state_name == ACCEPT:
                trace.add("parser_accept", f"consumed {offset} bytes",
                          stage="parser")
                return packet, wire[offset:], True
            if state_name == REJECT:
                return reject(PARSER_ERROR_REJECT, "explicit reject")
            steps += 1
            if steps > MAX_PARSER_STEPS:
                return reject(
                    PARSER_ERROR_DEPTH_EXCEEDED,
                    f"parser exceeded {MAX_PARSER_STEPS} states",
                )
            state = parser.state(state_name)
            trace.add("parser_state", state_name, stage="parser")

            for header_name in state.extracts:
                spec = self.program.env.header(header_name)
                if len(wire) - offset < spec.byte_width:
                    return reject(
                        PARSER_ERROR_HEADER_TOO_SHORT,
                        f"truncated {header_name} at offset {offset}",
                    )
                header = Header.unpack(spec, wire[offset:])
                packet.append(header)
                offset += spec.byte_width
                trace.add("parser_extract", header_name, stage="parser")

            ctx = EvalContext(packet, metadata)
            if state.verify is not None:
                cond, error_code = state.verify
                if not cond.eval(ctx, self.program.env):
                    trace.add(
                        "parser_verify_fail",
                        f"verify failed in state {state_name}",
                        stage="parser",
                    )
                    result = reject(
                        error_code or PARSER_ERROR_VERIFY_FAILED,
                        f"verify failed in {state_name}",
                    )
                    if self.honor_reject:
                        return result
                    # Deviant target: fall through and keep parsing as if
                    # the verify had succeeded.

            transition = state.transition
            if not transition.is_select:
                state_name = transition.default
                continue
            keys = tuple(
                key.eval(ctx, self.program.env) for key in transition.keys
            )
            for case in transition.cases:
                if case.matches(keys):
                    state_name = case.next_state
                    break
            else:
                state_name = transition.default

    # ------------------------------------------------------------------
    # Controls
    # ------------------------------------------------------------------
    def run_control(
        self, control: Control, ctx: EvalContext, trace: Trace
    ) -> None:
        self.exec_stmt(control, control.body, ctx, trace)

    def exec_stmt(
        self, control: Control, stmt: Stmt | None, ctx: EvalContext,
        trace: Trace,
    ) -> None:
        if stmt is None:
            return
        env = self.program.env
        if isinstance(stmt, Seq):
            for child in stmt.body:
                self.exec_stmt(control, child, ctx, trace)
            return
        if isinstance(stmt, If):
            branch = stmt.then if stmt.cond.eval(ctx, env) else stmt.otherwise
            self.exec_stmt(control, branch, ctx, trace)
            return
        if isinstance(stmt, ApplyTable):
            self.apply_table(control, stmt.table, ctx, trace)
            return
        if isinstance(stmt, IfHit):
            hit = self.apply_table(control, stmt.table, ctx, trace)
            self.exec_stmt(
                control, stmt.then if hit else stmt.otherwise, ctx, trace
            )
            return
        if isinstance(stmt, Call):
            action = control.action(stmt.action)
            self.run_action(control.name, action, stmt.args, ctx, trace)
            return
        raise P4RuntimeError(f"unknown statement type {type(stmt).__name__}")

    def apply_table(
        self, control: Control, table_name: str, ctx: EvalContext,
        trace: Trace,
    ) -> bool:
        table = control.table(table_name)
        result = table.lookup(
            ctx, self.program.env, quantize=self.quantize_tcam
        )
        trace.add(
            "table_apply",
            f"{table_name}: {'hit' if result.hit else 'miss'} -> "
            f"{result.action}",
            stage=control.name,
        )
        action = table.action(result.action)
        self.run_action(
            control.name, action, result.action_data, ctx, trace
        )
        return result.hit

    # ------------------------------------------------------------------
    # Actions and primitives
    # ------------------------------------------------------------------
    def run_action(
        self,
        stage: str,
        action: Action,
        args: tuple[int, ...],
        ctx: EvalContext,
        trace: Trace,
    ) -> None:
        binding = action.bind(args)
        trace.add("action", action.name, stage=stage)
        for primitive in action.body:
            self.run_primitive(stage, primitive, binding, ctx, trace)

    def run_primitive(
        self,
        stage: str,
        primitive: Primitive,
        binding: dict[str, int],
        ctx: EvalContext,
        trace: Trace,
    ) -> None:
        env = self.program.env
        packet, metadata = ctx.packet, ctx.metadata

        if isinstance(primitive, NoOp):
            return
        if isinstance(primitive, SetField):
            value = bind_expr(primitive.value, binding).eval(ctx, env)
            width = env.field_width(primitive.header, primitive.field)
            header = packet.get_or_none(primitive.header)
            if header is None or not header.valid:
                raise P4RuntimeError(
                    f"write to field of invalid header {primitive.header!r}"
                )
            header[primitive.field] = truncate(value, width)
            trace.add(
                "primitive",
                f"set {primitive.header}.{primitive.field}="
                f"{truncate(value, width):#x}",
                stage=stage,
            )
            return
        if isinstance(primitive, SetMeta):
            value = bind_expr(primitive.value, binding).eval(ctx, env)
            width = env.metadata_width(primitive.name)
            metadata[primitive.name] = truncate(value, width)
            trace.add(
                "primitive",
                f"set meta {primitive.name}={metadata[primitive.name]:#x}",
                stage=stage,
            )
            return
        if isinstance(primitive, AddHeader):
            spec = env.header(primitive.header)
            existing = packet.get_or_none(primitive.header)
            if existing is not None:
                existing.valid = True
            else:
                packet.push(Header(spec), after=primitive.after)
            trace.add("primitive", f"add_header {primitive.header}",
                      stage=stage)
            return
        if isinstance(primitive, RemoveHeader):
            header = packet.get_or_none(primitive.header)
            if header is not None:
                header.valid = False
            trace.add("primitive", f"remove_header {primitive.header}",
                      stage=stage)
            return
        if isinstance(primitive, Drop):
            metadata["drop"] = 1
            trace.add("primitive", "drop", stage=stage)
            return
        if isinstance(primitive, Forward):
            port = bind_expr(primitive.port, binding).eval(ctx, env)
            metadata["egress_spec"] = truncate(port, 9)
            metadata["drop"] = 0
            trace.add("primitive", f"forward port={port}", stage=stage)
            return
        if isinstance(primitive, CountPacket):
            index = bind_expr(primitive.index, binding).eval(ctx, env)
            cells = self.state.counters.get(primitive.name)
            if cells is None:
                raise P4RuntimeError(
                    f"undeclared counter {primitive.name!r}"
                )
            if not 0 <= index < len(cells):
                raise P4RuntimeError(
                    f"counter {primitive.name!r} index {index} out of "
                    f"range [0, {len(cells)})"
                )
            cells[index] += 1
            trace.add("primitive", f"count {primitive.name}[{index}]",
                      stage=stage)
            return
        if isinstance(primitive, RegisterWrite):
            index = bind_expr(primitive.index, binding).eval(ctx, env)
            value = bind_expr(primitive.value, binding).eval(ctx, env)
            cells = self.state.registers.get(primitive.name)
            if cells is None:
                raise P4RuntimeError(
                    f"undeclared register {primitive.name!r}"
                )
            if not 0 <= index < len(cells):
                raise P4RuntimeError(
                    f"register {primitive.name!r} index {index} out of "
                    f"range [0, {len(cells)})"
                )
            width = self.state.register_widths[primitive.name]
            cells[index] = truncate(value, width)
            trace.add(
                "primitive",
                f"reg_write {primitive.name}[{index}]={cells[index]:#x}",
                stage=stage,
            )
            return
        if isinstance(primitive, RegisterRead):
            index = bind_expr(primitive.index, binding).eval(ctx, env)
            cells = self.state.registers.get(primitive.name)
            if cells is None:
                raise P4RuntimeError(
                    f"undeclared register {primitive.name!r}"
                )
            if not 0 <= index < len(cells):
                raise P4RuntimeError(
                    f"register {primitive.name!r} index {index} out of "
                    f"range [0, {len(cells)})"
                )
            width = env.metadata_width(primitive.into)
            metadata[primitive.into] = truncate(cells[index], width)
            trace.add(
                "primitive",
                f"reg_read {primitive.name}[{index}] -> {primitive.into}",
                stage=stage,
            )
            return
        if isinstance(primitive, HashField):
            values = tuple(
                bind_expr(expr, binding).eval(ctx, env)
                for expr in primitive.inputs
            )
            width = env.metadata_width(primitive.into)
            metadata[primitive.into] = truncate(
                stable_hash(values, primitive.modulo), width
            )
            trace.add("primitive", f"hash -> {primitive.into}", stage=stage)
            return
        if isinstance(primitive, Exit):
            trace.add("primitive", "exit", stage=stage)
            raise _ExitPipeline()
        raise P4RuntimeError(
            f"unknown primitive {type(primitive).__name__}"
        )

    # ------------------------------------------------------------------
    # Deparser
    # ------------------------------------------------------------------
    def deparse(self, packet: Packet, trace: Trace) -> Packet:
        """Re-serialize per the deparser's emit order.

        A deviant ``deparse_field_budget`` restricts emission to the
        budgeted prefix (:meth:`repro.p4.deparser.Deparser.emit_prefix`).
        """
        emitted: list[Header] = []
        for name in self._emit_prefix:
            header = packet.get_or_none(name)
            if header is not None and header.valid:
                emitted.append(header)
                trace.add("deparse", name, stage="deparser")
        out = Packet(
            headers=[h.copy() for h in emitted],
            payload=packet.payload,
            metadata=dict(packet.metadata),
        )
        return out
