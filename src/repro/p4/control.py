"""Control-flow IR for ingress/egress blocks.

A control block is a tree of statements: table applications, conditionals
on expressions or on the result of a table application, direct action
calls, and sequences. This matches the structural subset of P4₁₆ control
blocks that map onto fixed match-action pipelines.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..exceptions import P4ValidationError
from .actions import Action
from .expr import Expr
from .table import Table

__all__ = [
    "Stmt",
    "ApplyTable",
    "If",
    "IfHit",
    "Call",
    "Seq",
    "Control",
]


class Stmt:
    """Base class of control statements."""


@dataclass(frozen=True)
class ApplyTable(Stmt):
    """``table.apply()``."""

    table: str


@dataclass(frozen=True)
class If(Stmt):
    """``if (cond) { then } else { otherwise }``."""

    cond: Expr
    then: "Stmt"
    otherwise: "Stmt | None" = None


@dataclass(frozen=True)
class IfHit(Stmt):
    """``if (table.apply().hit) { then } else { otherwise }``.

    The table is applied exactly once; the branch depends on whether an
    installed entry matched.
    """

    table: str
    then: "Stmt | None" = None
    otherwise: "Stmt | None" = None


@dataclass(frozen=True)
class Call(Stmt):
    """Direct action invocation with literal arguments."""

    action: str
    args: tuple[int, ...] = ()


@dataclass(frozen=True)
class Seq(Stmt):
    """A sequence of statements executed in order."""

    body: tuple[Stmt, ...]

    @classmethod
    def of(cls, *stmts: Stmt | None) -> "Seq":
        return cls(tuple(s for s in stmts if s is not None))


@dataclass
class Control:
    """A named control block: local tables, actions, and a body."""

    name: str
    tables: dict[str, Table] = field(default_factory=dict)
    actions: dict[str, Action] = field(default_factory=dict)
    body: Stmt = field(default_factory=lambda: Seq(()))

    def declare_table(self, table: Table) -> Table:
        if table.name in self.tables:
            raise P4ValidationError(
                f"control {self.name!r} already has table {table.name!r}"
            )
        self.tables[table.name] = table
        return table

    def declare_action(self, action: Action) -> Action:
        if action.name in self.actions and self.actions[action.name] is not action:
            raise P4ValidationError(
                f"control {self.name!r} already has action {action.name!r}"
            )
        self.actions[action.name] = action
        return action

    def table(self, name: str) -> Table:
        try:
            return self.tables[name]
        except KeyError:
            raise P4ValidationError(
                f"control {self.name!r} has no table {name!r}"
            ) from None

    def action(self, name: str) -> Action:
        try:
            return self.actions[name]
        except KeyError:
            raise P4ValidationError(
                f"control {self.name!r} has no action {name!r}"
            ) from None

    def applied_tables(self) -> list[str]:
        """Names of tables applied anywhere in the body, in program order."""
        order: list[str] = []

        def walk(stmt: Stmt | None) -> None:
            if stmt is None:
                return
            if isinstance(stmt, ApplyTable):
                order.append(stmt.table)
            elif isinstance(stmt, IfHit):
                order.append(stmt.table)
                walk(stmt.then)
                walk(stmt.otherwise)
            elif isinstance(stmt, If):
                walk(stmt.then)
                walk(stmt.otherwise)
            elif isinstance(stmt, Seq):
                for child in stmt.body:
                    walk(child)

        walk(self.body)
        return order

    def max_depth(self) -> int:
        """Longest chain of dependent table applications (pipeline depth)."""

        def depth(stmt: Stmt | None) -> int:
            if stmt is None:
                return 0
            if isinstance(stmt, ApplyTable):
                return 1
            if isinstance(stmt, IfHit):
                return 1 + max(depth(stmt.then), depth(stmt.otherwise))
            if isinstance(stmt, If):
                return max(depth(stmt.then), depth(stmt.otherwise))
            if isinstance(stmt, Seq):
                return sum(depth(child) for child in stmt.body)
            return 0

        return depth(self.body)
