"""Type declarations for P4-like programs.

A program's type environment is the set of header layouts it may parse or
emit plus the standard per-packet metadata ("intrinsic metadata" in real
architectures). Header layouts are shared with the concrete packet model —
see :class:`repro.packet.fields.HeaderSpec`.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..exceptions import P4TypeError
from ..packet.fields import HeaderSpec

__all__ = ["STANDARD_METADATA", "TypeEnv", "standard_metadata_defaults"]

#: Standard metadata fields carried alongside each packet through the
#: pipeline, modelled on the v1model/simple_sume_switch conventions.
STANDARD_METADATA: dict[str, int] = {
    "ingress_port": 9,
    "egress_spec": 9,
    "egress_port": 9,
    "packet_length": 16,
    "enq_timestamp": 48,
    "ingress_global_timestamp": 48,
    "mcast_grp": 16,
    "drop": 1,
    "parser_error": 8,
}

#: ``parser_error`` codes (subset of P4₁₆ core errors).
PARSER_ERROR_NONE = 0
PARSER_ERROR_REJECT = 1
PARSER_ERROR_HEADER_TOO_SHORT = 2
PARSER_ERROR_VERIFY_FAILED = 3
PARSER_ERROR_DEPTH_EXCEEDED = 4


def standard_metadata_defaults() -> dict[str, int]:
    """A fresh all-zero standard metadata mapping."""
    return {name: 0 for name in STANDARD_METADATA}


@dataclass
class TypeEnv:
    """The set of header layouts and metadata fields a program may use."""

    headers: dict[str, HeaderSpec] = field(default_factory=dict)
    metadata: dict[str, int] = field(
        default_factory=lambda: dict(STANDARD_METADATA)
    )

    def declare_header(self, spec: HeaderSpec) -> HeaderSpec:
        """Register a header layout; re-declaring identically is a no-op."""
        existing = self.headers.get(spec.name)
        if existing is not None and existing != spec:
            raise P4TypeError(
                f"conflicting declarations for header {spec.name!r}"
            )
        self.headers[spec.name] = spec
        return spec

    def declare_metadata(self, name: str, width: int) -> None:
        """Register a user metadata field of ``width`` bits."""
        existing = self.metadata.get(name)
        if existing is not None and existing != width:
            raise P4TypeError(
                f"conflicting widths for metadata {name!r}: "
                f"{existing} vs {width}"
            )
        self.metadata[name] = width

    def header(self, name: str) -> HeaderSpec:
        try:
            return self.headers[name]
        except KeyError:
            raise P4TypeError(f"undeclared header {name!r}") from None

    def field_width(self, header: str, fieldname: str) -> int:
        return self.header(header).field(fieldname).width

    def metadata_width(self, name: str) -> int:
        try:
            return self.metadata[name]
        except KeyError:
            raise P4TypeError(f"undeclared metadata field {name!r}") from None

    def copy(self) -> "TypeEnv":
        return TypeEnv(dict(self.headers), dict(self.metadata))
