"""A standard library of realistic data-plane programs.

These programs are the workloads used throughout the tests, examples and
benchmark harness. They exercise every IR construct: select parsers with
``verify``/``reject``, exact/LPM/ternary tables, header push/pop, counters,
registers and hashing.

Each factory returns a fresh, validated :class:`~repro.p4.program.P4Program`
whose tables start empty — populate them through the control plane
(:mod:`repro.controlplane`).
"""

from __future__ import annotations

from ..packet.headers import (
    ETHERNET,
    ETHERTYPE_IPV4,
    ETHERTYPE_MPLS,
    ETHERTYPE_VLAN,
    IPPROTO_TCP,
    IPPROTO_UDP,
    IPV4,
    MPLS,
    TCP,
    UDP,
    VLAN,
)
from .actions import (
    AddHeader,
    CountPacket,
    Drop,
    Forward,
    HashField,
    Param,
    RegisterWrite,
    RemoveHeader,
    SetField,
    SetMeta,
)
from .control import ApplyTable, Call, If, Seq
from .dsl import ProgramBuilder
from .expr import Const, IsValid, fld, meta
from .parser import ACCEPT, REJECT
from .program import P4Program
from .table import MatchKind
from .types import PARSER_ERROR_VERIFY_FAILED

__all__ = [
    "l2_switch",
    "ipv4_router",
    "acl_firewall",
    "mpls_tunnel",
    "strict_parser",
    "port_counter",
    "ecmp_load_balancer",
    "vlan_forwarder",
    "reflector",
    "PROGRAMS",
]


def l2_switch(table_size: int = 1024) -> P4Program:
    """A learning-style L2 switch: exact-match on destination MAC.

    Misses invoke the default ``broadcast`` action which floods to the
    configured broadcast port group (modelled as one port here).
    """
    b = ProgramBuilder("l2_switch")
    b.header(ETHERNET)
    b.parser_state("start", extracts=["ethernet"]).accept()

    dmac = b.ingress.table("dmac")
    dmac.key(fld("ethernet", "dst_addr"), MatchKind.EXACT, "dst_mac")
    dmac.action("forward", [("port", 9)], [Forward(Param("port", 9))])
    dmac.action("broadcast", [], [Forward(Const(0x1FF, 9))])
    dmac.action("drop_packet", [], [Drop()])
    dmac.default("broadcast").size(table_size)
    b.ingress.apply("dmac")

    b.emit("ethernet")
    return b.build()


def ipv4_router(lpm_size: int = 512) -> P4Program:
    """An IPv4 router: LPM on dst address, TTL decrement, MAC rewrite.

    The parser *rejects* packets whose IPv4 version is not 4 or whose IHL
    is below 5 — this is the program family whose behaviour diverges on
    targets that do not implement the ``reject`` state.
    """
    b = ProgramBuilder("ipv4_router")
    b.header(ETHERNET)
    b.header(IPV4)

    b.parser_state("start", extracts=["ethernet"]).select(
        fld("ethernet", "ether_type"),
        [(ETHERTYPE_IPV4, "parse_ipv4")],
        default=ACCEPT,
    )
    b.parser_state("parse_ipv4", extracts=["ipv4"]).verify(
        fld("ipv4", "version").eq(4).land(fld("ipv4", "ihl").ge(5)),
        PARSER_ERROR_VERIFY_FAILED,
    ).accept()

    routes = b.ingress.table("ipv4_lpm")
    routes.key(fld("ipv4", "dst_addr"), MatchKind.LPM, "dst_ip")
    routes.action(
        "route",
        [("next_hop_mac", 48), ("port", 9)],
        [
            SetField("ethernet", "dst_addr", Param("next_hop_mac", 48)),
            SetField("ipv4", "ttl", fld("ipv4", "ttl") - 1),
            Forward(Param("port", 9)),
        ],
    )
    routes.action("drop_packet", [], [Drop()])
    routes.default("drop_packet").size(lpm_size)

    b.ingress.stmt(
        If(
            fld("ethernet", "ether_type").eq(ETHERTYPE_IPV4),
            Seq.of(
                If(
                    fld("ipv4", "ttl").le(1),
                    Call("ttl_expired"),
                    ApplyTable("ipv4_lpm"),
                )
            ),
        )
    )
    b.ingress.action("ttl_expired", [], [Drop()])

    b.emit("ethernet", "ipv4")
    return b.build()


def acl_firewall(acl_size: int = 256, fwd_size: int = 256) -> P4Program:
    """A stateless ACL firewall over the 5-tuple, then L2 forwarding.

    The ACL uses ternary matching with priorities; a deny entry drops,
    otherwise forwarding proceeds by destination MAC.
    """
    b = ProgramBuilder("acl_firewall")
    b.header(ETHERNET)
    b.header(IPV4)
    b.header(TCP)
    b.header(UDP)
    b.metadata("l4_src_port", 16)
    b.metadata("l4_dst_port", 16)

    b.parser_state("start", extracts=["ethernet"]).select(
        fld("ethernet", "ether_type"),
        [(ETHERTYPE_IPV4, "parse_ipv4")],
        default=ACCEPT,
    )
    b.parser_state("parse_ipv4", extracts=["ipv4"]).select(
        fld("ipv4", "protocol"),
        [(IPPROTO_TCP, "parse_tcp"), (IPPROTO_UDP, "parse_udp")],
        default=ACCEPT,
    )
    b.parser_state("parse_tcp", extracts=["tcp"]).accept()
    b.parser_state("parse_udp", extracts=["udp"]).accept()

    b.ingress.action(
        "set_tcp_ports",
        [],
        [
            SetMeta("l4_src_port", fld("tcp", "src_port")),
            SetMeta("l4_dst_port", fld("tcp", "dst_port")),
        ],
    )
    b.ingress.action(
        "set_udp_ports",
        [],
        [
            SetMeta("l4_src_port", fld("udp", "src_port")),
            SetMeta("l4_dst_port", fld("udp", "dst_port")),
        ],
    )

    acl = b.ingress.table("acl")
    acl.key(fld("ipv4", "src_addr"), MatchKind.TERNARY, "src_ip")
    acl.key(fld("ipv4", "dst_addr"), MatchKind.TERNARY, "dst_ip")
    acl.key(fld("ipv4", "protocol"), MatchKind.TERNARY, "proto")
    acl.key(meta("l4_src_port"), MatchKind.TERNARY, "sport")
    acl.key(meta("l4_dst_port"), MatchKind.TERNARY, "dport")
    acl.action("deny", [], [Drop()])
    acl.action("allow", [], [])
    acl.default("allow").size(acl_size)

    fwd = b.ingress.table("fwd")
    fwd.key(fld("ethernet", "dst_addr"), MatchKind.EXACT, "dst_mac")
    fwd.action("forward", [("port", 9)], [Forward(Param("port", 9))])
    fwd.action("drop_packet", [], [Drop()])
    fwd.default("drop_packet").size(fwd_size)


    b.ingress.stmt(
        If(
            IsValid("ipv4"),
            Seq.of(
                If(IsValid("tcp"), Call("set_tcp_ports")),
                If(IsValid("udp"), Call("set_udp_ports")),
                ApplyTable("acl"),
            ),
        )
    )
    b.ingress.when(meta("drop").eq(0), ApplyTable("fwd"))

    b.emit("ethernet", "ipv4", "tcp", "udp")
    return b.build()


def mpls_tunnel(size: int = 128) -> P4Program:
    """An MPLS ingress/egress LER: push a label by FEC, pop at egress."""
    b = ProgramBuilder("mpls_tunnel")
    b.header(ETHERNET)
    b.header(MPLS)
    b.header(IPV4)

    b.parser_state("start", extracts=["ethernet"]).select(
        fld("ethernet", "ether_type"),
        [
            (ETHERTYPE_IPV4, "parse_ipv4"),
            (ETHERTYPE_MPLS, "parse_mpls"),
        ],
        default=ACCEPT,
    )
    b.parser_state("parse_mpls", extracts=["mpls"]).goto("parse_ipv4")
    b.parser_state("parse_ipv4", extracts=["ipv4"]).accept()

    push = b.ingress.table("fec")
    push.key(fld("ipv4", "dst_addr"), MatchKind.LPM, "dst_ip")
    push.action(
        "push_label",
        [("label", 20), ("port", 9)],
        [
            AddHeader("mpls", after="ethernet"),
            SetField("mpls", "label", Param("label", 20)),
            SetField("mpls", "bos", Const(1, 1)),
            SetField("mpls", "ttl", fld("ipv4", "ttl")),
            SetField("ethernet", "ether_type", Const(ETHERTYPE_MPLS, 16)),
            Forward(Param("port", 9)),
        ],
    )
    push.action("drop_packet", [], [Drop()])
    push.default("drop_packet").size(size)

    pop = b.ingress.table("label_pop")
    pop.key(fld("mpls", "label"), MatchKind.EXACT, "label")
    pop.action(
        "pop_label",
        [("port", 9)],
        [
            RemoveHeader("mpls"),
            SetField("ethernet", "ether_type", Const(ETHERTYPE_IPV4, 16)),
            Forward(Param("port", 9)),
        ],
    )
    pop.action("drop_packet", [], [Drop()])
    pop.default("drop_packet").size(size)


    b.ingress.stmt(
        If(
            IsValid("mpls"),
            ApplyTable("label_pop"),
            If(IsValid("ipv4"), ApplyTable("fec")),
        )
    )

    b.emit("ethernet", "mpls", "ipv4")
    return b.build()


def strict_parser(forward_port: int = 1) -> P4Program:
    """The reject-state workload from the paper's §4 case study.

    The parser accepts only well-formed IPv4: anything with an unknown
    EtherType, a bad IP version, or a bad IHL transitions to ``reject``
    and must be dropped. The control simply forwards accepted packets to
    ``forward_port``.

    On a spec-compliant target, malformed packets never leave the device.
    On the SDNet-like target — which does not implement ``reject`` — every
    malformed packet is forwarded to the next hop, reproducing the severe
    bug the paper reports.
    """
    b = ProgramBuilder("strict_parser")
    b.header(ETHERNET)
    b.header(IPV4)

    b.parser_state("start", extracts=["ethernet"]).select(
        fld("ethernet", "ether_type"),
        [(ETHERTYPE_IPV4, "parse_ipv4")],
        default=REJECT,
    )
    b.parser_state("parse_ipv4", extracts=["ipv4"]).verify(
        fld("ipv4", "version").eq(4).land(fld("ipv4", "ihl").ge(5)),
        PARSER_ERROR_VERIFY_FAILED,
    ).accept()

    b.ingress.action(
        "to_port", [], [Forward(Const(forward_port, 9))]
    )
    b.ingress.call("to_port")

    b.emit("ethernet", "ipv4")
    return b.build()


def port_counter(num_ports: int = 16) -> P4Program:
    """Telemetry program: counts packets and bytes per ingress port.

    Exercises counters and registers — the state NetDebug's status
    monitoring use case reads through the internal interface.
    """
    b = ProgramBuilder("port_counter")
    b.header(ETHERNET)
    b.counter("per_port_pkts", num_ports)
    b.register("last_len", num_ports, 16)

    b.parser_state("start", extracts=["ethernet"]).accept()

    b.ingress.action(
        "account",
        [],
        [
            CountPacket("per_port_pkts", meta("ingress_port")),
            RegisterWrite(
                "last_len", meta("ingress_port"), meta("packet_length")
            ),
            Forward(Const(0, 9)),
        ],
    )
    b.ingress.call("account")

    b.emit("ethernet")
    return b.build()


def ecmp_load_balancer(group_size: int = 4, size: int = 64) -> P4Program:
    """An ECMP load balancer hashing the 5-tuple across a next-hop group."""
    b = ProgramBuilder("ecmp_lb")
    b.header(ETHERNET)
    b.header(IPV4)
    b.header(UDP)
    b.metadata("ecmp_select", 16)

    b.parser_state("start", extracts=["ethernet"]).select(
        fld("ethernet", "ether_type"),
        [(ETHERTYPE_IPV4, "parse_ipv4")],
        default=ACCEPT,
    )
    b.parser_state("parse_ipv4", extracts=["ipv4"]).select(
        fld("ipv4", "protocol"),
        [(IPPROTO_UDP, "parse_udp")],
        default=ACCEPT,
    )
    b.parser_state("parse_udp", extracts=["udp"]).accept()

    b.ingress.action(
        "compute_hash",
        [],
        [
            HashField(
                "ecmp_select",
                (
                    fld("ipv4", "src_addr"),
                    fld("ipv4", "dst_addr"),
                    fld("ipv4", "protocol"),
                    fld("udp", "src_port"),
                    fld("udp", "dst_port"),
                ),
                group_size,
            )
        ],
    )

    group = b.ingress.table("ecmp_group")
    group.key(meta("ecmp_select"), MatchKind.EXACT, "bucket")
    group.action(
        "to_nexthop",
        [("next_hop_mac", 48), ("port", 9)],
        [
            SetField("ethernet", "dst_addr", Param("next_hop_mac", 48)),
            Forward(Param("port", 9)),
        ],
    )
    group.action("drop_packet", [], [Drop()])
    group.default("drop_packet").size(size)


    b.ingress.stmt(
        If(
            IsValid("udp"),
            Seq.of(Call("compute_hash"), ApplyTable("ecmp_group")),
            Call("drop_all"),
        )
    )
    b.ingress.action("drop_all", [], [Drop()])

    b.emit("ethernet", "ipv4", "udp")
    return b.build()


def vlan_forwarder(size: int = 256) -> P4Program:
    """Forwarding by (VLAN id, dst MAC); untagged traffic is dropped."""
    b = ProgramBuilder("vlan_forwarder")
    b.header(ETHERNET)
    b.header(VLAN)

    b.parser_state("start", extracts=["ethernet"]).select(
        fld("ethernet", "ether_type"),
        [(ETHERTYPE_VLAN, "parse_vlan")],
        default="no_tag",
    )
    b.parser_state("parse_vlan", extracts=["vlan"]).accept()
    b.parser_state("no_tag").accept()

    fwd = b.ingress.table("vlan_fwd")
    fwd.key(fld("vlan", "vid"), MatchKind.EXACT, "vid")
    fwd.key(fld("ethernet", "dst_addr"), MatchKind.EXACT, "dst_mac")
    fwd.action("forward", [("port", 9)], [Forward(Param("port", 9))])
    fwd.action("drop_packet", [], [Drop()])
    fwd.default("drop_packet").size(size)


    b.ingress.stmt(
        If(IsValid("vlan"), ApplyTable("vlan_fwd"), Call("drop_untagged"))
    )
    b.ingress.action("drop_untagged", [], [Drop()])

    b.emit("ethernet", "vlan")
    return b.build()


def reflector() -> P4Program:
    """Bounces every packet back out its ingress port with MACs swapped.

    A minimal program useful for loopback-style tests of the harness
    itself (and as a known-good DUT in checker tests).
    """
    b = ProgramBuilder("reflector")
    b.header(ETHERNET)
    b.metadata("tmp_mac", 48)

    b.parser_state("start", extracts=["ethernet"]).accept()

    b.ingress.action(
        "bounce",
        [],
        [
            SetMeta("tmp_mac", fld("ethernet", "dst_addr")),
            SetField("ethernet", "dst_addr", fld("ethernet", "src_addr")),
            SetField("ethernet", "src_addr", meta("tmp_mac")),
            Forward(meta("ingress_port")),
        ],
    )
    b.ingress.call("bounce")

    b.emit("ethernet")
    return b.build()


#: Registry of all stdlib programs, used by suites that sweep programs.
#: The stdlib_ext stateful/telemetry programs register below (deferred
#: import: stdlib_ext builds on the same DSL modules, never on this
#: registry) so campaign matrices can sweep them like any core program.
PROGRAMS: dict[str, object] = {
    "l2_switch": l2_switch,
    "ipv4_router": ipv4_router,
    "acl_firewall": acl_firewall,
    "mpls_tunnel": mpls_tunnel,
    "strict_parser": strict_parser,
    "port_counter": port_counter,
    "ecmp_load_balancer": ecmp_load_balancer,
    "vlan_forwarder": vlan_forwarder,
    "reflector": reflector,
}


def _register_ext_programs() -> None:
    from .stdlib_ext import int_telemetry, stateful_firewall

    PROGRAMS["stateful_firewall"] = stateful_firewall
    PROGRAMS["int_telemetry"] = int_telemetry


_register_ext_programs()
