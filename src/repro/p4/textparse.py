"""A textual P4-like frontend.

Parses a compact, P4-flavoured text format into the same IR the Python
DSL produces, so test and validation programs can be written as source
files — the "fully programmable through P4" interface of the paper. The
grammar is a pragmatic subset:

.. code-block:: none

    header ethernet;                 # import a standard header by name
    header link { next: 8; value: 8; }
    metadata scratch: 16;
    counter hits[16];
    register last[8]: 32;

    parser start {
        extract(ethernet);
        select (ethernet.ether_type) {
            0x0800: parse_ipv4;
            default: accept;         # or reject, or a state name
        }
    }
    parser parse_ipv4 {
        extract(ipv4);
        verify(ipv4.version == 4 and ipv4.ihl >= 5, 3);
        goto accept;
    }

    action route(next_hop: 48, port: 9) {
        set(ethernet.dst_addr, next_hop);
        set(ipv4.ttl, ipv4.ttl - 1);
        forward(port);
    }

    table ipv4_lpm {
        key: ipv4.dst_addr lpm;
        actions: route, drop_all;
        default: drop_all;
        size: 512;
    }

    control ingress {
        if (ethernet.ether_type == 0x0800) { apply(ipv4_lpm); }
        else { call(drop_all); }
    }

    deparser { emit(ethernet); emit(ipv4); }

``#`` starts a comment. Expressions support the IR's operators with C
precedence, ``meta.name`` metadata references, ``valid(header)`` and
numeric literals in decimal or hex.
"""

from __future__ import annotations

import re
from dataclasses import dataclass

from ..exceptions import P4ValidationError
from ..packet.fields import HeaderSpec
from ..packet.headers import STANDARD_HEADERS
from .actions import (
    Action,
    AddHeader,
    CountPacket,
    Drop,
    Exit,
    Forward,
    HashField,
    NoOp,
    Param,
    Primitive,
    RegisterRead,
    RegisterWrite,
    RemoveHeader,
    SetField,
    SetMeta,
)
from .control import ApplyTable, Call, If, IfHit, Seq, Stmt
from .expr import BinOp, Const, Expr, FieldRef, IsValid, MetaRef, UnOp
from .parser import REJECT, ParserState, Transition
from .program import P4Program
from .table import MatchKind, Table, TableKey
from .types import TypeEnv

__all__ = ["parse_program", "parse_program_file", "ParseError"]


class ParseError(P4ValidationError):
    """A syntax error in P4-like source text, with line information."""


# ----------------------------------------------------------------------
# Tokenizer
# ----------------------------------------------------------------------
_TOKEN_RE = re.compile(
    r"""
    (?P<ws>\s+)
  | (?P<comment>\#[^\n]*)
  | (?P<hex>0[xX][0-9a-fA-F]+)
  | (?P<num>\d+)
  | (?P<id>[A-Za-z_][A-Za-z_0-9]*)
  | (?P<op><<|>>|==|!=|<=|>=|[-+*&|^~!<>])
  | (?P<punct>[{}();:,.\[\]])
    """,
    re.VERBOSE,
)


@dataclass(frozen=True)
class Token:
    kind: str  # "num", "id", "op", "punct", "eof"
    text: str
    line: int


def tokenize(source: str) -> list[Token]:
    tokens: list[Token] = []
    line = 1
    position = 0
    while position < len(source):
        match = _TOKEN_RE.match(source, position)
        if match is None:
            raise ParseError(
                f"line {line}: unexpected character {source[position]!r}"
            )
        position = match.end()
        kind = match.lastgroup
        text = match.group()
        if kind == "ws":
            line += text.count("\n")
            continue
        if kind == "comment":
            continue
        if kind == "hex":
            tokens.append(Token("num", text, line))
        else:
            tokens.append(Token(kind, text, line))
    tokens.append(Token("eof", "", line))
    return tokens


# ----------------------------------------------------------------------
# Parser
# ----------------------------------------------------------------------
_BINARY_PRECEDENCE = [
    ("or",),
    ("and",),
    ("|",),
    ("^",),
    ("&",),
    ("==", "!="),
    ("<", "<=", ">", ">="),
    ("<<", ">>"),
    ("+", "-"),
    ("*",),
]


class _Parser:
    def __init__(self, source: str):
        self.tokens = tokenize(source)
        self.index = 0
        self.program = P4Program(name="text", env=TypeEnv())
        self._params: dict[str, Param] = {}  # in-scope action params
        self._pending_actions: dict[str, Action] = {}

    # -- token helpers --------------------------------------------------
    def peek(self) -> Token:
        return self.tokens[self.index]

    def advance(self) -> Token:
        token = self.tokens[self.index]
        self.index += 1
        return token

    def expect(self, text: str) -> Token:
        token = self.advance()
        if token.text != text:
            raise ParseError(
                f"line {token.line}: expected {text!r}, got "
                f"{token.text or 'end of input'!r}"
            )
        return token

    def expect_kind(self, kind: str) -> Token:
        token = self.advance()
        if token.kind != kind:
            raise ParseError(
                f"line {token.line}: expected {kind}, got "
                f"{token.text!r}"
            )
        return token

    def accept(self, text: str) -> bool:
        if self.peek().text == text:
            self.advance()
            return True
        return False

    # -- top level --------------------------------------------------------
    def parse(self, name: str) -> P4Program:
        self.program.name = name
        while self.peek().kind != "eof":
            keyword = self.expect_kind("id").text
            if keyword == "header":
                self._header_decl()
            elif keyword == "metadata":
                self._metadata_decl()
            elif keyword == "counter":
                self._counter_decl()
            elif keyword == "register":
                self._register_decl()
            elif keyword == "parser":
                self._parser_state()
            elif keyword == "action":
                self._action_decl()
            elif keyword == "table":
                self._table_decl()
            elif keyword == "control":
                self._control_decl()
            elif keyword == "deparser":
                self._deparser_decl()
            else:
                raise ParseError(
                    f"line {self.peek().line}: unknown declaration "
                    f"{keyword!r}"
                )
        self._attach_pending_actions()
        return self.program

    # -- declarations ----------------------------------------------------
    def _header_decl(self) -> None:
        name = self.expect_kind("id").text
        if self.accept(";"):
            spec = STANDARD_HEADERS.get(name)
            if spec is None:
                raise ParseError(
                    f"unknown standard header {name!r}; declare fields "
                    "with 'header name { field: width; ... }'"
                )
            self.program.env.declare_header(spec)
            return
        self.expect("{")
        fields: list[tuple[str, int]] = []
        while not self.accept("}"):
            field_name = self.expect_kind("id").text
            self.expect(":")
            width = int(self.expect_kind("num").text, 0)
            self.expect(";")
            fields.append((field_name, width))
        self.program.env.declare_header(HeaderSpec.build(name, *fields))

    def _metadata_decl(self) -> None:
        name = self.expect_kind("id").text
        self.expect(":")
        width = int(self.expect_kind("num").text, 0)
        self.expect(";")
        self.program.env.declare_metadata(name, width)

    def _counter_decl(self) -> None:
        name = self.expect_kind("id").text
        self.expect("[")
        size = int(self.expect_kind("num").text, 0)
        self.expect("]")
        self.expect(";")
        self.program.declare_counter(name, size)

    def _register_decl(self) -> None:
        name = self.expect_kind("id").text
        self.expect("[")
        size = int(self.expect_kind("num").text, 0)
        self.expect("]")
        self.expect(":")
        width = int(self.expect_kind("num").text, 0)
        self.expect(";")
        self.program.declare_register(name, size, width)

    # -- parser states ------------------------------------------------------
    def _parser_state(self) -> None:
        name = self.expect_kind("id").text
        state = ParserState(name)
        self.program.parser.add_state(state)
        self.expect("{")
        while not self.accept("}"):
            keyword = self.expect_kind("id").text
            if keyword == "extract":
                self.expect("(")
                state.extracts.append(self.expect_kind("id").text)
                self.expect(")")
                self.expect(";")
            elif keyword == "verify":
                self.expect("(")
                condition = self._expr()
                error_code = 0
                if self.accept(","):
                    error_code = int(self.expect_kind("num").text, 0)
                self.expect(")")
                self.expect(";")
                if state.verify is not None:
                    raise ParseError(
                        f"state {name!r} has two verify statements"
                    )
                state.verify = (condition, error_code)
            elif keyword == "goto":
                state.transition = Transition.to(self._state_name())
                self.expect(";")
            elif keyword == "select":
                state.transition = self._select()
            else:
                raise ParseError(
                    f"line {self.peek().line}: unknown parser statement "
                    f"{keyword!r}"
                )

    def _state_name(self) -> str:
        token = self.expect_kind("id")
        return token.text  # accept/reject are ordinary identifiers here

    def _select(self) -> Transition:
        self.expect("(")
        keys = [self._expr()]
        while self.accept(","):
            keys.append(self._expr())
        self.expect(")")
        self.expect("{")
        cases: list[tuple[object, str]] = []
        default = REJECT
        while not self.accept("}"):
            if self.peek().text == "default":
                self.advance()
                self.expect(":")
                default = self._state_name()
                self.expect(";")
                continue
            values = [int(self.expect_kind("num").text, 0)]
            while self.accept(","):
                values.append(int(self.expect_kind("num").text, 0))
            self.expect(":")
            target = self._state_name()
            self.expect(";")
            pattern = values[0] if len(values) == 1 else tuple(values)
            cases.append((pattern, target))
        return Transition.select(keys, cases, default)

    # -- actions ----------------------------------------------------------
    def _action_decl(self) -> None:
        name = self.expect_kind("id").text
        params: list[Param] = []
        self.expect("(")
        if not self.accept(")"):
            while True:
                pname = self.expect_kind("id").text
                self.expect(":")
                width = int(self.expect_kind("num").text, 0)
                params.append(Param(pname, width))
                if not self.accept(","):
                    break
            self.expect(")")
        self._params = {p.name: p for p in params}
        self.expect("{")
        body: list[Primitive] = []
        while not self.accept("}"):
            body.append(self._primitive())
        self._params = {}
        self._pending_actions[name] = Action(name, params, body)

    def _primitive(self) -> Primitive:
        keyword = self.expect_kind("id").text
        self.expect("(")
        primitive: Primitive
        if keyword == "set":
            target = self._field_path()
            self.expect(",")
            value = self._expr()
            if isinstance(target, MetaRef):
                primitive = SetMeta(target.name, value)
            else:
                primitive = SetField(target.header, target.field, value)
        elif keyword == "add_header":
            header = self.expect_kind("id").text
            after = None
            if self.accept(","):
                after = self.expect_kind("id").text
            primitive = AddHeader(header, after)
        elif keyword == "remove_header":
            primitive = RemoveHeader(self.expect_kind("id").text)
        elif keyword == "drop":
            primitive = Drop()
        elif keyword == "forward":
            primitive = Forward(self._expr())
        elif keyword == "count":
            name = self.expect_kind("id").text
            self.expect(",")
            primitive = CountPacket(name, self._expr())
        elif keyword == "reg_write":
            name = self.expect_kind("id").text
            self.expect(",")
            index = self._expr()
            self.expect(",")
            primitive = RegisterWrite(name, index, self._expr())
        elif keyword == "reg_read":
            name = self.expect_kind("id").text
            self.expect(",")
            index = self._expr()
            self.expect(",")
            into = self.expect_kind("id").text
            primitive = RegisterRead(name, index, into)
        elif keyword == "hash":
            into = self.expect_kind("id").text
            self.expect(",")
            modulo = int(self.expect_kind("num").text, 0)
            inputs: list[Expr] = []
            while self.accept(","):
                inputs.append(self._expr())
            primitive = HashField(into, tuple(inputs), modulo)
        elif keyword == "exit":
            primitive = Exit()
        elif keyword == "no_op":
            primitive = NoOp()
        else:
            raise ParseError(
                f"line {self.peek().line}: unknown primitive {keyword!r}"
            )
        self.expect(")")
        self.expect(";")
        return primitive

    def _field_path(self) -> FieldRef | MetaRef:
        first = self.expect_kind("id").text
        if self.accept("."):
            second = self.expect_kind("id").text
            if first == "meta":
                return MetaRef(second)
            return FieldRef(first, second)
        raise ParseError(
            f"line {self.peek().line}: expected 'header.field' or "
            f"'meta.name', got bare {first!r}"
        )

    # -- tables -------------------------------------------------------------
    def _table_decl(self) -> None:
        name = self.expect_kind("id").text
        table = Table(name)
        from .actions import NOACTION

        table.declare_action(NOACTION)
        action_names: list[str] = []
        self.expect("{")
        while not self.accept("}"):
            keyword = self.expect_kind("id").text
            self.expect(":")
            if keyword == "key":
                expr = self._expr()
                kind = MatchKind(self.expect_kind("id").text)
                table.keys.append(TableKey(expr, kind))
                self.expect(";")
            elif keyword == "actions":
                action_names.append(self.expect_kind("id").text)
                while self.accept(","):
                    action_names.append(self.expect_kind("id").text)
                self.expect(";")
            elif keyword == "default":
                table.default_action = self.expect_kind("id").text
                self.expect(";")
            elif keyword == "size":
                table.size = int(self.expect_kind("num").text, 0)
                self.expect(";")
            else:
                raise ParseError(
                    f"line {self.peek().line}: unknown table clause "
                    f"{keyword!r}"
                )
        # Remember which named actions belong to this table; resolved
        # after all declarations are read.
        table._pending_action_names = action_names  # type: ignore[attr-defined]
        self.program.ingress.declare_table(table)

    # -- controls --------------------------------------------------------------
    def _control_decl(self) -> None:
        name = self.expect_kind("id").text
        if name not in ("ingress", "egress"):
            raise ParseError(
                f"control must be 'ingress' or 'egress', got {name!r}"
            )
        control = getattr(self.program, name)
        self.expect("{")
        control.body = self._block(end="}")

    def _block(self, end: str) -> Seq:
        statements: list[Stmt] = []
        while not self.accept(end):
            statements.append(self._statement())
        return Seq(tuple(statements))

    def _statement(self) -> Stmt:
        keyword = self.expect_kind("id").text
        if keyword == "apply":
            self.expect("(")
            table = self.expect_kind("id").text
            self.expect(")")
            self.expect(";")
            return ApplyTable(table)
        if keyword == "call":
            self.expect("(")
            action = self.expect_kind("id").text
            args: list[int] = []
            while self.accept(","):
                args.append(int(self.expect_kind("num").text, 0))
            self.expect(")")
            self.expect(";")
            return Call(action, tuple(args))
        if keyword == "if":
            self.expect("(")
            condition = self._expr()
            self.expect(")")
            self.expect("{")
            then = self._block("}")
            otherwise: Stmt | None = None
            if self.peek().text == "else":
                self.advance()
                self.expect("{")
                otherwise = self._block("}")
            return If(condition, then, otherwise)
        if keyword == "on_hit":
            self.expect("(")
            table = self.expect_kind("id").text
            self.expect(")")
            self.expect("{")
            then = self._block("}")
            otherwise = None
            if self.peek().text == "else":
                self.advance()
                self.expect("{")
                otherwise = self._block("}")
            return IfHit(table, then, otherwise)
        raise ParseError(
            f"line {self.peek().line}: unknown statement {keyword!r}"
        )

    # -- deparser --------------------------------------------------------------
    def _deparser_decl(self) -> None:
        self.expect("{")
        while not self.accept("}"):
            self.expect("emit")
            self.expect("(")
            self.program.deparser.add(self.expect_kind("id").text)
            self.expect(")")
            self.expect(";")

    # -- expressions ------------------------------------------------------------
    def _expr(self, level: int = 0) -> Expr:
        if level == len(_BINARY_PRECEDENCE):
            return self._unary()
        left = self._expr(level + 1)
        operators = _BINARY_PRECEDENCE[level]
        while self.peek().text in operators:
            op = self.advance().text
            right = self._expr(level + 1)
            left = BinOp(op, left, right)
        return left

    def _unary(self) -> Expr:
        token = self.peek()
        if token.text in ("~", "!", "-"):
            self.advance()
            return UnOp(token.text, self._unary())
        return self._primary()

    def _primary(self) -> Expr:
        token = self.advance()
        if token.kind == "num":
            return Const(int(token.text, 0))
        if token.text == "(":
            inner = self._expr()
            self.expect(")")
            return inner
        if token.kind == "id":
            if token.text == "valid":
                self.expect("(")
                header = self.expect_kind("id").text
                self.expect(")")
                return IsValid(header)
            if token.text in self._params:
                return self._params[token.text]
            if self.accept("."):
                field = self.expect_kind("id").text
                if token.text == "meta":
                    return MetaRef(field)
                return FieldRef(token.text, field)
            # Bare identifier: treat as metadata reference.
            return MetaRef(token.text)
        raise ParseError(
            f"line {token.line}: unexpected token {token.text!r} in "
            "expression"
        )

    # -- late binding of actions to tables/controls -------------------------
    def _attach_pending_actions(self) -> None:
        for control in (self.program.ingress, self.program.egress):
            for action in self._pending_actions.values():
                if action.name not in control.actions:
                    control.declare_action(action)
            for table in control.tables.values():
                names = getattr(table, "_pending_action_names", [])
                for action_name in names:
                    action = self._pending_actions.get(action_name)
                    if action is None:
                        raise ParseError(
                            f"table {table.name!r} references undeclared "
                            f"action {action_name!r}"
                        )
                    table.declare_action(action)
                if hasattr(table, "_pending_action_names"):
                    del table._pending_action_names


def parse_program(
    source: str, name: str = "text_program", validate: bool = True
) -> P4Program:
    """Parse P4-like source text into a :class:`P4Program`."""
    program = _Parser(source).parse(name)
    if validate:
        from .validation import validate_program

        validate_program(program)
    return program


def parse_program_file(path, validate: bool = True) -> P4Program:
    """Parse a P4-like source file; the program is named after the file."""
    from pathlib import Path

    path = Path(path)
    return parse_program(
        path.read_text(), name=path.stem, validate=validate
    )
