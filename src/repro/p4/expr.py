"""Expression AST for P4-like programs.

Expressions appear in action bodies, control-flow conditions, select keys
and table keys. The AST is deliberately small and closed: every node knows
its bit width (given a :class:`~repro.p4.types.TypeEnv`) and can be
evaluated concretely here, or symbolically by the formal-verification
baseline which walks the same node types.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

from ..bitutils import check_width, mask, slice_bits, truncate
from ..exceptions import P4RuntimeError, P4TypeError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for typing only
    from ..packet.packet import Packet
    from .types import TypeEnv

__all__ = [
    "Expr",
    "Const",
    "FieldRef",
    "MetaRef",
    "IsValid",
    "BinOp",
    "UnOp",
    "Slice",
    "Concat",
    "Mux",
    "BINARY_OPS",
    "UNARY_OPS",
    "const",
    "fld",
    "meta",
    "compile_expr",
]


class EvalContext:
    """Concrete evaluation context: a packet plus its metadata mapping."""

    __slots__ = ("packet", "metadata")

    def __init__(self, packet: "Packet", metadata: dict[str, int]):
        self.packet = packet
        self.metadata = metadata


class Expr:
    """Base class for all expression nodes."""

    def width(self, env: "TypeEnv") -> int:
        raise NotImplementedError

    def eval(self, ctx: EvalContext, env: "TypeEnv") -> int:
        raise NotImplementedError

    def children(self) -> tuple["Expr", ...]:
        return ()

    # Operator sugar so DSL users can write ``fld("ipv4","ttl") - 1``.
    def _bin(self, op: str, other: "Expr | int") -> "BinOp":
        if isinstance(other, int):
            other = Const(other)
        return BinOp(op, self, other)

    def __add__(self, other):  # noqa: D105 - operator sugar
        return self._bin("+", other)

    def __sub__(self, other):
        return self._bin("-", other)

    def __and__(self, other):
        return self._bin("&", other)

    def __or__(self, other):
        return self._bin("|", other)

    def __xor__(self, other):
        return self._bin("^", other)

    def __lshift__(self, other):
        return self._bin("<<", other)

    def __rshift__(self, other):
        return self._bin(">>", other)

    def eq(self, other):
        """Equality comparison node (``==`` is reserved for identity)."""
        return self._bin("==", other)

    def ne(self, other):
        return self._bin("!=", other)

    def lt(self, other):
        return self._bin("<", other)

    def le(self, other):
        return self._bin("<=", other)

    def gt(self, other):
        return self._bin(">", other)

    def ge(self, other):
        return self._bin(">=", other)

    def land(self, other):
        """Logical AND (non-zero test on both operands)."""
        return self._bin("and", other)

    def lor(self, other):
        return self._bin("or", other)

    def lnot(self):
        return UnOp("!", self)


@dataclass(frozen=True)
class Const(Expr):
    """An integer literal; ``width_hint`` pins the width when given."""

    value: int
    width_hint: int | None = None

    def __post_init__(self) -> None:
        if self.value < 0:
            raise P4TypeError(f"P4 constants are unsigned, got {self.value}")
        if self.width_hint is not None:
            check_width(self.value, self.width_hint, "constant")

    def width(self, env: "TypeEnv") -> int:
        if self.width_hint is not None:
            return self.width_hint
        return max(self.value.bit_length(), 1)

    def eval(self, ctx: EvalContext, env: "TypeEnv") -> int:
        return self.value


@dataclass(frozen=True)
class FieldRef(Expr):
    """A reference to ``header.field``."""

    header: str
    field: str

    @property
    def path(self) -> str:
        return f"{self.header}.{self.field}"

    def width(self, env: "TypeEnv") -> int:
        return env.field_width(self.header, self.field)

    def eval(self, ctx: EvalContext, env: "TypeEnv") -> int:
        header = ctx.packet.get_or_none(self.header)
        if header is None or not header.valid:
            raise P4RuntimeError(
                f"read of field {self.path!r} on invalid header"
            )
        return header[self.field]


@dataclass(frozen=True)
class MetaRef(Expr):
    """A reference to a (standard or user) metadata field."""

    name: str

    def width(self, env: "TypeEnv") -> int:
        return env.metadata_width(self.name)

    def eval(self, ctx: EvalContext, env: "TypeEnv") -> int:
        try:
            return ctx.metadata[self.name]
        except KeyError:
            raise P4RuntimeError(
                f"read of unset metadata field {self.name!r}"
            ) from None


@dataclass(frozen=True)
class IsValid(Expr):
    """1 when the named header is present and valid, else 0."""

    header: str

    def width(self, env: "TypeEnv") -> int:
        return 1

    def eval(self, ctx: EvalContext, env: "TypeEnv") -> int:
        return 1 if ctx.packet.has(self.header) else 0


_ARITH = {"+", "-", "*"}
_BITWISE = {"&", "|", "^", "<<", ">>"}
_COMPARE = {"==", "!=", "<", "<=", ">", ">="}
_LOGICAL = {"and", "or"}
BINARY_OPS = _ARITH | _BITWISE | _COMPARE | _LOGICAL
UNARY_OPS = {"~", "!", "-"}


@dataclass(frozen=True)
class BinOp(Expr):
    """A binary operation; arithmetic wraps at the operand width (P4)."""

    op: str
    left: Expr
    right: Expr

    def __post_init__(self) -> None:
        if self.op not in BINARY_OPS:
            raise P4TypeError(f"unknown binary operator {self.op!r}")

    def children(self) -> tuple[Expr, ...]:
        return (self.left, self.right)

    def width(self, env: "TypeEnv") -> int:
        if self.op in _COMPARE or self.op in _LOGICAL:
            return 1
        left = self.left.width(env)
        if self.op in ("<<", ">>"):
            return left
        return max(left, self.right.width(env))

    def eval(self, ctx: EvalContext, env: "TypeEnv") -> int:
        left = self.left.eval(ctx, env)
        # P4 requires short-circuit evaluation of && and ||: the right
        # operand must not be evaluated (it may read an invalid header)
        # when the left side already decides.
        if self.op == "and" and not left:
            return 0
        if self.op == "or" and left:
            return 1
        right = self.right.eval(ctx, env)
        result_width = self.width(env)
        if self.op == "+":
            return truncate(left + right, result_width)
        if self.op == "-":
            return truncate(left - right, result_width)
        if self.op == "*":
            return truncate(left * right, result_width)
        if self.op == "&":
            return left & right
        if self.op == "|":
            return left | right
        if self.op == "^":
            return left ^ right
        if self.op == "<<":
            return truncate(left << right, result_width)
        if self.op == ">>":
            return left >> right
        if self.op == "==":
            return int(left == right)
        if self.op == "!=":
            return int(left != right)
        if self.op == "<":
            return int(left < right)
        if self.op == "<=":
            return int(left <= right)
        if self.op == ">":
            return int(left > right)
        if self.op == ">=":
            return int(left >= right)
        if self.op == "and":
            return int(bool(left) and bool(right))
        if self.op == "or":
            return int(bool(left) or bool(right))
        raise P4RuntimeError(f"unhandled operator {self.op!r}")


@dataclass(frozen=True)
class UnOp(Expr):
    """A unary operation: bitwise not, logical not, or negation."""

    op: str
    operand: Expr

    def __post_init__(self) -> None:
        if self.op not in UNARY_OPS:
            raise P4TypeError(f"unknown unary operator {self.op!r}")

    def children(self) -> tuple[Expr, ...]:
        return (self.operand,)

    def width(self, env: "TypeEnv") -> int:
        return 1 if self.op == "!" else self.operand.width(env)

    def eval(self, ctx: EvalContext, env: "TypeEnv") -> int:
        value = self.operand.eval(ctx, env)
        width = self.operand.width(env)
        if self.op == "~":
            return value ^ mask(width)
        if self.op == "!":
            return int(not value)
        if self.op == "-":
            return truncate(-value, width)
        raise P4RuntimeError(f"unhandled operator {self.op!r}")


@dataclass(frozen=True)
class Slice(Expr):
    """P4 bit slice ``operand[high:low]`` (inclusive bounds)."""

    operand: Expr
    high: int
    low: int

    def __post_init__(self) -> None:
        if self.low < 0 or self.high < self.low:
            raise P4TypeError(f"bad slice bounds [{self.high}:{self.low}]")

    def children(self) -> tuple[Expr, ...]:
        return (self.operand,)

    def width(self, env: "TypeEnv") -> int:
        return self.high - self.low + 1

    def eval(self, ctx: EvalContext, env: "TypeEnv") -> int:
        value = self.operand.eval(ctx, env)
        return slice_bits(value, self.operand.width(env), self.high, self.low)


@dataclass(frozen=True)
class Concat(Expr):
    """P4 ``++`` bit concatenation, left operand in the high bits."""

    left: Expr
    right: Expr

    def children(self) -> tuple[Expr, ...]:
        return (self.left, self.right)

    def width(self, env: "TypeEnv") -> int:
        return self.left.width(env) + self.right.width(env)

    def eval(self, ctx: EvalContext, env: "TypeEnv") -> int:
        right_width = self.right.width(env)
        return (self.left.eval(ctx, env) << right_width) | self.right.eval(
            ctx, env
        )


@dataclass(frozen=True)
class Mux(Expr):
    """Ternary conditional ``cond ? then : otherwise``."""

    cond: Expr
    then: Expr
    otherwise: Expr

    def children(self) -> tuple[Expr, ...]:
        return (self.cond, self.then, self.otherwise)

    def width(self, env: "TypeEnv") -> int:
        return max(self.then.width(env), self.otherwise.width(env))

    def eval(self, ctx: EvalContext, env: "TypeEnv") -> int:
        if self.cond.eval(ctx, env):
            return self.then.eval(ctx, env)
        return self.otherwise.eval(ctx, env)


def const(value: int, width: int | None = None) -> Const:
    """Shorthand constructor for :class:`Const`."""
    return Const(value, width)


def fld(header: str, field: str) -> FieldRef:
    """Shorthand constructor for :class:`FieldRef`."""
    return FieldRef(header, field)


def meta(name: str) -> MetaRef:
    """Shorthand constructor for :class:`MetaRef`."""
    return MetaRef(name)


# ----------------------------------------------------------------------
# Closure compilation (the target fast path)
# ----------------------------------------------------------------------
def compile_expr(expr: Expr, env: "TypeEnv", params: tuple[str, ...] = ()):
    """Compile ``expr`` once into a closure ``f(packet, metadata, args)``.

    Tree-walking ``eval`` re-dispatches on node types and recomputes
    widths for every packet; the compiled form resolves node types,
    field widths and truncation masks exactly once, so per-packet cost
    is a chain of plain Python calls. Semantics match ``eval`` bit for
    bit, including short-circuit ``&&``/``||`` and the
    :class:`~repro.exceptions.P4RuntimeError` raised on reads of invalid
    headers or unset metadata.

    ``params`` names the enclosing action's parameters in positional
    order; :class:`~repro.p4.actions.Param` nodes compile into indexed
    reads of the ``args`` tuple. An unknown ``Param`` raises
    :class:`P4RuntimeError` at compile time, mirroring ``bind_expr``.
    """
    from .actions import Param

    if isinstance(expr, Const):
        value = expr.value
        return lambda packet, metadata, args: value

    if isinstance(expr, Param):
        name = expr.name
        try:
            index = params.index(name)
        except ValueError:
            raise P4RuntimeError(
                f"action parameter {name!r} is unbound"
            ) from None
        return lambda packet, metadata, args: args[index]

    if isinstance(expr, FieldRef):
        header_name = expr.header
        field_name = expr.field
        path = expr.path
        spec = env.headers.get(header_name)
        if spec is not None and spec.has_field(field_name):
            # Known layout: read the value dict directly. The KeyError
            # guard costs nothing on the happy path and keeps a
            # same-named header with a different layout (checker env vs
            # device program) inside the ReproError family.
            def read_field(packet, metadata, args):
                for header in packet.headers:
                    if header.name == header_name:
                        if header.valid:
                            try:
                                return header._values[field_name]
                            except KeyError:
                                raise P4RuntimeError(
                                    f"header {header_name!r} has no "
                                    f"field {field_name!r}"
                                ) from None
                        break
                raise P4RuntimeError(
                    f"read of field {path!r} on invalid header"
                )

            return read_field

        # Unknown layout (checker expressions over foreign headers):
        # fall back to the validating item access.
        def read_field_checked(packet, metadata, args):
            header = packet.get_or_none(header_name)
            if header is None or not header.valid:
                raise P4RuntimeError(
                    f"read of field {path!r} on invalid header"
                )
            return header[field_name]

        return read_field_checked

    if isinstance(expr, MetaRef):
        name = expr.name

        def read_meta(packet, metadata, args):
            try:
                return metadata[name]
            except KeyError:
                raise P4RuntimeError(
                    f"read of unset metadata field {name!r}"
                ) from None

        return read_meta

    if isinstance(expr, IsValid):
        name = expr.header

        def is_valid(packet, metadata, args):
            for header in packet.headers:
                if header.name == name and header.valid:
                    return 1
            return 0

        return is_valid

    if isinstance(expr, BinOp):
        op = expr.op
        lf = compile_expr(expr.left, env, params)
        rf = compile_expr(expr.right, env, params)
        if op == "and":
            return lambda p, m, a: (1 if rf(p, m, a) else 0) if lf(p, m, a) else 0
        if op == "or":
            return lambda p, m, a: 1 if lf(p, m, a) else (1 if rf(p, m, a) else 0)
        if op == "==":
            return lambda p, m, a: 1 if lf(p, m, a) == rf(p, m, a) else 0
        if op == "!=":
            return lambda p, m, a: 1 if lf(p, m, a) != rf(p, m, a) else 0
        if op == "<":
            return lambda p, m, a: 1 if lf(p, m, a) < rf(p, m, a) else 0
        if op == "<=":
            return lambda p, m, a: 1 if lf(p, m, a) <= rf(p, m, a) else 0
        if op == ">":
            return lambda p, m, a: 1 if lf(p, m, a) > rf(p, m, a) else 0
        if op == ">=":
            return lambda p, m, a: 1 if lf(p, m, a) >= rf(p, m, a) else 0
        if op == "&":
            return lambda p, m, a: lf(p, m, a) & rf(p, m, a)
        if op == "|":
            return lambda p, m, a: lf(p, m, a) | rf(p, m, a)
        if op == "^":
            return lambda p, m, a: lf(p, m, a) ^ rf(p, m, a)
        if op == ">>":
            return lambda p, m, a: lf(p, m, a) >> rf(p, m, a)
        result_mask = mask(expr.width(env))
        if op == "+":
            return lambda p, m, a: (lf(p, m, a) + rf(p, m, a)) & result_mask
        if op == "-":
            return lambda p, m, a: (lf(p, m, a) - rf(p, m, a)) & result_mask
        if op == "*":
            return lambda p, m, a: (lf(p, m, a) * rf(p, m, a)) & result_mask
        if op == "<<":
            return lambda p, m, a: (lf(p, m, a) << rf(p, m, a)) & result_mask
        raise P4RuntimeError(f"unhandled operator {op!r}")

    if isinstance(expr, UnOp):
        op = expr.op
        of = compile_expr(expr.operand, env, params)
        if op == "!":
            return lambda p, m, a: 0 if of(p, m, a) else 1
        operand_mask = mask(expr.operand.width(env))
        if op == "~":
            return lambda p, m, a: of(p, m, a) ^ operand_mask
        if op == "-":
            return lambda p, m, a: (-of(p, m, a)) & operand_mask
        raise P4RuntimeError(f"unhandled operator {op!r}")

    if isinstance(expr, Slice):
        of = compile_expr(expr.operand, env, params)
        operand_width = expr.operand.width(env)
        high, low = expr.high, expr.low
        if not 0 <= low <= high < operand_width:
            raise P4TypeError(
                f"slice [{high}:{low}] out of range for a "
                f"{operand_width}-bit value"
            )
        slice_mask = mask(high - low + 1)
        return lambda p, m, a: (of(p, m, a) >> low) & slice_mask

    if isinstance(expr, Concat):
        lf = compile_expr(expr.left, env, params)
        rf = compile_expr(expr.right, env, params)
        right_width = expr.right.width(env)
        return lambda p, m, a: (lf(p, m, a) << right_width) | rf(p, m, a)

    if isinstance(expr, Mux):
        cf = compile_expr(expr.cond, env, params)
        tf = compile_expr(expr.then, env, params)
        ef = compile_expr(expr.otherwise, env, params)
        return lambda p, m, a: tf(p, m, a) if cf(p, m, a) else ef(p, m, a)

    # Unknown node type (extensions): fall back to tree-walking eval.
    def eval_fallback(packet, metadata, args):
        return expr.eval(EvalContext(packet, metadata), env)

    return eval_fallback
