"""The complete program object.

A :class:`P4Program` bundles the type environment, parser, ingress and
egress controls, deparser, and declarations of stateful objects (counters
and registers). It is the unit that targets compile
(:mod:`repro.target.compiler`), the interpreter executes, the formal
verifier analyses, and the control plane configures.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..exceptions import P4ValidationError
from .control import Control
from .deparser import Deparser
from .parser import Parser
from .table import Table
from .types import TypeEnv

__all__ = ["CounterDecl", "RegisterDecl", "P4Program"]


@dataclass(frozen=True)
class CounterDecl:
    """A packet counter array of ``size`` cells."""

    name: str
    size: int

    def __post_init__(self) -> None:
        if self.size <= 0:
            raise P4ValidationError(
                f"counter {self.name!r} must have positive size"
            )


@dataclass(frozen=True)
class RegisterDecl:
    """A register array of ``size`` cells, each ``width`` bits wide."""

    name: str
    size: int
    width: int

    def __post_init__(self) -> None:
        if self.size <= 0 or self.width <= 0:
            raise P4ValidationError(
                f"register {self.name!r} must have positive size and width"
            )


@dataclass
class P4Program:
    """A full data-plane program."""

    name: str
    env: TypeEnv = field(default_factory=TypeEnv)
    parser: Parser = field(default_factory=Parser)
    ingress: Control = field(default_factory=lambda: Control("ingress"))
    egress: Control = field(default_factory=lambda: Control("egress"))
    deparser: Deparser = field(default_factory=Deparser)
    counters: dict[str, CounterDecl] = field(default_factory=dict)
    registers: dict[str, RegisterDecl] = field(default_factory=dict)

    def declare_counter(self, name: str, size: int) -> CounterDecl:
        if name in self.counters:
            raise P4ValidationError(f"duplicate counter {name!r}")
        decl = CounterDecl(name, size)
        self.counters[name] = decl
        return decl

    def declare_register(self, name: str, size: int, width: int) -> RegisterDecl:
        if name in self.registers:
            raise P4ValidationError(f"duplicate register {name!r}")
        decl = RegisterDecl(name, size, width)
        self.registers[name] = decl
        return decl

    # ------------------------------------------------------------------
    # Aggregated views used by the compiler and verifier
    # ------------------------------------------------------------------
    def all_tables(self) -> dict[str, Table]:
        """Every table in the program, keyed by name (must be unique)."""
        tables: dict[str, Table] = {}
        for control in (self.ingress, self.egress):
            for name, table in control.tables.items():
                if name in tables:
                    raise P4ValidationError(
                        f"table name {name!r} used in both controls"
                    )
                tables[name] = table
        return tables

    def table(self, name: str) -> Table:
        tables = self.all_tables()
        try:
            return tables[name]
        except KeyError:
            raise P4ValidationError(
                f"program {self.name!r} has no table {name!r}"
            ) from None

    def pipeline_depth(self) -> int:
        """Dependent table applications across both controls."""
        return self.ingress.max_depth() + self.egress.max_depth()

    def summary(self) -> dict[str, int]:
        """Size metrics used in reports and the resource model."""
        tables = self.all_tables()
        return {
            "headers": len(self.env.headers),
            "parser_states": len(self.parser.states),
            "tables": len(tables),
            "table_entries_capacity": sum(t.size for t in tables.values()),
            "actions": sum(len(t.actions) for t in tables.values()),
            "counters": len(self.counters),
            "registers": len(self.registers),
            "pipeline_depth": self.pipeline_depth(),
        }
