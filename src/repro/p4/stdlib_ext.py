"""Extended stdlib: stateful and telemetry programs.

These exercise the IR's stateful features in realistic shapes beyond the
core suite: a register-based stateful firewall (outbound traffic opens a
flow slot; unsolicited inbound traffic is dropped) and an INT-style
telemetry program that stamps per-hop metadata into packets, the
in-network-computing flavour the paper's introduction motivates.
"""

from __future__ import annotations

from ..packet.fields import HeaderSpec
from ..packet.headers import ETHERNET, ETHERTYPE_IPV4, IPPROTO_UDP, IPV4, UDP
from .actions import (
    AddHeader,
    Drop,
    Forward,
    HashField,
    RegisterRead,
    RegisterWrite,
    SetField,
    SetMeta,
)
from .control import Call, If, Seq
from .dsl import ProgramBuilder
from .expr import Const, IsValid, fld, meta
from .parser import ACCEPT
from .program import P4Program

__all__ = ["INT_HEADER", "stateful_firewall", "int_telemetry"]

#: INT-style per-hop telemetry record appended after the UDP header.
INT_HEADER = HeaderSpec.build(
    "int_meta",
    ("switch_id", 16),
    ("ingress_port", 16),
    ("hop_latency", 32),
    ("ingress_ts", 48),
)

#: Direction port convention for the firewall: port 0 = inside,
#: port 1 = outside.
INSIDE_PORT = 0
OUTSIDE_PORT = 1


def stateful_firewall(flow_slots: int = 256) -> P4Program:
    """A register-based stateful firewall (reflexive ACL).

    Outbound packets (arriving on the inside port) hash their flow
    5-tuple into a register slot and mark it open, then forward to the
    outside. Inbound packets hash the *reversed* tuple and are forwarded
    inside only when the slot is open — unsolicited inbound traffic is
    dropped. This is the canonical "state in the data plane" program:
    the flow table lives entirely in registers, with no control-plane
    involvement per flow.
    """
    b = ProgramBuilder("stateful_firewall")
    b.header(ETHERNET)
    b.header(IPV4)
    b.header(UDP)
    b.metadata("flow_slot", 16)
    b.metadata("slot_state", 1)
    b.register("flow_open", flow_slots, 1)

    b.parser_state("start", extracts=["ethernet"]).select(
        fld("ethernet", "ether_type"),
        [(ETHERTYPE_IPV4, "parse_ipv4")],
        default=ACCEPT,
    )
    b.parser_state("parse_ipv4", extracts=["ipv4"]).select(
        fld("ipv4", "protocol"),
        [(IPPROTO_UDP, "parse_udp")],
        default=ACCEPT,
    )
    b.parser_state("parse_udp", extracts=["udp"]).accept()

    b.ingress.action(
        "hash_outbound",
        [],
        [
            HashField(
                "flow_slot",
                (
                    fld("ipv4", "src_addr"),
                    fld("ipv4", "dst_addr"),
                    fld("udp", "src_port"),
                    fld("udp", "dst_port"),
                ),
                flow_slots,
            )
        ],
    )
    b.ingress.action(
        "hash_inbound",
        [],
        [
            # The same tuple as seen from inside: reversed.
            HashField(
                "flow_slot",
                (
                    fld("ipv4", "dst_addr"),
                    fld("ipv4", "src_addr"),
                    fld("udp", "dst_port"),
                    fld("udp", "src_port"),
                ),
                flow_slots,
            )
        ],
    )
    b.ingress.action(
        "open_and_forward",
        [],
        [
            RegisterWrite("flow_open", meta("flow_slot"), Const(1, 1)),
            Forward(Const(OUTSIDE_PORT, 9)),
        ],
    )
    b.ingress.action(
        "check_state",
        [],
        [RegisterRead("flow_open", meta("flow_slot"), "slot_state")],
    )
    b.ingress.action("admit", [], [Forward(Const(INSIDE_PORT, 9))])
    b.ingress.action("refuse", [], [Drop()])

    b.ingress.stmt(
        If(
            IsValid("udp"),
            If(
                meta("ingress_port").eq(INSIDE_PORT),
                Seq.of(Call("hash_outbound"), Call("open_and_forward")),
                Seq.of(
                    Call("hash_inbound"),
                    Call("check_state"),
                    If(
                        meta("slot_state").eq(1),
                        Call("admit"),
                        Call("refuse"),
                    ),
                ),
            ),
            Call("refuse"),
        )
    )

    b.emit("ethernet", "ipv4", "udp")
    return b.build()


def int_telemetry(switch_id: int = 1) -> P4Program:
    """INT-style telemetry: stamp per-hop metadata into every packet.

    The egress control appends an ``int_meta`` record carrying the
    switch id, ingress port and the ingress timestamp, and forwards on a
    fixed port. A collector (or the NetDebug checker) reads the record
    to reconstruct per-hop paths and latencies — in-network computing of
    the kind the paper's introduction motivates.
    """
    b = ProgramBuilder("int_telemetry")
    b.header(ETHERNET)
    b.header(IPV4)
    b.header(UDP)
    b.header(INT_HEADER)

    b.parser_state("start", extracts=["ethernet"]).select(
        fld("ethernet", "ether_type"),
        [(ETHERTYPE_IPV4, "parse_ipv4")],
        default=ACCEPT,
    )
    b.parser_state("parse_ipv4", extracts=["ipv4"]).select(
        fld("ipv4", "protocol"),
        [(IPPROTO_UDP, "parse_udp")],
        default=ACCEPT,
    )
    b.parser_state("parse_udp", extracts=["udp"]).accept()

    b.ingress.action("to_collector", [], [Forward(Const(1, 9))])
    b.ingress.call("to_collector")

    b.egress.action(
        "stamp",
        [],
        [
            AddHeader("int_meta", after="udp"),
            SetField("int_meta", "switch_id", Const(switch_id, 16)),
            SetField("int_meta", "ingress_port", meta("ingress_port")),
            SetField(
                "int_meta", "ingress_ts", meta("ingress_global_timestamp")
            ),
            SetField("int_meta", "hop_latency", Const(0, 32)),
        ],
    )
    b.egress.stmt(If(IsValid("udp"), Call("stamp")))

    b.emit("ethernet", "ipv4", "udp", "int_meta")
    return b.build()
