"""A P4₁₆-like intermediate representation, interpreter and tooling."""

from .actions import (
    NOACTION,
    Action,
    AddHeader,
    CountPacket,
    Drop,
    Exit,
    Forward,
    HashField,
    NoOp,
    Param,
    Primitive,
    RegisterRead,
    RegisterWrite,
    RemoveHeader,
    SetField,
    SetMeta,
)
from .control import ApplyTable, Call, Control, If, IfHit, Seq, Stmt
from .deparser import Deparser
from .dsl import ControlBuilder, ProgramBuilder, StateBuilder, TableBuilder
from .expr import (
    BinOp,
    Concat,
    Const,
    EvalContext,
    Expr,
    FieldRef,
    IsValid,
    MetaRef,
    Mux,
    Slice,
    UnOp,
    const,
    fld,
    meta,
)
from .interpreter import (
    Interpreter,
    PipelineResult,
    RuntimeState,
    Trace,
    TraceEvent,
    Verdict,
)
from .json_loader import (
    load_program,
    program_from_dict,
    program_to_dict,
    save_program,
)
from .parser import ACCEPT, REJECT, Parser, ParserState, SelectCase, Transition
from .textparse import parse_program, parse_program_file
from .program import CounterDecl, P4Program, RegisterDecl
from .table import KeyPattern, MatchKind, MatchResult, Table, TableEntry, TableKey
from .types import STANDARD_METADATA, TypeEnv, standard_metadata_defaults
from .validation import validate_program

__all__ = [
    # types
    "TypeEnv",
    "STANDARD_METADATA",
    "standard_metadata_defaults",
    # expr
    "Expr",
    "Const",
    "FieldRef",
    "MetaRef",
    "IsValid",
    "BinOp",
    "UnOp",
    "Slice",
    "Concat",
    "Mux",
    "EvalContext",
    "const",
    "fld",
    "meta",
    # parser
    "ACCEPT",
    "REJECT",
    "Parser",
    "ParserState",
    "SelectCase",
    "Transition",
    # actions
    "Action",
    "Param",
    "Primitive",
    "NOACTION",
    "SetField",
    "SetMeta",
    "AddHeader",
    "RemoveHeader",
    "Drop",
    "Forward",
    "NoOp",
    "CountPacket",
    "RegisterRead",
    "RegisterWrite",
    "HashField",
    "Exit",
    # table
    "Table",
    "TableKey",
    "TableEntry",
    "KeyPattern",
    "MatchKind",
    "MatchResult",
    # control
    "Control",
    "Stmt",
    "ApplyTable",
    "If",
    "IfHit",
    "Call",
    "Seq",
    # program
    "P4Program",
    "CounterDecl",
    "RegisterDecl",
    "Deparser",
    # interpreter
    "Interpreter",
    "PipelineResult",
    "RuntimeState",
    "Trace",
    "TraceEvent",
    "Verdict",
    # dsl
    "ProgramBuilder",
    "ControlBuilder",
    "StateBuilder",
    "TableBuilder",
    # json
    "program_to_dict",
    "program_from_dict",
    "save_program",
    "load_program",
    # validation
    "validate_program",
    # text frontend
    "parse_program",
    "parse_program_file",
]
