"""Deparser IR: the ordered list of headers emitted onto the wire.

Per P4 semantics only *valid* headers are emitted; the payload follows the
last emitted header unchanged.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..exceptions import P4ValidationError

__all__ = ["Deparser"]


@dataclass
class Deparser:
    """Emit order for a program's headers."""

    emit_order: list[str] = field(default_factory=list)

    def __post_init__(self) -> None:
        if len(self.emit_order) != len(set(self.emit_order)):
            raise P4ValidationError("deparser emits a header twice")

    def add(self, header: str) -> None:
        if header in self.emit_order:
            raise P4ValidationError(
                f"deparser already emits header {header!r}"
            )
        self.emit_order.append(header)
