"""Deparser IR: the ordered list of headers emitted onto the wire.

Per P4 semantics only *valid* headers are emitted; the payload follows the
last emitted header unchanged.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..exceptions import P4ValidationError

__all__ = ["Deparser"]


@dataclass
class Deparser:
    """Emit order for a program's headers."""

    emit_order: list[str] = field(default_factory=list)

    def __post_init__(self) -> None:
        if len(self.emit_order) != len(set(self.emit_order)):
            raise P4ValidationError("deparser emits a header twice")

    def add(self, header: str) -> None:
        if header in self.emit_order:
            raise P4ValidationError(
                f"deparser already emits header {header!r}"
            )
        self.emit_order.append(header)

    def emit_prefix(self, env, field_budget: int | None) -> tuple[str, ...]:
        """The emit-order prefix a field-budgeted deparser serializes.

        Walks the emit order accumulating header *field* counts against
        ``field_budget``; the first header that would push the running
        total past the budget — and everything after it — is cut.
        ``None`` means no budget (the full emit order). This is the
        single definition of the Tofino-like deparse-truncation
        deviation, shared by the closure compiler, the tree-walking
        interpreter and the differential oracles so they cannot drift.
        """
        emit_order = tuple(self.emit_order)
        if field_budget is None:
            return emit_order
        prefix: list[str] = []
        fields = 0
        for name in emit_order:
            fields += len(env.header(name).fields)
            if fields > field_budget:
                break
            prefix.append(name)
        return tuple(prefix)
