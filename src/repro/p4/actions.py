"""Actions and primitive statements.

An :class:`Action` is a named, parameterized sequence of primitive
statements, as in P4. Primitives cover the operations the paper's use cases
need: field assignment, header add/remove, drop/forward, counters,
registers and hashes. Action parameters are referenced inside primitive
expressions with :class:`Param` nodes and bound at call time from the table
entry's action data.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from ..exceptions import P4RuntimeError, P4TypeError
from .expr import EvalContext, Expr

if TYPE_CHECKING:  # pragma: no cover
    from .types import TypeEnv

__all__ = [
    "Param",
    "Primitive",
    "SetField",
    "SetMeta",
    "AddHeader",
    "RemoveHeader",
    "Drop",
    "Forward",
    "NoOp",
    "CountPacket",
    "RegisterWrite",
    "RegisterRead",
    "HashField",
    "Exit",
    "Action",
    "NOACTION",
]


@dataclass(frozen=True)
class Param(Expr):
    """A reference to an action parameter, bound from table action data."""

    name: str
    bits: int

    def width(self, env: "TypeEnv") -> int:
        return self.bits

    def eval(self, ctx: EvalContext, env: "TypeEnv") -> int:
        raise P4RuntimeError(
            f"unbound action parameter {self.name!r}; actions must be "
            "invoked through Action.execute"
        )


class Primitive:
    """Base class for primitive statements inside an action body."""

    #: Relative hardware cost used by the resource model (ALU slots).
    cost: int = 1


@dataclass(frozen=True)
class SetField(Primitive):
    """``header.field = expr``."""

    header: str
    field: str
    value: Expr


@dataclass(frozen=True)
class SetMeta(Primitive):
    """``metadata[name] = expr``."""

    name: str
    value: Expr


@dataclass(frozen=True)
class AddHeader(Primitive):
    """Make ``header`` valid (push it onto the stack if absent).

    ``after`` names an existing header to insert behind; ``None`` inserts
    at the front of the stack.
    """

    header: str
    after: str | None = None
    cost: int = 2


@dataclass(frozen=True)
class RemoveHeader(Primitive):
    """Invalidate ``header`` (it will not be deparsed)."""

    header: str
    cost: int = 2


@dataclass(frozen=True)
class Drop(Primitive):
    """Mark the packet to be dropped at the end of the pipeline."""


@dataclass(frozen=True)
class Forward(Primitive):
    """Set the egress port from an expression."""

    port: Expr


@dataclass(frozen=True)
class NoOp(Primitive):
    """Do nothing (the body of ``NoAction``)."""

    cost: int = 0


@dataclass(frozen=True)
class CountPacket(Primitive):
    """Increment counter ``name`` at index ``index``."""

    name: str
    index: Expr


@dataclass(frozen=True)
class RegisterWrite(Primitive):
    """``register[name][index] = expr``."""

    name: str
    index: Expr
    value: Expr
    cost: int = 2


@dataclass(frozen=True)
class RegisterRead(Primitive):
    """Read ``register[name][index]`` into a metadata field."""

    name: str
    index: Expr
    into: str
    cost: int = 2


@dataclass(frozen=True)
class HashField(Primitive):
    """Hash the listed expressions into a metadata field, mod ``modulo``.

    Models P4's ``hash()`` extern with a CRC-like mixing function; the
    exact function does not matter for validation, stability does.
    """

    into: str
    inputs: tuple[Expr, ...]
    modulo: int
    cost: int = 4


@dataclass(frozen=True)
class Exit(Primitive):
    """Terminate pipeline processing for this packet immediately."""


@dataclass
class Action:
    """A named action: parameters plus a primitive body."""

    name: str
    params: list[Param] = field(default_factory=list)
    body: list[Primitive] = field(default_factory=list)

    def __post_init__(self) -> None:
        names = [p.name for p in self.params]
        if len(names) != len(set(names)):
            raise P4TypeError(
                f"action {self.name!r} has duplicate parameter names"
            )

    @property
    def param_names(self) -> list[str]:
        return [p.name for p in self.params]

    def bind(self, args: tuple[int, ...] | list[int]) -> dict[str, int]:
        """Map positional action data to a parameter-name binding."""
        if len(args) != len(self.params):
            raise P4TypeError(
                f"action {self.name!r} takes {len(self.params)} args, "
                f"got {len(args)}"
            )
        binding: dict[str, int] = {}
        for param, arg in zip(self.params, args):
            if arg < 0 or arg.bit_length() > param.bits:
                raise P4TypeError(
                    f"argument {arg} does not fit parameter "
                    f"{param.name!r} ({param.bits} bits)"
                )
            binding[param.name] = arg
        return binding

    @property
    def alu_cost(self) -> int:
        """Total primitive cost, used by the resource model."""
        return sum(p.cost for p in self.body)


#: The canonical no-op action present in every table's action list.
NOACTION = Action("NoAction", [], [NoOp()])
