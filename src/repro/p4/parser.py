"""Parser state machine IR.

A P4 parser is a finite state machine over the packet's leading bytes. Each
state extracts zero or more headers, optionally verifies a condition, then
transitions — unconditionally or via a ``select`` over key expressions —
to another state, to ``accept``, or to ``reject``.

The ``reject`` state is central to this reproduction: per the P4₁₆
specification a packet reaching ``reject`` must not continue through the
pipeline, but the paper's SDNet target silently omits it
(:mod:`repro.target.sdnet`).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..exceptions import P4ValidationError
from .expr import Expr

__all__ = [
    "ACCEPT",
    "REJECT",
    "SelectCase",
    "Transition",
    "ParserState",
    "Parser",
]

#: Terminal state names. These are reserved and may not be redefined.
ACCEPT = "accept"
REJECT = "reject"


@dataclass(frozen=True)
class SelectCase:
    """One arm of a ``select``: masked value patterns → next state.

    ``patterns`` has one ``(value, mask)`` pair per select key; a key
    matches when ``key & mask == value & mask``. A mask of all-ones is an
    exact match; ``mask=0`` matches anything (the ``default`` arm is a
    case whose patterns are all ``(0, 0)``).
    """

    patterns: tuple[tuple[int, int], ...]
    next_state: str

    def matches(self, keys: tuple[int, ...]) -> bool:
        if len(keys) != len(self.patterns):
            raise P4ValidationError(
                f"select arity mismatch: {len(keys)} keys vs "
                f"{len(self.patterns)} patterns"
            )
        return all(
            (key & mask_) == (value & mask_)
            for key, (value, mask_) in zip(keys, self.patterns)
        )


@dataclass(frozen=True)
class Transition:
    """A state's exit: direct jump, or a ``select`` over key expressions."""

    keys: tuple[Expr, ...] = ()
    cases: tuple[SelectCase, ...] = ()
    default: str = ACCEPT

    @classmethod
    def to(cls, state: str) -> "Transition":
        """An unconditional transition."""
        return cls(default=state)

    @classmethod
    def select(
        cls,
        keys: tuple[Expr, ...] | list[Expr],
        cases: list[tuple[object, str]],
        default: str = REJECT,
    ) -> "Transition":
        """Build a select transition from a readable case list.

        Each case is ``(pattern, next_state)`` where ``pattern`` is an
        int (exact match on one key), a ``(value, mask)`` tuple, or for
        multi-key selects a tuple of those.
        """
        keys = tuple(keys)
        compiled: list[SelectCase] = []
        for pattern, next_state in cases:
            if len(keys) == 1:
                pattern = (pattern,)
            if not isinstance(pattern, tuple):
                raise P4ValidationError(
                    f"select case pattern must be tuple, got {pattern!r}"
                )
            parts: list[tuple[int, int]] = []
            for part in pattern:
                if isinstance(part, tuple):
                    value, mask_ = part
                else:
                    # -1 acts as an all-ones mask: ``x & -1 == x`` for the
                    # non-negative values P4 deals in.
                    value, mask_ = part, -1
                parts.append((value, mask_))
            compiled.append(SelectCase(tuple(parts), next_state))
        return cls(keys=keys, cases=tuple(compiled), default=default)

    @property
    def is_select(self) -> bool:
        return bool(self.keys)

    def targets(self) -> set[str]:
        """All states this transition may reach."""
        return {case.next_state for case in self.cases} | {self.default}


@dataclass
class ParserState:
    """One parser state: extracts, an optional verify, and a transition.

    Attributes:
        name: State name (not ``accept``/``reject``).
        extracts: Header names extracted, in order, on entering the state.
        verify: Optional ``(condition, error_code)``; when the condition
            evaluates false the parser transitions to ``reject`` with
            ``parser_error`` set to the code.
        transition: How the state exits.
    """

    name: str
    extracts: list[str] = field(default_factory=list)
    verify: tuple[Expr, int] | None = None
    transition: Transition = field(default_factory=lambda: Transition.to(ACCEPT))

    def __post_init__(self) -> None:
        if self.name in (ACCEPT, REJECT):
            raise P4ValidationError(
                f"state name {self.name!r} is reserved"
            )


@dataclass
class Parser:
    """A complete parser: named states and a start state."""

    states: dict[str, ParserState] = field(default_factory=dict)
    start: str = "start"

    def add_state(self, state: ParserState) -> ParserState:
        if state.name in self.states:
            raise P4ValidationError(f"duplicate parser state {state.name!r}")
        self.states[state.name] = state
        return state

    def state(self, name: str) -> ParserState:
        try:
            return self.states[name]
        except KeyError:
            raise P4ValidationError(f"unknown parser state {name!r}") from None

    def reachable_states(self) -> set[str]:
        """Names of states reachable from ``start`` (excluding terminals)."""
        seen: set[str] = set()
        frontier = [self.start]
        while frontier:
            name = frontier.pop()
            if name in (ACCEPT, REJECT) or name in seen:
                continue
            seen.add(name)
            frontier.extend(self.states[name].transition.targets())
        return seen

    def can_reach_reject(self) -> bool:
        """True when some reachable state may transition to ``reject``."""
        for name in self.reachable_states():
            state = self.states[name]
            if state.verify is not None:
                return True
            if REJECT in state.transition.targets():
                return True
        return False

    def max_extract_depth(self) -> int:
        """Upper bound on headers extracted along any path (cycle-safe)."""
        # The parser graph is a DAG in well-formed programs; walk it with
        # memoization and treat back-edges as depth violations elsewhere.
        memo: dict[str, int] = {}
        visiting: set[str] = set()

        def depth(name: str) -> int:
            if name in (ACCEPT, REJECT):
                return 0
            if name in memo:
                return memo[name]
            if name in visiting:
                # Cycle: report a large depth so limits checks trip.
                return 1 << 16
            visiting.add(name)
            state = self.states[name]
            best = max(
                (depth(target) for target in state.transition.targets()),
                default=0,
            )
            visiting.discard(name)
            memo[name] = len(state.extracts) + best
            return memo[name]

        return depth(self.start)
