"""The simulated network device: ports, pipeline, management interface.

A :class:`NetworkDevice` wires a :class:`~repro.target.pipeline.StagedPipeline`
behind external traffic ports, tracks per-port and device-wide
statistics, advances a clock by the pipeline's cycle model, and exposes
the *dedicated management interface* NetDebug relies on: loading
programs, the control plane, internal taps, direct mid-pipeline
injection (which never touches the traffic ports), fault injection, and
structured status reads.

Two traffic paths exist:

* :meth:`process` / :meth:`process_batch` — the external path: a frame
  arrives on a port, counters move, and forwarded output leaves on
  ports (with :data:`FLOOD_PORT` flooding all ports but the ingress).
* :meth:`inject` / :meth:`inject_batch` — NetDebug's internal path:
  test packets enter the pipeline directly at any tap and, by default,
  never emerge on the wire. Device statistics still account for them
  (the hardware did process the packet); port counters do not.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..controlplane import RuntimeAPI
from ..exceptions import TargetError
from ..p4.interpreter import RuntimeState, Verdict
from ..p4.program import P4Program
from .compiler import CompiledProgram, TargetCompiler
from .faults import FaultInjector
from .limits import ArchLimits
from .pipeline import StagedPipeline, TAP_INPUT, TargetRun

__all__ = ["ENGINES", "FLOOD_PORT", "Port", "DeviceStats", "NetworkDevice"]

#: Egress value meaning "flood to every port except the ingress".
FLOOD_PORT = 0x1FF

#: Execution engines a device can run: spec-faithful tree-walking,
#: per-packet compiled closures, or the block-compiled batch kernel.
ENGINES = ("tree", "closure", "batch")


@dataclass
class Port:
    """One external traffic port with RX/TX accounting."""

    index: int
    rx_packets: int = 0
    rx_bytes: int = 0
    tx_packets: int = 0
    tx_bytes: int = 0


@dataclass
class DeviceStats:
    """Device-wide packet accounting."""

    processed: int = 0
    forwarded: int = 0
    dropped: int = 0
    parser_rejected: int = 0
    invalid_egress: int = 0

    def as_dict(self) -> dict[str, int]:
        return {
            "processed": self.processed,
            "forwarded": self.forwarded,
            "dropped": self.dropped,
            "parser_rejected": self.parser_rejected,
            "invalid_egress": self.invalid_egress,
        }


class NetworkDevice:
    """A simulated programmable device driven by one target compiler."""

    def __init__(
        self,
        name: str,
        compiler: TargetCompiler,
        num_ports: int = 8,
        use_compiled: bool = True,
        engine: str | None = None,
    ):
        if engine is None:
            engine = "closure" if use_compiled else "tree"
        if engine not in ENGINES:
            raise TargetError(
                f"unknown execution engine {engine!r}; "
                f"choose one of {', '.join(ENGINES)}"
            )
        self.name = name
        self.compiler = compiler
        self.limits: ArchLimits = compiler.limits
        self.ports = [Port(index) for index in range(num_ports)]
        self.stats = DeviceStats()
        self.injector = FaultInjector()
        self.clock_cycles = 0
        self.engine = engine
        self._use_compiled = engine != "tree"
        self._compiled: CompiledProgram | None = None
        self._pipeline: StagedPipeline | None = None
        self._control: RuntimeAPI | None = None
        self._state: RuntimeState | None = None
        self._batch = None

    # ------------------------------------------------------------------
    # Program lifecycle
    # ------------------------------------------------------------------
    def load(self, program: P4Program) -> CompiledProgram:
        """Compile ``program`` for this target and install it."""
        return self.install(self.compiler.compile(program))

    def install(self, compiled: CompiledProgram) -> CompiledProgram:
        """Install an already-compiled artifact, skipping compilation.

        The artifact itself is stateless — fast-path closures read all
        mutable state (counters, registers, metadata) from per-run
        structures — so one :class:`CompiledProgram` can back many
        devices. This is the campaign worker path: each worker compiles
        a program once and stamps out a fresh device (fresh runtime
        state, stats, clock, fault set) per shard. Note the *program*
        object (and its installed table entries) is shared by every
        device installing the same artifact.
        """
        if compiled.target_name != self.limits.name:
            raise TargetError(
                f"artifact compiled for target {compiled.target_name!r} "
                f"cannot be installed on {self.limits.name!r} device "
                f"{self.name!r}"
            )
        program = compiled.program
        state = RuntimeState.for_program(program)
        self._compiled = compiled
        self._state = state
        self._control = RuntimeAPI(program, state)
        self._pipeline = StagedPipeline(
            compiled,
            self.limits,
            state=state,
            injector=self.injector,
            use_compiled=self._use_compiled,
        )
        if self.engine == "batch":
            from .batch import get_batch_program

            self._batch = get_batch_program(compiled, self.limits)
        else:
            self._batch = None
        return compiled

    def _require_pipeline(self) -> StagedPipeline:
        if self._pipeline is None:
            raise TargetError(
                f"device {self.name!r} has no program loaded"
            )
        return self._pipeline

    @property
    def compiled(self) -> CompiledProgram:
        if self._compiled is None:
            raise TargetError(
                f"device {self.name!r} has no program loaded"
            )
        return self._compiled

    @property
    def program(self) -> P4Program:
        return self.compiled.program

    @property
    def control_plane(self) -> RuntimeAPI:
        if self._control is None:
            raise TargetError(
                f"device {self.name!r} has no program loaded"
            )
        return self._control

    @property
    def pipeline(self) -> StagedPipeline:
        return self._require_pipeline()

    # ------------------------------------------------------------------
    # Management interface: taps and topology
    # ------------------------------------------------------------------
    def stage_names(self) -> list[str]:
        return self._require_pipeline().stage_names()

    def attach_tap(self, stage: str, callback) -> None:
        self._require_pipeline().attach_tap(stage, callback)

    def detach_tap(self, stage: str, callback) -> None:
        self._require_pipeline().detach_tap(stage, callback)

    # ------------------------------------------------------------------
    # External traffic path
    # ------------------------------------------------------------------
    def process(
        self,
        wire: bytes,
        ingress_port: int = 0,
        timestamp: int | None = None,
    ) -> list[tuple[int, bytes]]:
        """One frame in on a port; returns ``(port, wire)`` outputs."""
        pipeline = self._require_pipeline()
        if not 0 <= ingress_port < len(self.ports):
            raise TargetError(
                f"device {self.name!r} has no port {ingress_port}"
            )
        port = self.ports[ingress_port]
        port.rx_packets += 1
        port.rx_bytes += len(wire)
        run = pipeline.process(
            wire,
            ingress_port=ingress_port,
            timestamp=self.clock_cycles if timestamp is None else timestamp,
        )
        self._account(run)
        return self._emit(run, exclude_port=ingress_port)

    def process_batch(
        self,
        wires,
        ingress_port: int = 0,
        timestamp: int | None = None,
    ) -> list[list[tuple[int, bytes]]]:
        """Process many frames back to back on one port.

        The batched path amortizes per-packet setup: the pipeline,
        port record and accounting callables are resolved once for the
        whole batch, and header extraction inside the compiled parser
        runs over memoryviews so no per-header wire copies are made.
        """
        pipeline = self._require_pipeline()
        if not 0 <= ingress_port < len(self.ports):
            raise TargetError(
                f"device {self.name!r} has no port {ingress_port}"
            )
        port = self.ports[ingress_port]
        run_one = pipeline.process
        account = self._account
        emit = self._emit
        outputs: list[list[tuple[int, bytes]]] = []
        for wire in wires:
            port.rx_packets += 1
            port.rx_bytes += len(wire)
            run = run_one(
                wire,
                ingress_port=ingress_port,
                timestamp=(
                    self.clock_cycles if timestamp is None else timestamp
                ),
            )
            account(run)
            outputs.append(emit(run, exclude_port=ingress_port))
        return outputs

    # ------------------------------------------------------------------
    # NetDebug's internal injection path
    # ------------------------------------------------------------------
    def inject(
        self,
        wire: bytes,
        at: str = TAP_INPUT,
        port: int = 0,
        timestamp: int | None = None,
        emit: bool = False,
    ) -> TargetRun:
        """Inject a test frame directly into the pipeline at tap ``at``.

        Test traffic bypasses the external ports entirely unless
        ``emit`` is set, in which case forwarded output leaves the
        device as ordinary traffic would.
        """
        pipeline = self._require_pipeline()
        run = pipeline.process(
            wire,
            inject_at=at,
            ingress_port=port,
            timestamp=self.clock_cycles if timestamp is None else timestamp,
        )
        self._account(run)
        if emit:
            self._emit(run, exclude_port=port)
        return run

    def inject_batch(
        self,
        wires,
        at: str = TAP_INPUT,
        port: int = 0,
    ) -> list[tuple[int, TargetRun]]:
        """Inject many test frames back to back at tap ``at``.

        Returns ``(timestamp, run)`` per frame, where ``timestamp`` is
        the device clock at injection time (what a wrapped probe would
        carry). Setup is hoisted out of the loop; this is the path
        :meth:`repro.netdebug.generator.PacketGenerator.run_stream`
        uses to drive line-rate streams.
        """
        pipeline = self._require_pipeline()
        run_one = pipeline.process
        account = self._account
        results: list[tuple[int, TargetRun]] = []
        for wire in wires:
            timestamp = self.clock_cycles
            run = run_one(
                wire, inject_at=at, ingress_port=port, timestamp=timestamp
            )
            account(run)
            results.append((timestamp, run))
        return results

    def inject_block(
        self,
        wires,
        timestamps=None,
        port: int = 0,
        ports=None,
        on_error: str = "raise",
    ):
        """Inject a block of test frames through the batch kernel.

        Semantically equivalent to calling :meth:`inject` per frame at
        the ``input`` tap (``timestamps`` optionally pins per-frame
        timestamps; missing entries fall back to the running clock),
        but executed block-wise when the device runs the ``batch``
        engine, no taps are attached and no faults are armed — the
        kernel cannot publish snapshots or model faults, so those
        cases fall back to the per-packet pipeline transparently.

        ``ports`` optionally pins per-frame ingress ports (missing
        entries fall back to the scalar ``port``) — how bidirectional
        streams thread each packet's direction through the block path.

        Returns ``(timestamp, outcome)`` per frame, where ``outcome``
        is the :class:`TargetRun` or — with ``on_error="capture"`` —
        the exception the per-packet path would have raised. The
        default ``on_error="raise"`` re-raises the first (lowest-index)
        captured error after accounting all non-errored frames.
        """
        wires = list(wires)
        pipeline = self._require_pipeline()
        batch = self._batch
        injector = self.injector
        if (
            batch is not None
            and not pipeline.has_taps()
            and not (injector is not None and injector._active)
        ):
            outcomes = batch.run_block(
                wires,
                clock=self.clock_cycles,
                timestamps=timestamps,
                ingress_port=port,
                ingress_ports=ports,
                counters=self._state.counters,
                registers=self._state.registers,
            )
        else:
            outcomes = self._inject_block_fallback(
                wires, timestamps, port, ports
            )
        account = self._account
        results = []
        first_error = None
        for timestamp, run, error in outcomes:
            if error is not None:
                if first_error is None:
                    first_error = error
                results.append((timestamp, error))
            else:
                account(run)
                results.append((timestamp, run))
        if on_error == "raise" and first_error is not None:
            raise first_error
        return results

    def _inject_block_fallback(self, wires, timestamps, port, ports=None):
        """Per-packet block execution with batch-identical outcomes."""
        pipeline = self._pipeline
        clock = self.clock_cycles
        covered = len(timestamps) if timestamps is not None else 0
        ports_covered = len(ports) if ports is not None else 0
        outcomes = []
        for index, wire in enumerate(wires):
            timestamp = (
                timestamps[index] if index < covered else clock
            )
            try:
                run = pipeline.process(
                    wire,
                    ingress_port=(
                        ports[index] if index < ports_covered else port
                    ),
                    timestamp=timestamp,
                )
            except Exception as exc:
                outcomes.append((timestamp, None, exc))
                continue
            clock += run.latency_cycles
            outcomes.append((timestamp, run, None))
        return outcomes

    # ------------------------------------------------------------------
    # Accounting and emission
    # ------------------------------------------------------------------
    def _account(self, run: TargetRun) -> None:
        stats = self.stats
        stats.processed += 1
        self.clock_cycles += run.latency_cycles
        verdict = run.result.verdict
        if verdict is Verdict.PARSER_REJECTED:
            stats.parser_rejected += 1
        elif verdict is Verdict.DROPPED:
            stats.dropped += 1

    def _emit(
        self, run: TargetRun, exclude_port: int | None = None
    ) -> list[tuple[int, bytes]]:
        """Turn a forwarded run into per-port outputs with TX counting."""
        if run.result.verdict is not Verdict.FORWARDED:
            return []
        egress = run.result.metadata.get("egress_spec", 0)
        wire = run.output_wire
        if wire is None:
            wire = run.result.packet.pack()
            run.output_wire = wire
        size = len(wire)
        if egress == FLOOD_PORT:
            outputs = []
            for port in self.ports:
                if port.index == exclude_port:
                    continue
                port.tx_packets += 1
                port.tx_bytes += size
                outputs.append((port.index, wire))
            self.stats.forwarded += 1
            return outputs
        if 0 <= egress < len(self.ports):
            port = self.ports[egress]
            port.tx_packets += 1
            port.tx_bytes += size
            self.stats.forwarded += 1
            return [(egress, wire)]
        self.stats.invalid_egress += 1
        return []

    # ------------------------------------------------------------------
    # Status (the periodic internal-status use case)
    # ------------------------------------------------------------------
    def status(self) -> dict:
        """A structured snapshot of everything the management interface
        can read: stats, ports, program, resources, tables, state."""
        status: dict = {
            "device": self.name,
            "target": self.limits.name,
            "clock_cycles": self.clock_cycles,
            "stats": self.stats.as_dict(),
            "ports": [
                {
                    "port": port.index,
                    "rx_packets": port.rx_packets,
                    "rx_bytes": port.rx_bytes,
                    "tx_packets": port.tx_packets,
                    "tx_bytes": port.tx_bytes,
                }
                for port in self.ports
            ],
        }
        if self._compiled is not None:
            compiled = self._compiled
            status["program"] = compiled.program.name
            status["resources"] = compiled.resources.as_dict()
            status["utilization"] = dict(compiled.utilization)
            status["tables"] = {
                name: {"installed": installed, "capacity": capacity}
                for name, (installed, capacity)
                in self._control.table_occupancy().items()
            }
            status["counters"] = {
                name: list(cells)
                for name, cells in self._state.counters.items()
            }
            status["registers"] = {
                name: list(cells)
                for name, cells in self._state.registers.items()
            }
        return status
