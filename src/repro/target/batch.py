"""Batch-compiled vectorized execution — the block fast path.

The closure engine (:mod:`repro.target.fastpath`) already avoids tree
walking, but it still pays the full staged-pipeline machinery once per
packet: stage-tuple unpacking, barrier checks, tap and fault probes,
trace allocation, traversal bookkeeping. For a campaign shard of ~800
packets that is ~10k Python-level iterations whose control flow is
identical for every packet.

This module compiles each program **once more**, into a **batch
kernel** that processes a struct-of-arrays packet block:

* per-packet control state lives in parallel arrays (``exited``,
  ``errors``, ``drop_stage``, word costs, timestamps) instead of being
  rediscovered inside a per-packet stage loop;
* the parser partitions the block once into accepted / rejected /
  raised lanes — the per-stage loops only ever visit live lanes;
* an all-``EXACT`` table apply is specialized into a dict-get over a
  key column: entries are snapshotted into a hash map once per block
  (highest priority wins, first installed wins ties — exactly the
  closure engine's ``rank > best_rank`` selection) and each packet
  costs one dict lookup instead of a scan over the entry list;
* verdicts, egress, latency and deparse are emitted column-wise with
  the cycle model evaluated *analytically* per death class rather than
  accumulated stage by stage.

The kernel reuses the closure engine's compiled parser, stage and
deparse closures, so expression semantics cannot drift; everything the
staged pipeline does *between* closures (drop barriers, exit handling,
cycle accounting, traversal and death attribution) is reimplemented
here block-wise and pinned byte-for-byte against both per-packet
engines by ``tests/test_target_batch_differential.py``.

Execution modes
---------------

``run_block`` picks between two schedules:

* **stage-major (columnar)** — every live packet runs stage ``k``
  before any packet runs stage ``k+1``. Valid only when packets cannot
  couple: the program must be register-free (counter increments
  commute; register read/write order does not) and the block must not
  need mid-block clock feedback — either every packet's timestamp is
  supplied up front, or the program provably never reads
  ``ingress_global_timestamp`` (checked by walking the IR for
  ``MetaRef`` nodes), in which case timestamps are backfilled from the
  running clock after the block completes.
* **packet-major (sequential)** — a degenerate block of one packet at
  a time, with the device clock advanced between packets. Used for
  register-coupled or timestamp-coupled untimed blocks; same code
  path, so identical semantics, just no cross-packet amortization.

Faults and taps are *not* modelled here: the device only routes blocks
through the kernel when no taps are attached and the fault injector is
idle, falling back to the per-packet pipeline otherwise.

Error semantics: the per-packet engines *raise* out of ``process`` on
runtime errors (invalid-header access on a deviant target, unknown
parser state, …) and the differential harnesses catch per packet. The
kernel therefore captures each packet's exception in its lane — the
packet commits exactly the mutations made before the raise and is
excluded from later stages, which is what a caller catching-and-
continuing per packet would observe.
"""

from __future__ import annotations

import dataclasses

from ..bitutils import mask
from ..exceptions import P4ValidationError, PacketError
from ..p4.control import ApplyTable
from ..p4.expr import (
    BinOp,
    Const,
    FieldRef,
    MetaRef,
    Slice,
    UnOp,
    compile_expr,
)
from ..p4.interpreter import (
    ExitPipeline,
    MAX_PARSER_STEPS,
    PipelineResult,
    Trace,
    Verdict,
)
from ..p4.parser import ACCEPT, REJECT
from ..p4.table import MatchKind
from ..p4.types import (
    PARSER_ERROR_DEPTH_EXCEEDED,
    PARSER_ERROR_HEADER_TOO_SHORT,
    PARSER_ERROR_REJECT,
    PARSER_ERROR_VERIFY_FAILED,
    standard_metadata_defaults,
)
from ..packet.packet import Packet
from .compiler import CompiledProgram
from .fastpath import (
    ExecState,
    _compile_action,
    _fast_header,
    _field_layout,
    control_stages,
)
from .limits import ArchLimits
from .pipeline import TargetRun

__all__ = ["BatchProgram", "build_batch_program", "get_batch_program"]

_EMPTY_SET: frozenset = frozenset()

#: Cycle cost of one match-action stage (mirrors StagedPipeline).
_STMT_CYCLES = 12

_TS_MASK = 0xFFFFFFFFFFFF


def _reads_metadata(root, name: str) -> bool:
    """Walk the IR for a ``MetaRef(name)`` read, generically.

    Every IR node is a dataclass; containers are dicts/tuples/lists.
    Anything else (ints, strings, enums, callables) is a leaf.
    """
    seen: set[int] = set()
    stack = [root]
    while stack:
        node = stack.pop()
        if isinstance(node, MetaRef):
            if node.name == name:
                return True
            continue
        if dataclasses.is_dataclass(node) and not isinstance(node, type):
            if id(node) in seen:
                continue
            seen.add(id(node))
            for f in dataclasses.fields(node):
                stack.append(getattr(node, f.name))
        elif isinstance(node, dict):
            stack.extend(node.keys())
            stack.extend(node.values())
        elif isinstance(node, (list, tuple, set, frozenset)):
            stack.extend(node)
    return False


# ----------------------------------------------------------------------
# Source-specialized parser and deparser
# ----------------------------------------------------------------------
# The closure parser is already interpretation-free, but it still pays
# a per-packet *interpretive* walk over the state table: tuple
# unpacking per state, a loop over the extract list, a dict
# comprehension per header and a closure call per select key. The
# batch compiler goes one step further and generates straight-line
# Python source per program — extraction as dict literals with
# constant shifts/masks, select cases as chained comparisons on local
# variables — and ``exec``s it once. Semantics are pinned against the
# closure parser by the differential suite; any construct the
# generator does not handle falls back to the closure parser wholesale.

def _expr_source(expr, env, local_headers: dict[str, str]) -> str | None:
    """Python source for ``expr``, mirroring ``compile_expr`` bit for
    bit, or ``None`` when the node (or a referenced header that is not
    a just-extracted local) needs the closure fallback."""
    if isinstance(expr, Const):
        return repr(expr.value)
    if isinstance(expr, FieldRef):
        var = local_headers.get(expr.header)
        spec = env.headers.get(expr.header)
        if var is None or spec is None or not spec.has_field(expr.field):
            return None
        return f"{var}[{expr.field!r}]"
    if isinstance(expr, BinOp):
        left = _expr_source(expr.left, env, local_headers)
        right = _expr_source(expr.right, env, local_headers)
        if left is None or right is None:
            return None
        op = expr.op
        if op == "and":
            return f"((1 if {right} else 0) if {left} else 0)"
        if op == "or":
            return f"(1 if {left} else (1 if {right} else 0))"
        if op in ("==", "!=", "<", "<=", ">", ">="):
            return f"(1 if {left} {op} {right} else 0)"
        if op in ("&", "|", "^", ">>"):
            return f"({left} {op} {right})"
        if op in ("+", "-", "*", "<<"):
            try:
                result_mask = mask(expr.width(env))
            except Exception:
                return None
            return f"(({left} {op} {right}) & {result_mask})"
        return None
    if isinstance(expr, UnOp):
        operand = _expr_source(expr.operand, env, local_headers)
        if operand is None:
            return None
        if expr.op == "!":
            return f"(0 if {operand} else 1)"
        try:
            operand_mask = mask(expr.operand.width(env))
        except Exception:
            return None
        if expr.op == "~":
            return f"({operand} ^ {operand_mask})"
        if expr.op == "-":
            return f"((-{operand}) & {operand_mask})"
        return None
    if isinstance(expr, Slice):
        operand = _expr_source(expr.operand, env, local_headers)
        if operand is None:
            return None
        try:
            width = expr.operand.width(env)
        except Exception:
            return None
        if not 0 <= expr.low <= expr.high < width:
            return None  # compile_expr raises; let the fallback do it
        return (
            f"(({operand} >> {expr.low}) & "
            f"{mask(expr.high - expr.low + 1)})"
        )
    return None


def _parser_acyclic_unique_extracts(program) -> bool:
    """True when no parse can ever extract the same header twice.

    The generated parser's duplicate bookkeeping (a ``seen`` set with a
    membership probe and an insert per extracted header) mirrors the
    closure parser's header-stack rejection. When the parser FSM is
    acyclic **and** every header name appears in at most one state's
    extract list (at most once), a duplicate extract is structurally
    impossible — no state can run twice and no two states extract the
    same name — so the bookkeeping is dead work on every packet and
    the generator elides it.
    """
    states = program.parser.states
    extracted: set[str] = set()
    for state in states.values():
        for name in state.extracts:
            if name in extracted:
                return False
            extracted.add(name)

    def successors(state):
        transition = state.transition
        if transition.is_select:
            for case in transition.cases:
                yield case.next_state
        yield transition.default

    # Iterative 3-colour DFS over real states (accept/reject/unknown
    # targets are terminal); any grey→grey edge is a cycle.
    WHITE, GREY, BLACK = 0, 1, 2
    colour = {name: WHITE for name in states}
    for root in states:
        if colour[root] != WHITE:
            continue
        stack = [(root, iter(successors(states[root])))]
        colour[root] = GREY
        while stack:
            name, edges = stack[-1]
            advanced = False
            for target in edges:
                if target not in states:
                    continue
                if colour[target] == GREY:
                    return False
                if colour[target] == WHITE:
                    colour[target] = GREY
                    stack.append(
                        (target, iter(successors(states[target])))
                    )
                    advanced = True
                    break
            if not advanced:
                colour[name] = BLACK
                stack.pop()
    return True


def _compile_block_parser(program, honor_reject: bool):
    """Generate ``parse(wire, metadata)`` as specialized source.

    Returns ``None`` when any parser construct resists generation —
    the caller then uses the closure parser, which handles everything.
    """
    env = program.env
    states = list(program.parser.states.values())
    index_of = {state.name: k for k, state in enumerate(states)}
    cont = repr(not honor_reject)  # verdict for rejected/errored parses
    track_duplicates = not _parser_acyclic_unique_extracts(program)

    namespace: dict = {
        "_Packet": Packet,
        "_fast_header": _fast_header,
        "_PacketError": PacketError,
        "_P4ValidationError": P4ValidationError,
    }
    lines = [
        "def parse(wire, metadata):",
        "    packet = _Packet()",
        "    headers = packet.headers",
    ]
    if track_duplicates:
        lines.append("    seen = set()")
    lines += [
        "    size = len(wire)",
        "    offset = 0",
        "    steps = 0",
        f"    state = {index_of[program.parser.start]}",
        "    while True:",
        "        steps += 1",
        f"        if steps > {MAX_PARSER_STEPS}:",
        f"            metadata['parser_error'] = "
        f"{PARSER_ERROR_DEPTH_EXCEEDED!r}",
        f"            return packet, wire[offset:], {cont}",
    ]

    def goto(target: str, indent: str) -> list[str]:
        if target == ACCEPT:
            return [f"{indent}return packet, wire[offset:], True"]
        if target == REJECT:
            return [
                f"{indent}metadata['parser_error'] = "
                f"{PARSER_ERROR_REJECT!r}",
                f"{indent}return packet, wire[offset:], {cont}",
            ]
        if target in index_of:
            return [
                f"{indent}state = {index_of[target]}",
                f"{indent}continue",
            ]
        # Mirrors the closure parser's unknown-state failure.
        message = f"unknown parser state {target!r}"
        return [f"{indent}raise _P4ValidationError({message!r})"]

    for k, state in enumerate(states):
        branch = "if" if k == 0 else "elif"
        lines.append(f"        {branch} state == {k}:")
        body: list[str] = []
        pad = "            "
        local_headers: dict[str, str] = {}
        for name in state.extracts:
            spec = env.header(name)
            byte_width = spec.byte_width
            var = f"v_{k}_{len(local_headers)}"
            spec_var = f"_spec_{name}"
            namespace[spec_var] = spec
            fields = ", ".join(
                f"{fname!r}: (w >> {shift}) & {field_mask}"
                if shift
                else f"{fname!r}: w & {field_mask}"
                for fname, shift, field_mask in _field_layout(spec)
            )
            dup = (
                f"duplicate header {name!r}; header stacks of the "
                "same type are not supported by this model"
            )
            body += [
                f"{pad}if size - offset < {byte_width}:",
                f"{pad}    metadata['parser_error'] = "
                f"{PARSER_ERROR_HEADER_TOO_SHORT!r}",
                f"{pad}    return packet, wire[offset:], {cont}",
            ]
            if track_duplicates:
                body += [
                    f"{pad}if {name!r} in seen:",
                    f"{pad}    raise _PacketError({dup!r})",
                    f"{pad}seen.add({name!r})",
                ]
            body += [
                f"{pad}w = int.from_bytes("
                f"wire[offset:offset + {byte_width}], 'big')",
                f"{pad}{var} = {{{fields}}}",
                f"{pad}headers.append(_fast_header({spec_var}, {var}))",
                f"{pad}offset += {byte_width}",
            ]
            local_headers[name] = var
        if state.verify is not None:
            cond, code = state.verify
            code = code or PARSER_ERROR_VERIFY_FAILED
            source = _expr_source(cond, env, local_headers)
            if source is None:
                verify_var = f"_verify_{k}"
                try:
                    namespace[verify_var] = compile_expr(cond, env)
                except Exception:
                    return None
                source = f"{verify_var}(packet, metadata, ())"
            body.append(f"{pad}if not {source}:")
            body.append(
                f"{pad}    metadata['parser_error'] = {code!r}"
            )
            if honor_reject:
                body.append(
                    f"{pad}    return packet, wire[offset:], False"
                )
            # Deviant target: keep parsing as if verify passed.
        transition = state.transition
        if transition.is_select:
            key_vars = []
            for j, key_expr in enumerate(transition.keys):
                source = _expr_source(key_expr, env, local_headers)
                if source is None:
                    key_var = f"_key_{k}_{j}"
                    try:
                        namespace[key_var] = compile_expr(key_expr, env)
                    except Exception:
                        return None
                    source = f"{key_var}(packet, metadata, ())"
                var = f"k_{j}"
                body.append(f"{pad}{var} = {source}")
                key_vars.append(var)
            for case in transition.cases:
                terms = []
                for var, (value, key_mask) in zip(key_vars, case.patterns):
                    if key_mask == -1:
                        terms.append(f"{var} == {value}")
                    else:
                        terms.append(
                            f"({var} & {key_mask}) == {value & key_mask}"
                        )
                cond_src = " and ".join(terms) if terms else "True"
                body.append(f"{pad}if {cond_src}:")
                body += goto(case.next_state, pad + "    ")
            body += goto(transition.default, pad)
        else:
            body += goto(transition.default, pad)
        lines += body

    source_text = "\n".join(lines) + "\n"
    try:
        exec(compile(source_text, "<batch-parser>", "exec"), namespace)
    except SyntaxError:  # pragma: no cover - generator bug guard
        return None
    return namespace["parse"]


def _compile_block_deparser(program, fast_deparse, field_budget):
    """Generate a single-pass deparser specialized to the emit order.

    The closure deparser scans ``packet.headers`` once per emitted
    name (quadratic in header count, with a property access per
    probe); the generated form indexes the headers once and emits the
    budgeted prefix with direct attribute reads.
    """
    emit_order = program.deparser.emit_prefix(program.env, field_budget)
    namespace: dict = {
        "_Packet": Packet,
        "_fast_header": _fast_header,
        "_new": Packet.__new__,
    }
    lines = [
        "def deparse(packet):",
        "    by_name = {}",
        "    for header in packet.headers:",
        "        name = header.spec.name",
        "        if name not in by_name:",
        "            by_name[name] = header",
        "    emitted = []",
        "    append = emitted.append",
        "    get = by_name.get",
    ]
    # Unlike the closure deparser, the emitted headers are NOT copied:
    # the kernel's input packets are never observable after deparse (the
    # lane's PipelineResult carries only the output packet), so sharing
    # the header objects is invisible — and skips a dict copy plus a
    # Header allocation per emitted header.
    for name in emit_order:
        lines += [
            f"    header = get({name!r})",
            "    if header is not None and header.valid:",
            "        append(header)",
        ]
    lines += [
        "    out = _new(_Packet)",
        "    out.headers = emitted",
        "    out.payload = packet.payload",
        "    out.metadata = dict(packet.metadata)",
        "    return out",
    ]
    try:
        exec(compile("\n".join(lines) + "\n", "<batch-deparser>", "exec"),
             namespace)
    except SyntaxError:  # pragma: no cover - generator bug guard
        return fast_deparse
    return namespace["deparse"]


# ----------------------------------------------------------------------
# Block-wise stage compilation
# ----------------------------------------------------------------------
def _generic_stage(stage_name: str, fast_fn):
    """Wrap one closure-engine stage for block execution.

    Replicates the staged pipeline's per-stage bookkeeping: ExitPipeline
    marks the lane exited (drop tracking still runs for that stage, as
    in the pipeline), any other exception parks the lane, and the
    drop-origin tracker mirrors ``drop_stage`` exactly.
    """

    def run(states, live, exited, errors, drop_stage, stuck):
        for i in live:
            if exited[i] or errors[i] is not None:
                continue
            state = states[i]
            try:
                fast_fn(state)
            except ExitPipeline:
                exited[i] = True
            except Exception as exc:  # captured per lane, see module doc
                errors[i] = exc
                continue
            if state.metadata["drop"]:
                if drop_stage[i] is None:
                    drop_stage[i] = stage_name
            else:
                drop_stage[i] = None

    return run


def _exact_table_stage(program, table, stage_name: str):
    """Specialize an all-EXACT ``table.apply()`` into a dict-get column.

    Entries are snapshotted into ``{key-column value: entry}`` once per
    block; a later entry replaces an earlier one only on strictly
    higher priority, reproducing the closure engine's
    ``rank > best_rank`` selection (rank is ``(0, priority)`` for
    EXACT-only tables, so first-installed wins ties). Control-plane
    updates between blocks stay visible because the snapshot reads the
    live entry list.
    """
    env = program.env
    key_fns = tuple(compile_expr(key.expr, env) for key in table.keys)
    action_fns = {
        name: _compile_action(program, action)
        for name, action in table.actions.items()
    }
    table_name = table.name
    single = len(key_fns) == 1
    first_key = key_fns[0] if single else None

    def run(states, live, exited, errors, drop_stage, stuck):
        stuck_miss = table_name in stuck
        lookup: dict = {}
        if not stuck_miss:
            for entry in table.entries:
                patterns = entry.patterns
                key = (
                    patterns[0].value
                    if single
                    else tuple(p.value for p in patterns)
                )
                prev = lookup.get(key)
                if prev is None or entry.priority > prev.priority:
                    lookup[key] = entry
        get = lookup.get
        default_fn = action_fns[table.default_action]
        default_data = table.default_action_data
        for i in live:
            if exited[i] or errors[i] is not None:
                continue
            state = states[i]
            packet, metadata = state.packet, state.metadata
            try:
                if stuck_miss:
                    entry = None
                else:
                    key = (
                        first_key(packet, metadata, ())
                        if single
                        else tuple(
                            fn(packet, metadata, ()) for fn in key_fns
                        )
                    )
                    entry = get(key)
                if entry is None:
                    default_fn(state, default_data)
                else:
                    action_fns[entry.action](state, entry.action_data)
            except ExitPipeline:
                exited[i] = True
            except Exception as exc:
                errors[i] = exc
                continue
            if metadata["drop"]:
                if drop_stage[i] is None:
                    drop_stage[i] = stage_name
            else:
                drop_stage[i] = None

    return run


def _compile_control_block(program, control, fast_stages):
    """Block-wise stage functions for one control, index-aligned with
    the staged pipeline's stage list (``None`` entries are elided: an
    empty stage cannot change the drop flag, so skipping it preserves
    the drop-origin invariant)."""
    fns = []
    for index, stmt in enumerate(control_stages(control)):
        name = f"{control.name}.{index}"
        if (
            isinstance(stmt, ApplyTable)
            and all(
                key.kind is MatchKind.EXACT
                for key in control.table(stmt.table).keys
            )
        ):
            # EXACT matching is unaffected by TCAM quantization, so the
            # specialization is valid on every target.
            fns.append(
                _exact_table_stage(
                    program, control.table(stmt.table), name
                )
            )
        elif fast_stages[index] is not None:
            fns.append(_generic_stage(name, fast_stages[index]))
    return fns


class BatchProgram:
    """A program compiled for block execution on one target."""

    __slots__ = (
        "program",
        "fast",
        "parse",
        "deparse",
        "bus_bytes",
        "columnar",
        "timestamp_free",
        "_template",
        "_ingress_fns",
        "_egress_fns",
        "n_ingress",
        "n_egress",
        "_stmt_cycles_total",
        "_names_forwarded",
        "_names_egress_barrier",
        "_names_deparse_barrier",
        "_names_rejected",
        "_null_trace",
        "_last_before_egress",
        "_last_before_deparse",
    )

    def __init__(self, compiled: CompiledProgram, limits: ArchLimits):
        fast = compiled.fast
        if fast is None:
            raise ValueError(
                "batch compilation requires the closure fast path; "
                "rebuild the artifact with TargetCompiler.compile"
            )
        program = compiled.program
        self.program = program
        self.fast = fast
        self.bus_bytes = limits.bus_bytes
        # Source-specialized parser/deparser; the closure forms are the
        # fallback for constructs the generator does not handle.
        self.parse = (
            _compile_block_parser(program, fast.honor_reject)
            or fast.parse
        )
        self.deparse = _compile_block_deparser(
            program, fast.deparse, fast.deparse_field_budget
        )

        template = standard_metadata_defaults()
        for name in program.env.metadata:
            template.setdefault(name, 0)
        self._template = template

        ingress_stmts = control_stages(program.ingress)
        egress_stmts = control_stages(program.egress)
        self.n_ingress = len(ingress_stmts)
        self.n_egress = len(egress_stmts)
        self._ingress_fns = _compile_control_block(
            program, program.ingress, fast.ingress_stages
        )
        self._egress_fns = _compile_control_block(
            program, program.egress, fast.egress_stages
        )
        self._stmt_cycles_total = _STMT_CYCLES * (
            self.n_ingress + self.n_egress
        )

        ing_names = [
            f"{program.ingress.name}.{i}" for i in range(self.n_ingress)
        ]
        eg_names = [
            f"{program.egress.name}.{i}" for i in range(self.n_egress)
        ]
        self._names_egress_barrier = ["input", "parser"] + ing_names
        self._names_deparse_barrier = (
            self._names_egress_barrier + eg_names
        )
        self._names_forwarded = (
            self._names_deparse_barrier + ["deparser", "output"]
        )
        self._names_rejected = ["input", "parser"]
        # Batch runs never trace (the null-trace fast path), and no
        # consumer mutates a TargetRun's trace or traversal list, so one
        # shared instance per kernel replaces a per-packet allocation.
        self._null_trace = Trace()
        self._last_before_egress = (
            ing_names[-1] if ing_names else "parser"
        )
        self._last_before_deparse = (
            eg_names[-1] if eg_names else self._last_before_egress
        )

        # Stage-major execution is valid only when packets cannot couple
        # through shared state: registers serialize (read/write order
        # across packets is observable); counter increments commute.
        self.columnar = not program.registers
        self.timestamp_free = not _reads_metadata(
            (program.parser, program.ingress, program.egress),
            "ingress_global_timestamp",
        )

    # ------------------------------------------------------------------
    # Block execution
    # ------------------------------------------------------------------
    def run_block(
        self,
        wires,
        clock: int = 0,
        timestamps=None,
        ingress_port: int = 0,
        ingress_ports=None,
        counters=None,
        registers=None,
        stuck=_EMPTY_SET,
        frozen=_EMPTY_SET,
    ):
        """Run one block; returns ``(timestamp, run, error)`` per lane.

        Exactly one of ``run`` / ``error`` is non-None per lane.
        ``timestamps`` may be None (derive from the running ``clock``,
        as the per-packet injection path would) or a per-packet list;
        a short list covers a prefix, the rest falls back to the clock.
        ``ingress_ports`` likewise pins per-lane ingress ports, with
        lanes beyond the list falling back to the scalar
        ``ingress_port``. Lane order equals arrival order on every
        schedule — the packet-major path (taken by all register-bearing
        programs) additionally feeds each lane's state to the next, so
        stateful oracles tracking the same sequence stay in sync.
        """
        wires = list(wires)
        n = len(wires)
        if counters is None:
            counters = {}
        if registers is None:
            registers = {}
        ports_covered = (
            len(ingress_ports) if ingress_ports is not None else 0
        )
        ports = [
            ingress_ports[i] if i < ports_covered else ingress_port
            for i in range(n)
        ]
        ts_full = timestamps is not None and len(timestamps) >= n
        if self.columnar and ts_full:
            return self._run_columnar(
                wires, list(timestamps[:n]), ports,
                counters, registers, stuck, frozen,
            )
        if self.columnar and timestamps is None and self.timestamp_free:
            outs = self._run_columnar(
                wires, [0] * n, ports,
                counters, registers, stuck, frozen,
            )
            # Backfill the running clock: packet i is stamped with the
            # clock after all earlier non-errored packets accounted, and
            # the program provably never read the zero placeholder.
            clk = clock
            for i, (_, run, error) in enumerate(outs):
                if error is not None:
                    outs[i] = (clk, None, error)
                else:
                    run.result.metadata["ingress_global_timestamp"] = (
                        clk & _TS_MASK
                    )
                    outs[i] = (clk, run, None)
                    clk += run.latency_cycles
            return outs
        # Packet-major: degenerate blocks of one, clock fed back.
        outs = []
        clk = clock
        covered = len(timestamps) if timestamps is not None else 0
        for i, wire in enumerate(wires):
            ts = timestamps[i] if i < covered else clk
            out = self._run_columnar(
                [wire], [ts], [ports[i]],
                counters, registers, stuck, frozen,
            )[0]
            outs.append(out)
            if out[1] is not None:
                clk += out[1].latency_cycles
        return outs

    def _run_columnar(
        self, wires, ts_list, ports, counters, registers, stuck, frozen
    ):
        n = len(wires)
        parse = self.parse
        template = self._template
        null_trace = self._null_trace
        bus = self.bus_bytes

        states = [None] * n
        word = [0] * n
        errors = [None] * n
        exited = [False] * n
        drop_stage = [None] * n
        outs = [None] * n
        live = []

        # Parser pass: partition the block into accepted / rejected /
        # raised lanes once; later loops only visit live lanes.
        for i in range(n):
            wire = wires[i]
            size = len(wire)
            w = 4 + -(-max(1, size) // bus)
            word[i] = w
            metadata = dict(template)
            metadata["ingress_port"] = ports[i]
            metadata["packet_length"] = size & 0xFFFF
            metadata["ingress_global_timestamp"] = ts_list[i] & _TS_MASK
            try:
                packet, payload, accepted = parse(wire, metadata)
            except Exception as exc:
                outs[i] = (ts_list[i], None, exc)
                continue
            if not accepted:
                outs[i] = (
                    ts_list[i],
                    TargetRun(
                        PipelineResult(
                            Verdict.PARSER_REJECTED, None, metadata,
                            null_trace,
                        ),
                        self._names_rejected,
                        "parser",
                        1 + w,
                    ),
                    None,
                )
                continue
            packet.payload = payload
            states[i] = ExecState(
                packet, metadata, counters, registers, stuck, frozen
            )
            live.append(i)

        for fn in self._ingress_fns:
            fn(states, live, exited, errors, drop_stage, stuck)

        # Egress drop barrier (exists only when egress has stages).
        if self.n_egress:
            kept = []
            drop_cycles = 1 + _STMT_CYCLES * self.n_ingress
            names = self._names_egress_barrier
            last = self._last_before_egress
            for i in live:
                if errors[i] is not None:
                    outs[i] = (ts_list[i], None, errors[i])
                elif states[i].metadata["drop"]:
                    outs[i] = (
                        ts_list[i],
                        TargetRun(
                            PipelineResult(
                                Verdict.DROPPED, None,
                                states[i].metadata, null_trace,
                            ),
                            names,
                            drop_stage[i] or last,
                            drop_cycles + word[i],
                        ),
                        None,
                    )
                else:
                    kept.append(i)
            live = kept

            for fn in self._egress_fns:
                fn(states, live, exited, errors, drop_stage, stuck)

        # Deparser drop barrier.
        kept = []
        drop_cycles = 1 + self._stmt_cycles_total
        names = self._names_deparse_barrier
        last = self._last_before_deparse
        for i in live:
            if errors[i] is not None:
                outs[i] = (ts_list[i], None, errors[i])
            elif states[i].metadata["drop"]:
                outs[i] = (
                    ts_list[i],
                    TargetRun(
                        PipelineResult(
                            Verdict.DROPPED, None,
                            states[i].metadata, null_trace,
                        ),
                        names,
                        drop_stage[i] or last,
                        drop_cycles + word[i],
                    ),
                    None,
                )
            else:
                kept.append(i)
        live = kept

        # Deparse + forward column.
        deparse = self.deparse
        names = self._names_forwarded
        base_cycles = 2 + self._stmt_cycles_total
        for i in live:
            state = states[i]
            metadata = state.metadata
            try:
                out_packet = deparse(state.packet)
            except Exception as exc:
                outs[i] = (ts_list[i], None, exc)
                continue
            metadata["egress_port"] = metadata["egress_spec"]
            outs[i] = (
                ts_list[i],
                TargetRun(
                    PipelineResult(
                        Verdict.FORWARDED, out_packet, metadata,
                        null_trace,
                    ),
                    names,
                    None,
                    base_cycles + 2 * word[i],
                ),
                None,
            )
        return outs


def build_batch_program(
    compiled: CompiledProgram, limits: ArchLimits
) -> BatchProgram:
    """Compile ``compiled`` for block execution (no caching)."""
    return BatchProgram(compiled, limits)


def get_batch_program(
    compiled: CompiledProgram, limits: ArchLimits
) -> BatchProgram:
    """Batch kernel for ``compiled``, built once per artifact."""
    batch = compiled.batch
    if batch is None:
        batch = BatchProgram(compiled, limits)
        compiled.batch = batch
    return batch
