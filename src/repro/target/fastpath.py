"""Closure-compiled program execution — the line-rate fast path.

The spec-faithful interpreter (:mod:`repro.p4.interpreter`) walks the
expression/statement trees for every packet, allocating a
:class:`~repro.p4.interpreter.Trace` and formatting event strings as it
goes. That is the right tool for defining semantics; it is the wrong
tool for driving line-rate experiments. This module compiles each
loaded program **once** into plain Python closures:

* expressions via :func:`repro.p4.expr.compile_expr` (widths and
  truncation masks resolved at compile time, action parameters become
  indexed tuple reads — no per-packet ``bind_expr`` tree rebuilding);
* header extraction as one big-endian integer read per header plus
  precomputed shift/mask pairs per field, operating on a
  ``memoryview`` of the wire so deep parse chains never recopy the
  tail;
* table application with precompiled key evaluators and per-action
  bodies, matching installed entries with exactly the interpreter's
  selection semantics (longest prefix first, then priority);
* **no tracing at all** — the null-trace fast path. Taps and checkers
  observe packets between stages (:mod:`repro.target.pipeline`), never
  through TraceEvents, so nothing is lost.

Equivalence with tree-walking interpretation is pinned by the
differential suite in ``tests/test_target_fastpath_differential.py``.
"""

from __future__ import annotations

from typing import Callable

from ..bitutils import mask, quantize_range, quantize_ternary_mask
from ..exceptions import P4RuntimeError, P4ValidationError, PacketError
from ..p4.actions import (
    Action,
    AddHeader,
    CountPacket,
    Drop,
    Exit,
    Forward,
    HashField,
    NoOp,
    Primitive,
    RegisterRead,
    RegisterWrite,
    RemoveHeader,
    SetField,
    SetMeta,
)
from ..p4.control import ApplyTable, Call, Control, If, IfHit, Seq, Stmt
from ..p4.expr import compile_expr
from ..p4.interpreter import MAX_PARSER_STEPS, ExitPipeline, stable_hash
from ..p4.parser import ACCEPT, REJECT
from ..p4.program import P4Program
from ..p4.table import MatchKind, Table
from ..p4.types import (
    PARSER_ERROR_DEPTH_EXCEEDED,
    PARSER_ERROR_HEADER_TOO_SHORT,
    PARSER_ERROR_REJECT,
    PARSER_ERROR_VERIFY_FAILED,
)
from ..packet.fields import HeaderSpec
from ..packet.packet import Header, Packet

__all__ = [
    "ExecState",
    "FastProgram",
    "compile_program",
    "control_stages",
]


class ExecState:
    """Mutable per-packet execution state threaded through closures."""

    __slots__ = (
        "packet",
        "metadata",
        "counters",
        "registers",
        "stuck_tables",
        "frozen_counters",
    )

    def __init__(self, packet, metadata, counters, registers,
                 stuck_tables, frozen_counters):
        self.packet = packet
        self.metadata = metadata
        self.counters = counters
        self.registers = registers
        self.stuck_tables = stuck_tables
        self.frozen_counters = frozen_counters


def _fast_header(spec: HeaderSpec, values: dict[str, int]) -> Header:
    """Build a Header without re-validating extraction output."""
    header = Header.__new__(Header)
    object.__setattr__(header, "spec", spec)
    object.__setattr__(header, "valid", True)
    object.__setattr__(header, "_values", values)
    return header


def _field_layout(spec: HeaderSpec) -> tuple[tuple[str, int, int], ...]:
    """Per-field ``(name, shift, mask)`` within the whole-header word."""
    total = spec.bit_width
    return tuple(
        (f.name, total - spec.offset_of(f.name) - f.width, mask(f.width))
        for f in spec.fields
    )


# ----------------------------------------------------------------------
# Parser
# ----------------------------------------------------------------------
def _compile_parser(program: P4Program, honor_reject: bool):
    """Compile the parser FSM into ``parse(wire, metadata)``.

    Returns ``(packet, payload, accepted)`` with exactly the
    interpreter's semantics, including the deviant-target behaviour
    when ``honor_reject`` is False (reject/verify failures record
    ``parser_error`` but the packet continues as if accepted).
    """
    env = program.env
    states: dict[str, tuple] = {}
    for state in program.parser.states.values():
        extracts = tuple(
            (env.header(name), env.header(name).byte_width,
             _field_layout(env.header(name)))
            for name in state.extracts
        )
        if state.verify is not None:
            cond, code = state.verify
            verify = (
                compile_expr(cond, env),
                code or PARSER_ERROR_VERIFY_FAILED,
            )
        else:
            verify = None
        transition = state.transition
        if transition.is_select:
            key_fns = tuple(compile_expr(k, env) for k in transition.keys)
            cases = tuple(
                (tuple(case.patterns), case.next_state)
                for case in transition.cases
            )
            compiled_transition = (key_fns, cases, transition.default)
        else:
            compiled_transition = (None, None, transition.default)
        states[state.name] = (extracts, verify, compiled_transition)

    start = program.parser.start

    def parse(wire: bytes, metadata: dict) -> tuple[Packet, bytes, bool]:
        packet = Packet()
        headers = packet.headers
        append = headers.append
        seen: set[str] = set()
        view = memoryview(wire)
        size = len(wire)
        offset = 0
        state_name = start
        steps = 0
        while True:
            if state_name == ACCEPT:
                return packet, bytes(view[offset:]), True
            if state_name == REJECT:
                metadata["parser_error"] = PARSER_ERROR_REJECT
                return packet, bytes(view[offset:]), not honor_reject
            steps += 1
            if steps > MAX_PARSER_STEPS:
                metadata["parser_error"] = PARSER_ERROR_DEPTH_EXCEEDED
                return packet, bytes(view[offset:]), not honor_reject
            try:
                extracts, verify, (key_fns, cases, default) = states[state_name]
            except KeyError:
                raise P4ValidationError(
                    f"unknown parser state {state_name!r}"
                ) from None
            for spec, byte_width, layout in extracts:
                if size - offset < byte_width:
                    metadata["parser_error"] = PARSER_ERROR_HEADER_TOO_SHORT
                    return packet, bytes(view[offset:]), not honor_reject
                spec_name = spec.name
                if spec_name in seen:
                    # Same failure mode as Packet.append, minus the
                    # per-extract linear scan on the happy path.
                    raise PacketError(
                        f"duplicate header {spec_name!r}; header stacks of "
                        "the same type are not supported by this model"
                    )
                seen.add(spec_name)
                word = int.from_bytes(
                    view[offset:offset + byte_width], "big"
                )
                append(_fast_header(
                    spec,
                    {name: (word >> shift) & field_mask
                     for name, shift, field_mask in layout},
                ))
                offset += byte_width
            if verify is not None:
                cond_fn, code = verify
                if not cond_fn(packet, metadata, ()):
                    metadata["parser_error"] = code
                    if honor_reject:
                        return packet, bytes(view[offset:]), False
                    # Deviant target: keep parsing as if verify passed.
            if key_fns is None:
                state_name = default
                continue
            keys = tuple(fn(packet, metadata, ()) for fn in key_fns)
            for patterns, next_state in cases:
                for key, (value, key_mask) in zip(keys, patterns):
                    if (key & key_mask) != (value & key_mask):
                        break
                else:
                    state_name = next_state
                    break
            else:
                state_name = default

    return parse


# ----------------------------------------------------------------------
# Actions and primitives
# ----------------------------------------------------------------------
def _compile_primitive(
    program: P4Program, primitive: Primitive, params: tuple[str, ...]
) -> Callable[[ExecState, tuple], None] | None:
    env = program.env

    if isinstance(primitive, NoOp):
        return None

    if isinstance(primitive, SetField):
        header_name, field_name = primitive.header, primitive.field
        value_fn = compile_expr(primitive.value, env, params)
        width_mask = mask(env.field_width(header_name, field_name))

        def set_field(state, args):
            packet = state.packet
            for header in packet.headers:
                if header.name == header_name:
                    if header.valid:
                        header._values[field_name] = (
                            value_fn(packet, state.metadata, args)
                            & width_mask
                        )
                        return
                    break
            raise P4RuntimeError(
                f"write to field of invalid header {header_name!r}"
            )

        return set_field

    if isinstance(primitive, SetMeta):
        name = primitive.name
        value_fn = compile_expr(primitive.value, env, params)
        width_mask = mask(env.metadata_width(name))

        def set_meta(state, args):
            metadata = state.metadata
            metadata[name] = value_fn(state.packet, metadata, args) & width_mask

        return set_meta

    if isinstance(primitive, AddHeader):
        spec = env.header(primitive.header)
        header_name, after = primitive.header, primitive.after

        def add_header(state, args):
            packet = state.packet
            existing = packet.get_or_none(header_name)
            if existing is not None:
                object.__setattr__(existing, "valid", True)
            else:
                packet.push(Header(spec), after=after)

        return add_header

    if isinstance(primitive, RemoveHeader):
        header_name = primitive.header

        def remove_header(state, args):
            header = state.packet.get_or_none(header_name)
            if header is not None:
                object.__setattr__(header, "valid", False)

        return remove_header

    if isinstance(primitive, Drop):
        def drop(state, args):
            state.metadata["drop"] = 1

        return drop

    if isinstance(primitive, Forward):
        port_fn = compile_expr(primitive.port, env, params)

        def forward(state, args):
            metadata = state.metadata
            metadata["egress_spec"] = (
                port_fn(state.packet, metadata, args) & 0x1FF
            )
            metadata["drop"] = 0

        return forward

    if isinstance(primitive, CountPacket):
        name = primitive.name
        index_fn = compile_expr(primitive.index, env, params)

        def count(state, args):
            if name in state.frozen_counters:
                return
            cells = state.counters.get(name)
            if cells is None:
                raise P4RuntimeError(f"undeclared counter {name!r}")
            index = index_fn(state.packet, state.metadata, args)
            if not 0 <= index < len(cells):
                raise P4RuntimeError(
                    f"counter {name!r} index {index} out of range "
                    f"[0, {len(cells)})"
                )
            cells[index] += 1

        return count

    if isinstance(primitive, RegisterWrite):
        name = primitive.name
        index_fn = compile_expr(primitive.index, env, params)
        value_fn = compile_expr(primitive.value, env, params)
        decl = program.registers.get(name)
        width_mask = mask(decl.width) if decl is not None else 0

        def register_write(state, args):
            cells = state.registers.get(name)
            if cells is None:
                raise P4RuntimeError(f"undeclared register {name!r}")
            packet, metadata = state.packet, state.metadata
            index = index_fn(packet, metadata, args)
            if not 0 <= index < len(cells):
                raise P4RuntimeError(
                    f"register {name!r} index {index} out of range "
                    f"[0, {len(cells)})"
                )
            cells[index] = value_fn(packet, metadata, args) & width_mask

        return register_write

    if isinstance(primitive, RegisterRead):
        name = primitive.name
        into = primitive.into
        index_fn = compile_expr(primitive.index, env, params)
        width_mask = mask(env.metadata_width(into))

        def register_read(state, args):
            cells = state.registers.get(name)
            if cells is None:
                raise P4RuntimeError(f"undeclared register {name!r}")
            metadata = state.metadata
            index = index_fn(state.packet, metadata, args)
            if not 0 <= index < len(cells):
                raise P4RuntimeError(
                    f"register {name!r} index {index} out of range "
                    f"[0, {len(cells)})"
                )
            metadata[into] = cells[index] & width_mask

        return register_read

    if isinstance(primitive, HashField):
        into = primitive.into
        modulo = primitive.modulo
        input_fns = tuple(
            compile_expr(expr, env, params) for expr in primitive.inputs
        )
        width_mask = mask(env.metadata_width(into))

        def hash_field(state, args):
            packet, metadata = state.packet, state.metadata
            values = tuple(fn(packet, metadata, args) for fn in input_fns)
            metadata[into] = stable_hash(values, modulo) & width_mask

        return hash_field

    if isinstance(primitive, Exit):
        def do_exit(state, args):
            raise ExitPipeline()

        return do_exit

    raise P4RuntimeError(f"unknown primitive {type(primitive).__name__}")


def _compile_action(program: P4Program, action: Action):
    """Compile an action body into ``run(state, args)``."""
    params = tuple(action.param_names)
    body = [
        fn
        for fn in (
            _compile_primitive(program, primitive, params)
            for primitive in action.body
        )
        if fn is not None
    ]
    if not body:
        return lambda state, args: None
    if len(body) == 1:
        return body[0]

    def run(state, args):
        for fn in body:
            fn(state, args)

    return run


# ----------------------------------------------------------------------
# Tables and control flow
# ----------------------------------------------------------------------
def _compile_table_apply(
    program: P4Program, table: Table, quantize_tcam: bool = False
):
    """Compile ``table.apply()`` into ``apply(state) -> hit``.

    Entries are read live from the shared :class:`Table`, so control
    plane updates are visible immediately; only the key evaluators,
    widths and action bodies are frozen at compile time.
    ``quantize_tcam`` selects the deviant TCAM semantics: ternary masks
    and range bounds are quantized to power-of-two boundaries at match
    time (entries change dynamically, so quantization cannot be frozen
    per entry here) — mirroring ``Table.lookup(..., quantize=True)``.
    """
    env = program.env
    key_fns = tuple(compile_expr(key.expr, env) for key in table.keys)
    kinds = tuple(key.kind for key in table.keys)
    widths = tuple(key.expr.width(env) for key in table.keys)
    key_count = len(key_fns)
    action_fns = {
        name: _compile_action(program, action)
        for name, action in table.actions.items()
    }
    table_name = table.name
    EXACT, LPM = MatchKind.EXACT, MatchKind.LPM
    TERNARY, RANGE = MatchKind.TERNARY, MatchKind.RANGE

    def apply(state) -> bool:
        packet, metadata = state.packet, state.metadata
        best = None
        if table_name not in state.stuck_tables:
            values = [fn(packet, metadata, ()) for fn in key_fns]
            best_rank = (-1, -1)
            for entry in table.entries:
                patterns = entry.patterns
                prefix_total = 0
                matched = True
                for i in range(key_count):
                    kind = kinds[i]
                    pattern = patterns[i]
                    value = values[i]
                    if kind is EXACT:
                        if value != pattern.value:
                            matched = False
                            break
                    elif kind is LPM:
                        prefix_len = pattern.prefix_len
                        if prefix_len is None:
                            raise P4RuntimeError(
                                "LPM pattern missing prefix_len"
                            )
                        if prefix_len:
                            shift = widths[i] - prefix_len
                            if (value >> shift) != (pattern.value >> shift):
                                matched = False
                                break
                        prefix_total += prefix_len
                    elif kind is TERNARY:
                        key_mask = pattern.mask
                        if key_mask is None:
                            raise P4RuntimeError("ternary pattern missing mask")
                        if quantize_tcam:
                            key_mask = quantize_ternary_mask(
                                key_mask, widths[i]
                            )
                        if (value & key_mask) != (pattern.value & key_mask):
                            matched = False
                            break
                    elif kind is RANGE:
                        high = pattern.high
                        if high is None:
                            raise P4RuntimeError(
                                "range pattern missing high bound"
                            )
                        low = pattern.value
                        if quantize_tcam:
                            low, high = quantize_range(low, high, widths[i])
                        if not low <= value <= high:
                            matched = False
                            break
                if not matched:
                    continue
                rank = (prefix_total, entry.priority)
                if best is None or rank > best_rank:
                    best = entry
                    best_rank = rank
        if best is None:
            action_fns[table.default_action](
                state, table.default_action_data
            )
            return False
        action_fns[best.action](state, best.action_data)
        return True

    return apply


def _compile_stmt(
    program: P4Program,
    control: Control,
    stmt: Stmt | None,
    quantize_tcam: bool = False,
):
    """Compile one statement tree into ``run(state)``."""
    if stmt is None:
        return None

    if isinstance(stmt, Seq):
        body = [
            fn
            for fn in (
                _compile_stmt(program, control, child, quantize_tcam)
                for child in stmt.body
            )
            if fn is not None
        ]
        if not body:
            return None
        if len(body) == 1:
            return body[0]

        def run_seq(state):
            for fn in body:
                fn(state)

        return run_seq

    if isinstance(stmt, If):
        cond_fn = compile_expr(stmt.cond, program.env)
        then_fn = _compile_stmt(program, control, stmt.then, quantize_tcam)
        else_fn = _compile_stmt(
            program, control, stmt.otherwise, quantize_tcam
        )

        def run_if(state):
            branch = then_fn if cond_fn(state.packet, state.metadata, ()) \
                else else_fn
            if branch is not None:
                branch(state)

        return run_if

    if isinstance(stmt, ApplyTable):
        apply_fn = _compile_table_apply(
            program, control.table(stmt.table), quantize_tcam
        )

        def run_apply(state):
            apply_fn(state)

        return run_apply

    if isinstance(stmt, IfHit):
        apply_fn = _compile_table_apply(
            program, control.table(stmt.table), quantize_tcam
        )
        then_fn = _compile_stmt(program, control, stmt.then, quantize_tcam)
        else_fn = _compile_stmt(
            program, control, stmt.otherwise, quantize_tcam
        )

        def run_if_hit(state):
            branch = then_fn if apply_fn(state) else else_fn
            if branch is not None:
                branch(state)

        return run_if_hit

    if isinstance(stmt, Call):
        action = control.action(stmt.action)
        action.bind(stmt.args)  # arity check once, at compile time
        action_fn = _compile_action(program, action)
        args = tuple(stmt.args)

        def run_call(state):
            action_fn(state, args)

        return run_call

    raise P4RuntimeError(f"unknown statement type {type(stmt).__name__}")


def control_stages(control: Control) -> list[Stmt]:
    """The control body's top-level statements — one pipeline stage each.

    Shared by the closure compiler and the staged pipeline so the
    compiled stage list and the tree-walk stage list can never drift
    out of index alignment.
    """
    body = control.body
    if isinstance(body, Seq):
        return list(body.body)
    return [body] if body is not None else []


def _compile_deparser(program: P4Program, field_budget: int | None = None):
    # A deviant field budget restricts emission to the budgeted prefix;
    # Deparser.emit_prefix is the single definition of that semantics.
    emit_order = program.deparser.emit_prefix(program.env, field_budget)
    new_packet = Packet.__new__

    def deparse(packet: Packet) -> Packet:
        emitted = []
        for name in emit_order:
            for header in packet.headers:
                if header.name == name:
                    if header.valid:
                        # Values were validated on the way in; copy the
                        # dict without re-checking every field width.
                        emitted.append(
                            _fast_header(header.spec, dict(header._values))
                        )
                    break
        # Emit order is unique by construction (Deparser.add enforces
        # it), so skip the duplicate scan in Packet.__post_init__.
        out = new_packet(Packet)
        out.headers = emitted
        out.payload = packet.payload
        out.metadata = dict(packet.metadata)
        return out

    return deparse


class FastProgram:
    """A program compiled to closures, ready for per-packet execution.

    ``honor_reject`` / ``quantize_tcam`` / ``deparse_field_budget``
    select the target's datapath semantics, including its silent
    deviations; the defaults are the spec-faithful reference semantics.
    """

    __slots__ = (
        "program",
        "honor_reject",
        "quantize_tcam",
        "deparse_field_budget",
        "parse",
        "ingress_stages",
        "egress_stages",
        "deparse",
    )

    def __init__(
        self,
        program: P4Program,
        honor_reject: bool,
        quantize_tcam: bool = False,
        deparse_field_budget: int | None = None,
    ):
        self.program = program
        self.honor_reject = honor_reject
        self.quantize_tcam = quantize_tcam
        self.deparse_field_budget = deparse_field_budget
        self.parse = _compile_parser(program, honor_reject)
        self.ingress_stages = [
            _compile_stmt(program, program.ingress, stmt, quantize_tcam)
            for stmt in control_stages(program.ingress)
        ]
        self.egress_stages = [
            _compile_stmt(program, program.egress, stmt, quantize_tcam)
            for stmt in control_stages(program.egress)
        ]
        self.deparse = _compile_deparser(program, deparse_field_budget)


def compile_program(
    program: P4Program,
    honor_reject: bool = True,
    quantize_tcam: bool = False,
    deparse_field_budget: int | None = None,
) -> FastProgram:
    """Compile ``program`` once for closure-based execution."""
    return FastProgram(
        program, honor_reject, quantize_tcam, deparse_field_budget
    )
