"""Simulated hardware targets and their execution engine.

The package splits into the performance-first execution core —
:mod:`~repro.target.fastpath` (closure compilation),
:mod:`~repro.target.pipeline` (staged execution, taps, faults) and
:mod:`~repro.target.device` (ports, stats, management interface) — and
the three concrete targets: the spec-faithful reference
(:mod:`~repro.target.reference`), the SDNet-like backend whose
datapath silently omits the parser ``reject`` state
(:mod:`~repro.target.sdnet`), reproducing the paper's §4 case study,
and the Tofino-like backend that quantizes TCAM patterns and truncates
the deparser (:mod:`~repro.target.tofino`) — a *differently* deviant
third corner for 3-way differential sweeps.
"""

from .artifact_cache import (
    ArtifactCache,
    CACHE_VERSION,
    get_artifact_cache,
)
from .batch import BatchProgram, build_batch_program, get_batch_program
from .compiler import CompiledProgram, Diagnostic, TargetCompiler
from .device import ENGINES, FLOOD_PORT, DeviceStats, NetworkDevice, Port
from .fastpath import FastProgram, compile_program
from .faults import Fault, FaultInjector, FaultKind
from .limits import REFERENCE_LIMITS, SDNET_LIMITS, TOFINO_LIMITS, ArchLimits
from .pipeline import (
    PacketSnapshot,
    StagedPipeline,
    TAP_INPUT,
    TAP_OUTPUT,
    TargetRun,
)
from .reference import ReferenceCompiler, make_reference_device
from .resources import (
    DeviceCapacity,
    ResourceUsage,
    SUME_CAPACITY,
    estimate_parser,
    estimate_program,
    estimate_stateful,
)
from .sdnet import REJECT_NOT_IMPLEMENTED, SDNetCompiler, make_sdnet_device
from .tofino import (
    DEPARSE_FIELD_BUDGET,
    DEPARSE_FIELD_BUDGET_EXCEEDED,
    TCAM_QUANTIZED,
    TofinoCompiler,
    make_tofino_device,
)

__all__ = [
    # device
    "NetworkDevice",
    "Port",
    "DeviceStats",
    "FLOOD_PORT",
    "ENGINES",
    # pipeline
    "StagedPipeline",
    "PacketSnapshot",
    "TargetRun",
    "TAP_INPUT",
    "TAP_OUTPUT",
    # compiler
    "TargetCompiler",
    "CompiledProgram",
    "Diagnostic",
    # fast path
    "FastProgram",
    "compile_program",
    # batch kernel and artifact cache
    "BatchProgram",
    "build_batch_program",
    "get_batch_program",
    "ArtifactCache",
    "CACHE_VERSION",
    "get_artifact_cache",
    # targets
    "ReferenceCompiler",
    "make_reference_device",
    "SDNetCompiler",
    "make_sdnet_device",
    "REJECT_NOT_IMPLEMENTED",
    "TofinoCompiler",
    "make_tofino_device",
    "TCAM_QUANTIZED",
    "DEPARSE_FIELD_BUDGET",
    "DEPARSE_FIELD_BUDGET_EXCEEDED",
    # limits and resources
    "ArchLimits",
    "REFERENCE_LIMITS",
    "SDNET_LIMITS",
    "TOFINO_LIMITS",
    "ResourceUsage",
    "DeviceCapacity",
    "SUME_CAPACITY",
    "estimate_parser",
    "estimate_program",
    "estimate_stateful",
    # faults
    "Fault",
    "FaultKind",
    "FaultInjector",
]
