"""The Tofino-like switch-ASIC target — a *differently* deviant backend.

Where the SDNet-like backend silently forgets the parser ``reject``
state, this toolchain implements ``reject`` faithfully and deviates on
two other axes instead:

* **TCAM quantization** (:data:`TCAM_QUANTIZED`) — the per-stage TCAM
  only implements patterns on power-of-two boundaries. Ternary masks
  are truncated to their leading contiguous run of care bits and range
  bounds are widened to the smallest covering aligned block
  (:func:`repro.bitutils.quantize_ternary_mask` /
  :func:`repro.bitutils.quantize_range`), so installed entries match a
  *superset* of the traffic the control plane asked for.
* **Deparse truncation** (:data:`DEPARSE_FIELD_BUDGET_EXCEEDED`) — the
  deparser has a fixed header-field budget per packet
  (:data:`DEPARSE_FIELD_BUDGET`); headers past the budget in the emit
  order are silently not serialized, so forwarded packets leave the
  device with bytes missing.

Both deviations are recorded as ground-truth tags on the compiled
artifact (``silent_deviations``) but — deliberately — never surface in
the user-visible diagnostics, mirroring :mod:`repro.target.sdnet`. Only
differential testing against the spec oracle exposes them, which is the
point: with two backends deviating in *different* stages, a 3-way
(program × target) sweep can localize which backend is broken and why
(:mod:`repro.netdebug.localization`).
"""

from __future__ import annotations

from ..p4.program import P4Program
from ..p4.table import MatchKind
from .compiler import TargetCompiler
from .device import NetworkDevice
from .limits import TOFINO_LIMITS

__all__ = [
    "TCAM_QUANTIZED",
    "DEPARSE_FIELD_BUDGET",
    "DEPARSE_FIELD_BUDGET_EXCEEDED",
    "TofinoCompiler",
    "make_tofino_device",
]

#: Ground-truth tag: ternary/range patterns quantized to power-of-two
#: boundaries by the per-stage TCAM.
TCAM_QUANTIZED = "ternary-range-quantized-pow2"

#: Ground-truth tag: headers past the deparser's field budget silently
#: not serialized.
DEPARSE_FIELD_BUDGET_EXCEEDED = "deparse-field-budget-exceeded"

#: Header-field budget of the generated deparser. Ethernet (3 fields)
#: plus IPv4 (13 fields) already exceeds it, so any program that emits
#: an L3 header forwards truncated packets on this target.
DEPARSE_FIELD_BUDGET = 14


class TofinoCompiler(TargetCompiler):
    """Tofino-like compiler: deep pipeline, quantized TCAM, short deparser.

    ``reject`` is honored — this backend's silent deviations are the
    TCAM quantization and the deparse field budget, both encoded in the
    compiled artifact's behavioural model and tagged in
    ``silent_deviations``, never in diagnostics.
    """

    honor_reject = True
    quantize_tcam = True
    deparse_field_budget = DEPARSE_FIELD_BUDGET

    def __init__(self) -> None:
        super().__init__(TOFINO_LIMITS)

    def deviations(self, program: P4Program) -> list[str]:
        tags: list[str] = []
        if any(
            key.kind in (MatchKind.TERNARY, MatchKind.RANGE)
            for table in program.all_tables().values()
            for key in table.keys
        ):
            tags.append(TCAM_QUANTIZED)
        emitted = program.deparser.emit_prefix(
            program.env, self.deparse_field_budget
        )
        if len(emitted) < len(program.deparser.emit_order):
            tags.append(DEPARSE_FIELD_BUDGET_EXCEEDED)
        return tags


def make_tofino_device(
    name: str = "tofino0",
    num_ports: int = 16,
    use_compiled: bool = True,
    engine: str | None = None,
) -> NetworkDevice:
    """A Tofino-programmed switch: 16 ports, quantizing/truncating datapath."""
    return NetworkDevice(
        name,
        TofinoCompiler(),
        num_ports=num_ports,
        use_compiled=use_compiled,
        engine=engine,
    )
