"""The base target compiler: limit checking, capacity fitting, fast-path
code generation.

``compile`` is what :meth:`repro.target.device.NetworkDevice.load` runs:
it validates the program, checks it against the target's published
:class:`~repro.target.limits.ArchLimits`, fits the estimated resources
into the device capacity, records any *silent deviations* the backend
introduces, and — the performance core — lowers the program once into
closures (:mod:`repro.target.fastpath`) so per-packet execution never
walks an expression tree.

Diagnostics model real toolchain output: limit violations are errors
(the compile fails loudly), everything else is at most a warning. A
silent deviation, by definition, produces **no** diagnostic — that is
the §4 case study's point.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..exceptions import CompileError
from ..p4.program import P4Program
from ..p4.table import MatchKind
from ..p4.validation import validate_program
from .fastpath import FastProgram, compile_program
from .limits import ArchLimits
from .resources import (
    DeviceCapacity,
    ResourceUsage,
    SUME_CAPACITY,
    estimate_program,
)

__all__ = ["Diagnostic", "CompiledProgram", "TargetCompiler"]


@dataclass(frozen=True)
class Diagnostic:
    """One user-visible compiler message."""

    severity: str  # "error" or "warning"
    message: str

    def __str__(self) -> str:
        return f"{self.severity}: {self.message}"


@dataclass
class CompiledProgram:
    """The artifact ``load`` installs on a device.

    ``honor_reject`` / ``quantize_tcam`` / ``deparse_field_budget`` are
    the artifact's *behavioural model*: the exact datapath semantics the
    backend generated, including its silent deviations. They are ground
    truth for differential testing (``silent_deviations`` carries the
    matching tags) and are deliberately absent from ``diagnostics``.
    """

    program: P4Program
    target_name: str
    honor_reject: bool
    diagnostics: list[Diagnostic] = field(default_factory=list)
    silent_deviations: list[str] = field(default_factory=list)
    resources: ResourceUsage = field(default_factory=ResourceUsage)
    utilization: dict[str, float] = field(default_factory=dict)
    fast: FastProgram | None = field(default=None, repr=False)
    quantize_tcam: bool = False
    deparse_field_budget: int | None = None
    #: Lazily-built block kernel (repro.target.batch); one per artifact,
    #: excluded from pickling by the artifact cache like ``fast``.
    batch: object | None = field(
        default=None, repr=False, compare=False
    )


class TargetCompiler:
    """Compile programs against one architecture's limits and capacity.

    Attributes:
        limits: The target's published :class:`ArchLimits`.
        capacity: Device capacity the estimated resources must fit.
        honor_reject: Whether the generated datapath implements the
            parser ``reject`` state. The base compiler and the
            reference target do; the SDNet-like backend does not.
        quantize_tcam: Whether the generated datapath quantizes
            ternary/range patterns to power-of-two boundaries (the
            Tofino-like backend's TCAM deviation).
        deparse_field_budget: Header-field budget of the generated
            deparser, or ``None`` for a spec-faithful deparser. Headers
            past the budget are silently not deparsed (the Tofino-like
            backend's second deviation).
    """

    honor_reject: bool = True
    quantize_tcam: bool = False
    deparse_field_budget: int | None = None

    def __init__(
        self,
        limits: ArchLimits,
        capacity: DeviceCapacity = SUME_CAPACITY,
    ):
        self.limits = limits
        self.capacity = capacity

    # ------------------------------------------------------------------
    # Limit diagnostics
    # ------------------------------------------------------------------
    def check_limits(self, program: P4Program) -> list[Diagnostic]:
        """Check ``program`` against the published limits.

        Returns every finding; ``compile`` raises on the errors.
        """
        limits = self.limits
        diagnostics: list[Diagnostic] = []

        def error(message: str) -> None:
            diagnostics.append(Diagnostic("error", message))

        def warning(message: str) -> None:
            diagnostics.append(Diagnostic("warning", message))

        parser = program.parser
        state_count = len(parser.states)
        if state_count > limits.max_parser_states:
            error(
                f"program uses {state_count} parser states; target "
                f"allows {limits.max_parser_states}"
            )
        depth = parser.max_extract_depth()
        if depth > limits.max_parse_depth:
            error(
                f"parse depth {depth} exceeds target limit "
                f"{limits.max_parse_depth}"
            )

        tables = program.all_tables()
        if len(tables) > limits.max_tables:
            error(
                f"program declares {len(tables)} tables; target allows "
                f"{limits.max_tables}"
            )
        for name, table in tables.items():
            if table.size > limits.max_table_size:
                error(
                    f"table {name!r} size {table.size} exceeds target "
                    f"limit {limits.max_table_size}"
                )
            key_bits = sum(
                key.expr.width(program.env) for key in table.keys
            )
            if key_bits > limits.max_key_bits:
                error(
                    f"table {name!r} key is {key_bits} bits wide; target "
                    f"allows {limits.max_key_bits} key bits"
                )
            if len(table.actions) > limits.max_actions_per_table:
                error(
                    f"table {name!r} declares {len(table.actions)} "
                    f"actions; target allows "
                    f"{limits.max_actions_per_table}"
                )
            for key in table.keys:
                if key.kind not in limits.supported_match_kinds:
                    error(
                        f"table {name!r} uses the {key.kind.value} match "
                        "kind, which this target does not build"
                    )
            if limits.tcam_bits_per_stage is not None:
                tcam_bits = sum(
                    key.expr.width(program.env)
                    for key in table.keys
                    if key.kind in (MatchKind.TERNARY, MatchKind.RANGE)
                )
                if tcam_bits > limits.tcam_bits_per_stage:
                    error(
                        f"table {name!r} needs {tcam_bits} TCAM key bits; "
                        f"target offers {limits.tcam_bits_per_stage} per "
                        "stage"
                    )

        pipeline_depth = program.pipeline_depth()
        if pipeline_depth > limits.max_pipeline_depth:
            error(
                f"pipeline depth {pipeline_depth} exceeds target limit "
                f"{limits.max_pipeline_depth}"
            )

        if program.counters and not limits.supports_counters:
            error("program declares counters; target supports no counters")
        if program.registers and not limits.supports_registers:
            error("program declares registers; target supports no registers")

        if not limits.supports_reject and parser.can_reach_reject():
            warning(
                "parser can reach the reject state, which this target "
                "does not implement"
            )

        return diagnostics

    # ------------------------------------------------------------------
    # Deviations (overridden by deviant backends)
    # ------------------------------------------------------------------
    def deviations(self, program: P4Program) -> list[str]:
        """Silent spec deviations the generated datapath introduces."""
        return []

    # ------------------------------------------------------------------
    # Compilation
    # ------------------------------------------------------------------
    def compile(self, program: P4Program) -> CompiledProgram:
        """Validate, check, fit, and lower ``program`` for this target."""
        validate_program(program)
        diagnostics = self.check_limits(program)
        errors = [d for d in diagnostics if d.severity == "error"]
        if errors:
            listing = "\n  ".join(d.message for d in errors)
            raise CompileError(
                f"target {self.limits.name!r} rejected program "
                f"{program.name!r}:\n  {listing}"
            )
        resources = estimate_program(program)
        if not self.capacity.fits(resources):
            raise CompileError(
                f"program {program.name!r} exceeds device capacity: needs "
                f"{resources.as_dict()}, device offers "
                f"{self.capacity.luts} LUTs / {self.capacity.flipflops} FFs "
                f"/ {self.capacity.bram_blocks} BRAM / "
                f"{self.capacity.dsp_slices} DSP"
            )
        return CompiledProgram(
            program=program,
            target_name=self.limits.name,
            honor_reject=self.honor_reject,
            diagnostics=diagnostics,
            silent_deviations=self.deviations(program),
            resources=resources,
            utilization=self.capacity.utilization(resources),
            fast=compile_program(
                program,
                self.honor_reject,
                quantize_tcam=self.quantize_tcam,
                deparse_field_budget=self.deparse_field_budget,
            ),
            quantize_tcam=self.quantize_tcam,
            deparse_field_budget=self.deparse_field_budget,
        )
