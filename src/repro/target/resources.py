"""FPGA resource model: estimating what a program costs in silicon.

The model is deliberately simple but shape-faithful: ternary matching is
emulated in LUT-based TCAM and dominates everything else, exact/LPM
tables live mostly in block RAM, stateful objects consume BRAM only, and
hash units burn DSP slices. The absolute numbers are synthetic; the
*relative* shape (Figure-2's resources-quantification use case) is what
the reproduction asserts on.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..p4.actions import HashField
from ..p4.program import P4Program
from ..p4.table import Table

__all__ = [
    "ResourceUsage",
    "DeviceCapacity",
    "SUME_CAPACITY",
    "estimate_parser",
    "estimate_stateful",
    "estimate_table",
    "estimate_program",
]

#: Bits in one 36 Kb block RAM.
_BRAM_BITS = 36_864

#: Fixed framework cost every loaded program pays: AXI plumbing, packet
#: buffers, the management interface.
_BASE_LUTS = 400
_BASE_FLIPFLOPS = 800
_BASE_BRAM = 4


def _ceil_div(a: int, b: int) -> int:
    return -(-a // b)


@dataclass(frozen=True)
class ResourceUsage:
    """Resource consumption in the four FPGA resource classes."""

    luts: int = 0
    flipflops: int = 0
    bram_blocks: int = 0
    dsp_slices: int = 0

    def __add__(self, other: "ResourceUsage") -> "ResourceUsage":
        return ResourceUsage(
            self.luts + other.luts,
            self.flipflops + other.flipflops,
            self.bram_blocks + other.bram_blocks,
            self.dsp_slices + other.dsp_slices,
        )

    def scaled(self, factor: float) -> "ResourceUsage":
        """Scale every class by ``factor`` (rounded to whole units)."""
        return ResourceUsage(
            round(self.luts * factor),
            round(self.flipflops * factor),
            round(self.bram_blocks * factor),
            round(self.dsp_slices * factor),
        )

    def as_dict(self) -> dict[str, int]:
        return {
            "luts": self.luts,
            "flipflops": self.flipflops,
            "bram_blocks": self.bram_blocks,
            "dsp_slices": self.dsp_slices,
        }


@dataclass(frozen=True)
class DeviceCapacity:
    """Total resources one device offers."""

    luts: int
    flipflops: int
    bram_blocks: int
    dsp_slices: int

    def utilization(self, usage: ResourceUsage) -> dict[str, float]:
        """Fractional utilization per resource class."""
        return {
            "luts": usage.luts / self.luts,
            "flipflops": usage.flipflops / self.flipflops,
            "bram_blocks": usage.bram_blocks / self.bram_blocks,
            "dsp_slices": usage.dsp_slices / self.dsp_slices,
        }

    def fits(self, usage: ResourceUsage) -> bool:
        return (
            usage.luts <= self.luts
            and usage.flipflops <= self.flipflops
            and usage.bram_blocks <= self.bram_blocks
            and usage.dsp_slices <= self.dsp_slices
        )


#: The NetFPGA SUME's Virtex-7 690T.
SUME_CAPACITY = DeviceCapacity(
    luts=433_200,
    flipflops=866_400,
    bram_blocks=1_470,
    dsp_slices=3_600,
)


def estimate_parser(program: P4Program) -> ResourceUsage:
    """Parser cost: per-state FSM logic plus field-extraction barrel."""
    parser = program.parser
    states = max(1, len(parser.states))
    extract_bits = 0
    select_keys = 0
    for state in parser.states.values():
        for header_name in state.extracts:
            extract_bits += program.env.header(header_name).bit_width
        select_keys += len(state.transition.keys)
        if state.verify is not None:
            select_keys += 1
    return ResourceUsage(
        luts=120 * states + extract_bits // 2 + 40 * select_keys,
        flipflops=96 * states + extract_bits,
    )


def estimate_stateful(program: P4Program) -> ResourceUsage:
    """Counters and registers: pure block RAM (64-bit counter cells)."""
    blocks = 0
    for decl in program.counters.values():
        blocks += _ceil_div(decl.size * 64, _BRAM_BITS)
    for decl in program.registers.values():
        blocks += _ceil_div(decl.size * decl.width, _BRAM_BITS)
    return ResourceUsage(bram_blocks=blocks)


def estimate_table(table: Table, program: P4Program) -> ResourceUsage:
    """Match-action table cost by match kind.

    Ternary keys force LUT-based TCAM emulation proportional to
    ``key_bits × entries``; exact/LPM tables hash/walk block RAM with
    logic that scales in key width and ``log2(size)``.
    """
    env = program.env
    key_bits = sum(key.expr.width(env) for key in table.keys)
    data_bits = max(
        (
            sum(param.bits for param in action.params)
            for action in table.actions.values()
        ),
        default=0,
    )
    depth_bits = max(1, table.size.bit_length())
    action_luts = 16 * sum(a.alu_cost for a in table.actions.values())
    if table.is_ternary:
        match_luts = (key_bits * table.size) // 2
        bram = 1 + _ceil_div(table.size * max(1, data_bits), _BRAM_BITS)
    elif table.is_lpm:
        match_luts = key_bits * 24 + depth_bits * 32
        bram = 1 + _ceil_div(
            table.size * (key_bits + max(1, data_bits)), _BRAM_BITS
        )
    else:
        match_luts = key_bits * 12 + depth_bits * 16
        bram = 1 + _ceil_div(
            table.size * (key_bits + max(1, data_bits)), _BRAM_BITS
        )
    return ResourceUsage(
        luts=match_luts + action_luts,
        flipflops=key_bits * 4 + data_bits * 2,
        bram_blocks=bram,
    )


def _hash_units(program: P4Program) -> int:
    """Count HashField primitives anywhere in the program."""
    units = 0
    for control in (program.ingress, program.egress):
        actions = list(control.actions.values())
        for table in control.tables.values():
            actions.extend(table.actions.values())
        for action in actions:
            units += sum(
                1 for prim in action.body if isinstance(prim, HashField)
            )
    return units


def estimate_program(program: P4Program) -> ResourceUsage:
    """Total resources for one program: framework + parser + tables +
    stateful objects + hash units."""
    usage = ResourceUsage(_BASE_LUTS, _BASE_FLIPFLOPS, _BASE_BRAM)
    usage = usage + estimate_parser(program)
    for table in program.all_tables().values():
        usage = usage + estimate_table(table, program)
    for control in (program.ingress, program.egress):
        usage = usage + ResourceUsage(
            luts=16 * sum(a.alu_cost for a in control.actions.values())
        )
    usage = usage + estimate_stateful(program)
    usage = usage + ResourceUsage(dsp_slices=4 * _hash_units(program))
    return usage
