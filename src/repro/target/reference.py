"""The spec-faithful reference target.

The reference compiler honors every P4₁₆ semantic the interpreter
defines — including the parser ``reject`` state — under generous
published limits. Devices built from it are the "known-good hardware"
against which deviant backends (:mod:`repro.target.sdnet`) are
differentially tested.
"""

from __future__ import annotations

from .compiler import TargetCompiler
from .device import NetworkDevice
from .limits import REFERENCE_LIMITS

__all__ = ["ReferenceCompiler", "make_reference_device"]


class ReferenceCompiler(TargetCompiler):
    """Compiles with reference semantics: ``reject`` fully implemented."""

    honor_reject = True

    def __init__(self) -> None:
        super().__init__(REFERENCE_LIMITS)


def make_reference_device(
    name: str = "reference0",
    num_ports: int = 8,
    use_compiled: bool = True,
    engine: str | None = None,
) -> NetworkDevice:
    """A reference device: 8 traffic ports, spec-faithful pipeline.

    ``use_compiled=False`` forces tree-walking interpretation in the
    pipeline — the slow baseline the fast path is benchmarked against.
    ``engine`` selects the execution engine explicitly (``"tree"``,
    ``"closure"``, ``"batch"``) and overrides ``use_compiled``.
    """
    return NetworkDevice(
        name,
        ReferenceCompiler(),
        num_ports=num_ports,
        use_compiled=use_compiled,
        engine=engine,
    )
