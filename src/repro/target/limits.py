"""Published architecture limits for the simulated targets.

An :class:`ArchLimits` is the datasheet view of a target: what the
vendor *claims* the architecture supports — parser depth, table shapes,
match kinds, clock and bus width. Compilers check programs against these
limits (:mod:`repro.target.compiler`); the architecture-check use case
probes whether the published figures match the toolchain's actual
behaviour.

The SDNet-like limits deliberately *claim* ``reject`` support: the
datasheet says yes, the generated datapath says nothing and silently
forwards — exactly the gap the paper's §4 case study uncovers. The
Tofino-like limits play the same game on two different axes: the
datasheet advertises full ternary/range matching and a long emit list,
while the datapath quantizes TCAM patterns and truncates the deparser
(:mod:`repro.target.tofino`).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..p4.table import MatchKind

__all__ = ["ArchLimits", "REFERENCE_LIMITS", "SDNET_LIMITS", "TOFINO_LIMITS"]


@dataclass(frozen=True)
class ArchLimits:
    """Published limits of one target architecture."""

    name: str
    clock_mhz: int = 200
    bus_bytes: int = 32
    max_parser_states: int = 64
    max_parse_depth: int = 32
    max_tables: int = 64
    max_table_size: int = 65536
    max_key_bits: int = 512
    max_pipeline_depth: int = 32
    max_actions_per_table: int = 64
    supports_counters: bool = True
    supports_registers: bool = True
    supports_reject: bool = True
    #: Per-stage TCAM budget in key bits, or ``None`` when the target
    #: emulates ternary matching in general logic (no hard budget). A
    #: table whose ternary/range key bits exceed this fails to compile.
    tcam_bits_per_stage: int | None = None
    supported_match_kinds: frozenset = field(
        default_factory=lambda: frozenset(MatchKind)
    )

    @property
    def line_rate_gbps(self) -> float:
        """Peak datapath rate: one bus word per clock cycle."""
        return self.clock_mhz * self.bus_bytes * 8 / 1000.0


#: The spec-faithful reference target: generous limits, a wide bus, and
#: every match kind. Its job is to define correct behaviour, not to
#: model a specific chip.
REFERENCE_LIMITS = ArchLimits(
    name="reference",
    clock_mhz=200,
    bus_bytes=64,
    max_parser_states=64,
    max_parse_depth=32,
    max_tables=64,
    max_table_size=65536,
    max_key_bits=512,
    max_pipeline_depth=32,
    max_actions_per_table=64,
)

#: The SDNet-like NetFPGA SUME target. Tighter in every envelope
#: dimension, no RANGE matching — and ``supports_reject`` is what the
#: datasheet *claims*; the generated datapath does not implement it
#: (:data:`repro.target.sdnet.REJECT_NOT_IMPLEMENTED`).
SDNET_LIMITS = ArchLimits(
    name="sdnet-sume",
    clock_mhz=200,
    bus_bytes=32,
    max_parser_states=16,
    max_parse_depth=12,
    max_tables=8,
    max_table_size=4096,
    max_key_bits=256,
    max_pipeline_depth=8,
    max_actions_per_table=16,
    supports_reject=True,  # the claim the backend silently breaks
    supported_match_kinds=frozenset(
        {MatchKind.EXACT, MatchKind.LPM, MatchKind.TERNARY}
    ),
)

#: The Tofino-like switch-ASIC target. A much deeper pipeline and wider,
#: deeper tables than the FPGA targets, a fast clock on a narrow bus —
#: but a *small per-stage TCAM*: a table may spend at most
#: ``tcam_bits_per_stage`` key bits on ternary/range matching. The
#: datasheet advertises all four match kinds and honest ``reject``
#: support, and both claims are true — this backend's silent deviations
#: live elsewhere (:mod:`repro.target.tofino`): TCAM patterns are
#: quantized to power-of-two boundaries and the deparser truncates long
#: emit lists at a field budget.
TOFINO_LIMITS = ArchLimits(
    name="tofino-sim",
    clock_mhz=1000,
    bus_bytes=16,
    max_parser_states=128,
    max_parse_depth=20,
    max_tables=24,
    max_table_size=131072,
    max_key_bits=640,
    max_pipeline_depth=24,
    max_actions_per_table=32,
    tcam_bits_per_stage=128,
    supported_match_kinds=frozenset(MatchKind),
)
