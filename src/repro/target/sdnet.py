"""The SDNet-like NetFPGA SUME target — with the paper's §4 bug.

The toolchain accepts programs that use the parser ``reject`` state,
produces a clean compile log, and then generates a datapath that simply
does not implement rejection: every packet the spec says must die in
the parser continues through the pipeline and out to the next hop. The
deviation is recorded on the compiled artifact as ground truth
(:data:`REJECT_NOT_IMPLEMENTED`) but — deliberately — never surfaces in
the user-visible diagnostics. Only differential testing against the
spec oracle exposes it, which is exactly the paper's case study.
"""

from __future__ import annotations

from ..p4.program import P4Program
from .compiler import TargetCompiler
from .device import NetworkDevice
from .limits import SDNET_LIMITS

__all__ = ["REJECT_NOT_IMPLEMENTED", "SDNetCompiler", "make_sdnet_device"]

#: Ground-truth tag for the silently missing ``reject`` state.
REJECT_NOT_IMPLEMENTED = "parser-reject-not-implemented"


class SDNetCompiler(TargetCompiler):
    """SDNet-like compiler: tighter limits, silently broken ``reject``."""

    honor_reject = False

    def __init__(self) -> None:
        super().__init__(SDNET_LIMITS)

    def deviations(self, program: P4Program) -> list[str]:
        if program.parser.can_reach_reject():
            return [REJECT_NOT_IMPLEMENTED]
        return []


def make_sdnet_device(
    name: str = "sume0",
    num_ports: int = 4,
    use_compiled: bool = True,
    engine: str | None = None,
) -> NetworkDevice:
    """An SDNet-programmed NetFPGA SUME: 4 ports, deviant datapath."""
    return NetworkDevice(
        name,
        SDNetCompiler(),
        num_ports=num_ports,
        use_compiled=use_compiled,
        engine=engine,
    )
