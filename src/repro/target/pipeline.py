"""The staged pipeline: per-stage execution, tap points, fault hooks.

A :class:`StagedPipeline` decomposes a compiled program into hardware
pipeline stages::

    input -> parser -> ingress.0 .. ingress.N -> egress.0 .. -> deparser -> output

``input`` and ``output`` are pure tap points; every other stage carries
semantics. Between stages the pipeline applies injected faults
(:mod:`repro.target.faults`) and publishes :class:`PacketSnapshot`\\ s to
attached taps — this is NetDebug's internal visibility: checkers and
localization observe *between* stages, so execution itself needs no
tracing.

Two execution engines share this machinery:

* the **compiled fast path** (default) runs the closures produced by
  :mod:`repro.target.fastpath` and allocates no trace events at all;
* **tree-walking interpretation** (``use_compiled=False``) drives the
  spec-faithful :class:`~repro.p4.interpreter.Interpreter` stage by
  stage, traces included — the baseline the fast path is measured
  against in ``benchmarks/bench_line_rate.py``.

Packets may be injected at any stage (``inject_at``), which is how
NetDebug's generator bypasses the external ports and how active fault
bisection brackets a broken stage.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..exceptions import TargetError
from ..p4.actions import CountPacket
from ..p4.control import Seq
from ..p4.expr import EvalContext
from ..p4.interpreter import (
    ExitPipeline,
    Interpreter,
    PipelineResult,
    RuntimeState,
    Trace,
    Verdict,
)
from ..packet.packet import Packet
from ..p4.types import standard_metadata_defaults
from .compiler import CompiledProgram
from .fastpath import ExecState, control_stages
from .faults import FaultInjector, FaultKind
from .limits import ArchLimits

__all__ = [
    "TAP_INPUT",
    "TAP_OUTPUT",
    "PacketSnapshot",
    "TargetRun",
    "StagedPipeline",
]

TAP_INPUT = "input"
TAP_OUTPUT = "output"

#: Stage descriptor kinds.
_KIND_INPUT = 0
_KIND_PARSER = 1
_KIND_STMT = 2
_KIND_DEPARSER = 3
_KIND_OUTPUT = 4

_EMPTY_SET: frozenset = frozenset()


@dataclass
class PacketSnapshot:
    """What a tap sees as a packet passes its stage.

    ``metadata`` is the live metadata mapping (including the tap-local
    ``_cycles_elapsed`` counter); ``alive`` is False when the packet
    died in this stage, with ``verdict_hint`` naming why
    (``parser_reject``, ``drop``, ``blackhole``).
    """

    stage: str
    wire: bytes | None
    packet: Packet | None
    metadata: dict
    alive: bool
    verdict_hint: str = ""


@dataclass
class TargetRun:
    """Everything one pipeline traversal produced."""

    result: PipelineResult
    stages_traversed: list[str]
    died_at: str | None
    latency_cycles: int
    injected_at: str = TAP_INPUT
    #: Serialized output, cached when an output tap already packed it.
    output_wire: bytes | None = None


class _FaultAwareInterpreter(Interpreter):
    """Tree-walking engine extended with stuck-table / frozen-counter
    faults. The compiled artifact's silent target deviations (reject,
    quantized TCAM, deparse field budget) are the base interpreter's
    deviation knobs, so both execution modes stay behaviourally
    identical by construction."""

    def __init__(self, program, state, compiled, pipeline):
        super().__init__(
            program,
            state=state,
            honor_reject=compiled.honor_reject,
            quantize_tcam=compiled.quantize_tcam,
            deparse_field_budget=compiled.deparse_field_budget,
        )
        self._pipeline = pipeline

    def apply_table(self, control, table_name, ctx, trace):
        if table_name in self._pipeline._current_stuck:
            table = control.table(table_name)
            trace.add(
                "table_apply",
                f"{table_name}: stuck-at-miss -> {table.default_action}",
                stage=control.name,
            )
            action = table.action(table.default_action)
            self.run_action(
                control.name, action, table.default_action_data, ctx, trace
            )
            return False
        return super().apply_table(control, table_name, ctx, trace)

    def run_primitive(self, stage, primitive, binding, ctx, trace):
        if (
            isinstance(primitive, CountPacket)
            and primitive.name in self._pipeline._current_frozen
        ):
            return
        super().run_primitive(stage, primitive, binding, ctx, trace)


class StagedPipeline:
    """Executes one compiled program as a tapped, faultable pipeline."""

    def __init__(
        self,
        compiled: CompiledProgram,
        limits: ArchLimits,
        state: RuntimeState | None = None,
        injector: FaultInjector | None = None,
        use_compiled: bool = True,
    ):
        self.compiled = compiled
        self.program = compiled.program
        self.limits = limits
        self.state = state or RuntimeState.for_program(self.program)
        self.injector = injector
        self.use_compiled = use_compiled and compiled.fast is not None
        self._fast = compiled.fast
        self._interp = _FaultAwareInterpreter(
            self.program, self.state, compiled, pipeline=self
        )
        self._current_stuck: frozenset | set = _EMPTY_SET
        self._current_frozen: frozenset | set = _EMPTY_SET

        # Stage topology: (name, kind, fast_fn, control, stmt, cost,
        # barrier). ``cost`` is the fixed cycle cost, or None for the
        # frame-size-dependent parser/deparser stages (resolved once per
        # packet). ``barrier`` marks the points where a set drop flag
        # discards the packet — entering egress and entering the
        # deparser — mirroring the interpreter, which always runs a
        # control to completion and only then honors ``drop`` (a later
        # statement may clear it, and post-drop statements still update
        # counters/registers).
        stages: list[tuple] = [
            (TAP_INPUT, _KIND_INPUT, None, None, None, 1, False)
        ]
        stages.append(("parser", _KIND_PARSER, None, None, None, None, False))
        for control, fast_stages in (
            (self.program.ingress,
             self._fast.ingress_stages if self._fast else None),
            (self.program.egress,
             self._fast.egress_stages if self._fast else None),
        ):
            for index, stmt in enumerate(control_stages(control)):
                fast_fn = fast_stages[index] if fast_stages else None
                stages.append(
                    (f"{control.name}.{index}", _KIND_STMT, fast_fn,
                     control, stmt, 12,
                     control.name == "egress" and index == 0)
                )
        stages.append(
            ("deparser", _KIND_DEPARSER, None, None, None, None, True)
        )
        stages.append((TAP_OUTPUT, _KIND_OUTPUT, None, None, None, 1, False))
        self._stages = stages
        self._stage_names = [s[0] for s in stages]
        self._stage_index = {
            name: index for index, name in enumerate(self._stage_names)
        }
        self._parser_index = self._stage_index["parser"]
        self._taps: dict[str, list] = {name: [] for name in self._stage_names}

        # Per-packet metadata template: standard + program metadata, all
        # zero, copied per packet instead of rebuilt key by key.
        template = standard_metadata_defaults()
        for name in self.program.env.metadata:
            template.setdefault(name, 0)
        self._metadata_template = template

    # ------------------------------------------------------------------
    # Topology and management
    # ------------------------------------------------------------------
    def stage_names(self) -> list[str]:
        """All stage/tap names, in traversal order."""
        return list(self._stage_names)

    def attach_tap(self, stage: str, callback) -> None:
        """Attach ``callback`` to observe snapshots at ``stage``."""
        try:
            self._taps[stage].append(callback)
        except KeyError:
            raise TargetError(f"no tap point {stage!r}") from None

    def detach_tap(self, stage: str, callback) -> None:
        try:
            callbacks = self._taps[stage]
        except KeyError:
            raise TargetError(f"no tap point {stage!r}") from None
        try:
            callbacks.remove(callback)
        except ValueError:
            raise TargetError(
                f"callback is not attached at tap {stage!r}"
            ) from None

    def has_taps(self) -> bool:
        """True when any tap is attached anywhere (the batch kernel
        cannot publish snapshots, so the device falls back to the
        per-packet path while observers are present)."""
        return any(self._taps.values())

    def stage_cycles(self, stage: str, frame_bytes: int) -> int:
        """Deterministic cycle cost of one stage for one frame."""
        if stage in (TAP_INPUT, TAP_OUTPUT):
            return 1
        if stage in ("parser", "deparser"):
            words = -(-max(1, frame_bytes) // self.limits.bus_bytes)
            return 4 + words
        return 12  # one match-action stage

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def process(
        self,
        wire: bytes,
        inject_at: str = TAP_INPUT,
        ingress_port: int = 0,
        timestamp: int = 0,
    ) -> TargetRun:
        """Run one frame through the pipeline starting at ``inject_at``.

        The frame is always parsed (a mid-pipeline injection still needs
        the parsed representation, and a spec-honoring target still
        rejects malformed input); stages upstream of the injection
        point are *not* traversed, so their faults and taps never see
        the packet.
        """
        try:
            start = self._stage_index[inject_at]
        except KeyError:
            raise TargetError(
                f"unknown injection point {inject_at!r}"
            ) from None

        metadata = dict(self._metadata_template)
        metadata["ingress_port"] = ingress_port
        metadata["packet_length"] = len(wire) & 0xFFFF
        metadata["ingress_global_timestamp"] = timestamp & 0xFFFFFFFFFFFF

        use_compiled = self.use_compiled
        trace = Trace()
        if use_compiled:
            packet, payload, accepted = self._fast.parse(wire, metadata)
        else:
            packet, payload, accepted = self._interp.run_parser(
                wire, metadata, trace
            )
        if accepted:
            packet.payload = payload

        # Malformed frame injected downstream of the parser stage: the
        # parsed representation does not exist, so the run ends as a
        # parser rejection without traversing anything.
        if not accepted and start > self._parser_index:
            return TargetRun(
                PipelineResult(Verdict.PARSER_REJECTED, None, metadata, trace),
                [],
                "parser",
                self.stage_cycles("parser", len(wire)),
                inject_at,
            )

        injector = self.injector
        if injector is not None and injector._active:
            faulty = True
            stuck = injector.stuck_tables()
            frozen = injector.frozen_counters()
        else:
            faulty = False
            stuck = frozen = _EMPTY_SET
        # The tree-walking engine consults these via the pipeline (the
        # compiled engine snapshots them in ExecState); save/restore so
        # a reentrant process() from a tap callback cannot clobber the
        # outer run's active fault view.
        previous_stuck = self._current_stuck
        previous_frozen = self._current_frozen
        self._current_stuck = stuck
        self._current_frozen = frozen

        if use_compiled:
            exec_state = ExecState(
                packet, metadata, self.state.counters,
                self.state.registers, stuck, frozen,
            )
            ctx = None
        else:
            exec_state = None
            ctx = EvalContext(packet, metadata)

        taps = self._taps
        frame_bytes = len(wire)
        # Parser/deparser cost for this frame, resolved once.
        word_cost = self.stage_cycles("parser", frame_bytes)
        cycles = 0
        traversed: list[str] = []
        alive = True
        hint = ""
        verdict: Verdict | None = None
        died_at: str | None = None
        out_packet: Packet | None = None
        output_wire: bytes | None = None
        exited = False

        drop_stage: str | None = None
        for index in range(start, len(self._stages)):
            name, kind, fast_fn, control, stmt, cost, barrier = \
                self._stages[index]

            # Drop barrier: a packet whose drop flag survived the
            # preceding control block is discarded here, before this
            # stage would run — the interpreter's "skip egress, don't
            # deparse" semantics.
            if barrier and alive and metadata["drop"]:
                alive = False
                hint = "drop"
                verdict = Verdict.DROPPED
                died_at = drop_stage or (traversed[-1] if traversed else name)
                break

            traversed.append(name)
            cycles += word_cost if cost is None else cost

            if kind == _KIND_STMT:
                if alive and not exited:
                    try:
                        if use_compiled:
                            if fast_fn is not None:
                                fast_fn(exec_state)
                        else:
                            self._interp.exec_stmt(control, stmt, ctx, trace)
                    except ExitPipeline:
                        exited = True
                    # Track where the (still-set) drop flag originated;
                    # a later statement may clear it again.
                    if metadata["drop"]:
                        if drop_stage is None:
                            drop_stage = name
                    else:
                        drop_stage = None
            elif kind == _KIND_PARSER:
                if not accepted:
                    alive = False
                    hint = "parser_reject"
                    verdict = Verdict.PARSER_REJECTED
            elif kind == _KIND_DEPARSER:
                if alive:
                    if use_compiled:
                        out_packet = self._fast.deparse(packet)
                    else:
                        out_packet = self._interp.deparse(packet, trace)
                    metadata["egress_port"] = metadata["egress_spec"]
            elif kind == _KIND_OUTPUT:
                if alive and out_packet is None:
                    # Injected past the deparser: still serialize.
                    if use_compiled:
                        out_packet = self._fast.deparse(packet)
                    else:
                        out_packet = self._interp.deparse(packet, trace)
                    metadata["egress_port"] = metadata["egress_spec"]

            if faulty:
                for fault in injector.faults_at(name):
                    fault_kind = fault.kind
                    subject = out_packet if out_packet is not None else packet
                    if fault_kind is FaultKind.BLACKHOLE:
                        if alive and (
                            fault.predicate is None
                            or fault.predicate(subject)
                        ):
                            alive = False
                            hint = "blackhole"
                            verdict = Verdict.DROPPED
                    elif fault_kind is FaultKind.CORRUPT_FIELD:
                        _corrupt_field(subject, fault)
                        if subject is not packet:
                            _corrupt_field(packet, fault)
                    elif fault_kind is FaultKind.MISROUTE:
                        if fault.port is not None:
                            metadata["egress_spec"] = fault.port & 0x1FF
                            metadata["egress_port"] = metadata["egress_spec"]
                    elif fault_kind is FaultKind.TRUNCATE_PAYLOAD:
                        if fault.length is not None:
                            subject.payload = subject.payload[:fault.length]
                            if subject is not packet:
                                packet.payload = packet.payload[:fault.length]
                    elif fault_kind is FaultKind.EXTRA_LATENCY:
                        cycles += fault.extra_cycles
                    # TABLE_STUCK_MISS / COUNTER_FREEZE act during stage
                    # execution via the stuck/frozen sets.

            callbacks = taps[name]
            if callbacks:
                metadata["_cycles_elapsed"] = cycles
                # A drop-marked packet is still in flight (a later
                # statement may clear the flag), but taps report it as
                # dead-in-this-stage so passive localization points at
                # the stage that commanded the drop.
                if alive and metadata["drop"]:
                    snapshot_alive = False
                    snapshot_hint = "drop"
                else:
                    snapshot_alive = alive
                    snapshot_hint = hint
                if kind == _KIND_OUTPUT:
                    if out_packet is not None and alive:
                        output_wire = out_packet.pack()
                    snapshot = PacketSnapshot(
                        name, output_wire, out_packet, metadata,
                        snapshot_alive, snapshot_hint,
                    )
                else:
                    snapshot = PacketSnapshot(
                        name, wire, packet, metadata,
                        snapshot_alive, snapshot_hint,
                    )
                for callback in list(callbacks):
                    callback(snapshot)

            if not alive:
                died_at = name
                break

        if verdict is None:
            verdict = Verdict.FORWARDED
            if out_packet is None:
                out_packet = (
                    self._fast.deparse(packet)
                    if use_compiled
                    else self._interp.deparse(packet, trace)
                )
                metadata["egress_port"] = metadata["egress_spec"]
            result_packet = out_packet
        else:
            result_packet = None

        self._current_stuck = previous_stuck
        self._current_frozen = previous_frozen

        result = PipelineResult(verdict, result_packet, metadata, trace)
        return TargetRun(
            result, traversed, died_at, cycles, inject_at, output_wire
        )


def _corrupt_field(target: Packet, fault) -> None:
    """Apply a CORRUPT_FIELD fault to ``target`` (no-op when absent)."""
    if fault.header is None or fault.field is None:
        return
    header = target.get_or_none(fault.header)
    if header is None or not header.valid:
        return
    if not header.spec.has_field(fault.field):
        return
    width = header.spec.field(fault.field).width
    header._values[fault.field] = (
        header._values[fault.field] ^ fault.mask
    ) & ((1 << width) - 1)
