"""Persistent on-disk cache of compiled program artifacts.

Campaign workers, cluster fleets and ``replay_campaign`` all compile
the same handful of programs over and over — once per (program,
target, setup) per process. The closures themselves cannot be
pickled, but everything *around* them can: diagnostics, deviation
model, resource estimates, and — crucially — the program IR with its
installed table entries. This module stores that picklable core and
rebuilds the closures on load, which is much cheaper than a full
``TargetCompiler.compile`` (no validation, limit checking or resource
fitting).

Layout and keying
-----------------

Artifacts live as ``<key>.pkl`` under a cache directory resolved from
the ``REPRO_COMPILE_CACHE`` environment variable (a path, or one of
``off`` / ``0`` / ``none`` / ``disabled`` to disable caching), falling
back to ``~/.cache/repro-target``. The key is a SHA-256 over:

* a canonical recursive serialization of the *pre-provisioning*
  program IR (dataclass fields in declaration order, dict items
  sorted, enums by value) — so any program edit changes the key;
* the target name and its deviation model (``honor_reject``,
  ``quantize_tcam``, ``deparse_field_budget``);
* a caller-supplied extra tag (campaigns use the setup label, since
  provisioned table entries are stored inside the artifact);
* :data:`CACHE_VERSION` and the interpreter version.

Corruption tolerance: a load that fails for *any* reason (truncated
pickle, stale format, version or key mismatch) counts as a miss and
deletes the offending file. Stores are atomic (temp file + rename) so
concurrent workers can share one cache directory.

Hit/miss counters are module-global; campaign shards snapshot them
around device acquisition and surface the deltas in
``CampaignReport.meta["compile_cache"]`` and ``BENCH_perf.json``.
"""

from __future__ import annotations

import dataclasses
import enum
import hashlib
import os
import pickle
import sys
import tempfile
from pathlib import Path

from .compiler import CompiledProgram, TargetCompiler
from .fastpath import compile_program

__all__ = [
    "CACHE_VERSION",
    "ArtifactCache",
    "FingerprintError",
    "get_artifact_cache",
    "record_memory_hit",
    "stats_delta",
    "stats_snapshot",
]

#: Bump when the on-disk artifact format changes. Also stamped into
#: cluster job frames so a stale worker fails fast (see transport.py).
CACHE_VERSION = 1

_ENV_VAR = "REPRO_COMPILE_CACHE"
_DISABLED = {"off", "0", "none", "disabled"}

_STATS = {"hits": 0, "misses": 0, "stores": 0, "memory_hits": 0}


class FingerprintError(ValueError):
    """The program IR contains something we cannot canonicalize."""


def stats_snapshot() -> dict[str, int]:
    """Copy of the process-wide cache counters."""
    return dict(_STATS)


def stats_delta(before: dict[str, int]) -> dict[str, int]:
    """Counter movement since ``before`` (a prior snapshot)."""
    return {key: _STATS[key] - before.get(key, 0) for key in _STATS}


def record_memory_hit() -> None:
    """Count an in-process artifact reuse (no disk involved)."""
    _STATS["memory_hits"] += 1


def _canonical(node, out: list) -> None:
    """Append a deterministic token stream for ``node`` to ``out``."""
    if node is None or isinstance(node, (bool, int, str, bytes, float)):
        out.append(repr(node))
    elif isinstance(node, enum.Enum):
        out.append(f"E:{type(node).__name__}:{node.value!r}")
    elif dataclasses.is_dataclass(node) and not isinstance(node, type):
        out.append(f"D:{type(node).__name__}(")
        for f in dataclasses.fields(node):
            out.append(f.name + "=")
            _canonical(getattr(node, f.name), out)
        out.append(")")
    elif isinstance(node, dict):
        out.append("{")
        for key in sorted(node, key=repr):
            _canonical(key, out)
            out.append(":")
            _canonical(node[key], out)
        out.append("}")
    elif isinstance(node, (list, tuple)):
        out.append("[")
        for item in node:
            _canonical(item, out)
        out.append("]")
    elif isinstance(node, (set, frozenset)):
        out.append("s[")
        for item in sorted(node, key=repr):
            _canonical(item, out)
        out.append("]")
    else:
        raise FingerprintError(
            f"cannot canonicalize {type(node).__name__} in program IR"
        )


class ArtifactCache:
    """One cache directory holding versioned compiled artifacts."""

    def __init__(self, directory: Path):
        self.directory = Path(directory)

    # ------------------------------------------------------------------
    # Keying
    # ------------------------------------------------------------------
    def key_for(
        self, program, compiler: TargetCompiler, extra: str = ""
    ) -> str:
        """Cache key for ``program`` compiled by ``compiler``.

        Raises :class:`FingerprintError` when the IR cannot be
        canonicalized; callers should treat that program as uncacheable.
        """
        tokens: list = [
            f"v{CACHE_VERSION}",
            f"py{sys.version_info[0]}.{sys.version_info[1]}",
            compiler.limits.name,
            repr(compiler.honor_reject),
            repr(compiler.quantize_tcam),
            repr(compiler.deparse_field_budget),
            extra,
            "|",
        ]
        _canonical(program, tokens)
        digest = hashlib.sha256(
            "\x1f".join(tokens).encode()
        ).hexdigest()
        return digest

    def _path(self, key: str) -> Path:
        return self.directory / f"{key}.pkl"

    # ------------------------------------------------------------------
    # Load / store
    # ------------------------------------------------------------------
    def load(
        self, key: str, compiler: TargetCompiler
    ) -> CompiledProgram | None:
        """Load the artifact for ``key``, rebuilding its closures.

        Any failure — missing file, truncated pickle, version or key
        mismatch — is a miss; corrupt files are deleted so they cannot
        poison later runs.
        """
        path = self._path(key)
        try:
            with open(path, "rb") as fh:
                payload = pickle.load(fh)
            if (
                payload["version"] != CACHE_VERSION
                or payload["key"] != key
            ):
                raise ValueError("stale cache entry")
            compiled: CompiledProgram = payload["artifact"]
            if compiled.target_name != compiler.limits.name:
                raise ValueError("artifact/target mismatch")
            compiled.fast = compile_program(
                compiled.program,
                compiled.honor_reject,
                quantize_tcam=compiled.quantize_tcam,
                deparse_field_budget=compiled.deparse_field_budget,
            )
        except FileNotFoundError:
            _STATS["misses"] += 1
            return None
        except Exception:
            _STATS["misses"] += 1
            try:
                os.unlink(path)
            except OSError:
                pass
            return None
        _STATS["hits"] += 1
        return compiled

    def store(self, key: str, compiled: CompiledProgram) -> None:
        """Persist ``compiled`` under ``key`` (atomic, best-effort)."""
        payload = {
            "version": CACHE_VERSION,
            "key": key,
            # Closures cannot pickle; they are rebuilt on load.
            "artifact": dataclasses.replace(
                compiled, fast=None, batch=None
            ),
        }
        try:
            self.directory.mkdir(parents=True, exist_ok=True)
            fd, tmp = tempfile.mkstemp(
                dir=self.directory, suffix=".tmp"
            )
            try:
                with os.fdopen(fd, "wb") as fh:
                    pickle.dump(payload, fh)
                os.replace(tmp, self._path(key))
            except BaseException:
                try:
                    os.unlink(tmp)
                except OSError:
                    pass
                raise
        except Exception:
            # A read-only or full cache directory must never fail the
            # run; the artifact simply is not persisted.
            return
        _STATS["stores"] += 1


def get_artifact_cache() -> ArtifactCache | None:
    """The configured cache, or ``None`` when caching is disabled."""
    raw = os.environ.get(_ENV_VAR)
    if raw is not None:
        if raw.strip().lower() in _DISABLED:
            return None
        return ArtifactCache(Path(raw))
    return ArtifactCache(Path.home() / ".cache" / "repro-target")
