"""Hardware fault injection for the simulated targets.

Faults model the below-the-program failure modes NetDebug exists to
find: packets vanishing mid-pipeline, fields flipping, traffic emerging
on the wrong port, tables that stop matching, counters that stop
counting, and stages that silently slow down. Faults attach to a
pipeline *stage* (see :meth:`repro.target.pipeline.StagedPipeline.stage_names`)
and are applied by the pipeline as packets traverse that stage —
invisible to the program and, crucially, to any spec-level analysis.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Callable

from ..exceptions import TargetError
from ..packet.packet import Packet

__all__ = ["FaultKind", "Fault", "FaultInjector"]


class FaultKind(str, Enum):
    """The supported hardware fault classes."""

    #: Packets traversing the stage are silently eaten.
    BLACKHOLE = "blackhole"
    #: XOR a header field with ``mask`` as the packet passes the stage.
    CORRUPT_FIELD = "corrupt_field"
    #: Override the egress decision with ``port``.
    MISROUTE = "misroute"
    #: Truncate the payload to ``length`` bytes.
    TRUNCATE_PAYLOAD = "truncate_payload"
    #: Lookups on ``table`` are stuck at miss (default action fires).
    TABLE_STUCK_MISS = "table_stuck_miss"
    #: The named counter silently stops incrementing.
    COUNTER_FREEZE = "counter_freeze"
    #: The stage takes ``extra_cycles`` longer, functionally invisible.
    EXTRA_LATENCY = "extra_latency"


@dataclass
class Fault:
    """One injected hardware fault.

    ``predicate`` (when given) limits the fault to packets it returns
    True for; it receives the parsed :class:`~repro.packet.packet.Packet`
    at the fault's stage.
    """

    kind: FaultKind
    stage: str = ""
    predicate: Callable[[Packet], bool] | None = None
    header: str | None = None
    field: str | None = None
    mask: int = 0
    port: int | None = None
    length: int | None = None
    table: str | None = None
    counter: str | None = None
    extra_cycles: int = 0


class FaultInjector:
    """Holds the active fault set for one device."""

    def __init__(self) -> None:
        self._active: list[Fault] = []

    @property
    def active(self) -> list[Fault]:
        return list(self._active)

    def inject(self, fault: Fault) -> Fault:
        """Activate ``fault``; returns it for later removal."""
        self._active.append(fault)
        return fault

    def remove(self, fault: Fault) -> None:
        """Deactivate a previously injected fault (matched by identity)."""
        for index, active in enumerate(self._active):
            if active is fault:
                del self._active[index]
                return
        raise TargetError("fault is not active")

    def clear(self) -> None:
        self._active.clear()

    def faults_at(self, stage: str) -> list[Fault]:
        """Active faults attached to ``stage``."""
        return [f for f in self._active if f.stage == stage]

    def stuck_tables(self) -> set[str]:
        """Names of tables with an active TABLE_STUCK_MISS fault."""
        return {
            f.table
            for f in self._active
            if f.kind is FaultKind.TABLE_STUCK_MISS and f.table
        }

    def frozen_counters(self) -> set[str]:
        """Names of counters with an active COUNTER_FREEZE fault."""
        return {
            f.counter
            for f in self._active
            if f.kind is FaultKind.COUNTER_FREEZE and f.counter
        }
