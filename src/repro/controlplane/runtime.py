"""Control-plane runtime API.

The control plane is how an operator (or test harness) configures a
loaded program: installing table entries, reading counters, and poking
registers. It deliberately mirrors the shape of P4Runtime-style APIs —
string table/action names, positional match keys and action data — so the
example applications read like real controller code.
"""

from __future__ import annotations

from ..exceptions import ControlPlaneError
from ..p4.interpreter import RuntimeState
from ..p4.program import P4Program
from ..p4.table import KeyPattern, MatchKind, Table, TableEntry

__all__ = ["RuntimeAPI"]


class RuntimeAPI:
    """Configure a program's tables and inspect its stateful objects."""

    def __init__(self, program: P4Program, state: RuntimeState):
        self._program = program
        self._state = state

    # ------------------------------------------------------------------
    # Tables
    # ------------------------------------------------------------------
    def _table(self, name: str) -> Table:
        return self._program.table(name)

    def table_add(
        self,
        table: str,
        action: str,
        keys: list[object],
        action_data: list[int] | tuple[int, ...] = (),
        priority: int = 0,
    ) -> TableEntry:
        """Install one entry.

        Each element of ``keys`` must suit the table's match kind at that
        position: an int for EXACT, ``(value, prefix_len)`` for LPM,
        ``(value, mask)`` for TERNARY, ``(low, high)`` for RANGE.
        """
        tbl = self._table(table)
        if len(keys) != len(tbl.keys):
            raise ControlPlaneError(
                f"table {table!r} has {len(tbl.keys)} keys, got {len(keys)}"
            )
        patterns: list[KeyPattern] = []
        for key_decl, key in zip(tbl.keys, keys):
            kind = key_decl.kind
            if kind is MatchKind.EXACT:
                if not isinstance(key, int):
                    raise ControlPlaneError(
                        f"exact key must be an int, got {key!r}"
                    )
                patterns.append(KeyPattern.exact(key))
            elif kind is MatchKind.LPM:
                value, prefix_len = self._expect_pair(key, "LPM")
                patterns.append(KeyPattern.lpm(value, prefix_len))
            elif kind is MatchKind.TERNARY:
                value, mask = self._expect_pair(key, "ternary")
                patterns.append(KeyPattern.ternary(value, mask))
            elif kind is MatchKind.RANGE:
                low, high = self._expect_pair(key, "range")
                if low > high:
                    raise ControlPlaneError(
                        f"range key low {low} > high {high}"
                    )
                patterns.append(KeyPattern.range(low, high))
            else:  # pragma: no cover - enum is closed
                raise ControlPlaneError(f"unknown match kind {kind!r}")
        entry = TableEntry(
            tuple(patterns), action, tuple(action_data), priority
        )
        tbl.insert(entry)
        return entry

    @staticmethod
    def _expect_pair(key: object, kind: str) -> tuple[int, int]:
        if (
            not isinstance(key, tuple)
            or len(key) != 2
            or not all(isinstance(part, int) for part in key)
        ):
            raise ControlPlaneError(
                f"{kind} key must be a (value, arg) int pair, got {key!r}"
            )
        return key  # type: ignore[return-value]

    def table_delete(self, table: str, entry: TableEntry) -> None:
        self._table(table).remove(entry)

    def table_clear(self, table: str) -> None:
        self._table(table).clear()

    def table_entries(self, table: str) -> list[TableEntry]:
        return list(self._table(table).entries)

    def table_occupancy(self) -> dict[str, tuple[int, int]]:
        """Per-table ``(installed, capacity)`` across the program."""
        return {
            name: (len(tbl.entries), tbl.size)
            for name, tbl in self._program.all_tables().items()
        }

    def set_default_action(
        self, table: str, action: str, action_data: tuple[int, ...] = ()
    ) -> None:
        tbl = self._table(table)
        if action not in tbl.actions:
            raise ControlPlaneError(
                f"table {table!r} has no action {action!r}"
            )
        tbl.action(action).bind(action_data)
        tbl.default_action = action
        tbl.default_action_data = tuple(action_data)

    # ------------------------------------------------------------------
    # Stateful objects
    # ------------------------------------------------------------------
    def counter_read(self, name: str, index: int = 0) -> int:
        try:
            cells = self._state.counters[name]
        except KeyError:
            raise ControlPlaneError(f"no counter {name!r}") from None
        if not 0 <= index < len(cells):
            raise ControlPlaneError(
                f"counter {name!r} index {index} out of range"
            )
        return cells[index]

    def counter_reset(self, name: str) -> None:
        try:
            cells = self._state.counters[name]
        except KeyError:
            raise ControlPlaneError(f"no counter {name!r}") from None
        for index in range(len(cells)):
            cells[index] = 0

    def register_read(self, name: str, index: int = 0) -> int:
        try:
            cells = self._state.registers[name]
        except KeyError:
            raise ControlPlaneError(f"no register {name!r}") from None
        if not 0 <= index < len(cells):
            raise ControlPlaneError(
                f"register {name!r} index {index} out of range"
            )
        return cells[index]

    def register_write(self, name: str, index: int, value: int) -> None:
        try:
            cells = self._state.registers[name]
        except KeyError:
            raise ControlPlaneError(f"no register {name!r}") from None
        if not 0 <= index < len(cells):
            raise ControlPlaneError(
                f"register {name!r} index {index} out of range"
            )
        width = self._state.register_widths[name]
        if value < 0 or value.bit_length() > width:
            raise ControlPlaneError(
                f"value {value} does not fit register {name!r} "
                f"({width} bits)"
            )
        cells[index] = value
