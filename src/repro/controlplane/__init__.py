"""Control-plane runtime management (P4Runtime-like API)."""

from .runtime import RuntimeAPI

__all__ = ["RuntimeAPI"]
