"""Discrete-event simulation: engine, traffic generation, network wiring."""

from .events import Simulator, ns_per_cycle
from .network import Host, Network, ReceivedFrame
from .traffic import (
    FlowSpec,
    IMIX_DISTRIBUTION,
    WORKLOADS,
    WorkloadBundle,
    build_workload,
    constant_rate_times,
    default_flow,
    imix_stream,
    malformed_mix,
    pad_to_size,
    poisson_times,
    udp_stream,
)

__all__ = [
    "Simulator",
    "ns_per_cycle",
    "Network",
    "Host",
    "ReceivedFrame",
    "FlowSpec",
    "IMIX_DISTRIBUTION",
    "constant_rate_times",
    "poisson_times",
    "udp_stream",
    "imix_stream",
    "malformed_mix",
    "pad_to_size",
    "default_flow",
    "WorkloadBundle",
    "WORKLOADS",
    "build_workload",
]
