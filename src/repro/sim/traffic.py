"""Traffic generation for simulations.

Deterministic, seeded workload generators producing the packet mixes the
benchmark harness sweeps: fixed-size UDP streams, IMIX-style mixes, and
adversarial mixes containing malformed packets (the reject-state workload).
"""

from __future__ import annotations

import inspect
import math
import random
from dataclasses import dataclass
from typing import Callable, Iterator

from ..exceptions import SimulationError
from ..packet.builder import ethernet_frame, udp_packet
from ..packet.headers import ipv4, mac
from ..packet.packet import Packet

__all__ = [
    "FlowSpec",
    "INSIDE_PORT",
    "OUTSIDE_PORT",
    "constant_rate_times",
    "poisson_times",
    "burst_times",
    "onoff_times",
    "udp_stream",
    "imix_stream",
    "malformed_mix",
    "heavy_tailed_flow_sizes",
    "tcp_flow_stream",
    "bidirectional_flows",
    "pad_to_size",
    "WorkloadBundle",
    "WorkloadContext",
    "WORKLOADS",
    "build_workload",
]

#: Ingress-port convention for bidirectional traffic, matching
#: ``repro.p4.stdlib_ext.stateful_firewall``: the protected side
#: ingresses on port 0, the outside world on port 1.
INSIDE_PORT = 0
OUTSIDE_PORT = 1


def _check_rate(rate_pps: float, who: str) -> None:
    """Reject rates that would produce divide-by-zero or bogus gaps."""
    if not math.isfinite(rate_pps) or rate_pps <= 0:
        raise SimulationError(
            f"{who}: rate_pps must be a positive finite packet rate, "
            f"got {rate_pps!r}"
        )


@dataclass(frozen=True)
class FlowSpec:
    """A five-tuple template for one generated flow."""

    src_ip: int
    dst_ip: int
    src_port: int
    dst_port: int
    eth_src: int = mac("02:00:00:00:00:01")
    eth_dst: int = mac("02:00:00:00:00:02")


def pad_to_size(packet: Packet, wire_size: int) -> Packet:
    """Pad a packet's payload so the serialized frame is ``wire_size``.

    Raises ValueError when the headers alone exceed the target size.
    """
    base = packet.wire_length - len(packet.payload)
    if wire_size < base:
        raise ValueError(
            f"cannot fit {base} header bytes into a {wire_size}-byte frame"
        )
    padded = packet.copy()
    pad = wire_size - base
    padded.payload = (
        packet.payload + b"\x00" * (pad - len(packet.payload))
        if pad >= len(packet.payload)
        else packet.payload[:pad]
    )
    return padded


def constant_rate_times(rate_pps: float, count: int) -> Iterator[float]:
    """Arrival times (ns) for ``count`` packets at a constant rate.

    Raises :class:`SimulationError` (eagerly, not at first iteration)
    when ``rate_pps`` is zero, negative, or non-finite.
    """
    _check_rate(rate_pps, "constant_rate_times")
    gap = 1e9 / rate_pps

    def times() -> Iterator[float]:
        for index in range(count):
            yield index * gap

    return times()


def poisson_times(
    rate_pps: float, count: int, seed: int = 0
) -> Iterator[float]:
    """Poisson arrival times (ns) with mean ``rate_pps``.

    Raises :class:`SimulationError` (eagerly, not at first iteration)
    when ``rate_pps`` is zero, negative, or non-finite.
    """
    _check_rate(rate_pps, "poisson_times")
    rng = random.Random(seed)

    def times() -> Iterator[float]:
        time = 0.0
        for _ in range(count):
            time += rng.expovariate(rate_pps) * 1e9
            yield time

    return times()


def burst_times(
    rate_pps: float,
    count: int,
    burst_size: int = 8,
    duty_cycle: float = 0.2,
    seed: int = 0,
) -> Iterator[float]:
    """Bursty arrival times (ns): back-to-back trains at the peak rate
    separated by seeded idle gaps, with mean rate ``rate_pps``.

    Within a burst, packets are spaced at ``duty_cycle / rate_pps``
    (i.e. the peak rate is ``rate_pps / duty_cycle``); inter-burst idle
    gaps absorb the remaining budget, jittered ±20% by ``seed`` so
    different cells see different burst phasing while any one cell is
    reproducible. Raises :class:`SimulationError` (eagerly, not at
    first iteration) for a non-positive rate, burst size or duty cycle.
    """
    _check_rate(rate_pps, "burst_times")
    if burst_size <= 0:
        raise SimulationError(
            f"burst_times: burst_size must be positive, got {burst_size!r}"
        )
    if not 0.0 < duty_cycle <= 1.0:
        raise SimulationError(
            f"burst_times: duty_cycle must be in (0, 1], got {duty_cycle!r}"
        )
    rng = random.Random(seed)
    mean_gap = 1e9 / rate_pps
    on_gap = duty_cycle * mean_gap

    def times() -> Iterator[float]:
        time = 0.0
        for index in range(count):
            if index and index % burst_size == 0:
                idle = (mean_gap - on_gap) * burst_size
                time += idle * (0.8 + 0.4 * rng.random())
            time += on_gap
            yield time

    return times()


def onoff_times(
    rate_pps: float,
    count: int,
    seed: int = 0,
    p_on_off: float = 0.1,
    p_off_on: float = 0.3,
    off_scale: float = 10.0,
) -> Iterator[float]:
    """Two-state Markov (on-off) arrival times (ns).

    The source alternates between an ON state emitting at ``rate_pps``
    and a silent OFF state: after each packet it moves ON→OFF with
    probability ``p_on_off``, and while OFF it idles in multiples of
    ``off_scale`` packet gaps, returning OFF→ON with probability
    ``p_off_on`` per idle step — the classic bursty-source model.
    Seed-deterministic; raises :class:`SimulationError` (eagerly, not
    at first iteration) for a non-positive rate or transition
    probabilities outside (0, 1].
    """
    _check_rate(rate_pps, "onoff_times")
    for name, probability in (
        ("p_on_off", p_on_off), ("p_off_on", p_off_on)
    ):
        if not 0.0 < probability <= 1.0:
            raise SimulationError(
                f"onoff_times: {name} must be in (0, 1], "
                f"got {probability!r}"
            )
    if off_scale <= 0:
        raise SimulationError(
            f"onoff_times: off_scale must be positive, got {off_scale!r}"
        )
    rng = random.Random(seed)
    on_gap = 1e9 / rate_pps
    off_gap = off_scale * on_gap

    def times() -> Iterator[float]:
        time = 0.0
        on = True
        for _ in range(count):
            if on and rng.random() < p_on_off:
                on = False
            while not on:
                time += off_gap
                if rng.random() < p_off_on:
                    on = True
            time += on_gap
            yield time

    return times()


def udp_stream(
    flow: FlowSpec, count: int, size: int = 128, seed: int = 0
) -> Iterator[Packet]:
    """A stream of identical-shape UDP packets padded to ``size`` bytes."""
    rng = random.Random(seed)
    for index in range(count):
        packet = udp_packet(
            flow.dst_ip,
            flow.src_ip,
            flow.dst_port,
            flow.src_port,
            payload=index.to_bytes(4, "big") + rng.randbytes(4),
            eth_dst=flow.eth_dst,
            eth_src=flow.eth_src,
        )
        yield pad_to_size(packet, size)


#: The classic IMIX distribution: (frame size, relative weight).
IMIX_DISTRIBUTION = ((64, 7), (570, 4), (1518, 1))


def imix_stream(flow: FlowSpec, count: int, seed: int = 0) -> Iterator[Packet]:
    """An IMIX-weighted mix of small/medium/large frames."""
    rng = random.Random(seed)
    sizes = [size for size, weight in IMIX_DISTRIBUTION for _ in range(weight)]
    for index in range(count):
        size = rng.choice(sizes)
        packet = udp_packet(
            flow.dst_ip,
            flow.src_ip,
            flow.dst_port,
            flow.src_port,
            payload=index.to_bytes(4, "big"),
            eth_dst=flow.eth_dst,
            eth_src=flow.eth_src,
        )
        yield pad_to_size(packet, size)


def malformed_mix(
    flow: FlowSpec,
    count: int,
    malformed_fraction: float = 0.5,
    seed: int = 0,
) -> Iterator[tuple[Packet, bool]]:
    """A mix of valid IPv4 and malformed packets.

    Yields ``(packet, is_malformed)``. Malformed packets are the §4 case
    study's inputs: wrong IP version, bad IHL, or an unknown EtherType —
    all of which a strict parser must reject.
    """
    rng = random.Random(seed)
    for index in range(count):
        if rng.random() < malformed_fraction:
            kind = rng.randrange(3)
            if kind == 0:
                # Wrong IP version.
                packet = udp_packet(
                    flow.dst_ip, flow.src_ip, flow.dst_port, flow.src_port,
                    payload=b"bad-version",
                    eth_dst=flow.eth_dst, eth_src=flow.eth_src,
                )
                packet.get("ipv4")["version"] = 6
            elif kind == 1:
                # Bad IHL (below the minimum of 5).
                packet = udp_packet(
                    flow.dst_ip, flow.src_ip, flow.dst_port, flow.src_port,
                    payload=b"bad-ihl",
                    eth_dst=flow.eth_dst, eth_src=flow.eth_src,
                )
                packet.get("ipv4")["ihl"] = rng.randrange(0, 5)
            else:
                # Unknown EtherType entirely.
                packet = ethernet_frame(
                    flow.eth_dst, flow.eth_src, 0xBEEF,
                    payload=rng.randbytes(46),
                )
            yield packet, True
        else:
            packet = udp_packet(
                flow.dst_ip, flow.src_ip, flow.dst_port, flow.src_port,
                payload=index.to_bytes(4, "big"),
                eth_dst=flow.eth_dst, eth_src=flow.eth_src,
            )
            yield packet, False


def heavy_tailed_flow_sizes(
    count: int,
    seed: int = 0,
    alpha: float = 1.3,
    lo: int = 2,
    hi: int = 64,
) -> list[int]:
    """Sample ``count`` flow sizes (data packets per flow) from a
    bounded Pareto distribution.

    Internet flow sizes are famously heavy-tailed — most flows are
    mice, a few elephants carry most bytes — so a campaign-sized
    population sampler draws from a Pareto(``alpha``) truncated to
    ``[lo, hi]`` via the inverse CDF. Seed-deterministic. Raises
    :class:`SimulationError` for a non-positive ``alpha`` or an empty
    or inverted ``[lo, hi]`` range.
    """
    if alpha <= 0 or not math.isfinite(alpha):
        raise SimulationError(
            f"heavy_tailed_flow_sizes: alpha must be positive and "
            f"finite, got {alpha!r}"
        )
    if lo < 1 or hi < lo:
        raise SimulationError(
            f"heavy_tailed_flow_sizes: need 1 <= lo <= hi, "
            f"got lo={lo!r} hi={hi!r}"
        )
    rng = random.Random(seed)
    ratio = (lo / hi) ** alpha
    sizes = []
    for _ in range(count):
        u = rng.random()
        raw = lo / (1.0 - u * (1.0 - ratio)) ** (1.0 / alpha)
        sizes.append(min(hi, max(lo, int(raw))))
    return sizes


def _directed_packet(
    flow: FlowSpec, outbound: bool, payload: bytes
) -> Packet:
    """One UDP packet of ``flow`` in the given direction.

    The inbound direction swaps addresses and ports end for end, so an
    inbound packet's reversed five-tuple hashes to the same connection
    slot its outbound counterpart opened (the ``stateful_firewall``
    return-path contract).
    """
    if outbound:
        return udp_packet(
            flow.dst_ip, flow.src_ip, flow.dst_port, flow.src_port,
            payload=payload, eth_dst=flow.eth_dst, eth_src=flow.eth_src,
        )
    return udp_packet(
        flow.src_ip, flow.dst_ip, flow.src_port, flow.dst_port,
        payload=payload, eth_dst=flow.eth_src, eth_src=flow.eth_dst,
    )


def tcp_flow_stream(
    flow: FlowSpec, data_packets: int = 4, seed: int = 0
) -> Iterator[tuple[Packet, bool]]:
    """One TCP-like bidirectional exchange; yields ``(packet,
    is_outbound)`` in connection order.

    The exchange is a three-way handshake (SYN out, SYN-ACK in, ACK
    out), ``data_packets`` alternating data segments starting outbound,
    and a teardown (FIN out, FIN-ACK in). Segments are carried over UDP
    — the header library's L4 — with the segment role in the payload:
    the behaviour under test is the firewall's five-tuple state
    machine, which sees exactly the bidirectional pattern TCP produces
    without needing a TCP deparser.
    """
    rng = random.Random(seed)

    def segment(marker: bytes, index: int) -> bytes:
        return marker + b":" + index.to_bytes(4, "big") + rng.randbytes(4)

    script: list[tuple[bool, bytes]] = [
        (True, b"SYN"), (False, b"SYN-ACK"), (True, b"ACK")
    ]
    for index in range(data_packets):
        script.append((index % 2 == 0, b"DATA"))
    script.extend([(True, b"FIN"), (False, b"FIN-ACK")])
    for index, (outbound, marker) in enumerate(script):
        yield (
            _directed_packet(flow, outbound, segment(marker, index)),
            outbound,
        )


def bidirectional_flows(
    flow: FlowSpec,
    count: int,
    seed: int = 0,
    loss: float = 0.02,
    reorder_fraction: float = 0.1,
    reorder_window: int = 3,
    alpha: float = 1.3,
) -> list[tuple[Packet, int]]:
    """A campaign-sized bidirectional packet sequence with loss and
    reordering; returns exactly ``count`` ``(packet, ingress_port)``
    pairs.

    Subflow ``k`` perturbs ``flow``'s source port by ``k`` (a distinct
    five-tuple, hence a distinct firewall slot) and runs one
    :func:`tcp_flow_stream` exchange whose data length is drawn from
    :func:`heavy_tailed_flow_sizes`. The concatenated exchanges then
    pass through a seeded Bernoulli loss filter and a bounded-window
    adjacent-swap reorder pass. Outbound packets ingress on
    :data:`INSIDE_PORT`, inbound on :data:`OUTSIDE_PORT`.

    Loss and reordering are applied *before* the sequence is handed to
    anyone: the device and the oracle both consume the identical final
    sequence, so a dropped SYN or an inbound segment racing ahead of
    the outbound that would open its slot changes which state
    transitions happen — not the oracle's ability to predict them.
    """
    if not 0.0 <= loss < 1.0:
        raise SimulationError(
            f"bidirectional_flows: loss must be in [0, 1), got {loss!r}"
        )
    if not 0.0 <= reorder_fraction <= 1.0:
        raise SimulationError(
            f"bidirectional_flows: reorder_fraction must be in [0, 1], "
            f"got {reorder_fraction!r}"
        )
    if reorder_window < 1:
        raise SimulationError(
            f"bidirectional_flows: reorder_window must be >= 1, "
            f"got {reorder_window!r}"
        )

    margin = count + reorder_window + 8
    for attempt in range(64):
        rng = random.Random(seed + attempt * 0x9E3779B9)
        sizes = heavy_tailed_flow_sizes(
            max(1, margin), seed=seed + attempt, alpha=alpha
        )
        raw: list[tuple[Packet, int]] = []
        for k, data_packets in enumerate(sizes):
            if len(raw) >= margin:
                break
            subflow = FlowSpec(
                src_ip=flow.src_ip,
                dst_ip=flow.dst_ip,
                src_port=(flow.src_port + k) & 0xFFFF,
                dst_port=flow.dst_port,
                eth_src=flow.eth_src,
                eth_dst=flow.eth_dst,
            )
            raw.extend(
                (
                    packet,
                    INSIDE_PORT if outbound else OUTSIDE_PORT,
                )
                for packet, outbound in tcp_flow_stream(
                    subflow, data_packets=data_packets, seed=seed ^ k
                )
            )
        kept = [pair for pair in raw if rng.random() >= loss]
        if len(kept) >= count:
            break
        # Heavy loss ate the margin: retry deterministically with more.
        margin *= 2
    else:  # pragma: no cover - loss < 1 always converges
        raise SimulationError("bidirectional_flows failed to converge")

    picked = kept[:count]
    for index in range(len(picked)):
        if rng.random() < reorder_fraction:
            other = index + rng.randrange(1, reorder_window + 1)
            if other < len(picked):
                picked[index], picked[other] = (
                    picked[other], picked[index]
                )
    return picked


def default_flow(index: int = 0) -> FlowSpec:
    """A convenient distinct flow for tests and examples."""
    return FlowSpec(
        src_ip=ipv4("10.0.0.1") + index,
        dst_ip=ipv4("10.1.0.1") + index,
        src_port=1024 + index,
        dst_port=5000 + index,
    )


# ---------------------------------------------------------------------------
# The workload registry
# ---------------------------------------------------------------------------
# Campaigns and suites sweep workloads *by name*; each entry materializes
# one named packet mix for a (flow, count, seed) triple. Entries return a
# WorkloadBundle so timed workloads (poisson) can carry their arrival
# process alongside the packets.

@dataclass(frozen=True)
class WorkloadContext:
    """What a *program-aware* workload knows about the cell it feeds.

    Seeded-random workloads are pure functions of ``(flow, count,
    seed, rate_pps)``; the ``coverage`` workload additionally derives
    its packets from the program under test and the target's deviation
    model. Campaign shards pass the scenario axes here — plus, when
    available, the shard's already-provisioned compiled artifact so
    the workload judges feasibility against exactly the table state
    the device runs (``compiled`` is never serialized; it is an
    in-process shortcut only).
    """

    program: str
    target: str
    setup: str = ""
    compiled: object | None = None


@dataclass(frozen=True)
class WorkloadBundle:
    """One materialized workload: packets, plus arrival times when the
    workload defines its own arrival process (ns, monotonically
    increasing; ``None`` means back-to-back / constant-rate), plus
    per-packet ingress ports when the workload is directional
    (``None`` means the historical fixed ingress, port 0). Path-guided
    workloads also attach their ``coverage`` map (a
    :class:`repro.netdebug.coverage.CoverageMap`) recording which
    feasible path each packet witnesses."""

    name: str
    packets: tuple[Packet, ...]
    times_ns: tuple[float, ...] | None = None
    ingress_ports: tuple[int, ...] | None = None
    coverage: object | None = None


def _udp_workload(
    flow: FlowSpec, count: int, seed: int, rate_pps: float
) -> WorkloadBundle:
    return WorkloadBundle(
        "udp", tuple(udp_stream(flow, count, size=128, seed=seed))
    )


def _imix_workload(
    flow: FlowSpec, count: int, seed: int, rate_pps: float
) -> WorkloadBundle:
    return WorkloadBundle("imix", tuple(imix_stream(flow, count, seed=seed)))


def _poisson_workload(
    flow: FlowSpec, count: int, seed: int, rate_pps: float
) -> WorkloadBundle:
    return WorkloadBundle(
        "poisson",
        tuple(udp_stream(flow, count, size=128, seed=seed)),
        times_ns=tuple(poisson_times(rate_pps, count, seed=seed)),
    )


def _burst_workload(
    flow: FlowSpec, count: int, seed: int, rate_pps: float
) -> WorkloadBundle:
    return WorkloadBundle(
        "burst",
        tuple(udp_stream(flow, count, size=128, seed=seed)),
        times_ns=tuple(burst_times(rate_pps, count, seed=seed)),
    )


def _onoff_workload(
    flow: FlowSpec, count: int, seed: int, rate_pps: float
) -> WorkloadBundle:
    return WorkloadBundle(
        "onoff",
        tuple(udp_stream(flow, count, size=128, seed=seed)),
        times_ns=tuple(onoff_times(rate_pps, count, seed=seed)),
    )


def _malformed_workload(
    flow: FlowSpec, count: int, seed: int, rate_pps: float
) -> WorkloadBundle:
    # Deterministic 50/50 interleave (malformed first) rather than a
    # Bernoulli draw: a short campaign cell must still exercise the
    # reject path, and an unlucky seed can put zero malformed packets
    # in a small Bernoulli mix.
    bad = malformed_mix(flow, count, 1.0, seed=seed)
    good = malformed_mix(flow, count, 0.0, seed=seed)
    return WorkloadBundle(
        "malformed",
        tuple(
            next(bad if index % 2 == 0 else good)[0]
            for index in range(count)
        ),
    )


def _tcp_bidir_workload(
    flow: FlowSpec, count: int, seed: int, rate_pps: float
) -> WorkloadBundle:
    pairs = bidirectional_flows(flow, count, seed=seed)
    return WorkloadBundle(
        "tcp_bidir",
        tuple(packet for packet, _ in pairs),
        ingress_ports=tuple(port for _, port in pairs),
    )


def _int_probe_workload(
    flow: FlowSpec, count: int, seed: int, rate_pps: float
) -> WorkloadBundle:
    # INT probe traffic: timed arrivals spread across four ingress
    # ports, so int_telemetry's stamped ingress_ts and ingress_port
    # both carry real per-packet variation for the oracle to predict.
    rng = random.Random(seed)
    return WorkloadBundle(
        "int_probe",
        tuple(udp_stream(flow, count, size=96, seed=seed)),
        times_ns=tuple(poisson_times(rate_pps, count, seed=seed)),
        ingress_ports=tuple(rng.randrange(4) for _ in range(count)),
    )


#: Named workload generators, keyed by the names scenario matrices use.
WORKLOADS: dict[
    str, Callable[[FlowSpec, int, int, float], WorkloadBundle]
] = {
    "udp": _udp_workload,
    "imix": _imix_workload,
    "poisson": _poisson_workload,
    "burst": _burst_workload,
    "onoff": _onoff_workload,
    "malformed": _malformed_workload,
    "tcp_bidir": _tcp_bidir_workload,
    "int_probe": _int_probe_workload,
}


def _accepts_context(factory: Callable) -> bool:
    """Whether a workload factory takes the optional ``context``."""
    try:
        parameters = inspect.signature(factory).parameters
    except (TypeError, ValueError):  # builtins / exotic callables
        return False
    return "context" in parameters or any(
        p.kind is inspect.Parameter.VAR_KEYWORD
        for p in parameters.values()
    )


def build_workload(
    name: str,
    flow: FlowSpec,
    count: int,
    seed: int = 0,
    rate_pps: float = 1e6,
    context: WorkloadContext | None = None,
) -> WorkloadBundle:
    """Materialize the named workload deterministically.

    Raises :class:`SimulationError` for unknown workload names (the
    message lists what the registry does offer), negative counts, and
    non-positive or non-finite rates. Count and rate are validated
    *before* dispatch, so every workload rejects bad arguments
    identically — historically ``malformed``/``tcp_bidir`` silently
    ignored a bogus rate their timed siblings refused.

    ``context`` reaches only factories that declare it (the
    program-aware ``coverage`` workload); the classic seeded-random
    factories keep their 4-argument signature.
    """
    if count < 0:
        raise SimulationError(f"workload {name!r}: count must be >= 0")
    _check_rate(rate_pps, f"workload {name!r}")
    try:
        factory = WORKLOADS[name]
    except KeyError:
        known = ", ".join(sorted(WORKLOADS))
        raise SimulationError(
            f"unknown workload {name!r}; registry offers: {known}"
        ) from None
    if _accepts_context(factory):
        return factory(flow, count, seed, rate_pps, context=context)
    return factory(flow, count, seed, rate_pps)
