"""Traffic generation for simulations.

Deterministic, seeded workload generators producing the packet mixes the
benchmark harness sweeps: fixed-size UDP streams, IMIX-style mixes, and
adversarial mixes containing malformed packets (the reject-state workload).
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass
from typing import Callable, Iterator

from ..exceptions import SimulationError
from ..packet.builder import ethernet_frame, udp_packet
from ..packet.headers import ipv4, mac
from ..packet.packet import Packet

__all__ = [
    "FlowSpec",
    "constant_rate_times",
    "poisson_times",
    "burst_times",
    "onoff_times",
    "udp_stream",
    "imix_stream",
    "malformed_mix",
    "pad_to_size",
    "WorkloadBundle",
    "WORKLOADS",
    "build_workload",
]


def _check_rate(rate_pps: float, who: str) -> None:
    """Reject rates that would produce divide-by-zero or bogus gaps."""
    if not math.isfinite(rate_pps) or rate_pps <= 0:
        raise SimulationError(
            f"{who}: rate_pps must be a positive finite packet rate, "
            f"got {rate_pps!r}"
        )


@dataclass(frozen=True)
class FlowSpec:
    """A five-tuple template for one generated flow."""

    src_ip: int
    dst_ip: int
    src_port: int
    dst_port: int
    eth_src: int = mac("02:00:00:00:00:01")
    eth_dst: int = mac("02:00:00:00:00:02")


def pad_to_size(packet: Packet, wire_size: int) -> Packet:
    """Pad a packet's payload so the serialized frame is ``wire_size``.

    Raises ValueError when the headers alone exceed the target size.
    """
    base = packet.wire_length - len(packet.payload)
    if wire_size < base:
        raise ValueError(
            f"cannot fit {base} header bytes into a {wire_size}-byte frame"
        )
    padded = packet.copy()
    pad = wire_size - base
    padded.payload = (
        packet.payload + b"\x00" * (pad - len(packet.payload))
        if pad >= len(packet.payload)
        else packet.payload[:pad]
    )
    return padded


def constant_rate_times(rate_pps: float, count: int) -> Iterator[float]:
    """Arrival times (ns) for ``count`` packets at a constant rate.

    Raises :class:`SimulationError` (eagerly, not at first iteration)
    when ``rate_pps`` is zero, negative, or non-finite.
    """
    _check_rate(rate_pps, "constant_rate_times")
    gap = 1e9 / rate_pps

    def times() -> Iterator[float]:
        for index in range(count):
            yield index * gap

    return times()


def poisson_times(
    rate_pps: float, count: int, seed: int = 0
) -> Iterator[float]:
    """Poisson arrival times (ns) with mean ``rate_pps``.

    Raises :class:`SimulationError` (eagerly, not at first iteration)
    when ``rate_pps`` is zero, negative, or non-finite.
    """
    _check_rate(rate_pps, "poisson_times")
    rng = random.Random(seed)

    def times() -> Iterator[float]:
        time = 0.0
        for _ in range(count):
            time += rng.expovariate(rate_pps) * 1e9
            yield time

    return times()


def burst_times(
    rate_pps: float,
    count: int,
    burst_size: int = 8,
    duty_cycle: float = 0.2,
    seed: int = 0,
) -> Iterator[float]:
    """Bursty arrival times (ns): back-to-back trains at the peak rate
    separated by seeded idle gaps, with mean rate ``rate_pps``.

    Within a burst, packets are spaced at ``duty_cycle / rate_pps``
    (i.e. the peak rate is ``rate_pps / duty_cycle``); inter-burst idle
    gaps absorb the remaining budget, jittered ±20% by ``seed`` so
    different cells see different burst phasing while any one cell is
    reproducible. Raises :class:`SimulationError` (eagerly, not at
    first iteration) for a non-positive rate, burst size or duty cycle.
    """
    _check_rate(rate_pps, "burst_times")
    if burst_size <= 0:
        raise SimulationError(
            f"burst_times: burst_size must be positive, got {burst_size!r}"
        )
    if not 0.0 < duty_cycle <= 1.0:
        raise SimulationError(
            f"burst_times: duty_cycle must be in (0, 1], got {duty_cycle!r}"
        )
    rng = random.Random(seed)
    mean_gap = 1e9 / rate_pps
    on_gap = duty_cycle * mean_gap

    def times() -> Iterator[float]:
        time = 0.0
        for index in range(count):
            if index and index % burst_size == 0:
                idle = (mean_gap - on_gap) * burst_size
                time += idle * (0.8 + 0.4 * rng.random())
            time += on_gap
            yield time

    return times()


def onoff_times(
    rate_pps: float,
    count: int,
    seed: int = 0,
    p_on_off: float = 0.1,
    p_off_on: float = 0.3,
    off_scale: float = 10.0,
) -> Iterator[float]:
    """Two-state Markov (on-off) arrival times (ns).

    The source alternates between an ON state emitting at ``rate_pps``
    and a silent OFF state: after each packet it moves ON→OFF with
    probability ``p_on_off``, and while OFF it idles in multiples of
    ``off_scale`` packet gaps, returning OFF→ON with probability
    ``p_off_on`` per idle step — the classic bursty-source model.
    Seed-deterministic; raises :class:`SimulationError` (eagerly, not
    at first iteration) for a non-positive rate or transition
    probabilities outside (0, 1].
    """
    _check_rate(rate_pps, "onoff_times")
    for name, probability in (
        ("p_on_off", p_on_off), ("p_off_on", p_off_on)
    ):
        if not 0.0 < probability <= 1.0:
            raise SimulationError(
                f"onoff_times: {name} must be in (0, 1], "
                f"got {probability!r}"
            )
    if off_scale <= 0:
        raise SimulationError(
            f"onoff_times: off_scale must be positive, got {off_scale!r}"
        )
    rng = random.Random(seed)
    on_gap = 1e9 / rate_pps
    off_gap = off_scale * on_gap

    def times() -> Iterator[float]:
        time = 0.0
        on = True
        for _ in range(count):
            if on and rng.random() < p_on_off:
                on = False
            while not on:
                time += off_gap
                if rng.random() < p_off_on:
                    on = True
            time += on_gap
            yield time

    return times()


def udp_stream(
    flow: FlowSpec, count: int, size: int = 128, seed: int = 0
) -> Iterator[Packet]:
    """A stream of identical-shape UDP packets padded to ``size`` bytes."""
    rng = random.Random(seed)
    for index in range(count):
        packet = udp_packet(
            flow.dst_ip,
            flow.src_ip,
            flow.dst_port,
            flow.src_port,
            payload=index.to_bytes(4, "big") + rng.randbytes(4),
            eth_dst=flow.eth_dst,
            eth_src=flow.eth_src,
        )
        yield pad_to_size(packet, size)


#: The classic IMIX distribution: (frame size, relative weight).
IMIX_DISTRIBUTION = ((64, 7), (570, 4), (1518, 1))


def imix_stream(flow: FlowSpec, count: int, seed: int = 0) -> Iterator[Packet]:
    """An IMIX-weighted mix of small/medium/large frames."""
    rng = random.Random(seed)
    sizes = [size for size, weight in IMIX_DISTRIBUTION for _ in range(weight)]
    for index in range(count):
        size = rng.choice(sizes)
        packet = udp_packet(
            flow.dst_ip,
            flow.src_ip,
            flow.dst_port,
            flow.src_port,
            payload=index.to_bytes(4, "big"),
            eth_dst=flow.eth_dst,
            eth_src=flow.eth_src,
        )
        yield pad_to_size(packet, size)


def malformed_mix(
    flow: FlowSpec,
    count: int,
    malformed_fraction: float = 0.5,
    seed: int = 0,
) -> Iterator[tuple[Packet, bool]]:
    """A mix of valid IPv4 and malformed packets.

    Yields ``(packet, is_malformed)``. Malformed packets are the §4 case
    study's inputs: wrong IP version, bad IHL, or an unknown EtherType —
    all of which a strict parser must reject.
    """
    rng = random.Random(seed)
    for index in range(count):
        if rng.random() < malformed_fraction:
            kind = rng.randrange(3)
            if kind == 0:
                # Wrong IP version.
                packet = udp_packet(
                    flow.dst_ip, flow.src_ip, flow.dst_port, flow.src_port,
                    payload=b"bad-version",
                    eth_dst=flow.eth_dst, eth_src=flow.eth_src,
                )
                packet.get("ipv4")["version"] = 6
            elif kind == 1:
                # Bad IHL (below the minimum of 5).
                packet = udp_packet(
                    flow.dst_ip, flow.src_ip, flow.dst_port, flow.src_port,
                    payload=b"bad-ihl",
                    eth_dst=flow.eth_dst, eth_src=flow.eth_src,
                )
                packet.get("ipv4")["ihl"] = rng.randrange(0, 5)
            else:
                # Unknown EtherType entirely.
                packet = ethernet_frame(
                    flow.eth_dst, flow.eth_src, 0xBEEF,
                    payload=rng.randbytes(46),
                )
            yield packet, True
        else:
            packet = udp_packet(
                flow.dst_ip, flow.src_ip, flow.dst_port, flow.src_port,
                payload=index.to_bytes(4, "big"),
                eth_dst=flow.eth_dst, eth_src=flow.eth_src,
            )
            yield packet, False


def default_flow(index: int = 0) -> FlowSpec:
    """A convenient distinct flow for tests and examples."""
    return FlowSpec(
        src_ip=ipv4("10.0.0.1") + index,
        dst_ip=ipv4("10.1.0.1") + index,
        src_port=1024 + index,
        dst_port=5000 + index,
    )


# ---------------------------------------------------------------------------
# The workload registry
# ---------------------------------------------------------------------------
# Campaigns and suites sweep workloads *by name*; each entry materializes
# one named packet mix for a (flow, count, seed) triple. Entries return a
# WorkloadBundle so timed workloads (poisson) can carry their arrival
# process alongside the packets.

@dataclass(frozen=True)
class WorkloadBundle:
    """One materialized workload: packets, plus arrival times when the
    workload defines its own arrival process (ns, monotonically
    increasing; ``None`` means back-to-back / constant-rate)."""

    name: str
    packets: tuple[Packet, ...]
    times_ns: tuple[float, ...] | None = None


def _udp_workload(
    flow: FlowSpec, count: int, seed: int, rate_pps: float
) -> WorkloadBundle:
    return WorkloadBundle(
        "udp", tuple(udp_stream(flow, count, size=128, seed=seed))
    )


def _imix_workload(
    flow: FlowSpec, count: int, seed: int, rate_pps: float
) -> WorkloadBundle:
    return WorkloadBundle("imix", tuple(imix_stream(flow, count, seed=seed)))


def _poisson_workload(
    flow: FlowSpec, count: int, seed: int, rate_pps: float
) -> WorkloadBundle:
    return WorkloadBundle(
        "poisson",
        tuple(udp_stream(flow, count, size=128, seed=seed)),
        times_ns=tuple(poisson_times(rate_pps, count, seed=seed)),
    )


def _burst_workload(
    flow: FlowSpec, count: int, seed: int, rate_pps: float
) -> WorkloadBundle:
    return WorkloadBundle(
        "burst",
        tuple(udp_stream(flow, count, size=128, seed=seed)),
        times_ns=tuple(burst_times(rate_pps, count, seed=seed)),
    )


def _onoff_workload(
    flow: FlowSpec, count: int, seed: int, rate_pps: float
) -> WorkloadBundle:
    return WorkloadBundle(
        "onoff",
        tuple(udp_stream(flow, count, size=128, seed=seed)),
        times_ns=tuple(onoff_times(rate_pps, count, seed=seed)),
    )


def _malformed_workload(
    flow: FlowSpec, count: int, seed: int, rate_pps: float
) -> WorkloadBundle:
    # Deterministic 50/50 interleave (malformed first) rather than a
    # Bernoulli draw: a short campaign cell must still exercise the
    # reject path, and an unlucky seed can put zero malformed packets
    # in a small Bernoulli mix.
    bad = malformed_mix(flow, count, 1.0, seed=seed)
    good = malformed_mix(flow, count, 0.0, seed=seed)
    return WorkloadBundle(
        "malformed",
        tuple(
            next(bad if index % 2 == 0 else good)[0]
            for index in range(count)
        ),
    )


#: Named workload generators, keyed by the names scenario matrices use.
WORKLOADS: dict[
    str, Callable[[FlowSpec, int, int, float], WorkloadBundle]
] = {
    "udp": _udp_workload,
    "imix": _imix_workload,
    "poisson": _poisson_workload,
    "burst": _burst_workload,
    "onoff": _onoff_workload,
    "malformed": _malformed_workload,
}


def build_workload(
    name: str,
    flow: FlowSpec,
    count: int,
    seed: int = 0,
    rate_pps: float = 1e6,
) -> WorkloadBundle:
    """Materialize the named workload deterministically.

    Raises :class:`SimulationError` for unknown workload names; the
    message lists what the registry does offer.
    """
    try:
        factory = WORKLOADS[name]
    except KeyError:
        known = ", ".join(sorted(WORKLOADS))
        raise SimulationError(
            f"unknown workload {name!r}; registry offers: {known}"
        ) from None
    if count < 0:
        raise SimulationError(f"workload {name!r}: count must be >= 0")
    return factory(flow, count, seed, rate_pps)
