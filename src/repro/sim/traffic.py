"""Traffic generation for simulations.

Deterministic, seeded workload generators producing the packet mixes the
benchmark harness sweeps: fixed-size UDP streams, IMIX-style mixes, and
adversarial mixes containing malformed packets (the reject-state workload).
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Iterator

from ..packet.builder import ethernet_frame, udp_packet
from ..packet.headers import ipv4, mac
from ..packet.packet import Packet

__all__ = [
    "FlowSpec",
    "constant_rate_times",
    "poisson_times",
    "udp_stream",
    "imix_stream",
    "malformed_mix",
    "pad_to_size",
]


@dataclass(frozen=True)
class FlowSpec:
    """A five-tuple template for one generated flow."""

    src_ip: int
    dst_ip: int
    src_port: int
    dst_port: int
    eth_src: int = mac("02:00:00:00:00:01")
    eth_dst: int = mac("02:00:00:00:00:02")


def pad_to_size(packet: Packet, wire_size: int) -> Packet:
    """Pad a packet's payload so the serialized frame is ``wire_size``.

    Raises ValueError when the headers alone exceed the target size.
    """
    base = packet.wire_length - len(packet.payload)
    if wire_size < base:
        raise ValueError(
            f"cannot fit {base} header bytes into a {wire_size}-byte frame"
        )
    padded = packet.copy()
    pad = wire_size - base
    padded.payload = (
        packet.payload + b"\x00" * (pad - len(packet.payload))
        if pad >= len(packet.payload)
        else packet.payload[:pad]
    )
    return padded


def constant_rate_times(rate_pps: float, count: int) -> Iterator[float]:
    """Arrival times (ns) for ``count`` packets at a constant rate."""
    gap = 1e9 / rate_pps
    for index in range(count):
        yield index * gap


def poisson_times(
    rate_pps: float, count: int, seed: int = 0
) -> Iterator[float]:
    """Poisson arrival times (ns) with mean ``rate_pps``."""
    rng = random.Random(seed)
    time = 0.0
    for _ in range(count):
        time += rng.expovariate(rate_pps) * 1e9
        yield time


def udp_stream(
    flow: FlowSpec, count: int, size: int = 128, seed: int = 0
) -> Iterator[Packet]:
    """A stream of identical-shape UDP packets padded to ``size`` bytes."""
    rng = random.Random(seed)
    for index in range(count):
        packet = udp_packet(
            flow.dst_ip,
            flow.src_ip,
            flow.dst_port,
            flow.src_port,
            payload=index.to_bytes(4, "big") + rng.randbytes(4),
            eth_dst=flow.eth_dst,
            eth_src=flow.eth_src,
        )
        yield pad_to_size(packet, size)


#: The classic IMIX distribution: (frame size, relative weight).
IMIX_DISTRIBUTION = ((64, 7), (570, 4), (1518, 1))


def imix_stream(flow: FlowSpec, count: int, seed: int = 0) -> Iterator[Packet]:
    """An IMIX-weighted mix of small/medium/large frames."""
    rng = random.Random(seed)
    sizes = [size for size, weight in IMIX_DISTRIBUTION for _ in range(weight)]
    for index in range(count):
        size = rng.choice(sizes)
        packet = udp_packet(
            flow.dst_ip,
            flow.src_ip,
            flow.dst_port,
            flow.src_port,
            payload=index.to_bytes(4, "big"),
            eth_dst=flow.eth_dst,
            eth_src=flow.eth_src,
        )
        yield pad_to_size(packet, size)


def malformed_mix(
    flow: FlowSpec,
    count: int,
    malformed_fraction: float = 0.5,
    seed: int = 0,
) -> Iterator[tuple[Packet, bool]]:
    """A mix of valid IPv4 and malformed packets.

    Yields ``(packet, is_malformed)``. Malformed packets are the §4 case
    study's inputs: wrong IP version, bad IHL, or an unknown EtherType —
    all of which a strict parser must reject.
    """
    rng = random.Random(seed)
    for index in range(count):
        if rng.random() < malformed_fraction:
            kind = rng.randrange(3)
            if kind == 0:
                # Wrong IP version.
                packet = udp_packet(
                    flow.dst_ip, flow.src_ip, flow.dst_port, flow.src_port,
                    payload=b"bad-version",
                    eth_dst=flow.eth_dst, eth_src=flow.eth_src,
                )
                packet.get("ipv4")["version"] = 6
            elif kind == 1:
                # Bad IHL (below the minimum of 5).
                packet = udp_packet(
                    flow.dst_ip, flow.src_ip, flow.dst_port, flow.src_port,
                    payload=b"bad-ihl",
                    eth_dst=flow.eth_dst, eth_src=flow.eth_src,
                )
                packet.get("ipv4")["ihl"] = rng.randrange(0, 5)
            else:
                # Unknown EtherType entirely.
                packet = ethernet_frame(
                    flow.eth_dst, flow.eth_src, 0xBEEF,
                    payload=rng.randbytes(46),
                )
            yield packet, True
        else:
            packet = udp_packet(
                flow.dst_ip, flow.src_ip, flow.dst_port, flow.src_port,
                payload=index.to_bytes(4, "big"),
                eth_dst=flow.eth_dst, eth_src=flow.eth_src,
            )
            yield packet, False


def default_flow(index: int = 0) -> FlowSpec:
    """A convenient distinct flow for tests and examples."""
    return FlowSpec(
        src_ip=ipv4("10.0.0.1") + index,
        dst_ip=ipv4("10.1.0.1") + index,
        src_port=1024 + index,
        dst_port=5000 + index,
    )
