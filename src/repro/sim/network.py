"""Network wiring: hosts, links and devices under a simulator.

A :class:`Network` connects :class:`~repro.target.device.NetworkDevice`
ports to :class:`Host` endpoints over fixed-latency links and drives
everything from one :class:`~repro.sim.events.Simulator`. This provides the
"live traffic" environment the paper's Figure 1 shows NetDebug running in
parallel with.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..exceptions import SimulationError
from ..target.device import NetworkDevice
from .events import Simulator, ns_per_cycle

__all__ = ["Host", "Network", "ReceivedFrame"]


@dataclass(frozen=True)
class ReceivedFrame:
    """One frame delivered to a host."""

    time_ns: float
    wire: bytes


@dataclass
class Host:
    """A traffic endpoint: transmits into a device, records what arrives."""

    name: str
    received: list[ReceivedFrame] = field(default_factory=list)

    def rx_count(self) -> int:
        return len(self.received)

    def rx_bytes(self) -> int:
        return sum(len(f.wire) for f in self.received)


class Network:
    """Devices + hosts + links driven by a shared simulator."""

    def __init__(self, sim: Simulator | None = None):
        self.sim = sim or Simulator()
        self.devices: dict[str, NetworkDevice] = {}
        self.hosts: dict[str, Host] = {}
        #: (device_name, port) -> host_name
        self._port_to_host: dict[tuple[str, int], str] = {}
        #: (device_name, port) -> (device_name, port) for trunk links
        self._port_to_port: dict[tuple[str, int], tuple[str, int]] = {}
        #: host_name -> (device_name, port)
        self._host_uplink: dict[str, tuple[str, int]] = {}
        self.link_delay_ns = 50.0

    # ------------------------------------------------------------------
    # Topology
    # ------------------------------------------------------------------
    def add_device(self, device: NetworkDevice) -> NetworkDevice:
        if device.name in self.devices:
            raise SimulationError(f"duplicate device {device.name!r}")
        self.devices[device.name] = device
        return device

    def add_host(self, name: str) -> Host:
        if name in self.hosts:
            raise SimulationError(f"duplicate host {name!r}")
        host = Host(name)
        self.hosts[name] = host
        return host

    def connect(self, host: str, device: str, port: int) -> None:
        """Attach ``host`` to ``device``'s ``port`` (full duplex)."""
        if host not in self.hosts:
            raise SimulationError(f"unknown host {host!r}")
        if device not in self.devices:
            raise SimulationError(f"unknown device {device!r}")
        if not 0 <= port < len(self.devices[device].ports):
            raise SimulationError(f"device {device!r} has no port {port}")
        key = (device, port)
        if key in self._port_to_host or key in self._port_to_port:
            raise SimulationError(
                f"port {port} of device {device!r} is already connected"
            )
        self._port_to_host[key] = host
        self._host_uplink[host] = key

    def connect_devices(
        self, device_a: str, port_a: int, device_b: str, port_b: int
    ) -> None:
        """Attach two device ports with a full-duplex trunk link."""
        for device, port in ((device_a, port_a), (device_b, port_b)):
            if device not in self.devices:
                raise SimulationError(f"unknown device {device!r}")
            if not 0 <= port < len(self.devices[device].ports):
                raise SimulationError(
                    f"device {device!r} has no port {port}"
                )
            key = (device, port)
            if key in self._port_to_host or key in self._port_to_port:
                raise SimulationError(
                    f"port {port} of device {device!r} is already "
                    "connected"
                )
        self._port_to_port[(device_a, port_a)] = (device_b, port_b)
        self._port_to_port[(device_b, port_b)] = (device_a, port_a)

    # ------------------------------------------------------------------
    # Transmission
    # ------------------------------------------------------------------
    def send(self, host: str, wire: bytes, at: float | None = None) -> None:
        """Schedule ``host`` to transmit ``wire`` at time ``at`` (ns)."""
        try:
            device_name, port = self._host_uplink[host]
        except KeyError:
            raise SimulationError(
                f"host {host!r} is not connected to any device"
            ) from None
        when = self.sim.now if at is None else at

        def deliver() -> None:
            self._device_rx(device_name, port, wire)

        self.sim.schedule_at(when + self.link_delay_ns, deliver)

    def _device_rx(self, device_name: str, port: int, wire: bytes) -> None:
        device = self.devices[device_name]
        cycle_ns = ns_per_cycle(device.limits.clock_mhz)
        timestamp_cycles = int(self.sim.now / cycle_ns)
        outputs = device.process(wire, port, timestamp=timestamp_cycles)
        for out_port, out_wire in outputs:
            self._emit(device_name, out_port, out_wire)

    def _emit(self, device_name: str, port: int, wire: bytes) -> None:
        """Deliver a device output over the attached link, if any."""
        host_name = self._port_to_host.get((device_name, port))
        if host_name is not None:
            def deliver_to_host() -> None:
                self.hosts[host_name].received.append(
                    ReceivedFrame(self.sim.now, wire)
                )

            self.sim.schedule(self.link_delay_ns, deliver_to_host)
            return
        peer = self._port_to_port.get((device_name, port))
        if peer is None:
            return  # unconnected port: frame falls on the floor
        peer_device, peer_port = peer

        def deliver_to_device() -> None:
            self._device_rx(peer_device, peer_port, wire)

        self.sim.schedule(self.link_delay_ns, deliver_to_device)

    # ------------------------------------------------------------------
    # Convenience
    # ------------------------------------------------------------------
    def run(self, until: float | None = None) -> None:
        self.sim.run(until=until)
