"""Discrete-event simulation core.

A tiny but complete event engine: events are ``(time, sequence, callback)``
triples in a heap; the simulator pops them in time order and runs them.
Time is in nanoseconds throughout the simulation layer, converted to/from
device clock cycles at the device boundary.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Callable

from ..exceptions import SimulationError

__all__ = ["Simulator", "ns_per_cycle"]


def ns_per_cycle(clock_mhz: int) -> float:
    """Nanoseconds per clock cycle at ``clock_mhz``."""
    return 1e3 / clock_mhz


@dataclass(order=True)
class _Event:
    time: float
    sequence: int
    callback: Callable[[], None] = field(compare=False)
    cancelled: bool = field(compare=False, default=False)


class Simulator:
    """A monotonic discrete-event scheduler."""

    def __init__(self) -> None:
        self._now = 0.0
        self._queue: list[_Event] = []
        self._sequence = 0
        self.events_run = 0

    @property
    def now(self) -> float:
        """Current simulation time in nanoseconds."""
        return self._now

    def schedule(self, delay: float, callback: Callable[[], None]) -> _Event:
        """Run ``callback`` ``delay`` ns from now; returns a handle."""
        if delay < 0:
            raise SimulationError(f"cannot schedule in the past ({delay})")
        return self.schedule_at(self._now + delay, callback)

    def schedule_at(self, time: float, callback: Callable[[], None]) -> _Event:
        """Run ``callback`` at absolute ``time`` ns."""
        if time < self._now:
            raise SimulationError(
                f"cannot schedule at {time} before now {self._now}"
            )
        event = _Event(time, self._sequence, callback)
        self._sequence += 1
        heapq.heappush(self._queue, event)
        return event

    def cancel(self, event: _Event) -> None:
        """Cancel a pending event (lazy removal)."""
        event.cancelled = True

    def peek_time(self) -> float | None:
        """Time of the next pending event, or None when idle."""
        while self._queue and self._queue[0].cancelled:
            heapq.heappop(self._queue)
        return self._queue[0].time if self._queue else None

    def step(self) -> bool:
        """Run the next event. Returns False when the queue is empty."""
        while self._queue:
            event = heapq.heappop(self._queue)
            if event.cancelled:
                continue
            self._now = event.time
            event.callback()
            self.events_run += 1
            return True
        return False

    def run(
        self, until: float | None = None, max_events: int = 10_000_000
    ) -> None:
        """Drain the queue, optionally stopping at time ``until`` ns."""
        remaining = max_events
        while remaining > 0:
            next_time = self.peek_time()
            if next_time is None:
                return
            if until is not None and next_time > until:
                self._now = until
                return
            self.step()
            remaining -= 1
        raise SimulationError(
            f"simulation exceeded {max_events} events; likely a scheduling "
            "loop"
        )
