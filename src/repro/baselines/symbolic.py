"""Value-set symbolic domain for the formal-verification baseline.

The p4v-style verifier (:mod:`repro.baselines.formal`) explores program
paths symbolically. Since no SMT solver is available offline, constraints
over header/metadata fields are tracked in a *value-set domain*: each
field is ``ANY`` (unconstrained), ``IN`` a finite set, or ``NOT-IN`` a
finite set of its width's domain. This domain is exact for the dominant
P4 idiom — comparing fields against constants in parser selects, control
conditionals and exact-match keys — and over-approximates the rest;
over-approximation is then discharged by *concrete witness confirmation*
(every candidate violation is replayed on the reference interpreter, so
no false positives escape).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..bitutils import mask
from ..exceptions import VerificationError

__all__ = ["ValueSet", "SymbolicState", "Infeasible"]


class Infeasible(VerificationError):
    """A refinement emptied a value set: the path cannot execute."""


@dataclass(frozen=True)
class ValueSet:
    """The set of values a field may hold on some path.

    ``kind`` is ``any`` / ``in`` / ``notin``; ``values`` is meaningful for
    the latter two.
    """

    width: int
    kind: str = "any"
    values: frozenset[int] = frozenset()

    def __post_init__(self) -> None:
        if self.kind not in ("any", "in", "notin"):
            raise VerificationError(f"bad value-set kind {self.kind!r}")
        if self.kind == "in" and not self.values:
            raise Infeasible("empty IN set")

    # -- constructors -----------------------------------------------------
    @classmethod
    def any_(cls, width: int) -> "ValueSet":
        return cls(width)

    @classmethod
    def concrete(cls, width: int, value: int) -> "ValueSet":
        return cls(width, "in", frozenset({value & mask(width)}))

    # -- queries ----------------------------------------------------------
    @property
    def is_concrete(self) -> bool:
        return self.kind == "in" and len(self.values) == 1

    @property
    def concrete_value(self) -> int:
        if not self.is_concrete:
            raise VerificationError("value set is not concrete")
        return next(iter(self.values))

    def may_equal(self, value: int) -> bool:
        value &= mask(self.width)
        if self.kind == "any":
            return True
        if self.kind == "in":
            return value in self.values
        return value not in self.values

    def must_equal(self, value: int) -> bool:
        return self.is_concrete and self.concrete_value == (
            value & mask(self.width)
        )

    # -- refinements (return new sets; raise Infeasible on conflict) ------
    def refine_eq(self, value: int) -> "ValueSet":
        value &= mask(self.width)
        if not self.may_equal(value):
            raise Infeasible(
                f"cannot refine {self} to == {value:#x}"
            )
        return ValueSet(self.width, "in", frozenset({value}))

    def refine_ne(self, value: int) -> "ValueSet":
        value &= mask(self.width)
        if self.kind == "in":
            remaining = self.values - {value}
            if not remaining:
                raise Infeasible(f"cannot refine {self} to != {value:#x}")
            return ValueSet(self.width, "in", remaining)
        excluded = (
            self.values | {value} if self.kind == "notin" else frozenset({value})
        )
        domain = mask(self.width) + 1
        if len(excluded) >= domain:
            raise Infeasible("excluded the whole domain")
        # Representation switch: once exclusions cover half a small
        # domain, the complement is the smaller (and exact) encoding —
        # refinements and witness picks then cost O(|remaining|)
        # instead of growing the excluded set without bound. Wide
        # fields keep NOT-IN: their complements are astronomically
        # large, and the first-gap pick below stays cheap regardless.
        if self.width <= 16 and len(excluded) * 2 >= domain:
            return ValueSet(
                self.width, "in", frozenset(range(domain)) - excluded
            )
        return ValueSet(self.width, "notin", excluded)

    def refine_in(self, allowed: frozenset[int]) -> "ValueSet":
        allowed = frozenset(v & mask(self.width) for v in allowed)
        if self.kind == "any":
            feasible = allowed
        elif self.kind == "in":
            feasible = self.values & allowed
        else:
            feasible = allowed - self.values
        if not feasible:
            raise Infeasible("IN refinement emptied the set")
        return ValueSet(self.width, "in", feasible)

    # -- witness ----------------------------------------------------------
    def pick(self, preferred: int | None = None) -> int:
        """A representative concrete value from the set."""
        if preferred is not None and self.may_equal(preferred):
            return preferred & mask(self.width)
        if self.kind == "in":
            return min(self.values)
        if self.kind == "any":
            return 0
        # NOT-IN: smallest value outside the excluded set, derived
        # arithmetically as the first gap in the sorted exclusions —
        # O(n log n) in the excluded count, never O(2^width) probing
        # (a 32-bit field excluding {0..k} answers k+1 immediately).
        candidate = 0
        for excluded in sorted(self.values):
            if excluded > candidate:
                break
            if excluded == candidate:
                candidate += 1
        if candidate > mask(self.width):
            raise Infeasible("no value outside NOT-IN set")
        return candidate

    def __str__(self) -> str:
        if self.kind == "any":
            return f"any<{self.width}>"
        inner = ",".join(f"{v:#x}" for v in sorted(self.values)[:4])
        suffix = ",…" if len(self.values) > 4 else ""
        return f"{self.kind}<{self.width}>{{{inner}{suffix}}}"


@dataclass
class SymbolicState:
    """Per-path symbolic facts: field sets, extracted headers, notes.

    Keys of ``fields`` are dotted ``header.field`` paths or
    ``meta.<name>`` for metadata.
    """

    fields: dict[str, ValueSet] = field(default_factory=dict)
    extracted: list[str] = field(default_factory=list)
    notes: list[str] = field(default_factory=list)

    def fork(self) -> "SymbolicState":
        return SymbolicState(
            dict(self.fields), list(self.extracted), list(self.notes)
        )

    def get(self, path: str, width: int) -> ValueSet:
        existing = self.fields.get(path)
        if existing is None:
            existing = ValueSet.any_(width)
            self.fields[path] = existing
        return existing

    def set(self, path: str, value_set: ValueSet) -> None:
        self.fields[path] = value_set

    def constrain_eq(self, path: str, width: int, value: int) -> None:
        self.set(path, self.get(path, width).refine_eq(value))

    def constrain_ne(self, path: str, width: int, value: int) -> None:
        self.set(path, self.get(path, width).refine_ne(value))

    def note(self, text: str) -> None:
        self.notes.append(text)

    def witness_value(self, path: str, width: int, preferred: int | None = None) -> int:
        return self.get(path, width).pick(preferred)
