"""Baseline tools NetDebug is compared against in Figure 2."""

from .external_tester import (
    ExternalCapture,
    ExternalTester,
    ExternalTestReport,
)
from .formal import (
    Property,
    SymbolicVerifier,
    VerificationReport,
    Violation,
    equivalence_check,
    prop_forwarded,
    prop_no_invalid_header_access,
    prop_rejected_never_forwarded,
)
from .symbolic import Infeasible, SymbolicState, ValueSet

__all__ = [
    "ExternalTester",
    "ExternalCapture",
    "ExternalTestReport",
    "SymbolicVerifier",
    "VerificationReport",
    "Violation",
    "Property",
    "prop_forwarded",
    "prop_no_invalid_header_access",
    "prop_rejected_never_forwarded",
    "equivalence_check",
    "ValueSet",
    "SymbolicState",
    "Infeasible",
]
