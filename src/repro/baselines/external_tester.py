"""External network tester baseline (OSNT-like).

Models a hardware traffic generator/capture box cabled to the device's
*external* ports. Its defining limitation — the reason Figure 2 scores it
"partial" on four use cases and "none" on two — is the lack of an internal
view: it can transmit on a port, capture on ports, and timestamp frames at
its own interfaces, but it cannot inject mid-pipeline, observe internal
taps, read counters/registers/occupancy, or see why a packet vanished.

The measurement path adds realistic cable+PHY+capture overhead to latency
samples, so external latency readings bound but never equal the in-device
figure NetDebug reports.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..packet.packet import Packet
from ..target.device import NetworkDevice

__all__ = ["ExternalCapture", "ExternalTestReport", "ExternalTester"]

#: Fixed overhead (ns) added by cables, PHYs and the capture pipeline to
#: every external round-trip measurement.
EXTERNAL_OVERHEAD_NS = 480.0


@dataclass(frozen=True)
class ExternalCapture:
    """One frame captured at an external port."""

    port: int
    wire: bytes
    rtt_ns: float


@dataclass
class ExternalTestReport:
    """Results of one external send/expect run."""

    sent: int = 0
    captured: int = 0
    missing: int = 0
    mismatched: int = 0
    wrong_port: int = 0
    unexpected: int = 0
    details: list[str] = field(default_factory=list)

    @property
    def passed(self) -> bool:
        return (
            self.missing == 0
            and self.mismatched == 0
            and self.wrong_port == 0
            and self.unexpected == 0
        )


class ExternalTester:
    """Port-level send/capture tester for one device."""

    def __init__(self, device: NetworkDevice):
        self._device = device
        self.captures: list[ExternalCapture] = []

    # ------------------------------------------------------------------
    # Raw port operations — the tester's entire vocabulary
    # ------------------------------------------------------------------
    def send(self, wire: bytes, port: int) -> list[ExternalCapture]:
        """Transmit one frame; capture whatever comes back out."""
        before = self._device.clock_cycles
        outputs = self._device.process(wire, port)
        cycles = self._device.clock_cycles - before
        rtt_ns = (
            cycles * 1e3 / self._device.limits.clock_mhz
            + EXTERNAL_OVERHEAD_NS
        )
        captured = [
            ExternalCapture(out_port, out_wire, rtt_ns)
            for out_port, out_wire in outputs
        ]
        self.captures.extend(captured)
        return captured

    # ------------------------------------------------------------------
    # Functional testing: expected-output comparison at the ports
    # ------------------------------------------------------------------
    def run_vectors(
        self,
        vectors: list[tuple[bytes, int, bytes | None, int | None]],
    ) -> ExternalTestReport:
        """Run ``(frame, in_port, expected_frame, expected_port)`` vectors.

        ``expected_frame=None`` means the frame must be absorbed (drop
        test); otherwise the first capture must match the bytes and,
        when given, the port.
        """
        report = ExternalTestReport()
        for wire, in_port, expected_wire, expected_port in vectors:
            report.sent += 1
            captured = self.send(wire, in_port)
            report.captured += len(captured)
            if expected_wire is None:
                if captured:
                    report.unexpected += 1
                    report.details.append(
                        f"frame expected to be dropped emerged on port "
                        f"{captured[0].port}"
                    )
                continue
            if not captured:
                report.missing += 1
                report.details.append(
                    "expected output frame never appeared at any port"
                )
                continue
            head = captured[0]
            if expected_port is not None and head.port != expected_port:
                report.wrong_port += 1
                report.details.append(
                    f"frame emerged on port {head.port}, expected "
                    f"{expected_port}"
                )
            if head.wire != expected_wire:
                report.mismatched += 1
                report.details.append("output frame bytes differ")
        return report

    # ------------------------------------------------------------------
    # Performance testing: external throughput / rate / RTT
    # ------------------------------------------------------------------
    def measure(
        self, packets: list[Packet], port: int = 0
    ) -> dict[str, float]:
        """Blast ``packets`` through the device and measure externally.

        Returns throughput (Gb/s), packet rate (Mpps) and RTT latency
        stats (ns) *as seen from outside* — in-device latency is not
        separable from the measurement overhead.
        """
        device = self._device
        start_cycles = device.clock_cycles
        rtts: list[float] = []
        octets = 0
        delivered = 0
        for packet in packets:
            wire = packet.pack()
            captured = self.send(wire, port)
            if captured:
                delivered += 1
                octets += len(captured[0].wire)
                rtts.append(captured[0].rtt_ns)
        elapsed_cycles = max(1, device.clock_cycles - start_cycles)
        elapsed_s = elapsed_cycles / (device.limits.clock_mhz * 1e6)
        return {
            "offered": float(len(packets)),
            "delivered": float(delivered),
            "throughput_gbps": octets * 8 / elapsed_s / 1e9,
            "packet_rate_mpps": delivered / elapsed_s / 1e6,
            "rtt_mean_ns": sum(rtts) / len(rtts) if rtts else 0.0,
            "rtt_min_ns": min(rtts) if rtts else 0.0,
            "rtt_max_ns": max(rtts) if rtts else 0.0,
        }
